//! Executive generation: from adequation to deadlock-free distributed
//! code skeletons.
//!
//! Distributes an inverted-pendulum control law over two heterogeneous
//! processors, prints the static schedule, the per-processor synchronized
//! executives (SynDEx-macro-style), and replays the rendezvous semantics
//! to verify deadlock freedom.
//!
//! Run with `cargo run --example codegen_executives`.

use eclipse_codesign::aaa::{
    adequation, codegen, AdequationOptions, ArchitectureGraph, MappingPolicy, TimeNs,
};
use eclipse_codesign::core::translate::{uniform_timing, ControlLawSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A filtered 4-input law (inverted pendulum state feedback): four
    // parallel pre-filters then the control step.
    let law = ControlLawSpec::filtered("pend", 4, 1).with_data_units(8);
    let (alg, io) = law.to_algorithm()?;

    // One ARM core plus one DSP connected by a fast link and a slow bus.
    let mut arch = ArchitectureGraph::new();
    let arm = arch.add_processor("arm0", "cortex-a");
    let dsp = arch.add_processor("dsp0", "c6x");
    arch.add_link(
        "srio",
        arm,
        dsp,
        TimeNs::from_micros(5),
        TimeNs::from_micros(1),
    )?;
    arch.add_bus(
        "can",
        &[arm, dsp],
        TimeNs::from_micros(120),
        TimeNs::from_micros(8),
    )?;

    // The DSP runs filters 3x faster; physical I/O stays on the ARM.
    let mut db = uniform_timing(&alg, &io, TimeNs::from_micros(50), TimeNs::from_micros(900));
    for k in 0..4 {
        db.set(io.stages[k], dsp, TimeNs::from_micros(300));
    }
    for &op in io.sensors.iter().chain(&io.actuators) {
        db.forbid(op, dsp);
    }

    for (label, policy) in [
        (
            "schedule pressure (SynDEx heuristic)",
            MappingPolicy::SchedulePressure,
        ),
        ("earliest finish time", MappingPolicy::EarliestFinish),
    ] {
        let schedule = adequation(&alg, &arch, &db, AdequationOptions { policy })?;
        schedule.validate(&alg, &arch)?;
        println!("== {label} ==");
        println!("makespan: {}", schedule.makespan());
        for p in arch.processors() {
            println!(
                "  {} utilization: {:.0}%",
                arch.proc_name(p),
                schedule.utilization(p) * 100.0
            );
        }
        println!();
    }

    let schedule = adequation(&alg, &arch, &db, AdequationOptions::default())?;
    println!("== static schedule ==\n{}", schedule.render(&alg, &arch));

    let generated = codegen::generate(&schedule, &alg, &arch)?;
    println!("== generated executives ==");
    for e in &generated.executives {
        println!("{}", codegen::render(e, &alg, &arch));
    }
    for c in &generated.comm_sequences {
        println!("{}", codegen::render_comm_sequence(c, &alg, &arch));
    }
    println!(
        "deadlock-freedom check: {}",
        if codegen::check_deadlock_free(&generated.executives).is_free() {
            "PASS"
        } else {
            "FAIL"
        }
    );
    // The timed replay re-derives the schedule from the generated code.
    let replayed = codegen::replay(&generated, &arch)?;
    println!(
        "timed replay makespan {} == schedule makespan {} : {}",
        replayed.makespan,
        schedule.makespan(),
        replayed.makespan == schedule.makespan()
    );
    Ok(())
}
