//! Quickstart: the methodology in five steps on a DC motor.
//!
//! 1. take a textbook plant,
//! 2. design a discrete LQR under the stroboscopic model (paper Fig. 2),
//! 3. describe a 2-ECU + bus target and run the adequation,
//! 4. co-simulate with the graph of delays (paper Fig. 3),
//! 5. print the latency report (paper eq. 1–2) and the cost comparison.
//!
//! Run with `cargo run --example quickstart`.

use eclipse_codesign::aaa::{adequation, AdequationOptions, ArchitectureGraph, TimeNs};
use eclipse_codesign::control::{c2d_zoh, dlqr, plants};
use eclipse_codesign::core::cosim::{self, DisturbanceKind, LoopSpec};
use eclipse_codesign::core::translate::{uniform_timing, ControlLawSpec};
use eclipse_codesign::linalg::Mat;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // -- 1. the plant ------------------------------------------------------
    let plant = plants::dc_motor();
    println!("plant: {} (Ts = {} ms)", plant.name, plant.ts * 1e3);

    // -- 2. control design under the stroboscopic model --------------------
    let dss = c2d_zoh(&plant.sys, plant.ts)?;
    let lqr = dlqr(&dss, &Mat::diag(&[10.0, 1.0]), &Mat::diag(&[1e-3]))?;
    let spec = LoopSpec {
        plant: plant.sys.clone(),
        n_controls: 1,
        x0: vec![1.0, 0.0],
        feedback: lqr.k.clone(),
        input_memory: None,
        ts: plant.ts,
        horizon: 1.5,
        q_weight: 1.0,
        r_weight: 1e-3,
        disturbance: DisturbanceKind::None,
    };
    let ideal = cosim::run_ideal(&spec)?;
    println!("ideal (stroboscopic) cost      : {:.6}", ideal.cost);

    // -- 3. implementation: 2 ECUs on a CAN-like bus ------------------------
    let law = ControlLawSpec::monolithic("lqr", 2, 1);
    let (alg, io) = law.to_algorithm()?;
    let mut arch = ArchitectureGraph::new();
    let sensor_ecu = arch.add_processor("sensor_ecu", "arm");
    let control_ecu = arch.add_processor("control_ecu", "arm");
    arch.add_bus(
        "can",
        &[sensor_ecu, control_ecu],
        TimeNs::from_millis(8),
        TimeNs::from_micros(10),
    )?;
    let mut db = uniform_timing(&alg, &io, TimeNs::from_micros(200), TimeNs::from_millis(18));
    for &op in io.sensors.iter().chain(&io.actuators) {
        db.forbid(op, control_ecu); // physical I/O sits on the sensor ECU
    }
    db.forbid(io.stages[0], sensor_ecu); // the control task runs remotely
    let schedule = adequation(&alg, &arch, &db, AdequationOptions::default())?;
    schedule.validate(&alg, &arch)?;
    println!(
        "\nstatic schedule (adequation):\n{}",
        schedule.render(&alg, &arch)
    );

    // -- 4. co-simulation with the graph of delays -------------------------
    let implemented = cosim::run_scheduled(&spec, &alg, &io, &schedule, &arch)?;
    println!("implemented (co-simulated) cost: {:.6}", implemented.cost);
    println!(
        "degradation                    : {:+.1}%",
        (implemented.cost / ideal.cost - 1.0) * 100.0
    );

    // -- 5. latency report (paper eq. 1-2) ----------------------------------
    let report = implemented.latency_report()?;
    println!("\nlatency report:\n{}", report.render());
    Ok(())
}
