//! Working from a `.sdx` project file: parse, analyse, schedule, report.
//!
//! SynDEx workflows start from versioned text files describing the
//! algorithm, the architecture and the timing characterization. This
//! example parses such a file, runs the adequation, and prints the
//! schedule analysis (critical path, speedup, utilization) with an ASCII
//! Gantt chart — then round-trips the project back to text.
//!
//! Run with `cargo run --example sdx_project`.

use eclipse_codesign::aaa::{adequation, analysis, sdx, AdequationOptions};

const PROJECT: &str = r"
# engine-control subsystem, 2 ECUs + CAN
algorithm
  sensor   rpm
  sensor   manifold_pressure
  sensor   lambda
  function filter_rpm
  function filter_map
  function fuel_calc
  function spark_calc
  actuator injector
  actuator coil
  edge rpm -> filter_rpm : 4
  edge manifold_pressure -> filter_map : 4
  edge filter_rpm -> fuel_calc : 4
  edge filter_map -> fuel_calc : 4
  edge lambda -> fuel_calc : 4
  edge filter_rpm -> spark_calc : 4
  edge fuel_calc -> injector : 4
  edge spark_calc -> coil : 4
end

architecture
  processor engine_ecu : cortex-m
  processor body_ecu   : cortex-m
  bus can : engine_ecu body_ecu : latency 120us rate 8us
end

timing
  default rpm = 40us
  default manifold_pressure = 40us
  default lambda = 60us
  default filter_rpm = 250us
  default filter_map = 250us
  default fuel_calc = 700us
  default spark_calc = 400us
  default injector = 50us
  default coil = 50us
  forbid rpm @ body_ecu
  forbid injector @ body_ecu
  forbid coil @ body_ecu
end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let project = sdx::from_sdx(PROJECT)?;
    println!(
        "parsed project: {} operations, {} processors, {} media",
        project.algorithm.len(),
        project.architecture.num_processors(),
        project.architecture.num_media()
    );

    let schedule = adequation(
        &project.algorithm,
        &project.architecture,
        &project.timing,
        AdequationOptions::default(),
    )?;
    schedule.validate(&project.algorithm, &project.architecture)?;

    let report = analysis::report(
        &schedule,
        &project.algorithm,
        &project.architecture,
        &project.timing,
    )?;
    println!("\n== schedule analysis ==");
    println!("makespan        : {}", report.makespan);
    println!("critical path   : {}", report.critical_path);
    println!("sequential time : {}", report.sequential_time);
    println!("speedup         : {:.2}x", report.speedup);
    println!("vs lower bound  : {:.2}x", report.efficiency_vs_bound);
    println!("comm time       : {}", report.comm_time);
    for (p, u) in &report.utilization {
        println!(
            "utilization {:<12}: {:.0}%",
            project.architecture.proc_name(*p),
            u * 100.0
        );
    }

    println!("\n== gantt ==");
    print!(
        "{}",
        analysis::gantt(&schedule, &project.algorithm, &project.architecture, 60)
    );

    println!("\n== schedule ==");
    print!(
        "{}",
        schedule.render(&project.algorithm, &project.architecture)
    );

    // Round-trip: the project serializes back to .sdx text.
    let text = sdx::to_sdx(&project);
    let reparsed = sdx::from_sdx(&text)?;
    println!(
        "round-trip: {} ops preserved, text form {} lines",
        reparsed.algorithm.len(),
        text.lines().count()
    );
    Ok(())
}
