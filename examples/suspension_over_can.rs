//! The automotive case study sketched by the paper's conclusion: an active
//! suspension controller distributed over three ECUs and a CAN-like bus,
//! pushed through the **full design lifecycle** — design, adequation,
//! co-simulation, calibration, executive generation.
//!
//! Run with `cargo run --example suspension_over_can`.

use eclipse_codesign::aaa::{AdequationOptions, ArchitectureGraph, TimeNs};
use eclipse_codesign::control::plants;
use eclipse_codesign::core::cosim::DisturbanceKind;
use eclipse_codesign::core::lifecycle::{self, LifecycleInputs};
use eclipse_codesign::core::translate::{uniform_timing, ControlLawSpec};
use eclipse_codesign::linalg::Mat;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Quarter-car active suspension: 4 states, 1 active-force input, 1
    // road-velocity disturbance. Ts = 5 ms.
    let plant = plants::quarter_car();
    println!("plant: {} (Ts = {} ms)", plant.name, plant.ts * 1e3);

    // The law samples all four states through per-sensor filter stages
    // (parallelizable), then one control step.
    let law = ControlLawSpec::filtered("susp", 4, 1).with_data_units(8);
    let (alg, io) = law.to_algorithm()?;

    // Three ECUs on one CAN bus: wheel-sensor ECU, body-sensor ECU, and
    // the central control ECU driving the actuator.
    let mut arch = ArchitectureGraph::new();
    let wheel_ecu = arch.add_processor("wheel_ecu", "cortex-m");
    let body_ecu = arch.add_processor("body_ecu", "cortex-m");
    let control_ecu = arch.add_processor("control_ecu", "cortex-a");
    arch.add_bus(
        "can",
        &[wheel_ecu, body_ecu, control_ecu],
        TimeNs::from_micros(120), // CAN frame time
        TimeNs::from_micros(8),   // per data unit
    )?;

    // WCETs: sensors/filters are fast on the little ECUs; the control step
    // is pinned on the big one, the actuator on the wheel ECU.
    let mut db = uniform_timing(&alg, &io, TimeNs::from_micros(80), TimeNs::from_micros(600));
    // Suspension deflection + unsprung velocity sensed at the wheel.
    for &s in &[io.sensors[0], io.sensors[2], io.sensors[3]] {
        db.forbid(s, body_ecu);
        db.forbid(s, control_ecu);
    }
    // Body velocity sensed at the body ECU.
    db.forbid(io.sensors[1], wheel_ecu);
    db.forbid(io.sensors[1], control_ecu);
    // Control step on the big core only; actuator at the wheel.
    let step = *io.stages.last().expect("law has stages");
    db.forbid(step, wheel_ecu);
    db.forbid(step, body_ecu);
    db.forbid(io.actuators[0], body_ecu);
    db.forbid(io.actuators[0], control_ecu);

    let inputs = LifecycleInputs {
        plant: plant.sys.clone(),
        n_controls: 1,
        x0: vec![0.05, 0.0, 0.0, 0.0], // 5 cm initial suspension deflection
        ts: plant.ts,
        horizon: 1.0,
        lqr_q: Mat::diag(&[1e4, 1.0, 1e3, 1.0]),
        lqr_r: Mat::diag(&[1e-6]),
        q_weight: 1.0,
        r_weight: 1e-8,
        law,
        arch,
        db,
        adequation: AdequationOptions::default(),
        disturbance: DisturbanceKind::Noise {
            std_dev: 0.05,
            seed: 2008,
        },
    };

    let report = lifecycle::run(&inputs)?;

    println!("\n== static schedule ==");
    print!("{}", report.schedule.render(&alg, &inputs.arch));
    println!("makespan: {}", report.schedule.makespan());

    println!("\n== latency report (paper eq. 1-2) ==");
    print!("{}", report.latency.render());

    println!("\n== control performance ==");
    println!("ideal (stroboscopic) cost : {:.6}", report.ideal.cost);
    println!("implemented cost          : {:.6}", report.implemented.cost);
    println!("calibrated cost           : {:.6}", report.calibrated.cost);
    println!(
        "degradation {:+.1}%, calibration recovers {:.0}% of it",
        report.degradation() * 100.0,
        report.calibration_recovery() * 100.0
    );

    println!(
        "\n== generated executives (deadlock-free: {}) ==",
        report.deadlock_free
    );
    println!("{}", report.executives);
    Ok(())
}
