//! Output feedback over the network: an LQG compensator (Kalman
//! estimator plus LQR gain) closing the loop through the *measured*
//! plant output, with the measurement and the actuation crossing a bus.
//!
//! Real deployments rarely sample the full state; this example shows the
//! methodology applied to the realistic estimator-in-the-loop case — and
//! that implementation latency hurts the estimator-based loop too.
//!
//! Run with `cargo run --example lqg_over_bus`.

use eclipse_codesign::aaa::{adequation, AdequationOptions, ArchitectureGraph, TimeNs};
use eclipse_codesign::control::{c2d_zoh, dlqr, frequency, kalman, lqg, plants, stability};
use eclipse_codesign::core::cosim::{self, DisturbanceKind, OutputLoopSpec};
use eclipse_codesign::core::translate::{uniform_timing, ControlLawSpec};
use eclipse_codesign::linalg::Mat;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plant = plants::dc_motor();
    let dss = c2d_zoh(&plant.sys, plant.ts)?;

    // -- synthesis: LQR gain + Kalman estimator -> LQG compensator --------
    let gain = dlqr(&dss, &Mat::diag(&[10.0, 1.0]), &Mat::diag(&[1e-2]))?;
    let kf = kalman::design(&dss, &Mat::identity(2).scaled(1e-4), &Mat::diag(&[1e-4]))?;
    println!(
        "LQR gain K = [{:.3}, {:.3}], Kalman gain L = [{:.3}; {:.3}]",
        gain.k[(0, 0)],
        gain.k[(0, 1)],
        kf.l[(0, 0)],
        kf.l[(1, 0)]
    );
    let rho = lqg::closed_loop_radius(&dss, &gain, &kf)?;
    println!("closed-loop spectral radius (separation principle): {rho:.4}");
    let comp = lqg::compensator(&dss, &gain, &kf)?;
    let comp_poles = stability::poles_dt(&comp)?;
    println!(
        "compensator poles |z|: {:?}",
        comp_poles
            .iter()
            .map(|p| (p.magnitude * 1e3).round() / 1e3)
            .collect::<Vec<_>>()
    );
    // Continuous loop-shaping sanity: the state-feedback loop's margins.
    if let Some(m) = frequency::margins(
        &frequency::state_feedback_loop(&plant.sys, &gain.k)?,
        1e-3,
        1e4,
    )? {
        println!(
            "state-feedback loop: wgc {:.1} rad/s, PM {:.0} deg, delay margin {:.1} ms",
            m.omega_gc,
            m.phase_margin_deg,
            m.delay_margin * 1e3
        );
    }

    // -- the loop spec ------------------------------------------------------
    let spec = OutputLoopSpec {
        plant: plant.sys.clone(),
        n_controls: 1,
        x0: vec![1.0, 0.0],
        compensator: comp,
        ts: plant.ts,
        horizon: 2.0,
        q_weight: 1.0,
        r_weight: 1e-2,
        disturbance: DisturbanceKind::None,
    };
    let ideal = cosim::run_output_ideal(&spec)?;
    println!("\nideal (stroboscopic) cost      : {:.6}", ideal.cost);

    // -- distribute: sensor+actuator on one ECU, compensator remote --------
    let law = ControlLawSpec::monolithic("lqg", 1, 1);
    let (alg, io) = law.to_algorithm()?;
    let mut arch = ArchitectureGraph::new();
    let io_ecu = arch.add_processor("io_ecu", "arm");
    let compute_ecu = arch.add_processor("compute_ecu", "arm");
    arch.add_bus(
        "can",
        &[io_ecu, compute_ecu],
        TimeNs::from_millis(6),
        TimeNs::from_micros(10),
    )?;
    let mut db = uniform_timing(&alg, &io, TimeNs::from_micros(200), TimeNs::from_millis(15));
    for &op in io.sensors.iter().chain(&io.actuators) {
        db.forbid(op, compute_ecu);
    }
    db.forbid(io.stages[0], io_ecu);
    let schedule = adequation(&alg, &arch, &db, AdequationOptions::default())?;
    schedule.validate(&alg, &arch)?;
    println!("\nschedule:\n{}", schedule.render(&alg, &arch));

    let implemented = cosim::run_output_scheduled(&spec, &alg, &io, &schedule, &arch)?;
    println!("implemented (co-simulated) cost: {:.6}", implemented.cost);
    println!(
        "degradation                    : {:+.1}%",
        (implemented.cost / ideal.cost - 1.0) * 100.0
    );
    let rep = implemented.latency_report()?;
    println!("\nlatency report:\n{}", rep.render());
    Ok(())
}
