//! Conditioning-induced jitter (paper §3.2.2, Fig. 5).
//!
//! A cruise controller whose computation takes an `if..then..else`: the
//! *eco* branch is cheap, the *sport* branch runs a heavier algorithm.
//! The generated schedule budgets the worst case, but the *actual*
//! actuation instant moves with the branch taken — the graph of delays
//! routes each period through an `EventSelect`, so the co-simulation shows
//! the actuation jitter the stroboscopic model hides.
//!
//! Run with `cargo run --example conditioning_jitter`.

use eclipse_codesign::aaa::{
    adequation, AdequationOptions, AlgorithmGraph, ArchitectureGraph, TimeNs, TimingDb,
};
use eclipse_codesign::blocks::Sine;
use eclipse_codesign::control::{c2d_zoh, dlqr, plants};
use eclipse_codesign::core::cosim::{self, DisturbanceKind, LoopSpec};
use eclipse_codesign::core::delays::{ConditionSource, DelayGraphConfig};
use eclipse_codesign::core::translate::IoMap;
use eclipse_codesign::linalg::Mat;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plant = plants::cruise_control();
    let ts = plant.ts; // 100 ms
    println!("plant: {} (Ts = {} ms)", plant.name, ts * 1e3);

    // -- the control law with a conditioned computation ---------------------
    // sensor -> mode -> {eco | sport} -> out -> actuator
    let mut alg = AlgorithmGraph::new();
    let sense = alg.add_sensor("sense_v");
    let mode = alg.add_function("mode_select");
    let eco = alg.add_function("eco_step");
    let sport = alg.add_function("sport_step");
    let out = alg.add_function("out_prep");
    let act = alg.add_actuator("apply_force");
    alg.add_edge(sense, mode, 4)?;
    alg.set_condition(eco, mode, 0)?;
    alg.set_condition(sport, mode, 1)?;
    alg.add_edge(eco, out, 4)?;
    alg.add_edge(sport, out, 4)?;
    alg.add_edge(out, act, 4)?;
    let io = IoMap {
        sensors: vec![sense],
        stages: vec![mode, eco, sport, out],
        actuators: vec![act],
    };

    // -- single ECU, branch WCETs 2 ms vs 30 ms ----------------------------
    let mut arch = ArchitectureGraph::new();
    let ecu = arch.add_processor("ecu", "arm");
    let mut db = TimingDb::new();
    db.set(sense, ecu, TimeNs::from_micros(200));
    db.set(mode, ecu, TimeNs::from_micros(300));
    db.set(eco, ecu, TimeNs::from_millis(2));
    db.set(sport, ecu, TimeNs::from_millis(30));
    db.set(out, ecu, TimeNs::from_micros(300));
    db.set(act, ecu, TimeNs::from_micros(200));
    let schedule = adequation(&alg, &arch, &db, AdequationOptions::default())?;
    schedule.validate(&alg, &arch)?;
    println!(
        "\nschedule (WCET budget, both branches):\n{}",
        schedule.render(&alg, &arch)
    );

    // -- the loop ------------------------------------------------------------
    let dss = c2d_zoh(&plant.sys, ts)?;
    let lqr = dlqr(&dss, &Mat::diag(&[100.0]), &Mat::diag(&[1e-4]))?;
    let spec = LoopSpec {
        plant: plant.sys.clone(),
        n_controls: 1,
        x0: vec![5.0], // 5 m/s speed error
        feedback: lqr.k.clone(),
        input_memory: None,
        ts,
        horizon: 4.0,
        q_weight: 1.0,
        r_weight: 1e-6,
        disturbance: DisturbanceKind::None,
    };
    let ideal = cosim::run_ideal(&spec)?;

    // The mode alternates every period: a sinusoid sampled at kTs flips
    // sign each period; the condition mapping sends positives to eco.
    let implemented = cosim::run_scheduled_with(&spec, &alg, &io, &schedule, &arch, |model| {
        let osc = model.add_block(
            "mode_signal",
            Sine::new(1.0, 1.0 / (2.0 * ts)).with_phase(std::f64::consts::FRAC_PI_4),
        );
        let mut cfg = DelayGraphConfig::default();
        cfg.condition_sources.insert(
            mode,
            ConditionSource {
                block: osc,
                output: 0,
                mapping: Box::new(|v| usize::from(v < 0.0)),
            },
        );
        Ok(cfg)
    })?;

    let report = implemented.latency_report()?;
    println!("latency report (note La jitter = sport − eco ≈ 28 ms):");
    print!("{}", report.render());
    println!("\nper-period actuation latencies (first 8 periods):");
    for (k, v) in report.actuation[0].values().iter().take(8).enumerate() {
        println!("  k = {k}: La = {v}");
    }

    println!("\nideal cost       : {:.6}", ideal.cost);
    println!("implemented cost : {:.6}", implemented.cost);
    println!(
        "degradation      : {:+.2}%",
        (implemented.cost / ideal.cost - 1.0) * 100.0
    );
    Ok(())
}
