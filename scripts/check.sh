#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, and the full offline test suite.
#
# Everything runs with --offline against the vendored/shimmed
# dependencies, so the gate works without network access. Run from the
# repository root:
#
#   scripts/check.sh
#
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test (workspace) =="
cargo test --workspace -q --offline

# The fleet/histogram/latency tests assert worker-count invariance; run
# them again single-threaded so a scheduling-dependent bug cannot hide
# behind the default parallel test harness.
echo "== determinism-sensitive tests, --test-threads=1 =="
cargo test -q --offline -p ecl-bench fleet -- --test-threads=1
cargo test -q --offline -p ecl-telemetry -- --test-threads=1
cargo test -q --offline -p ecl-core latency -- --test-threads=1

# E11-MC asserts 1-worker vs 4-worker byte-identity and archives the
# sweep report + wall-clock numbers under results/ (BENCH_exp11.json).
echo "== E11-MC determinism check + bench artifact =="
cargo run -q --offline --release -p ecl-bench --bin exp11_monte_carlo >/dev/null
test -s results/BENCH_exp11.json
test -s results/exp11_monte_carlo.txt

# E12-FAULT: the fault-injection sweep must produce byte-identical
# artifacts for any worker count (the binary also reproduces E11-MC's
# report bytes from a zero-rate fault plan — asserted internally).
echo "== E12-FAULT determinism check + bench artifact =="
ECL_FLEET_WORKERS=1 cargo run -q --offline --release -p ecl-bench --bin exp12_fault_sweep >/dev/null
cp results/BENCH_exp12.json results/BENCH_exp12.w1.json
ECL_FLEET_WORKERS=4 cargo run -q --offline --release -p ecl-bench --bin exp12_fault_sweep >/dev/null
diff results/BENCH_exp12.w1.json results/BENCH_exp12.json
rm results/BENCH_exp12.w1.json
test -s results/BENCH_exp12.json
test -s results/exp12_fault_sweep.txt

# E13-EXEC: the virtual executive must measure exactly the instants the
# graph of delays predicts (asserted internally, nominal + fault plan),
# and the validated sweep must be byte-identical for any worker count.
# The VM's own determinism is re-asserted single-threaded.
echo "== E13-EXEC cross-validation + determinism check =="
ECL_FLEET_WORKERS=1 cargo run -q --offline --release -p ecl-bench --bin exp13_executive >/dev/null
cp results/BENCH_exp13.json results/BENCH_exp13.w1.json
ECL_FLEET_WORKERS=4 cargo run -q --offline --release -p ecl-bench --bin exp13_executive >/dev/null
diff results/BENCH_exp13.w1.json results/BENCH_exp13.json
rm results/BENCH_exp13.w1.json
test -s results/BENCH_exp13.json
test -s results/exp13_executive.txt
cargo test -q --offline -p ecl-exec --lib -- --test-threads=1

# E14-VERIFY: the static verifier must lint clean (clippy on the new
# crate is pinned explicitly), report zero errors on every experiment
# schedule (verify_experiments test), and the binary asserts internally
# that the static Ls/La bounds dominate every measured VM / co-sim
# latency. Its artifact must be byte-identical for any worker count.
echo "== E14-VERIFY static gate + determinism check =="
cargo clippy -p ecl-verify --all-targets --offline -- -D warnings
cargo test -q --offline -p ecl-bench --test verify_experiments
ECL_FLEET_WORKERS=1 cargo run -q --offline --release -p ecl-bench --bin exp14_verify >/dev/null
cp results/BENCH_exp14.json results/BENCH_exp14.w1.json
ECL_FLEET_WORKERS=4 cargo run -q --offline --release -p ecl-bench --bin exp14_verify >/dev/null
diff results/BENCH_exp14.w1.json results/BENCH_exp14.json
rm results/BENCH_exp14.w1.json
test -s results/BENCH_exp14.json
test -s results/exp14_verify.txt
cargo test -q --offline -p ecl-verify --lib -- --test-threads=1

# E15-PROFILE: the fleet profiler must attribute >= 95% of worker busy
# time to named phases (asserted internally and recorded in
# BENCH_exp15.json), the fault-axis sweep must hit the schedule cache,
# and — the point of the exercise — the deterministic sweep report must
# stay byte-identical across worker counts with profiling ON (only the
# PROFILE_* / BENCH_* sidecars may carry wall-clock content).
echo "== E15-PROFILE attribution + determinism check =="
ECL_FLEET_WORKERS=1 cargo run -q --offline --release -p ecl-bench --bin exp15_profile >/dev/null
cp results/exp15_profile.txt results/exp15_profile.w1.txt
ECL_FLEET_WORKERS=4 cargo run -q --offline --release -p ecl-bench --bin exp15_profile >/dev/null
diff results/exp15_profile.w1.txt results/exp15_profile.txt
rm results/exp15_profile.w1.txt
grep -q '"attribution_ge_95":true' results/BENCH_exp15.json
test -s results/PROFILE_exp15.json
test -s results/PROFILE_exp15.txt
test -s results/PROFILE_exp15.trace.json
test -s results/exp15_profile.txt

# E16-SCALE: the allocation-free kernel + ideal-run memo must carry a
# 100k-scenario sweep: the deterministic digest report must stay
# byte-identical across worker counts, the sim-kernel hot loop must
# report zero steady-state allocations, and throughput must clear 3x
# the archived PR6 baseline (booleans recorded in BENCH_exp16.json).
echo "== E16-SCALE 100k-scenario throughput + determinism check =="
ECL_FLEET_WORKERS=1 cargo run -q --offline --release -p ecl-bench --bin exp16_scale >/dev/null
cp results/exp16_scale.txt results/exp16_scale.w1.txt
ECL_FLEET_WORKERS=4 cargo run -q --offline --release -p ecl-bench --bin exp16_scale >/dev/null
diff results/exp16_scale.w1.txt results/exp16_scale.txt
rm results/exp16_scale.w1.txt
grep -q '"hot_allocs_zero":true' results/BENCH_exp16.json
grep -q '"throughput_ge_3x":true' results/BENCH_exp16.json
grep -q '"ideal_speedup_ge_3x":true' results/BENCH_exp16.json
test -s results/PROFILE_exp16.json
test -s results/exp16_scale.txt

# E17-SCALE: the scheduled-run memo must carry a 10^6-scenario sweep:
# the deterministic digest report must stay byte-identical across worker
# counts, the memo hit rate must clear 99.9% (quantized axes bound the
# key space to <=96 digests), the hot loop must stay allocation-free,
# and throughput must clear 3x the archived E16 baseline (booleans
# recorded in BENCH_exp17.json).
echo "== E17-SCALE 10^6-scenario scheduled-memo check =="
ECL_FLEET_WORKERS=1 cargo run -q --offline --release -p ecl-bench --bin exp17_scale >/dev/null
cp results/exp17_scale.txt results/exp17_scale.w1.txt
ECL_FLEET_WORKERS=4 cargo run -q --offline --release -p ecl-bench --bin exp17_scale >/dev/null
diff results/exp17_scale.w1.txt results/exp17_scale.txt
rm results/exp17_scale.w1.txt
grep -q '"hot_allocs_zero":true' results/BENCH_exp17.json
grep -q '"throughput_ge_3x":true' results/BENCH_exp17.json
grep -q '"scheduled_hit_rate_ge_999":true' results/BENCH_exp17.json
test -s results/PROFILE_exp17.json
test -s results/exp17_scale.txt

# E18-SERVE: the resident daemon must answer concurrent clients with
# byte-identical reports whether the payload is computed cold, replayed
# from the in-memory response cache, or replayed from results/cache/
# after a full restart — for any pool worker count. The binary asserts
# the phases internally; the gate re-diffs the digest report across
# worker counts and greps the boolean verdicts out of BENCH_exp18.json.
echo "== E18-SERVE daemon cold/warm/restart + determinism check =="
ECL_FLEET_WORKERS=1 cargo run -q --offline --release -p ecl-serve --bin exp18_serve >/dev/null
cp results/exp18_serve.txt results/exp18_serve.w1.txt
ECL_FLEET_WORKERS=4 cargo run -q --offline --release -p ecl-serve --bin exp18_serve >/dev/null
diff results/exp18_serve.w1.txt results/exp18_serve.txt
rm results/exp18_serve.w1.txt
grep -q '"warm_hit_rate_100pct":true' results/BENCH_exp18.json
grep -q '"restart_all_disk":true' results/BENCH_exp18.json
grep -q '"restart_sched_computes_zero":true' results/BENCH_exp18.json
grep -q '"payload_worker_invariant":true' results/BENCH_exp18.json
grep -q '"rate_limit_enforced":true' results/BENCH_exp18.json
test -s results/BENCH_exp18.json
test -s results/exp18_serve.txt
cargo test -q --offline -p ecl-serve --lib -- --test-threads=1

# E19-ENVELOPE: the fault-envelope abstract interpretation must prune a
# 10^6-scenario sweep (pruned > 0) with zero unsound prunes under the
# sampled ground-truth audit (booleans recorded in BENCH_exp19.json),
# and the pruned sweep's deterministic digest report must stay
# byte-identical across worker counts. The VM/co-sim soundness property
# tests run single-threaded alongside.
echo "== E19-ENVELOPE static pruning + soundness audit check =="
ECL_FLEET_WORKERS=1 cargo run -q --offline --release -p ecl-bench --bin exp19_envelope >/dev/null
cp results/exp19_envelope.txt results/exp19_envelope.w1.txt
ECL_FLEET_WORKERS=4 cargo run -q --offline --release -p ecl-bench --bin exp19_envelope >/dev/null
diff results/exp19_envelope.w1.txt results/exp19_envelope.txt
rm results/exp19_envelope.w1.txt
grep -q '"pruned_gt_zero":true' results/BENCH_exp19.json
grep -q '"prune_unsound_zero":true' results/BENCH_exp19.json
test -s results/BENCH_exp19.json
test -s results/exp19_envelope.txt
cargo test -q --offline -p ecl-bench --test envelope_soundness -- --test-threads=1
cargo test -q --offline -p ecl-verify --test registry

echo "All checks passed."
