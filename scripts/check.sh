#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, and the full offline test suite.
#
# Everything runs with --offline against the vendored/shimmed
# dependencies, so the gate works without network access. Run from the
# repository root:
#
#   scripts/check.sh
#
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test (workspace) =="
cargo test --workspace -q --offline

echo "All checks passed."
