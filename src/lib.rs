//! `eclipse-codesign` — a reproduction of *“A methodology for improving
//! software design lifecycle in embedded control systems”* (Ben Gaïd,
//! Kocik, Sorel, Hamouche — DATE 2008) as a Rust workspace.
//!
//! The paper links a hybrid control-design simulator (Scicos) with a
//! system-level distribution/scheduling CAD tool (SynDEx) so that the
//! timing of a distributed implementation — sampling latencies, actuation
//! latencies, conditioning jitter — can be *simulated against the
//! continuous plant* early in the design cycle, and the control law
//! calibrated before any code runs on a target.
//!
//! This facade crate re-exports the workspace layers:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`linalg`] | `ecl-linalg` | dense kernels: LU, `expm`, Lyapunov, Riccati |
//! | [`sim`] | `ecl-sim` | hybrid continuous/discrete-event kernel (Scicos substrate) |
//! | [`blocks`] | `ecl-blocks` | Scicos block vocabulary incl. `Synchronization` (§3.2.3) |
//! | [`control`] | `ecl-control` | plants, discretization, LQR/PID, metrics |
//! | [`aaa`] | `ecl-aaa` | SynDEx substrate: graphs, adequation, schedules, codegen |
//! | [`core`] | `ecl-core` | the methodology: translation, graph of delays, latency, lifecycle |
//! | [`exec`] | `ecl-exec` | concurrent virtual executive, cross-validated against the model |
//! | [`telemetry`] | `ecl-telemetry` | spans, histograms, Chrome-trace/Gantt exporters |
//!
//! # Quickstart
//!
//! ```
//! use eclipse_codesign::control::{c2d_zoh, dlqr, plants};
//! use eclipse_codesign::core::cosim::{self, DisturbanceKind, LoopSpec};
//! use eclipse_codesign::linalg::Mat;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let plant = plants::dc_motor();
//! let dss = c2d_zoh(&plant.sys, plant.ts)?;
//! let lqr = dlqr(&dss, &Mat::identity(2), &Mat::diag(&[0.1]))?;
//! let spec = LoopSpec {
//!     plant: plant.sys.clone(),
//!     n_controls: 1,
//!     x0: vec![1.0, 0.0],
//!     feedback: lqr.k,
//!     input_memory: None,
//!     ts: plant.ts,
//!     horizon: 2.0,
//!     q_weight: 1.0,
//!     r_weight: 0.1,
//!     disturbance: DisturbanceKind::None,
//! };
//! let ideal = cosim::run_ideal(&spec)?;
//! println!("ideal quadratic cost: {:.4}", ideal.cost);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for the full lifecycle (distributed suspension over a
//! CAN-like bus, conditioning jitter, executive generation) and
//! `EXPERIMENTS.md` for the figure/experiment reproductions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ecl_aaa as aaa;
pub use ecl_blocks as blocks;
pub use ecl_control as control;
pub use ecl_core as core;
pub use ecl_exec as exec;
pub use ecl_linalg as linalg;
pub use ecl_sim as sim;
pub use ecl_telemetry as telemetry;
