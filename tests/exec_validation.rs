//! Cross-layer regression: the `ecl-exec` virtual machine must measure
//! exactly the completion instants that `codegen::replay` derives — the
//! concurrent execution (threads + rendezvous channels) and the
//! sequential round-robin replay are two independent executions of the
//! same executives, and every period of the VM run must reproduce the
//! replay's single-period instants after removing the period origin.

use eclipse_codesign::aaa::{
    adequation, codegen, AdequationOptions, AlgorithmGraph, ArchitectureGraph, Schedule, TimeNs,
};
use eclipse_codesign::core::translate::{uniform_timing, ControlLawSpec};
use eclipse_codesign::exec::{self, ExecOptions};

const PERIODS: u32 = 4;

/// Runs the VM for [`PERIODS`] periods and asserts every period's
/// measured instants equal the replay's, op by op and transfer by
/// transfer.
fn assert_vm_matches_replay(
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
    schedule: &Schedule,
    period: TimeNs,
) {
    assert!(
        schedule.makespan() <= period,
        "period must fit the schedule for a nominal comparison"
    );
    let generated = codegen::generate(schedule, alg, arch).expect("generate");
    let replay = codegen::replay(&generated, arch).expect("replay");
    let run = exec::run(
        &generated,
        arch,
        schedule,
        &ExecOptions {
            period,
            periods: PERIODS,
            faults: None,
        },
    )
    .expect("vm run");

    let mut replay_ops: Vec<(usize, usize, i64)> = replay
        .op_end
        .iter()
        .map(|&(op, proc, t)| (op.index(), proc.index(), t.as_nanos()))
        .collect();
    replay_ops.sort_unstable();
    let mut replay_comms: Vec<(usize, usize, i64)> = replay
        .comm_end
        .iter()
        .map(|&(op, medium, t)| (op.index(), medium.index(), t.as_nanos()))
        .collect();
    replay_comms.sort_unstable();

    for k in 0..PERIODS {
        let origin = period * i64::from(k);
        let mut vm_ops: Vec<(usize, usize, i64)> = run
            .ops
            .iter()
            .filter(|r| r.period == k)
            .inspect(|r| assert!(!r.forced, "nominal run must never force a start"))
            .map(|r| (r.op.index(), r.proc.index(), (r.end - origin).as_nanos()))
            .collect();
        vm_ops.sort_unstable();
        assert_eq!(
            vm_ops, replay_ops,
            "period {k}: VM computation instants differ from the replay"
        );
        let mut vm_comms: Vec<(usize, usize, i64)> = run
            .comms
            .iter()
            .filter(|r| r.period == k)
            .map(|r| {
                (
                    r.src_op.index(),
                    r.medium.index(),
                    (r.end - origin).as_nanos(),
                )
            })
            .collect();
        vm_comms.sort_unstable();
        assert_eq!(
            vm_comms, replay_comms,
            "period {k}: VM transfer instants differ from the replay"
        );
        // The replay's makespan is the last activity of each VM period.
        let last = vm_ops
            .iter()
            .map(|&(_, _, t)| t)
            .chain(vm_comms.iter().map(|&(_, _, t)| t))
            .max()
            .expect("non-empty period");
        assert_eq!(last, replay.makespan.as_nanos());
    }
}

/// The E9-style deployment: a monolithic law split across an I/O ECU and
/// a compute ECU over one CAN-like bus.
#[test]
fn vm_reproduces_replay_on_split_io_case() {
    let law = ControlLawSpec::monolithic("law", 2, 1);
    let (alg, io) = law.to_algorithm().expect("translate");
    let mut arch = ArchitectureGraph::new();
    let io_proc = arch.add_processor("io_ecu", "arm");
    let compute_proc = arch.add_processor("control_ecu", "arm");
    arch.add_bus(
        "can",
        &[io_proc, compute_proc],
        TimeNs::from_micros(200),
        TimeNs::from_micros(10),
    )
    .expect("bus");
    let mut db = uniform_timing(&alg, &io, TimeNs::from_micros(50), TimeNs::from_micros(500));
    for &s in io.sensors.iter().chain(&io.actuators) {
        db.forbid(s, compute_proc);
    }
    for &f in &io.stages {
        db.forbid(f, io_proc);
    }
    let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).expect("adequation");
    assert_vm_matches_replay(&alg, &arch, &schedule, TimeNs::from_millis(5));
}

/// The E10 quarter-car deployment: the filtered suspension law on three
/// ECUs sharing a CAN bus, with I/O pinned by interdictions.
#[test]
fn vm_reproduces_replay_on_quarter_car_case() {
    let law = ControlLawSpec::filtered("susp", 4, 1).with_data_units(8);
    let (alg, io) = law.to_algorithm().expect("translate");
    let mut arch = ArchitectureGraph::new();
    let wheel_ecu = arch.add_processor("wheel_ecu", "cortex-m");
    let body_ecu = arch.add_processor("body_ecu", "cortex-m");
    let control_ecu = arch.add_processor("control_ecu", "cortex-a");
    arch.add_bus(
        "can",
        &[wheel_ecu, body_ecu, control_ecu],
        TimeNs::from_micros(120),
        TimeNs::from_micros(8),
    )
    .expect("bus");
    let mut db = uniform_timing(&alg, &io, TimeNs::from_micros(80), TimeNs::from_micros(600));
    for &s in &[io.sensors[0], io.sensors[2], io.sensors[3]] {
        db.forbid(s, body_ecu);
        db.forbid(s, control_ecu);
    }
    db.forbid(io.sensors[1], wheel_ecu);
    db.forbid(io.sensors[1], control_ecu);
    let step = *io.stages.last().expect("law has stages");
    db.forbid(step, wheel_ecu);
    db.forbid(step, body_ecu);
    db.forbid(io.actuators[0], body_ecu);
    db.forbid(io.actuators[0], control_ecu);
    let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).expect("adequation");
    assert_vm_matches_replay(&alg, &arch, &schedule, TimeNs::from_millis(5));
}
