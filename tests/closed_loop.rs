//! Cross-crate integration tests: the full methodology pipeline on the
//! benchmark plants.

use eclipse_codesign::aaa::{adequation, AdequationOptions, ArchitectureGraph, ProcId, TimeNs};
use eclipse_codesign::control::{c2d_zoh, dlqr, plants};
use eclipse_codesign::core::cosim::{self, DisturbanceKind, LoopSpec};
use eclipse_codesign::core::lifecycle::{self, LifecycleInputs};
use eclipse_codesign::core::translate::{uniform_timing, ControlLawSpec};
use eclipse_codesign::linalg::Mat;

fn us(v: i64) -> TimeNs {
    TimeNs::from_micros(v)
}

/// Builds a 2-ECU bus architecture with I/O pinned on `ecu0` and compute
/// pinned on `ecu1`.
fn split_target(
    law: &ControlLawSpec,
    bus_latency: TimeNs,
    compute_wcet: TimeNs,
) -> (
    eclipse_codesign::aaa::AlgorithmGraph,
    eclipse_codesign::core::translate::IoMap,
    ArchitectureGraph,
    eclipse_codesign::aaa::TimingDb,
    (ProcId, ProcId),
) {
    let (alg, io) = law.to_algorithm().expect("valid law");
    let mut arch = ArchitectureGraph::new();
    let p0 = arch.add_processor("ecu0", "arm");
    let p1 = arch.add_processor("ecu1", "arm");
    arch.add_bus("can", &[p0, p1], bus_latency, us(10))
        .expect("valid bus");
    let mut db = uniform_timing(&alg, &io, us(200), compute_wcet);
    for &s in io.sensors.iter().chain(&io.actuators) {
        db.forbid(s, p1);
    }
    for &f in &io.stages {
        db.forbid(f, p0);
    }
    (alg, io, arch, db, (p0, p1))
}

fn dc_motor_loop(aggressive: bool) -> LoopSpec {
    let plant = plants::dc_motor();
    let dss = c2d_zoh(&plant.sys, plant.ts).expect("discretizable");
    let (q, r) = if aggressive {
        (Mat::diag(&[10.0, 1.0]), Mat::diag(&[1e-3]))
    } else {
        (Mat::identity(2), Mat::diag(&[0.1]))
    };
    let lqr = dlqr(&dss, &q, &r).expect("stabilizable");
    LoopSpec {
        plant: plant.sys,
        n_controls: 1,
        x0: vec![1.0, 0.0],
        feedback: lqr.k,
        input_memory: None,
        ts: plant.ts,
        horizon: 1.5,
        q_weight: 1.0,
        r_weight: 1e-3,
        disturbance: DisturbanceKind::None,
    }
}

#[test]
fn cost_increases_monotonically_with_bus_latency() {
    let spec = dc_motor_loop(true);
    let law = ControlLawSpec::monolithic("lqr", 2, 1);
    let mut costs = Vec::new();
    for bus_ms in [1, 5, 10] {
        let (alg, io, arch, db, _) =
            split_target(&law, TimeNs::from_millis(bus_ms), TimeNs::from_millis(10));
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).expect("ok");
        let r = cosim::run_scheduled(&spec, &alg, &io, &schedule, &arch).expect("cosim ok");
        costs.push(r.cost);
    }
    assert!(
        costs[0] < costs[1] && costs[1] < costs[2],
        "costs should increase with latency: {costs:?}"
    );
}

#[test]
fn ideal_is_cheaper_than_any_implementation() {
    let spec = dc_motor_loop(true);
    let ideal = cosim::run_ideal(&spec).expect("ideal ok");
    let law = ControlLawSpec::monolithic("lqr", 2, 1);
    let (alg, io, arch, db, _) =
        split_target(&law, TimeNs::from_millis(5), TimeNs::from_millis(10));
    let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).expect("ok");
    let implemented = cosim::run_scheduled(&spec, &alg, &io, &schedule, &arch).expect("ok");
    assert!(ideal.cost < implemented.cost);
}

#[test]
fn latency_report_matches_schedule_instants() {
    // The co-simulated sampling/actuation latencies must equal the
    // schedule's sensor/actuator completion instants (deterministic,
    // unconditioned law).
    let spec = dc_motor_loop(false);
    let law = ControlLawSpec::monolithic("lqr", 2, 1);
    let (alg, io, arch, db, _) = split_target(&law, TimeNs::from_millis(2), TimeNs::from_millis(5));
    let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).expect("ok");
    let r = cosim::run_scheduled(&spec, &alg, &io, &schedule, &arch).expect("ok");
    let report = r.latency_report().expect("aligned");
    for (j, &s_op) in io.sensors.iter().enumerate() {
        let end = schedule.slot(s_op).expect("scheduled").end;
        let stats = report.sampling[j].stats().expect("non-empty");
        assert_eq!(stats.min, end, "Ls[{j}]");
        assert_eq!(stats.max, end, "Ls[{j}]");
    }
    for (j, &a_op) in io.actuators.iter().enumerate() {
        let end = schedule.slot(a_op).expect("scheduled").end;
        let stats = report.actuation[j].stats().expect("non-empty");
        assert_eq!(stats.min, end, "La[{j}]");
        assert_eq!(stats.jitter, TimeNs::ZERO);
    }
}

#[test]
fn lifecycle_on_pendulum_survives_instability() {
    // The inverted pendulum is open-loop unstable: the loop must still be
    // stabilized by the nominal design under moderate latency.
    let plant = plants::inverted_pendulum();
    let law = ControlLawSpec::monolithic("pend", 4, 1);
    let (alg, io) = law.to_algorithm().expect("ok");
    let mut arch = ArchitectureGraph::new();
    let p0 = arch.add_processor("ecu0", "arm");
    let _p1 = arch.add_processor("ecu1", "arm");
    let p1 = _p1;
    arch.add_bus("can", &[p0, p1], us(100), us(2)).expect("ok");
    let mut db = uniform_timing(&alg, &io, us(50), us(500));
    for &s in io.sensors.iter().chain(&io.actuators) {
        db.forbid(s, p1);
    }
    db.forbid(io.stages[0], p0);
    let inputs = LifecycleInputs {
        plant: plant.sys.clone(),
        n_controls: 1,
        x0: vec![0.0, 0.0, 0.1, 0.0], // 0.1 rad initial tilt
        ts: plant.ts,
        horizon: 3.0,
        lqr_q: Mat::diag(&[1.0, 1.0, 10.0, 1.0]),
        lqr_r: Mat::diag(&[0.1]),
        q_weight: 1.0,
        r_weight: 0.01,
        law,
        arch,
        db,
        adequation: AdequationOptions::default(),
        disturbance: DisturbanceKind::None,
    };
    let rep = lifecycle::run(&inputs).expect("lifecycle ok");
    // Stabilized: the angle returns near zero at the horizon in all runs.
    for r in [&rep.ideal, &rep.implemented, &rep.calibrated] {
        let theta = r.result.signal("x2").expect("probed");
        assert!(
            theta.last().expect("non-empty").1.abs() < 0.02,
            "pendulum angle did not settle: {}",
            theta.last().expect("non-empty").1
        );
    }
    assert!(rep.deadlock_free);
}

#[test]
fn calibration_never_hurts_on_heavy_latency() {
    let plant = plants::dc_motor();
    let law = ControlLawSpec::monolithic("lqr", 2, 1);
    let (alg, io, arch, db, _) =
        split_target(&law, TimeNs::from_millis(8), TimeNs::from_millis(18));
    let _ = (alg, io);
    let inputs = LifecycleInputs {
        plant: plant.sys.clone(),
        n_controls: 1,
        x0: vec![1.0, 0.0],
        ts: plant.ts,
        horizon: 1.5,
        lqr_q: Mat::diag(&[10.0, 1.0]),
        lqr_r: Mat::diag(&[1e-3]),
        q_weight: 1.0,
        r_weight: 1e-3,
        law,
        arch,
        db,
        adequation: AdequationOptions::default(),
        disturbance: DisturbanceKind::None,
    };
    let rep = lifecycle::run(&inputs).expect("lifecycle ok");
    assert!(
        rep.calibrated.cost <= rep.implemented.cost * 1.001,
        "calibrated {} vs implemented {}",
        rep.calibrated.cost,
        rep.implemented.cost
    );
}

#[test]
fn noise_rejection_reproducible_across_runs() {
    // Seeded disturbances make whole co-simulations bit-reproducible.
    let plant = plants::quarter_car();
    let dss = c2d_zoh(&plant.sys, plant.ts).expect("ok");
    // Control channel only for synthesis.
    let b1 = plant.sys.b().block(0, 0, 4, 1).expect("ok");
    let ctrl_sys = eclipse_codesign::control::StateSpace::new(
        plant.sys.a().clone(),
        b1,
        plant.sys.c().clone(),
        Mat::zeros(2, 1),
    )
    .expect("ok");
    let dss1 = c2d_zoh(&ctrl_sys, plant.ts).expect("ok");
    let _ = dss;
    let lqr = dlqr(&dss1, &Mat::identity(4), &Mat::diag(&[1e-5])).expect("ok");
    let spec = LoopSpec {
        plant: plant.sys,
        n_controls: 1,
        x0: vec![0.0; 4],
        feedback: lqr.k,
        input_memory: None,
        ts: plant.ts,
        horizon: 0.3,
        q_weight: 1.0,
        r_weight: 1e-9,
        disturbance: DisturbanceKind::Noise {
            std_dev: 0.1,
            seed: 77,
        },
    };
    let a = cosim::run_ideal(&spec).expect("ok");
    let b = cosim::run_ideal(&spec).expect("ok");
    assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "bit-reproducible");
    assert!(a.cost > 0.0);
}
