//! End-to-end observability checks: two identical co-simulations record
//! byte-identical telemetry streams and engine counters, the Chrome
//! trace export is valid JSON with per-track monotonic timestamps, and
//! the Gantt exporters cover every scheduled operation and
//! communication.

use eclipse_codesign::aaa::{
    adequation, timeline, AdequationOptions, ArchitectureGraph, Schedule, TimeNs,
};
use eclipse_codesign::control::{c2d_zoh, dlqr, plants};
use eclipse_codesign::core::cosim::{self, DisturbanceKind, LoopResult, LoopSpec};
use eclipse_codesign::core::translate::{uniform_timing, ControlLawSpec, IoMap};
use eclipse_codesign::linalg::Mat;
use eclipse_codesign::telemetry::{json, trace, Collector, Event, RecordingSink};

/// DC motor split over two ECUs and a CAN-like bus, with Gaussian road
/// noise so the continuous side is non-trivial.
fn fixture() -> (
    LoopSpec,
    eclipse_codesign::aaa::AlgorithmGraph,
    IoMap,
    Schedule,
    ArchitectureGraph,
) {
    let plant = plants::dc_motor();
    let dss = c2d_zoh(&plant.sys, plant.ts).unwrap();
    let lqr = dlqr(&dss, &Mat::identity(2), &Mat::diag(&[0.1])).unwrap();
    let spec = LoopSpec {
        plant: plant.sys,
        n_controls: 1,
        x0: vec![1.0, 0.0],
        feedback: lqr.k,
        input_memory: None,
        ts: plant.ts,
        horizon: 1.0,
        q_weight: 1.0,
        r_weight: 0.1,
        disturbance: DisturbanceKind::None,
    };
    let law = ControlLawSpec::monolithic("lqr", 2, 1);
    let (alg, io) = law.to_algorithm().unwrap();
    let mut arch = ArchitectureGraph::new();
    let p0 = arch.add_processor("ecu0", "arm");
    let p1 = arch.add_processor("ecu1", "arm");
    arch.add_bus(
        "can",
        &[p0, p1],
        TimeNs::from_millis(2),
        TimeNs::from_micros(10),
    )
    .unwrap();
    let mut db = uniform_timing(&alg, &io, TimeNs::from_micros(200), TimeNs::from_millis(5));
    for &s in io.sensors.iter().chain(&io.actuators) {
        db.forbid(s, p1);
    }
    db.forbid(io.stages[0], p0);
    let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
    schedule.validate(&alg, &arch).unwrap();
    (spec, alg, io, schedule, arch)
}

fn traced_run() -> (LoopResult, RecordingSink) {
    let (spec, alg, io, schedule, arch) = fixture();
    let mut tel = Collector::new(RecordingSink::default());
    let run = cosim::run_scheduled_traced(&spec, &alg, &io, &schedule, &arch, &mut tel).unwrap();
    (run, tel.into_sink())
}

#[test]
fn identical_runs_record_identical_streams_and_stats() {
    let (r1, s1) = traced_run();
    let (r2, s2) = traced_run();
    // Byte-identical event streams: every recorded event carries
    // simulated time only.
    assert!(!s1.events().is_empty());
    assert_eq!(s1.render(), s2.render());
    // Byte-identical hot-loop counters.
    assert_eq!(r1.stats, r2.stats);
    assert_eq!(r1.stats.events_delivered, r2.stats.events_delivered);
    assert_eq!(r1.activity, r2.activity);
    // And identical numerical outcomes, for good measure.
    assert_eq!(r1.cost.to_bits(), r2.cost.to_bits());
}

#[test]
fn chrome_trace_is_valid_json_with_monotonic_tracks() {
    let (_, sink) = traced_run();
    let text = trace::chrome_trace(sink.events());
    let doc = json::parse(&text).expect("chrome trace must parse as JSON");
    let events = doc.as_array().expect("trace is a JSON array");
    assert!(!events.is_empty());

    // Timestamps are monotone non-decreasing within each (pid, tid)
    // track, which is what chrome://tracing / Perfetto require for a
    // well-formed timeline.
    let mut last_ts: std::collections::HashMap<(i64, i64), f64> = std::collections::HashMap::new();
    let mut real_events = 0;
    for ev in events {
        let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph field");
        if ph == "M" {
            continue; // metadata carries no timestamp ordering contract
        }
        real_events += 1;
        let pid = ev.get("pid").and_then(|v| v.as_f64()).unwrap_or(0.0) as i64;
        let tid = ev.get("tid").and_then(|v| v.as_f64()).expect("tid") as i64;
        let ts = ev.get("ts").and_then(|v| v.as_f64()).expect("ts");
        if let Some(&prev) = last_ts.get(&(pid, tid)) {
            assert!(
                ts >= prev,
                "timestamps regress on tid {tid}: {prev} -> {ts}"
            );
        }
        last_ts.insert((pid, tid), ts);
    }
    assert_eq!(real_events, sink.events().len());
}

#[test]
fn gantt_covers_every_op_and_comm() {
    let (_, alg, _, schedule, arch) = fixture();
    let csv = timeline::gantt_csv(&schedule, &alg, &arch);
    let rows: Vec<&str> = csv.lines().skip(1).collect();
    assert_eq!(rows.len(), schedule.ops().len() + schedule.comms().len());
    // Every operation name appears in some row.
    for op in alg.ops() {
        let name = alg.name(op);
        assert!(
            rows.iter().any(|r| r.contains(name)),
            "operation {name} missing from Gantt CSV"
        );
    }
    // Text Gantt lists the same slots.
    let text = timeline::gantt_text(&schedule, &alg, &arch);
    for op in alg.ops() {
        assert!(text.contains(alg.name(op)));
    }
    assert!(text.contains("proc:ecu0") && text.contains("bus:can"));
}

#[test]
fn histogram_percentiles_agree_with_exact_latency_stats() {
    let (run, _) = traced_run();
    let report = run.latency_report().unwrap();
    for (series, hist) in report
        .sampling
        .iter()
        .zip(&run.sampling_hist)
        .chain(report.actuation.iter().zip(&run.actuation_hist))
    {
        let st = series.stats().unwrap();
        let sm = hist.summary();
        assert_eq!(sm.count, series.len() as u64);
        assert_eq!(sm.min_ns, st.min.as_nanos());
        assert_eq!(sm.max_ns, st.max.as_nanos());
        // Percentiles live inside the exact envelope and are ordered.
        assert!(sm.min_ns <= sm.p50_ns && sm.p50_ns <= sm.p95_ns);
        assert!(sm.p95_ns <= sm.p99_ns && sm.p99_ns <= sm.max_ns);
        assert!((sm.mean_ns - st.mean.as_nanos() as f64).abs() <= 1.0);
    }
}

#[test]
fn counter_events_match_latency_observations() {
    let (run, sink) = traced_run();
    let counters: Vec<(&str, i64, i64)> = sink
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Counter {
                track,
                at_ns,
                value_ns,
                ..
            } => Some((track.as_str(), *at_ns, *value_ns)),
            _ => None,
        })
        .collect();
    let period = TimeNs::from_secs_f64(run.ts);
    // Each Ls[j]/La[j] sample equals activation instant minus the period
    // origin it belongs to.
    for (j, series) in run.sample_instants.iter().enumerate() {
        let track = format!("Ls[{j}]");
        let mine: Vec<_> = counters.iter().filter(|(t, _, _)| *t == track).collect();
        assert_eq!(mine.len(), series.len());
        for (k, (&t, &&(_, at, val))) in series.iter().zip(&mine).enumerate() {
            assert_eq!(at, t.as_nanos());
            assert_eq!(val, (t - period * k as i64).as_nanos());
        }
    }
}
