//! Property-based tests over the core invariants, spanning crates.

use eclipse_codesign::aaa::codegen;
use eclipse_codesign::aaa::{
    adequation, AdequationOptions, AlgorithmGraph, ArchitectureGraph, MappingPolicy, OpId, TimeNs,
    TimingDb,
};
use eclipse_codesign::blocks::{Constant, Scope};
use eclipse_codesign::control::{c2d_zoh, StateSpace};
use eclipse_codesign::core::delays::{self, DelayGraphConfig};
use eclipse_codesign::linalg::{expm, lu, Mat};
use eclipse_codesign::sim::{Model, SimOptions, Simulator};
use proptest::prelude::*;

/// Strategy: a random layered DAG with `n` operations.
fn random_algorithm(
    max_ops: usize,
) -> impl Strategy<Value = (AlgorithmGraph, Vec<(usize, usize)>)> {
    (2..max_ops)
        .prop_flat_map(|n| {
            let edges = proptest::collection::vec((0..n, 0..n), 0..3 * n);
            (Just(n), edges)
        })
        .prop_map(|(n, raw_edges)| {
            let mut alg = AlgorithmGraph::new();
            let ids: Vec<OpId> = (0..n)
                .map(|i| match i % 5 {
                    0 => alg.add_sensor(format!("s{i}")),
                    4 => alg.add_actuator(format!("a{i}")),
                    _ => alg.add_function(format!("f{i}")),
                })
                .collect();
            let mut kept = Vec::new();
            for (a, b) in raw_edges {
                // Orient edges forward to guarantee a DAG; skip dups/loops.
                let (lo, hi) = (a.min(b), a.max(b));
                if lo == hi {
                    continue;
                }
                if alg.add_edge(ids[lo], ids[hi], 1 + (lo as u32 % 4)).is_ok() {
                    kept.push((lo, hi));
                }
            }
            (alg, kept)
        })
}

fn arch_with(n_procs: usize, latency_us: i64) -> ArchitectureGraph {
    let mut arch = ArchitectureGraph::new();
    let ps: Vec<_> = (0..n_procs)
        .map(|i| arch.add_processor(format!("p{i}"), "arm"))
        .collect();
    if n_procs > 1 {
        arch.add_bus(
            "bus",
            &ps,
            TimeNs::from_micros(latency_us),
            TimeNs::from_micros(1),
        )
        .expect("valid bus");
    }
    arch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any adequation result passes full structural validation, for every
    /// policy and any processor count.
    #[test]
    fn adequation_always_produces_valid_schedules(
        (alg, _) in random_algorithm(14),
        n_procs in 1usize..4,
        latency in 0i64..500,
        wcet in 10i64..1000,
        policy in prop_oneof![
            Just(MappingPolicy::SchedulePressure),
            Just(MappingPolicy::EarliestFinish),
            (0u64..1000).prop_map(|seed| MappingPolicy::Random { seed }),
        ],
    ) {
        let arch = arch_with(n_procs, latency);
        let mut db = TimingDb::new();
        for op in alg.ops() {
            db.set_default(op, TimeNs::from_micros(wcet));
        }
        let schedule = adequation(&alg, &arch, &db, AdequationOptions { policy })
            .expect("uniform WCETs always schedulable");
        schedule.validate(&alg, &arch).expect("structurally valid");
        // Makespan at least the critical path lower bound: longest chain
        // times the WCET.
        prop_assert!(schedule.makespan() >= TimeNs::from_micros(wcet));
        // And no longer than fully sequential plus all communications.
        let sequential = TimeNs::from_micros(wcet) * alg.len() as i64;
        let comm_total: TimeNs = schedule.comms().iter().map(|c| c.end - c.start).sum();
        prop_assert!(schedule.makespan() <= sequential + comm_total);
    }

    /// Generated executives never deadlock.
    #[test]
    fn generated_executives_deadlock_free(
        (alg, _) in random_algorithm(12),
        n_procs in 1usize..4,
    ) {
        let arch = arch_with(n_procs, 50);
        let mut db = TimingDb::new();
        for op in alg.ops() {
            db.set_default(op, TimeNs::from_micros(100));
        }
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default())
            .expect("schedulable");
        let generated = codegen::generate(&schedule, &alg, &arch).expect("generated");
        prop_assert!(codegen::check_deadlock_free(&generated.executives).is_free());
        // And the timed replay of the generated code re-derives the
        // schedule's completion instants exactly.
        let replayed = codegen::replay(&generated, &arch).expect("replay ok");
        for (op, proc, end) in &replayed.op_end {
            let slot = schedule.slot(*op).expect("scheduled");
            prop_assert_eq!(slot.proc, *proc);
            prop_assert_eq!(slot.end, *end, "op {}", op);
        }
        prop_assert_eq!(replayed.makespan, schedule.makespan());
    }

    /// exp(A)·exp(−A) = I for random well-scaled matrices.
    #[test]
    fn expm_inverse_identity(entries in proptest::collection::vec(-2.0f64..2.0, 9)) {
        let a = Mat::from_vec(3, 3, entries).expect("9 entries");
        let e = expm(&a).expect("finite");
        let einv = expm(&a.scaled(-1.0)).expect("finite");
        let prod = e.matmul(&einv).expect("conformable");
        prop_assert!(prod.approx_eq(&Mat::identity(3), 1e-6), "{prod:?}");
    }

    /// LU solve yields residuals at machine-precision scale for
    /// diagonally dominant systems.
    #[test]
    fn lu_solve_small_residual(
        entries in proptest::collection::vec(-1.0f64..1.0, 16),
        rhs in proptest::collection::vec(-10.0f64..10.0, 4),
    ) {
        let mut a = Mat::from_vec(4, 4, entries).expect("16 entries");
        for i in 0..4 {
            a[(i, i)] += 8.0; // diagonal dominance => well-conditioned
        }
        let x = lu::solve(&a, &rhs).expect("nonsingular");
        let back = a.matvec(&x).expect("conformable");
        for (b, r) in back.iter().zip(&rhs) {
            prop_assert!((b - r).abs() < 1e-9, "residual {}", (b - r).abs());
        }
    }

    /// ZOH discretization of a stable diagonal system preserves stability
    /// and matches the scalar closed form on the diagonal.
    #[test]
    fn zoh_matches_scalar_closed_form(
        poles in proptest::collection::vec(-5.0f64..-0.1, 3),
        ts in 0.001f64..0.5,
    ) {
        let sys = StateSpace::new(
            Mat::diag(&poles),
            Mat::from_vec(3, 1, vec![1.0, 1.0, 1.0]).expect("ok"),
            Mat::from_vec(1, 3, vec![1.0, 0.0, 0.0]).expect("ok"),
            Mat::zeros(1, 1),
        ).expect("consistent");
        let d = c2d_zoh(&sys, ts).expect("ok");
        for (i, &p) in poles.iter().enumerate() {
            let ad = d.a()[(i, i)];
            prop_assert!((ad - (p * ts).exp()).abs() < 1e-9);
            prop_assert!(ad.abs() < 1.0, "stability preserved");
            let bd = d.b()[(i, 0)];
            let expect = ((p * ts).exp() - 1.0) / p;
            prop_assert!((bd - expect).abs() < 1e-9);
        }
    }

    /// `.sdx` round-trip: any project renders to text and parses back to
    /// a project that schedules identically.
    #[test]
    fn sdx_roundtrip_preserves_schedules(
        (alg, _) in random_algorithm(12),
        n_procs in 1usize..4,
        wcet in 10i64..1000,
    ) {
        use eclipse_codesign::aaa::sdx::{from_sdx, to_sdx, Project};
        let arch = arch_with(n_procs, 25);
        let mut db = TimingDb::new();
        for op in alg.ops() {
            db.set_default(op, TimeNs::from_micros(wcet));
        }
        let project = Project {
            algorithm: alg,
            architecture: arch,
            timing: db,
        };
        let parsed = from_sdx(&to_sdx(&project)).expect("round-trip parses");
        let a = adequation(
            &project.algorithm,
            &project.architecture,
            &project.timing,
            AdequationOptions::default(),
        )
        .expect("original schedulable");
        let b = adequation(
            &parsed.algorithm,
            &parsed.architecture,
            &parsed.timing,
            AdequationOptions::default(),
        )
        .expect("parsed schedulable");
        prop_assert_eq!(a.ops(), b.ops());
        prop_assert_eq!(a.comms(), b.comms());
    }

    /// **The headline fidelity property**: for any (unconditioned)
    /// algorithm graph and any target, the graph of delays reproduces the
    /// static schedule's completion instants *exactly* (integer-ns), for
    /// every operation, over several periods.
    #[test]
    fn delay_graph_reproduces_any_schedule(
        (alg, _) in random_algorithm(10),
        n_procs in 1usize..4,
        latency in 0i64..300,
        wcet in 20i64..500,
    ) {
        let arch = arch_with(n_procs, latency);
        let mut db = TimingDb::new();
        for op in alg.ops() {
            db.set_default(op, TimeNs::from_micros(wcet));
        }
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default())
            .expect("schedulable");
        // Period: makespan plus slack.
        let period = schedule.makespan() + TimeNs::from_micros(100);
        let mut model = Model::new();
        let dg = delays::build(
            &mut model,
            &alg,
            &arch,
            &schedule,
            period,
            DelayGraphConfig::default(),
        )
        .expect("delay graph built");
        let c = model.add_block("c", Constant::new(0.0));
        let mut scopes = Vec::new();
        for op in alg.ops() {
            let sc = model.add_block(format!("sc{}", op.index()), Scope::new());
            model.connect(c, 0, sc, 0).expect("wired");
            dg.activate_on_completion(&mut model, op, sc, 0).expect("wired");
            scopes.push((op, sc));
        }
        let periods = 3i64;
        let mut sim = Simulator::new(model, SimOptions::default()).expect("valid model");
        let r = sim
            .run(period * periods - TimeNs::from_nanos(1))
            .expect("simulates");
        for (op, sc) in scopes {
            let end = schedule.slot(op).expect("scheduled").end;
            let observed = r.activation_times(sc, Some(0));
            prop_assert_eq!(observed.len() as i64, periods, "op {}", op);
            for (k, &t) in observed.iter().enumerate() {
                prop_assert_eq!(t, end + period * k as i64, "op {} period {}", op, k);
            }
        }
    }

    /// The schedule's per-processor sequences are gap-consistent: an
    /// operation never starts before the previous one ends, and I/O
    /// instants are within the makespan.
    #[test]
    fn schedule_sequences_are_ordered(
        (alg, _) in random_algorithm(10),
        n_procs in 1usize..3,
    ) {
        let arch = arch_with(n_procs, 20);
        let mut db = TimingDb::new();
        for op in alg.ops() {
            db.set_default(op, TimeNs::from_micros(50));
        }
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default())
            .expect("schedulable");
        for p in arch.processors() {
            let seq = schedule.proc_sequence(p);
            for w in seq.windows(2) {
                prop_assert!(w[0].end <= w[1].start);
            }
        }
        for (_, t) in schedule
            .sensor_instants(&alg)
            .into_iter()
            .chain(schedule.actuator_instants(&alg))
        {
            prop_assert!(t <= schedule.makespan());
        }
    }
}
