//! Executable reproductions of the paper's figures as assertions
//! (the quantitative versions live in `crates/bench/src/bin`).

use eclipse_codesign::aaa::{
    adequation, AdequationOptions, AlgorithmGraph, ArchitectureGraph, TimeNs, TimingDb,
};
use eclipse_codesign::blocks::{
    add_clock, Constant, EventDelay, SampleHold, Scope, Synchronization,
};
use eclipse_codesign::core::delays::{self, ConditionSource, DelayGraphConfig};
use eclipse_codesign::sim::{Model, SimOptions, Simulator};

fn us(v: i64) -> TimeNs {
    TimeNs::from_micros(v)
}

/// Fig. 2 — plant/controller interconnection under the stroboscopic
/// model: sampling and actuation happen at the same instant, every period.
#[test]
fn fig2_stroboscopic_model_samples_and_actuates_together() {
    let mut m = Model::new();
    let clk = add_clock(&mut m, "clk", TimeNs::from_millis(10), TimeNs::ZERO).expect("ok");
    let src = m.add_block("src", Constant::new(1.0));
    let sample = m.add_block("sample", SampleHold::new(0.0));
    let hold = m.add_block("hold", SampleHold::new(0.0));
    m.connect(src, 0, sample, 0).expect("ok");
    m.connect(sample, 0, hold, 0).expect("ok");
    m.connect_event(clk, 0, sample, 0).expect("ok");
    m.connect_event(clk, 0, hold, 0).expect("ok");
    let mut sim = Simulator::new(m, SimOptions::default()).expect("ok");
    let r = sim.run(TimeNs::from_millis(50)).expect("ok");
    let s_times = r.activation_times(sample, Some(0));
    let h_times = r.activation_times(hold, Some(0));
    assert_eq!(s_times, h_times, "stroboscopic: same instants");
    assert_eq!(s_times.len(), 6);
    assert!(s_times
        .iter()
        .enumerate()
        .all(|(k, &t)| t == TimeNs::from_millis(10) * k as i64));
}

/// Fig. 4 — sequencing: a chain of Event Delay blocks reproduces the
/// SynDEx schedule's start/completion instants (F1: 5 ms, F2: 3 ms,
/// F3: 2 ms).
#[test]
fn fig4_sequencing_translation() {
    let mut m = Model::new();
    let clk = add_clock(&mut m, "clk", TimeNs::from_millis(100), TimeNs::ZERO).expect("ok");
    let f1 = m.add_block("F1", EventDelay::new(TimeNs::from_millis(5)).expect("ok"));
    let f2 = m.add_block("F2", EventDelay::new(TimeNs::from_millis(3)).expect("ok"));
    let f3 = m.add_block("F3", EventDelay::new(TimeNs::from_millis(2)).expect("ok"));
    m.connect_event(clk, 0, f1, 0).expect("ok");
    m.connect_event(f1, 0, f2, 0).expect("ok");
    m.connect_event(f2, 0, f3, 0).expect("ok");
    let probe = m.add_block("probe", Synchronization::new(1).expect("ok"));
    m.connect_event(f3, 0, probe, 0).expect("ok");
    let mut sim = Simulator::new(m, SimOptions::default()).expect("ok");
    let r = sim.run(TimeNs::from_millis(100)).expect("ok");
    // F2 completes at 8 ms (delivered to F3), F3 completes at 10 ms.
    assert_eq!(
        r.activation_times(f3, Some(0)),
        vec![TimeNs::from_millis(8)]
    );
    assert_eq!(
        r.activation_times(probe, Some(0)),
        vec![TimeNs::from_millis(10)]
    );
}

/// Fig. 5 — conditioning: the Event Select routes each period's activation
/// through the branch chosen by the condition mapping, and the branch
/// durations differ.
#[test]
fn fig5_conditioning_translation() {
    let mut alg = AlgorithmGraph::new();
    let cond = alg.add_function("cond");
    let br0 = alg.add_function("then");
    let br1 = alg.add_function("else");
    alg.set_condition(br0, cond, 0).expect("ok");
    alg.set_condition(br1, cond, 1).expect("ok");
    let sink = alg.add_function("sink");
    alg.add_edge(br0, sink, 1).expect("ok");
    alg.add_edge(br1, sink, 1).expect("ok");
    let mut arch = ArchitectureGraph::new();
    arch.add_processor("p0", "arm");
    let mut db = TimingDb::new();
    db.set_default(cond, us(100));
    db.set_default(br0, us(500));
    db.set_default(br1, us(2500));
    db.set_default(sink, us(100));
    let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).expect("ok");

    // Condition flips with a square signal: first period branch 0, later
    // periods branch 1 (step at 4 ms with period 10 ms).
    let mut model = Model::new();
    let step = model.add_block("step", eclipse_codesign::blocks::Step::new(0.004, 0.0, 1.0));
    let mut cfg = DelayGraphConfig::default();
    cfg.condition_sources.insert(
        cond,
        ConditionSource {
            block: step,
            output: 0,
            mapping: Box::new(|v| v as usize),
        },
    );
    let dg = delays::build(
        &mut model,
        &alg,
        &arch,
        &schedule,
        TimeNs::from_millis(10),
        cfg,
    )
    .expect("ok");
    let c = model.add_block("c", Constant::new(0.0));
    let sc = model.add_block("sc", Scope::new());
    model.connect(c, 0, sc, 0).expect("ok");
    dg.activate_on_completion(&mut model, sink, sc, 0)
        .expect("ok");
    let mut sim = Simulator::new(model, SimOptions::default()).expect("ok");
    let r = sim.run(TimeNs::from_millis(25)).expect("ok");
    let t = r.activation_times(sc, Some(0));
    // Period 0 (cond = 0, then-branch): 100 + 500 + 100 us = 700 us.
    // Periods 1, 2 (cond = 1, else-branch): 100 + 2500 + 100 us = 2.7 ms.
    assert_eq!(
        t,
        vec![
            us(700),
            TimeNs::from_millis(10) + us(2700),
            TimeNs::from_millis(20) + us(2700)
        ]
    );
}

/// §3.2.3 — the Synchronization block fires at the last of its inputs and
/// resets, period after period.
#[test]
fn synchronization_block_rendezvous() {
    let mut m = Model::new();
    let clk = add_clock(&mut m, "clk", TimeNs::from_millis(10), TimeNs::ZERO).expect("ok");
    let fast = m.add_block("fast", EventDelay::new(us(500)).expect("ok"));
    let slow = m.add_block("slow", EventDelay::new(us(4500)).expect("ok"));
    m.connect_event(clk, 0, fast, 0).expect("ok");
    m.connect_event(clk, 0, slow, 0).expect("ok");
    let sync = m.add_block("sync", Synchronization::new(2).expect("ok"));
    m.connect_event(fast, 0, sync, 0).expect("ok");
    m.connect_event(slow, 0, sync, 1).expect("ok");
    let probe = m.add_block("probe", Synchronization::new(1).expect("ok"));
    m.connect_event(sync, 0, probe, 0).expect("ok");
    let mut sim = Simulator::new(m, SimOptions::default()).expect("ok");
    let r = sim.run(TimeNs::from_millis(30)).expect("ok");
    assert_eq!(
        r.activation_times(probe, Some(0)),
        vec![
            us(4500),
            TimeNs::from_millis(10) + us(4500),
            TimeNs::from_millis(20) + us(4500),
        ]
    );
    let sync_ref = sim.model().block_as::<Synchronization>(sync).expect("ok");
    assert_eq!(sync_ref.fired(), 3);
}
