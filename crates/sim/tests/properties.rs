//! Property-based tests of the simulation kernel.

use ecl_sim::ode::{integrate, Integrator};
use ecl_sim::{BlockId, EventCalendar, TimeNs};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Time arithmetic is consistent with raw nanosecond arithmetic.
    #[test]
    fn time_arithmetic(a in -1_000_000_000i64..1_000_000_000, b in -1_000_000_000i64..1_000_000_000) {
        let (ta, tb) = (TimeNs::from_nanos(a), TimeNs::from_nanos(b));
        prop_assert_eq!((ta + tb).as_nanos(), a + b);
        prop_assert_eq!((ta - tb).as_nanos(), a - b);
        prop_assert_eq!((-ta).as_nanos(), -a);
        prop_assert_eq!(ta.max(tb).as_nanos(), a.max(b));
        prop_assert_eq!(ta.min(tb).as_nanos(), a.min(b));
        prop_assert_eq!(ta < tb, a < b);
        prop_assert_eq!(ta.abs().as_nanos(), a.abs());
    }

    /// from_secs_f64 round-trips within a nanosecond.
    #[test]
    fn time_secs_roundtrip(s in -1e6f64..1e6) {
        let t = TimeNs::from_secs_f64(s);
        prop_assert!((t.as_secs_f64() - s).abs() <= 1e-9);
    }

    /// The calendar is a stable priority queue: pops are sorted by time,
    /// and equal times preserve insertion order.
    #[test]
    fn calendar_is_stable_priority_queue(times in proptest::collection::vec(0i64..1000, 1..200)) {
        let mut cal = EventCalendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(TimeNs::from_nanos(t), BlockId::from_index(i), 0);
        }
        let mut last_time = TimeNs::from_nanos(i64::MIN);
        let mut last_idx_at_time = 0usize;
        let mut popped = 0usize;
        while let Some(e) = cal.pop() {
            popped += 1;
            prop_assert!(e.time >= last_time);
            if e.time == last_time {
                prop_assert!(e.emitter.index() > last_idx_at_time, "stability violated");
            }
            last_time = e.time;
            last_idx_at_time = e.emitter.index();
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Linear ODE ẋ = a·x integrates to the exact exponential for any
    /// stable rate and any span.
    #[test]
    fn linear_ode_matches_exponential(a in -5.0f64..-0.01, span in 0.01f64..5.0) {
        let mut f = |_t: f64, x: &[f64], dx: &mut [f64]| dx[0] = a * x[0];
        let mut x = vec![1.0];
        integrate(&mut f, 0.0, span, &mut x, Integrator::default()).expect("integrates");
        let expect = (a * span).exp();
        prop_assert!((x[0] - expect).abs() < 1e-6 * expect.max(1e-3), "{} vs {expect}", x[0]);
    }

    /// Integration is additive over subintervals: integrating [0, t1] then
    /// [t1, t2] equals integrating [0, t2] (well within tolerance).
    #[test]
    fn integration_additive(t1 in 0.1f64..1.0, dt in 0.1f64..1.0) {
        let f = |t: f64, x: &[f64], dx: &mut [f64]| {
            dx[0] = (t).sin() - 0.5 * x[0];
        };
        let t2 = t1 + dt;
        let mut x_split = vec![1.0];
        let mut f1 = f;
        integrate(&mut f1, 0.0, t1, &mut x_split, Integrator::default()).expect("ok");
        integrate(&mut f1, t1, t2, &mut x_split, Integrator::default()).expect("ok");
        let mut x_whole = vec![1.0];
        integrate(&mut f1, 0.0, t2, &mut x_whole, Integrator::default()).expect("ok");
        prop_assert!((x_split[0] - x_whole[0]).abs() < 1e-6);
    }

    /// RK4 with a small step agrees with adaptive RK45.
    #[test]
    fn rk4_agrees_with_rk45(omega in 0.5f64..5.0) {
        let mut f = |_t: f64, x: &[f64], dx: &mut [f64]| {
            dx[0] = x[1];
            dx[1] = -omega * omega * x[0];
        };
        let mut a = vec![1.0, 0.0];
        let mut b = vec![1.0, 0.0];
        integrate(&mut f, 0.0, 2.0, &mut a, Integrator::Rk4 { h: 1e-3 }).expect("ok");
        integrate(&mut f, 0.0, 2.0, &mut b, Integrator::default()).expect("ok");
        prop_assert!((a[0] - b[0]).abs() < 1e-5, "{} vs {}", a[0], b[0]);
        // Both match the analytic cos(w t).
        prop_assert!((a[0] - (2.0 * omega).cos()).abs() < 1e-4);
    }
}
