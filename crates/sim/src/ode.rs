//! Explicit Runge–Kutta integrators used between event instants.
//!
//! The engine integrates the joint continuous state of the model with
//! either classic fixed-step RK4 or the adaptive Dormand–Prince RK45 pair.
//! Both operate on an [`OdeRhs`] closure-style trait so they are reusable
//! outside the engine (and directly testable against analytic solutions).

use crate::error::SimError;
use crate::stats::OdeStepStats;

/// Right-hand side of an ODE `ẋ = f(t, x)`.
///
/// Implemented by the engine (which evaluates the block diagram) and by
/// plain closures via the blanket impl below.
pub trait OdeRhs {
    /// Writes `f(t, x)` into `dx` (`dx.len() == x.len()`).
    fn eval(&mut self, t: f64, x: &[f64], dx: &mut [f64]);
}

impl<F> OdeRhs for F
where
    F: FnMut(f64, &[f64], &mut [f64]),
{
    fn eval(&mut self, t: f64, x: &[f64], dx: &mut [f64]) {
        self(t, x, dx)
    }
}

/// Integrator selection and tuning for the simulation engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Integrator {
    /// Classic fixed-step 4th-order Runge–Kutta with step `h` (seconds).
    /// The last step of each span is shortened to land exactly on the event
    /// instant.
    Rk4 {
        /// Step size in seconds. Must be positive.
        h: f64,
    },
    /// Adaptive Dormand–Prince 5(4) with per-step error control.
    Rk45 {
        /// Relative tolerance.
        rtol: f64,
        /// Absolute tolerance.
        atol: f64,
        /// Largest step the controller may take (seconds).
        h_max: f64,
    },
}

impl Default for Integrator {
    /// RK45 with `rtol = 1e-8`, `atol = 1e-10`, `h_max = 0.01 s`.
    fn default() -> Self {
        Integrator::Rk45 {
            rtol: 1e-8,
            atol: 1e-10,
            h_max: 0.01,
        }
    }
}

/// One classic RK4 step of size `h` from `(t, x)`, writing the result back
/// into `x`.
///
/// # Panics
///
/// Panics if `x` and the work buffers disagree in length (cannot happen via
/// the public [`integrate`] entry point).
pub fn rk4_step<F: OdeRhs>(f: &mut F, t: f64, x: &mut [f64], h: f64) {
    let n = x.len();
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut tmp = vec![0.0; n];

    f.eval(t, x, &mut k1);
    for i in 0..n {
        tmp[i] = x[i] + 0.5 * h * k1[i];
    }
    f.eval(t + 0.5 * h, &tmp, &mut k2);
    for i in 0..n {
        tmp[i] = x[i] + 0.5 * h * k2[i];
    }
    f.eval(t + 0.5 * h, &tmp, &mut k3);
    for i in 0..n {
        tmp[i] = x[i] + h * k3[i];
    }
    f.eval(t + h, &tmp, &mut k4);
    for i in 0..n {
        x[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
}

/// Dormand–Prince 5(4) Butcher tableau.
const DP_C: [f64; 7] = [0.0, 1.0 / 5.0, 3.0 / 10.0, 4.0 / 5.0, 8.0 / 9.0, 1.0, 1.0];
const DP_A: [[f64; 6]; 7] = [
    [0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0, 0.0],
    [44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0, 0.0, 0.0, 0.0],
    [
        19372.0 / 6561.0,
        -25360.0 / 2187.0,
        64448.0 / 6561.0,
        -212.0 / 729.0,
        0.0,
        0.0,
    ],
    [
        9017.0 / 3168.0,
        -355.0 / 33.0,
        46732.0 / 5247.0,
        49.0 / 176.0,
        -5103.0 / 18656.0,
        0.0,
    ],
    [
        35.0 / 384.0,
        0.0,
        500.0 / 1113.0,
        125.0 / 192.0,
        -2187.0 / 6784.0,
        11.0 / 84.0,
    ],
];
/// 5th-order solution weights.
const DP_B5: [f64; 7] = [
    35.0 / 384.0,
    0.0,
    500.0 / 1113.0,
    125.0 / 192.0,
    -2187.0 / 6784.0,
    11.0 / 84.0,
    0.0,
];
/// 4th-order (embedded) solution weights.
const DP_B4: [f64; 7] = [
    5179.0 / 57600.0,
    0.0,
    7571.0 / 16695.0,
    393.0 / 640.0,
    -92097.0 / 339200.0,
    187.0 / 2100.0,
    1.0 / 40.0,
];

/// Smallest step (relative to the span) the adaptive controller will try
/// before reporting failure.
const MIN_STEP_FRACTION: f64 = 1e-14;

/// Integrates `ẋ = f(t, x)` from `t0` to `t1` in place, returning step
/// counters for observability.
///
/// Dispatches on the [`Integrator`] choice; `x` is updated to the state at
/// `t1`. For `Rk45`, step-size control follows the standard PI-free
/// `0.9·(tol/err)^(1/5)` rule with a [2⁻⁴, 4] growth clamp.
///
/// # Errors
///
/// Returns [`SimError::IntegrationFailure`] if a non-finite state or
/// derivative appears, or if the adaptive controller underflows its minimum
/// step without meeting the tolerance.
///
/// # Examples
///
/// ```
/// use ecl_sim::ode::{integrate, Integrator};
/// # fn main() -> Result<(), ecl_sim::SimError> {
/// // ẋ = -x, x(0) = 1  =>  x(1) = e^-1
/// let mut x = vec![1.0];
/// let mut f = |_t: f64, x: &[f64], dx: &mut [f64]| dx[0] = -x[0];
/// let steps = integrate(&mut f, 0.0, 1.0, &mut x, Integrator::default())?;
/// assert!((x[0] - (-1.0f64).exp()).abs() < 1e-7);
/// assert!(steps.steps_accepted > 0);
/// # Ok(())
/// # }
/// ```
pub fn integrate<F: OdeRhs>(
    f: &mut F,
    t0: f64,
    t1: f64,
    x: &mut [f64],
    method: Integrator,
) -> Result<OdeStepStats, SimError> {
    if t1 < t0 {
        return Err(SimError::IntegrationFailure {
            time: t0,
            reason: format!("backwards span {t0} -> {t1}"),
        });
    }
    if t1 == t0 || x.is_empty() {
        return Ok(OdeStepStats::default());
    }
    match method {
        Integrator::Rk4 { h } => {
            if !(h > 0.0) {
                return Err(SimError::IntegrationFailure {
                    time: t0,
                    reason: format!("non-positive RK4 step {h}"),
                });
            }
            let mut stats = OdeStepStats::default();
            let mut t = t0;
            while t < t1 {
                let step = h.min(t1 - t);
                rk4_step(f, t, x, step);
                stats.steps_accepted += 1;
                stats.rhs_evals += 4;
                if x.iter().any(|v| !v.is_finite()) {
                    return Err(SimError::IntegrationFailure {
                        time: t,
                        reason: "non-finite state after RK4 step".into(),
                    });
                }
                t += step;
            }
            Ok(stats)
        }
        Integrator::Rk45 { rtol, atol, h_max } => integrate_rk45(f, t0, t1, x, rtol, atol, h_max),
    }
}

fn integrate_rk45<F: OdeRhs>(
    f: &mut F,
    t0: f64,
    t1: f64,
    x: &mut [f64],
    rtol: f64,
    atol: f64,
    h_max: f64,
) -> Result<OdeStepStats, SimError> {
    let n = x.len();
    let span = t1 - t0;
    let h_min = span * MIN_STEP_FRACTION;
    let mut t = t0;
    let mut h = (span / 10.0).min(h_max).max(h_min);
    let mut k = vec![vec![0.0; n]; 7];
    let mut xs = vec![0.0; n];
    let mut x5 = vec![0.0; n];
    let mut x4 = vec![0.0; n];
    let mut stats = OdeStepStats::default();

    while t < t1 {
        h = h.min(t1 - t).min(h_max);
        // Evaluate the 7 stages.
        for s in 0..7 {
            for i in 0..n {
                let mut acc = x[i];
                for (j, kj) in k.iter().enumerate().take(s) {
                    acc += h * DP_A[s][j] * kj[i];
                }
                xs[i] = acc;
            }
            let (head, tail) = k.split_at_mut(s);
            let _ = head;
            f.eval(t + DP_C[s] * h, &xs, &mut tail[0]);
        }
        stats.rhs_evals += 7;
        // 5th and embedded 4th order solutions.
        for i in 0..n {
            let mut acc5 = x[i];
            let mut acc4 = x[i];
            for (s, ks) in k.iter().enumerate() {
                acc5 += h * DP_B5[s] * ks[i];
                acc4 += h * DP_B4[s] * ks[i];
            }
            x5[i] = acc5;
            x4[i] = acc4;
        }
        // Scaled error norm.
        let mut err: f64 = 0.0;
        for i in 0..n {
            let scale = atol + rtol * x[i].abs().max(x5[i].abs());
            err = err.max(((x5[i] - x4[i]) / scale).abs());
        }
        if !err.is_finite() {
            return Err(SimError::IntegrationFailure {
                time: t,
                reason: "non-finite error estimate (diverging state?)".into(),
            });
        }
        if err <= 1.0 {
            // Accept.
            t += h;
            x.copy_from_slice(&x5);
            stats.steps_accepted += 1;
            if x.iter().any(|v| !v.is_finite()) {
                return Err(SimError::IntegrationFailure {
                    time: t,
                    reason: "non-finite state after accepted step".into(),
                });
            }
        } else {
            stats.steps_rejected += 1;
        }
        // Step-size update (both on accept and reject).
        let factor = if err == 0.0 {
            4.0
        } else {
            (0.9 * err.powf(-0.2)).clamp(1.0 / 16.0, 4.0)
        };
        h *= factor;
        if h < h_min && t < t1 {
            return Err(SimError::IntegrationFailure {
                time: t,
                reason: format!("step underflow (h = {h:.3e} < {h_min:.3e})"),
            });
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exponential decay, analytic solution e^{-t}.
    fn decay(_t: f64, x: &[f64], dx: &mut [f64]) {
        dx[0] = -x[0];
    }

    #[test]
    fn rk4_converges_fourth_order() {
        // Halving h should reduce the error ~16x.
        let mut err = Vec::new();
        for h in [0.1, 0.05] {
            let mut x = vec![1.0];
            integrate(&mut decay, 0.0, 1.0, &mut x, Integrator::Rk4 { h }).unwrap();
            err.push((x[0] - (-1.0f64).exp()).abs());
        }
        let ratio = err[0] / err[1];
        assert!(ratio > 10.0, "convergence ratio {ratio}");
    }

    #[test]
    fn rk45_meets_tolerance() {
        let mut x = vec![1.0];
        integrate(
            &mut decay,
            0.0,
            5.0,
            &mut x,
            Integrator::Rk45 {
                rtol: 1e-10,
                atol: 1e-12,
                h_max: 1.0,
            },
        )
        .unwrap();
        assert!((x[0] - (-5.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn harmonic_oscillator_energy_preserved() {
        // ẍ = -x => energy x² + v² constant.
        let mut f = |_t: f64, x: &[f64], dx: &mut [f64]| {
            dx[0] = x[1];
            dx[1] = -x[0];
        };
        let mut x = vec![1.0, 0.0];
        integrate(&mut f, 0.0, 20.0, &mut x, Integrator::default()).unwrap();
        let energy = x[0] * x[0] + x[1] * x[1];
        assert!((energy - 1.0).abs() < 1e-6, "energy {energy}");
        // And position matches cos(20).
        assert!((x[0] - 20.0f64.cos()).abs() < 1e-5);
    }

    #[test]
    fn time_dependent_rhs() {
        // ẋ = 2t => x(t) = t².
        let mut f = |t: f64, _x: &[f64], dx: &mut [f64]| dx[0] = 2.0 * t;
        let mut x = vec![0.0];
        integrate(&mut f, 0.0, 3.0, &mut x, Integrator::Rk4 { h: 0.01 }).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-10);
    }

    #[test]
    fn zero_span_is_noop() {
        let mut x = vec![1.0];
        integrate(&mut decay, 1.0, 1.0, &mut x, Integrator::default()).unwrap();
        assert_eq!(x[0], 1.0);
    }

    #[test]
    fn empty_state_is_noop() {
        let mut x: Vec<f64> = vec![];
        integrate(&mut decay, 0.0, 1.0, &mut x, Integrator::default()).unwrap();
    }

    #[test]
    fn backwards_span_rejected() {
        let mut x = vec![1.0];
        assert!(integrate(&mut decay, 1.0, 0.0, &mut x, Integrator::default()).is_err());
    }

    #[test]
    fn bad_rk4_step_rejected() {
        let mut x = vec![1.0];
        assert!(integrate(&mut decay, 0.0, 1.0, &mut x, Integrator::Rk4 { h: 0.0 }).is_err());
    }

    #[test]
    fn divergent_ode_detected() {
        // ẋ = x² blows up at t = 1 from x(0) = 1.
        let mut f = |_t: f64, x: &[f64], dx: &mut [f64]| dx[0] = x[0] * x[0];
        let mut x = vec![1.0];
        let r = integrate(
            &mut f,
            0.0,
            2.0,
            &mut x,
            Integrator::Rk45 {
                rtol: 1e-8,
                atol: 1e-10,
                h_max: 0.5,
            },
        );
        assert!(matches!(r, Err(SimError::IntegrationFailure { .. })));
    }

    #[test]
    fn rk4_lands_exactly_on_endpoint() {
        // h does not divide the span; final shortened step must land on t1.
        let mut f = |t: f64, _x: &[f64], dx: &mut [f64]| dx[0] = t.cos();
        let mut x = vec![0.0];
        integrate(&mut f, 0.0, 1.0, &mut x, Integrator::Rk4 { h: 0.3 }).unwrap();
        assert!((x[0] - 1.0f64.sin()).abs() < 1e-4);
    }

    #[test]
    fn closure_implements_oderhs() {
        let mut calls = 0usize;
        let mut f = |_t: f64, _x: &[f64], dx: &mut [f64]| {
            calls += 1;
            dx[0] = 0.0;
        };
        let mut dx = [0.0];
        f.eval(0.0, &[1.0], &mut dx);
        assert_eq!(calls, 1);
    }

    #[test]
    fn default_integrator_is_rk45() {
        assert!(matches!(Integrator::default(), Integrator::Rk45 { .. }));
    }

    #[test]
    fn step_counters_track_work() {
        let mut x = vec![1.0];
        let s = integrate(&mut decay, 0.0, 1.0, &mut x, Integrator::Rk4 { h: 0.1 }).unwrap();
        // 10 nominal steps, plus possibly one shortened step from float
        // accumulation of 0.1.
        assert!((10..=11).contains(&s.steps_accepted), "{s:?}");
        assert_eq!(s.rhs_evals, 4 * s.steps_accepted);
        assert_eq!(s.steps_rejected, 0);

        let mut y = vec![1.0];
        let s45 = integrate(&mut decay, 0.0, 1.0, &mut y, Integrator::default()).unwrap();
        assert!(s45.steps_accepted > 0);
        assert_eq!(s45.rhs_evals, 7 * (s45.steps_accepted + s45.steps_rejected));
    }
}
