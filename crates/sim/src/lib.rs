//! Deterministic hybrid continuous/discrete-event simulation kernel.
//!
//! `ecl-sim` reimplements the simulation semantics of Scicos (the Scilab
//! Connected Object Simulator) that the DATE 2008 methodology paper relies
//! on: block diagrams in which *continuous* blocks (integrated by an ODE
//! solver between event instants) and *discrete* blocks (activated by
//! **events** arriving on dedicated event ports) co-exist in one model.
//!
//! The design mirrors Scicos' essentials:
//!
//! * Blocks have **regular** input/output ports carrying `f64` signals and
//!   **event** input/output ports carrying activation events.
//! * A discrete block executes when an event arrives on one of its event
//!   inputs; at the end of its execution it may emit events on its event
//!   outputs (immediately or after a delay) — the mechanism the paper uses
//!   to model SynDEx schedules (§3.2.1).
//! * Continuous blocks expose state derivatives; the engine integrates all
//!   continuous state jointly between event instants with RK4 or adaptive
//!   RK45 (Dormand–Prince).
//! * Simulation time is an integer nanosecond count ([`TimeNs`]), so the
//!   event calendar is totally ordered with no floating-point drift — event
//!   instants coming from a static real-time schedule are reproduced
//!   exactly.
//!
//! # Examples
//!
//! A minimal model: a periodic clock activating a block that counts its own
//! activations.
//!
//! ```
//! use ecl_sim::{Block, EventActions, Model, PortSpec, SimOptions, Simulator, TimeNs};
//!
//! struct Counter { n: u64 }
//! impl Block for Counter {
//!     fn type_name(&self) -> &'static str { "Counter" }
//!     fn ports(&self) -> PortSpec { PortSpec::event_sink(1) }
//!     fn on_event(&mut self, _port: usize, _t: TimeNs, _ctx: &mut ecl_sim::EventCtx<'_>) {
//!         self.n += 1;
//!     }
//!     ecl_sim::impl_block_any!();
//! }
//!
//! // A periodic clock, Scicos-style: an emitter looped back onto its own
//! // event input so each firing schedules the next one.
//! struct Tick { period: TimeNs }
//! impl Block for Tick {
//!     fn type_name(&self) -> &'static str { "Tick" }
//!     fn ports(&self) -> PortSpec { PortSpec::event_pipe(1, 1) }
//!     fn on_start(&mut self, actions: &mut EventActions) {
//!         actions.emit(0, TimeNs::ZERO);
//!     }
//!     fn on_event(&mut self, _port: usize, _t: TimeNs, ctx: &mut ecl_sim::EventCtx<'_>) {
//!         ctx.actions.emit(0, self.period);
//!     }
//!     ecl_sim::impl_block_any!();
//! }
//!
//! # fn main() -> Result<(), ecl_sim::SimError> {
//! let mut model = Model::new();
//! let tick = model.add_block("tick", Tick { period: TimeNs::from_millis(10) });
//! let counter = model.add_block("counter", Counter { n: 0 });
//! model.connect_event(tick, 0, tick, 0)?;    // self-loop drives the period
//! model.connect_event(tick, 0, counter, 0)?;
//! let mut sim = Simulator::new(model, SimOptions::default())?;
//! sim.run(TimeNs::from_millis(95))?;   // returns &SimResult; `result()`
//! let result = sim.result();           // re-borrows it shared
//! let counter_ref: &Counter = sim.model().block_as(counter).unwrap();
//! assert_eq!(counter_ref.n, 10); // t = 0, 10, ..., 90
//! assert!(result.event_log().len() >= 10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![allow(
    // `!(x > 0.0)` deliberately treats NaN as invalid; partial_cmp would
    // obscure that.
    clippy::neg_cmp_op_on_partial_ord,
    // Index loops mirror the textbook matrix formulas they implement.
    clippy::needless_range_loop
)]
#![warn(missing_docs)]

mod block;
mod engine;
mod error;
mod event;
mod model;
pub mod ode;
mod stats;
mod time;
mod trace;

pub use block::{Block, EventActions, EventCtx, PortSpec};
pub use engine::{SimOptions, Simulator};
pub use error::SimError;
pub use event::{EventCalendar, ScheduledEvent};
pub use model::{BlockId, Model};
pub use ode::{Integrator, OdeRhs};
pub use stats::{EngineStats, OdeStepStats};
pub use time::TimeNs;
pub use trace::{EventRecord, ProbeId, Signal, SimResult};
