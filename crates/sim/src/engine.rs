//! The simulation engine: joint ODE integration of continuous state and
//! deterministic dispatch of activation events.

use crate::block::{EventActions, EventCtx};
use crate::error::SimError;
use crate::event::EventCalendar;
use crate::model::{BlockId, Entry, Model};
use crate::ode::{self, Integrator, OdeRhs};
use crate::stats::EngineStats;
use crate::time::TimeNs;
use crate::trace::{EventRecord, Signal, SimResult};

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// ODE method used between event instants.
    pub integrator: Integrator,
    /// Probe recording resolution (seconds) for continuous spans. Probes
    /// are additionally recorded at every event instant.
    pub record_dt: f64,
    /// Maximum number of event deliveries at a single instant before the
    /// run aborts with [`SimError::EventCascadeOverflow`] (guards against
    /// zero-delay event loops).
    pub cascade_limit: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            integrator: Integrator::default(),
            record_dt: 1e-3,
            cascade_limit: 100_000,
        }
    }
}

/// Executes a [`Model`].
///
/// Construction ([`Simulator::new`]) validates the model (port wiring,
/// connected inputs, absence of algebraic loops) and freezes the evaluation
/// order; [`Simulator::run`] then advances the simulation. `run` may be
/// called repeatedly to continue from where the previous call stopped.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct Simulator {
    model: Model,
    opts: SimOptions,
    /// Per-block offset into the flat input value buffer.
    in_off: Vec<usize>,
    /// Per-block offset into the flat output value buffer.
    out_off: Vec<usize>,
    /// Per-block offset into the flat continuous state vector.
    state_off: Vec<usize>,
    /// Flat input values (rewritten on every output pass).
    inputs: Vec<f64>,
    /// Flat output values.
    outputs: Vec<f64>,
    /// For each flat input index, the flat output index driving it.
    input_src: Vec<Option<usize>>,
    /// Block evaluation order (topological over feedthrough edges).
    eval_order: Vec<usize>,
    /// `evt_routes[block][out_port]` lists `(target, event_in)` pairs.
    evt_routes: Vec<Vec<Vec<(usize, usize)>>>,
    /// For each probe, the flat output index it reads (structure-of-arrays
    /// layout: the probe pass touches only this vector and `outputs`).
    probe_src: Vec<usize>,
    /// Joint continuous state.
    x: Vec<f64>,
    calendar: EventCalendar,
    now: TimeNs,
    started: bool,
    /// Reusable emission queue for event deliveries; pre-sized so the
    /// hot path never allocates (growth bumps `EngineStats::hot_allocs`).
    scratch_actions: EventActions,
    result: SimResult,
    stats: EngineStats,
}

impl Simulator {
    /// Validates `model` and prepares it for execution.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnconnectedInput`] if any regular input lacks a driver.
    /// * [`SimError::AlgebraicLoop`] if the feedthrough graph is cyclic.
    pub fn new(model: Model, opts: SimOptions) -> Result<Self, SimError> {
        let n = model.entries.len();
        let mut in_off = Vec::with_capacity(n);
        let mut out_off = Vec::with_capacity(n);
        let mut state_off = Vec::with_capacity(n);
        let (mut ni, mut no, mut ns) = (0usize, 0usize, 0usize);
        for e in &model.entries {
            in_off.push(ni);
            out_off.push(no);
            state_off.push(ns);
            ni += e.spec.inputs;
            no += e.spec.outputs;
            ns += e.block.num_states();
        }

        // Map each flat input to its driving flat output.
        let mut input_src: Vec<Option<usize>> = vec![None; ni];
        for c in &model.sig_conns {
            let gi = in_off[c.dst.index()] + c.inp;
            let go = out_off[c.src.index()] + c.out;
            input_src[gi] = Some(go);
        }
        for (b, e) in model.entries.iter().enumerate() {
            for p in 0..e.spec.inputs {
                if input_src[in_off[b] + p].is_none() {
                    return Err(SimError::UnconnectedInput {
                        block: e.name.clone(),
                        port: p,
                    });
                }
            }
        }

        // Topological sort over feedthrough edges (Kahn, stable order).
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for c in &model.sig_conns {
            let dst = c.dst.index();
            if model.entries[dst].block.feedthrough(c.inp) {
                succ[c.src.index()].push(dst);
                indeg[dst] += 1;
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut eval_order = Vec::with_capacity(n);
        let mut cursor = 0;
        while cursor < ready.len() {
            let b = ready[cursor];
            cursor += 1;
            eval_order.push(b);
            for &s in &succ[b] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(s);
                }
            }
        }
        if eval_order.len() != n {
            let cyclic: Vec<String> = (0..n)
                .filter(|&i| indeg[i] > 0)
                .map(|i| model.entries[i].name.clone())
                .collect();
            return Err(SimError::AlgebraicLoop { blocks: cyclic });
        }

        // Event routing table.
        let mut evt_routes: Vec<Vec<Vec<(usize, usize)>>> = model
            .entries
            .iter()
            .map(|e| vec![Vec::new(); e.spec.event_outputs])
            .collect();
        for c in &model.evt_conns {
            evt_routes[c.src.index()][c.out].push((c.dst.index(), c.inp));
        }

        // Continuous state initialization.
        let mut x = vec![0.0; ns];
        for (b, e) in model.entries.iter().enumerate() {
            let k = e.block.num_states();
            if k > 0 {
                e.block.init_states(&mut x[state_off[b]..state_off[b] + k]);
            }
        }

        let result = SimResult {
            signals: model
                .probes
                .iter()
                .map(|p| (p.name.clone(), Signal::new()))
                .collect(),
            events: Vec::new(),
            end_time: TimeNs::ZERO,
        };
        let probe_src = model
            .probes
            .iter()
            .map(|p| out_off[p.block.index()] + p.out)
            .collect();

        Ok(Simulator {
            stats: EngineStats::new(n),
            model,
            opts,
            in_off,
            out_off,
            state_off,
            inputs: vec![0.0; ni],
            outputs: vec![0.0; no],
            input_src,
            eval_order,
            evt_routes,
            probe_src,
            x,
            calendar: EventCalendar::new(),
            now: TimeNs::ZERO,
            started: false,
            scratch_actions: EventActions::with_capacity(8),
            result,
        })
    }

    /// The wrapped model (for downcasting blocks after a run).
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Mutable access to the wrapped model's blocks.
    pub fn model_mut(&mut self) -> &mut Model {
        &mut self.model
    }

    /// Consumes the simulator, returning the model.
    pub fn into_model(self) -> Model {
        self.model
    }

    /// Current simulation time.
    pub fn now(&self) -> TimeNs {
        self.now
    }

    /// Hot-loop execution counters accumulated across `run` calls:
    /// per-block activations, ODE steps taken/rejected, event-calendar
    /// peak depth, cascade depth.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Advances the simulation to `until` (inclusive of events at exactly
    /// `until`) and returns a borrowed view of the accumulated results.
    ///
    /// The returned reference keeps the simulator mutably borrowed; call
    /// [`result`](Simulator::result) afterwards to read the results
    /// alongside other accessors ([`stats`](Simulator::stats),
    /// [`model`](Simulator::model)), or [`into_result`](Simulator::into_result)
    /// to take ownership without copying.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidHorizon`] if `until` precedes the current time.
    /// * Event-emission validation errors ([`SimError::InvalidEmit`],
    ///   [`SimError::NegativeDelay`], [`SimError::EventCascadeOverflow`]).
    /// * [`SimError::IntegrationFailure`] from the ODE solver.
    pub fn run(&mut self, until: TimeNs) -> Result<&SimResult, SimError> {
        if until < self.now {
            return Err(SimError::InvalidHorizon {
                now: self.now,
                until,
            });
        }
        if !self.started {
            self.started = true;
            for b in 0..self.model.entries.len() {
                let mut actions = std::mem::take(&mut self.scratch_actions);
                self.model.entries[b].block.on_start(&mut actions);
                self.schedule_actions(b, &mut actions)?;
                self.scratch_actions = actions;
            }
            self.eval_outputs_committed();
            self.record_probes();
        }

        loop {
            match self.calendar.peek_time() {
                Some(te) if te <= until => {
                    if te > self.now {
                        self.integrate_span(te)?;
                    }
                    self.process_instant()?;
                }
                _ => {
                    if until > self.now {
                        self.integrate_span(until)?;
                    }
                    break;
                }
            }
        }
        self.result.end_time = self.now;
        Ok(&self.result)
    }

    /// The results accumulated by [`run`](Simulator::run) calls so far.
    pub fn result(&self) -> &SimResult {
        &self.result
    }

    /// Consumes the simulator, returning the accumulated results without
    /// copying the trace.
    pub fn into_result(self) -> SimResult {
        self.result
    }

    /// Integrates the continuous state from `self.now` to `t_end`,
    /// recording probes every `record_dt`.
    ///
    /// Chunk boundaries are integer-nanosecond instants derived by
    /// repeated addition of the nanosecond-rounded `record_dt` — exact in
    /// `i64`, so probe instants never drift off the recording grid no
    /// matter how many chunks a span covers (an `f64` accumulator loses
    /// ~1 ulp per chunk and wanders off-grid over long horizons).
    fn integrate_span(&mut self, t_end: TimeNs) -> Result<(), SimError> {
        if self.x.is_empty() {
            self.now = t_end;
            self.eval_outputs_committed();
            self.record_probes();
            return Ok(());
        }
        let dt = TimeNs::from_secs_f64(self.opts.record_dt.max(1e-12)).max(TimeNs::from_nanos(1));
        while self.now < t_end {
            let chunk_end = self.now.saturating_add(dt).min(t_end);
            let (a, b) = (self.now.as_secs_f64(), chunk_end.as_secs_f64());
            {
                let mut rhs = EngineRhs {
                    entries: &mut self.model.entries,
                    eval_order: &self.eval_order,
                    in_off: &self.in_off,
                    out_off: &self.out_off,
                    state_off: &self.state_off,
                    inputs: &mut self.inputs,
                    outputs: &mut self.outputs,
                    input_src: &self.input_src,
                };
                let ode_stats = ode::integrate(&mut rhs, a, b, &mut self.x, self.opts.integrator)?;
                self.stats.ode.merge(ode_stats);
                self.stats.integration_spans += 1;
            }
            self.now = chunk_end;
            self.eval_outputs_committed();
            self.record_probes();
        }
        Ok(())
    }

    /// Processes every event scheduled at the current instant (including
    /// zero-delay follow-ups), then records probes once.
    ///
    /// Allocation-free in steady state: routes are walked by index, the
    /// activated block borrows its input slice directly from the flat
    /// input buffer (disjoint from the mutably borrowed model), and the
    /// emission queue is a reusable scratch buffer whose growth is the
    /// only heap traffic (counted in [`EngineStats::hot_allocs`]).
    fn process_instant(&mut self) -> Result<(), SimError> {
        let now = self.now;
        self.stats.event_instants += 1;
        let mut deliveries = 0usize;
        while self.calendar.peek_time() == Some(now) {
            let ev = self.calendar.pop().expect("peeked");
            let (em, out) = (ev.emitter.index(), ev.out_port);
            for r in 0..self.evt_routes[em][out].len() {
                let (dst, port) = self.evt_routes[em][out][r];
                deliveries += 1;
                self.stats.count_activation(dst);
                if deliveries > self.opts.cascade_limit {
                    return Err(SimError::EventCascadeOverflow {
                        time: now,
                        limit: self.opts.cascade_limit,
                    });
                }
                // Refresh signal values so the activated block sees current
                // inputs (including effects of earlier same-instant events).
                self.eval_outputs_committed();
                let spec = self.model.entries[dst].spec;
                let mut actions = std::mem::take(&mut self.scratch_actions);
                let cap = actions.emissions.capacity();
                {
                    // `inputs` is a shared borrow of the flat input buffer,
                    // `block` a mutable borrow of the model — disjoint
                    // fields, so no defensive copy is needed.
                    let mut ctx = EventCtx {
                        inputs: &self.inputs[self.in_off[dst]..self.in_off[dst] + spec.inputs],
                        actions: &mut actions,
                    };
                    self.model.entries[dst].block.on_event(port, now, &mut ctx);
                }
                if actions.emissions.capacity() != cap {
                    self.stats.hot_allocs += 1;
                }
                self.schedule_actions(dst, &mut actions)?;
                self.scratch_actions = actions;
                self.result.events.push(EventRecord {
                    time: now,
                    emitter: ev.emitter,
                    out_port: ev.out_port,
                    target: BlockId::from_index(dst),
                    port,
                });
            }
        }
        self.stats.max_cascade = self.stats.max_cascade.max(deliveries);
        self.eval_outputs_committed();
        self.record_probes();
        Ok(())
    }

    /// Validates and schedules the emissions queued by block `b`, then
    /// clears the queue (capacity is retained for reuse).
    fn schedule_actions(&mut self, b: usize, actions: &mut EventActions) -> Result<(), SimError> {
        for i in 0..actions.emissions.len() {
            let (port, delay) = actions.emissions[i];
            let spec = self.model.entries[b].spec;
            if port >= spec.event_outputs {
                return Err(SimError::InvalidEmit {
                    block: self.model.entries[b].name.clone(),
                    port,
                    count: spec.event_outputs,
                });
            }
            if delay.is_negative() {
                return Err(SimError::NegativeDelay {
                    block: self.model.entries[b].name.clone(),
                    delay,
                });
            }
            self.calendar
                .schedule(self.now + delay, BlockId::from_index(b), port);
            self.stats.calendar_peak = self.stats.calendar_peak.max(self.calendar.len());
        }
        actions.emissions.clear();
        Ok(())
    }

    /// Evaluates every block's outputs at the committed state and current
    /// time, in topological order.
    fn eval_outputs_committed(&mut self) {
        eval_outputs(
            &mut self.model.entries,
            &self.eval_order,
            &self.in_off,
            &self.out_off,
            &self.state_off,
            &mut self.inputs,
            &mut self.outputs,
            &self.input_src,
            self.now.as_secs_f64(),
            &self.x,
        );
    }

    fn record_probes(&mut self) {
        let t = self.now.as_secs_f64();
        for (i, &src) in self.probe_src.iter().enumerate() {
            self.result.signals[i].1.push(t, self.outputs[src]);
        }
    }
}

/// Shared output-pass implementation, usable with borrowed engine pieces
/// (needed so the ODE right-hand side can evaluate trial states while the
/// state vector itself is mutably borrowed by the integrator).
#[allow(clippy::too_many_arguments)]
fn eval_outputs(
    entries: &mut [Entry],
    eval_order: &[usize],
    in_off: &[usize],
    out_off: &[usize],
    state_off: &[usize],
    inputs: &mut [f64],
    outputs: &mut [f64],
    input_src: &[Option<usize>],
    t: f64,
    x: &[f64],
) {
    for &b in eval_order {
        let spec = entries[b].spec;
        // Pull this block's inputs from the driving outputs.
        for p in 0..spec.inputs {
            let gi = in_off[b] + p;
            if let Some(go) = input_src[gi] {
                inputs[gi] = outputs[go];
            }
        }
        if spec.outputs == 0 {
            continue;
        }
        let ns = entries[b].block.num_states();
        let xs = &x[state_off[b]..state_off[b] + ns];
        // `ins` borrows `inputs` immutably while `outs` borrows `outputs`
        // mutably — distinct buffers, so no defensive copy is needed.
        let (ins, outs) = (
            &inputs[in_off[b]..in_off[b] + spec.inputs],
            &mut outputs[out_off[b]..out_off[b] + spec.outputs],
        );
        entries[b].block.outputs(t, xs, ins, outs);
    }
    // Refresh every input from the now-final outputs: non-feedthrough
    // blocks may be ordered before their drivers, so the values pulled
    // during the pass can be stale; derivative and event passes must see
    // inputs consistent with the final outputs.
    for (gi, src) in input_src.iter().enumerate() {
        if let Some(go) = src {
            inputs[gi] = outputs[*go];
        }
    }
}

/// ODE right-hand side over the block diagram: evaluate outputs at the
/// trial state, then collect per-block derivatives.
struct EngineRhs<'a> {
    entries: &'a mut [Entry],
    eval_order: &'a [usize],
    in_off: &'a [usize],
    out_off: &'a [usize],
    state_off: &'a [usize],
    inputs: &'a mut [f64],
    outputs: &'a mut [f64],
    input_src: &'a [Option<usize>],
}

impl OdeRhs for EngineRhs<'_> {
    fn eval(&mut self, t: f64, x: &[f64], dx: &mut [f64]) {
        eval_outputs(
            self.entries,
            self.eval_order,
            self.in_off,
            self.out_off,
            self.state_off,
            self.inputs,
            self.outputs,
            self.input_src,
            t,
            x,
        );
        for (b, e) in self.entries.iter().enumerate() {
            let ns = e.block.num_states();
            if ns == 0 {
                continue;
            }
            let so = self.state_off[b];
            let spec = e.spec;
            let ins = &self.inputs[self.in_off[b]..self.in_off[b] + spec.inputs];
            e.block
                .derivatives(t, &x[so..so + ns], ins, &mut dx[so..so + ns]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, PortSpec};
    use crate::impl_block_any;

    /// Source emitting a constant.
    struct Const(f64);
    impl Block for Const {
        fn type_name(&self) -> &'static str {
            "Const"
        }
        fn ports(&self) -> PortSpec {
            PortSpec::source(1)
        }
        fn outputs(&mut self, _t: f64, _x: &[f64], _u: &[f64], y: &mut [f64]) {
            y[0] = self.0;
        }
        impl_block_any!();
    }

    /// y = k * u, direct feedthrough.
    struct Gain(f64);
    impl Block for Gain {
        fn type_name(&self) -> &'static str {
            "Gain"
        }
        fn ports(&self) -> PortSpec {
            PortSpec::siso(1, 1)
        }
        fn outputs(&mut self, _t: f64, _x: &[f64], u: &[f64], y: &mut [f64]) {
            y[0] = self.0 * u[0];
        }
        impl_block_any!();
    }

    /// Pure integrator: ẋ = u, y = x.
    struct Integ {
        x0: f64,
    }
    impl Block for Integ {
        fn type_name(&self) -> &'static str {
            "Integ"
        }
        fn ports(&self) -> PortSpec {
            PortSpec::siso(1, 1)
        }
        fn feedthrough(&self, _i: usize) -> bool {
            false
        }
        fn num_states(&self) -> usize {
            1
        }
        fn init_states(&self, x: &mut [f64]) {
            x[0] = self.x0;
        }
        fn derivatives(&self, _t: f64, _x: &[f64], u: &[f64], dx: &mut [f64]) {
            dx[0] = u[0];
        }
        fn outputs(&mut self, _t: f64, x: &[f64], _u: &[f64], y: &mut [f64]) {
            y[0] = x[0];
        }
        impl_block_any!();
    }

    /// Periodic clock built as a self-looped emitter.
    struct Clock {
        period: TimeNs,
    }
    impl Block for Clock {
        fn type_name(&self) -> &'static str {
            "Clock"
        }
        fn ports(&self) -> PortSpec {
            PortSpec::event_pipe(1, 1)
        }
        fn on_start(&mut self, actions: &mut EventActions) {
            actions.emit(0, TimeNs::ZERO);
        }
        fn on_event(&mut self, _p: usize, _t: TimeNs, ctx: &mut EventCtx<'_>) {
            ctx.actions.emit(0, self.period);
        }
        impl_block_any!();
    }

    /// Samples its input on activation; exposes the held value.
    struct Sampler {
        held: f64,
        samples: Vec<(TimeNs, f64)>,
    }
    impl Block for Sampler {
        fn type_name(&self) -> &'static str {
            "Sampler"
        }
        fn ports(&self) -> PortSpec {
            PortSpec::new(1, 1, 1, 0)
        }
        fn feedthrough(&self, _i: usize) -> bool {
            false
        }
        fn outputs(&mut self, _t: f64, _x: &[f64], _u: &[f64], y: &mut [f64]) {
            y[0] = self.held;
        }
        fn on_event(&mut self, _p: usize, t: TimeNs, ctx: &mut EventCtx<'_>) {
            self.held = ctx.inputs[0];
            self.samples.push((t, self.held));
        }
        impl_block_any!();
    }

    fn clocked(period_ms: i64) -> (Model, BlockId) {
        let mut m = Model::new();
        let clk = m.add_block(
            "clk",
            Clock {
                period: TimeNs::from_millis(period_ms),
            },
        );
        m.connect_event(clk, 0, clk, 0).unwrap();
        (m, clk)
    }

    #[test]
    fn integrator_ramps_under_constant_input() {
        let mut m = Model::new();
        let c = m.add_block("c", Const(2.0));
        let i = m.add_block("i", Integ { x0: 0.0 });
        m.connect(c, 0, i, 0).unwrap();
        m.probe("x", i, 0).unwrap();
        let mut sim = Simulator::new(m, SimOptions::default()).unwrap();
        let r = sim.run(TimeNs::from_secs(1)).unwrap();
        let x = r.signal("x").unwrap();
        assert!((x.last().unwrap().1 - 2.0).abs() < 1e-9);
        // Ramp is linear: value at 0.5 s is ~1.0.
        assert!((x.sample(0.5).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn feedback_loop_through_integrator_allowed() {
        // ẋ = -x via gain feedback: integrator breaks the loop.
        let mut m = Model::new();
        let i = m.add_block("i", Integ { x0: 1.0 });
        let g = m.add_block("g", Gain(-1.0));
        m.connect(i, 0, g, 0).unwrap();
        m.connect(g, 0, i, 0).unwrap();
        m.probe("x", i, 0).unwrap();
        let mut sim = Simulator::new(m, SimOptions::default()).unwrap();
        let r = sim.run(TimeNs::from_secs(1)).unwrap();
        let xf = r.signal("x").unwrap().last().unwrap().1;
        assert!((xf - (-1.0f64).exp()).abs() < 1e-6, "{xf}");
    }

    #[test]
    fn algebraic_loop_detected() {
        let mut m = Model::new();
        let g1 = m.add_block("g1", Gain(1.0));
        let g2 = m.add_block("g2", Gain(1.0));
        m.connect(g1, 0, g2, 0).unwrap();
        m.connect(g2, 0, g1, 0).unwrap();
        assert!(matches!(
            Simulator::new(m, SimOptions::default()),
            Err(SimError::AlgebraicLoop { .. })
        ));
    }

    #[test]
    fn unconnected_input_detected() {
        let mut m = Model::new();
        m.add_block("g", Gain(1.0));
        assert!(matches!(
            Simulator::new(m, SimOptions::default()),
            Err(SimError::UnconnectedInput { .. })
        ));
    }

    #[test]
    fn clock_activates_sampler_periodically() {
        let (mut m, clk) = clocked(100);
        let c = m.add_block("c", Const(7.0));
        let s = m.add_block(
            "s",
            Sampler {
                held: 0.0,
                samples: vec![],
            },
        );
        m.connect(c, 0, s, 0).unwrap();
        m.connect_event(clk, 0, s, 0).unwrap();
        let mut sim = Simulator::new(m, SimOptions::default()).unwrap();
        sim.run(TimeNs::from_millis(1000)).unwrap();
        let r = sim.result();
        let smp = sim.model().block_as::<Sampler>(s).unwrap();
        // events at 0, 100, ..., 1000 ms inclusive = 11 samples
        assert_eq!(smp.samples.len(), 11);
        assert!(smp.samples.iter().all(|&(_, v)| v == 7.0));
        // Event log captured deliveries to both clock and sampler.
        assert_eq!(r.activation_times(s, Some(0)).len(), 11);
        assert_eq!(r.activation_times(s, Some(0))[3], TimeNs::from_millis(300));
    }

    #[test]
    fn sampler_sees_continuous_state_at_activation() {
        // Integrator of constant 1 sampled at 0.25 s steps: samples are
        // 0.0, 0.25, 0.5, ...
        let (mut m, clk) = clocked(250);
        let c = m.add_block("c", Const(1.0));
        let i = m.add_block("i", Integ { x0: 0.0 });
        let s = m.add_block(
            "s",
            Sampler {
                held: 0.0,
                samples: vec![],
            },
        );
        m.connect(c, 0, i, 0).unwrap();
        m.connect(i, 0, s, 0).unwrap();
        m.connect_event(clk, 0, s, 0).unwrap();
        let mut sim = Simulator::new(m, SimOptions::default()).unwrap();
        sim.run(TimeNs::from_secs(1)).unwrap();
        let smp = sim.model().block_as::<Sampler>(s).unwrap();
        for (k, &(t, v)) in smp.samples.iter().enumerate() {
            assert_eq!(t, TimeNs::from_millis(250 * k as i64));
            assert!((v - 0.25 * k as f64).abs() < 1e-7, "sample {k}: {v}");
        }
    }

    #[test]
    fn run_is_resumable() {
        let (m, _clk) = clocked(10);
        let mut sim = Simulator::new(m, SimOptions::default()).unwrap();
        let r1 = sim.run(TimeNs::from_millis(50)).unwrap();
        let n1 = r1.event_log().len();
        let r2 = sim.run(TimeNs::from_millis(100)).unwrap();
        assert!(r2.event_log().len() > n1);
        assert_eq!(r2.end_time(), TimeNs::from_millis(100));
    }

    #[test]
    fn backwards_run_rejected() {
        let (m, _clk) = clocked(10);
        let mut sim = Simulator::new(m, SimOptions::default()).unwrap();
        sim.run(TimeNs::from_millis(50)).unwrap();
        assert!(matches!(
            sim.run(TimeNs::from_millis(40)),
            Err(SimError::InvalidHorizon { .. })
        ));
    }

    #[test]
    fn zero_delay_loop_overflows() {
        // Two pipes emitting to each other with zero delay diverge.
        struct Echo;
        impl Block for Echo {
            fn type_name(&self) -> &'static str {
                "Echo"
            }
            fn ports(&self) -> PortSpec {
                PortSpec::event_pipe(1, 1)
            }
            fn on_start(&mut self, a: &mut EventActions) {
                a.emit(0, TimeNs::ZERO);
            }
            fn on_event(&mut self, _p: usize, _t: TimeNs, ctx: &mut EventCtx<'_>) {
                ctx.actions.emit(0, TimeNs::ZERO);
            }
            impl_block_any!();
        }
        let mut m = Model::new();
        let a = m.add_block("a", Echo);
        let b = m.add_block("b", Echo);
        m.connect_event(a, 0, b, 0).unwrap();
        m.connect_event(b, 0, a, 0).unwrap();
        let mut sim = Simulator::new(
            m,
            SimOptions {
                cascade_limit: 1000,
                ..SimOptions::default()
            },
        )
        .unwrap();
        assert!(matches!(
            sim.run(TimeNs::from_secs(1)),
            Err(SimError::EventCascadeOverflow { .. })
        ));
    }

    #[test]
    fn invalid_emit_port_detected() {
        struct BadEmit;
        impl Block for BadEmit {
            fn type_name(&self) -> &'static str {
                "BadEmit"
            }
            fn ports(&self) -> PortSpec {
                PortSpec::default()
            }
            fn on_start(&mut self, a: &mut EventActions) {
                a.emit(0, TimeNs::ZERO); // declares zero event outputs
            }
            impl_block_any!();
        }
        let mut m = Model::new();
        m.add_block("bad", BadEmit);
        let mut sim = Simulator::new(m, SimOptions::default()).unwrap();
        assert!(matches!(
            sim.run(TimeNs::from_secs(1)),
            Err(SimError::InvalidEmit { .. })
        ));
    }

    #[test]
    fn events_exactly_at_horizon_are_processed() {
        let (m, clk) = clocked(100);
        let mut sim = Simulator::new(m, SimOptions::default()).unwrap();
        let r = sim.run(TimeNs::from_millis(200)).unwrap();
        // 0, 100, 200 all delivered
        assert_eq!(r.activation_times(clk, Some(0)).len(), 3);
    }

    #[test]
    fn into_model_returns_blocks() {
        let (m, clk) = clocked(10);
        let sim = Simulator::new(m, SimOptions::default()).unwrap();
        let m = sim.into_model();
        assert!(m.block_as::<Clock>(clk).is_some());
    }

    #[test]
    fn empty_model_runs_to_horizon() {
        let sim = Simulator::new(Model::new(), SimOptions::default());
        let mut sim = sim.unwrap();
        let r = sim.run(TimeNs::from_secs(1)).unwrap();
        assert_eq!(r.end_time(), TimeNs::from_secs(1));
        assert!(r.event_log().is_empty());
        assert_eq!(sim.now(), TimeNs::from_secs(1));
    }

    #[test]
    fn rk4_option_matches_rk45_on_smooth_problem() {
        let build = || {
            let mut m = Model::new();
            let c = m.add_block("c", Const(1.0));
            let i = m.add_block("i", Integ { x0: 0.0 });
            m.connect(c, 0, i, 0).unwrap();
            m.probe("x", i, 0).unwrap();
            m
        };
        let run = |integrator| {
            let mut sim = Simulator::new(
                build(),
                SimOptions {
                    integrator,
                    ..SimOptions::default()
                },
            )
            .unwrap();
            sim.run(TimeNs::from_secs(1))
                .unwrap()
                .signal("x")
                .unwrap()
                .last()
                .unwrap()
                .1
        };
        let rk45 = run(crate::ode::Integrator::default());
        let rk4 = run(crate::ode::Integrator::Rk4 { h: 1e-3 });
        assert!((rk45 - 1.0).abs() < 1e-9);
        assert!((rk4 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn record_dt_controls_probe_density() {
        let build = || {
            let mut m = Model::new();
            let c = m.add_block("c", Const(1.0));
            let i = m.add_block("i", Integ { x0: 0.0 });
            m.connect(c, 0, i, 0).unwrap();
            m.probe("x", i, 0).unwrap();
            m
        };
        let samples = |record_dt: f64| {
            let mut sim = Simulator::new(
                build(),
                SimOptions {
                    record_dt,
                    ..SimOptions::default()
                },
            )
            .unwrap();
            sim.run(TimeNs::from_secs(1))
                .unwrap()
                .signal("x")
                .unwrap()
                .len()
        };
        let coarse = samples(0.1);
        let fine = samples(0.01);
        assert!(fine > 5 * coarse, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    fn probes_capture_discontinuity_at_event() {
        // A sampler steps its held value at t = 0.5 s; the probe records
        // both the pre- and post-event values at that instant.
        let mut m = Model::new();
        let clk = m.add_block(
            "clk",
            Clock {
                period: TimeNs::from_millis(500),
            },
        );
        m.connect_event(clk, 0, clk, 0).unwrap();
        let c = m.add_block("c", Const(1.0));
        let i = m.add_block("i", Integ { x0: 0.0 });
        m.connect(c, 0, i, 0).unwrap();
        let s = m.add_block(
            "s",
            Sampler {
                held: -1.0,
                samples: vec![],
            },
        );
        m.connect(i, 0, s, 0).unwrap();
        m.connect_event(clk, 0, s, 0).unwrap();
        m.probe("held", s, 0).unwrap();
        let mut sim = Simulator::new(m, SimOptions::default()).unwrap();
        let r = sim.run(TimeNs::from_millis(750)).unwrap();
        let held = r.signal("held").unwrap();
        // At t = 0.5 the held value jumps from 0.0 to 0.5.
        let t_evt = 0.5;
        let around: Vec<f64> = held
            .iter()
            .filter(|(t, _)| (*t - t_evt).abs() < 1e-12)
            .map(|(_, v)| v)
            .collect();
        assert!(around.iter().any(|v| (v - 0.5).abs() < 1e-9), "{around:?}");
        assert!((held.sample(0.75).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn engine_stats_count_hot_loop_work() {
        // Clock at 100 ms driving a sampler over an integrated constant:
        // 10 instants in [0, 950 ms], each delivering to clock + sampler.
        let mut m = Model::new();
        let clk = m.add_block(
            "clk",
            Clock {
                period: TimeNs::from_millis(100),
            },
        );
        m.connect_event(clk, 0, clk, 0).unwrap();
        let c = m.add_block("c", Const(1.0));
        let i = m.add_block("i", Integ { x0: 0.0 });
        m.connect(c, 0, i, 0).unwrap();
        let s = m.add_block(
            "s",
            Sampler {
                held: 0.0,
                samples: vec![],
            },
        );
        m.connect(i, 0, s, 0).unwrap();
        m.connect_event(clk, 0, s, 0).unwrap();
        let mut sim = Simulator::new(m, SimOptions::default()).unwrap();
        sim.run(TimeNs::from_millis(950)).unwrap();
        let stats = sim.stats().clone();
        assert_eq!(stats.activations(clk), 10);
        assert_eq!(stats.activations(s), 10);
        assert_eq!(stats.activations(c), 0);
        assert_eq!(stats.events_delivered, 20);
        assert_eq!(stats.max_cascade, 2);
        assert!(stats.calendar_peak >= 1);
        assert!(stats.integration_spans >= 10);
        assert!(stats.ode.steps_accepted > 0);
        assert!(stats.ode.rhs_evals >= 4 * stats.ode.steps_accepted);

        // Counters accumulate across runs and are deterministic: a second
        // identical simulator reaches byte-identical stats.
        let mut m2 = Model::new();
        let clk2 = m2.add_block(
            "clk",
            Clock {
                period: TimeNs::from_millis(100),
            },
        );
        m2.connect_event(clk2, 0, clk2, 0).unwrap();
        let c2 = m2.add_block("c", Const(1.0));
        let i2 = m2.add_block("i", Integ { x0: 0.0 });
        m2.connect(c2, 0, i2, 0).unwrap();
        let s2 = m2.add_block(
            "s",
            Sampler {
                held: 0.0,
                samples: vec![],
            },
        );
        m2.connect(i2, 0, s2, 0).unwrap();
        m2.connect_event(clk2, 0, s2, 0).unwrap();
        let mut sim2 = Simulator::new(m2, SimOptions::default()).unwrap();
        sim2.run(TimeNs::from_millis(950)).unwrap();
        assert_eq!(*sim2.stats(), stats);
    }

    /// Probe instants must sit exactly on the `record_dt` grid no matter
    /// how many chunks a span covers. An `f64` time accumulator loses
    /// ~1 ulp per chunk; over 10⁶ chunks at t ≈ 10³ s the drift reaches
    /// tens of nanoseconds and probe instants wander off-grid. The
    /// integer-chunk boundaries are exact, so every recorded instant
    /// round-trips onto the grid.
    #[test]
    fn probe_instants_stay_on_grid_over_a_million_chunks() {
        let mut m = Model::new();
        let c = m.add_block("c", Const(1e-3));
        let i = m.add_block("i", Integ { x0: 0.0 });
        m.connect(c, 0, i, 0).unwrap();
        m.probe("x", i, 0).unwrap();
        let mut sim = Simulator::new(
            m,
            SimOptions {
                // Fixed-step RK4, one step per chunk: the cheapest way to
                // drive the chunk loop a million times.
                integrator: crate::ode::Integrator::Rk4 { h: 1e-3 },
                record_dt: 1e-3,
                ..SimOptions::default()
            },
        )
        .unwrap();
        let r = sim.run(TimeNs::from_secs(1000)).unwrap();
        let x = r.signal("x").unwrap();
        assert_eq!(x.len(), 1_000_001);
        let grid = TimeNs::from_millis(1);
        for (k, &t) in x.times().iter().enumerate() {
            let expected = grid * k as i64;
            assert_eq!(
                TimeNs::from_secs_f64(t),
                expected,
                "sample {k} drifted off the record_dt grid: {t} vs {expected}"
            );
        }
        assert_eq!(sim.stats().integration_spans, 1_000_000);
    }

    /// The event hot path must not allocate in steady state: route walks,
    /// input staging and the emission queue all reuse engine-owned
    /// buffers, so the regression counter stays at zero across a run
    /// with thousands of deliveries.
    #[test]
    fn hot_path_is_allocation_free() {
        let (mut m, clk) = clocked(1);
        let c = m.add_block("c", Const(3.0));
        let s = m.add_block(
            "s",
            Sampler {
                held: 0.0,
                samples: vec![],
            },
        );
        m.connect(c, 0, s, 0).unwrap();
        m.connect_event(clk, 0, s, 0).unwrap();
        let mut sim = Simulator::new(m, SimOptions::default()).unwrap();
        sim.run(TimeNs::from_secs(2)).unwrap();
        assert!(sim.stats().events_delivered > 4000);
        assert_eq!(
            sim.stats().hot_allocs,
            0,
            "event hot path allocated {} times",
            sim.stats().hot_allocs
        );
    }

    #[test]
    fn model_mut_allows_retuning_between_runs() {
        let mut m = Model::new();
        let c = m.add_block("c", Const(1.0));
        let i = m.add_block("i", Integ { x0: 0.0 });
        m.connect(c, 0, i, 0).unwrap();
        m.probe("x", i, 0).unwrap();
        let mut sim = Simulator::new(m, SimOptions::default()).unwrap();
        sim.run(TimeNs::from_millis(500)).unwrap();
        // Double the source mid-run: the second half integrates at slope 2.
        sim.model_mut().block_as_mut::<Const>(c).unwrap().0 = 2.0;
        let r = sim.run(TimeNs::from_secs(1)).unwrap();
        let x_end = r.signal("x").unwrap().last().unwrap().1;
        assert!((x_end - 1.5).abs() < 1e-6, "{x_end}");
    }
}
