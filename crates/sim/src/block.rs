use std::any::Any;

use crate::time::TimeNs;

/// Port counts declared by a [`Block`].
///
/// Regular ports carry `f64` signals; event ports carry activation events
/// (the red ports of Scicos diagrams).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PortSpec {
    /// Number of regular (signal) inputs.
    pub inputs: usize,
    /// Number of regular (signal) outputs.
    pub outputs: usize,
    /// Number of event (activation) inputs.
    pub event_inputs: usize,
    /// Number of event (activation) outputs.
    pub event_outputs: usize,
}

impl PortSpec {
    /// Creates a spec with all four counts.
    pub const fn new(
        inputs: usize,
        outputs: usize,
        event_inputs: usize,
        event_outputs: usize,
    ) -> Self {
        PortSpec {
            inputs,
            outputs,
            event_inputs,
            event_outputs,
        }
    }

    /// A pure signal source: no inputs, `outputs` signal outputs.
    pub const fn source(outputs: usize) -> Self {
        PortSpec::new(0, outputs, 0, 0)
    }

    /// A pure signal sink: `inputs` signal inputs, nothing else.
    pub const fn sink(inputs: usize) -> Self {
        PortSpec::new(inputs, 0, 0, 0)
    }

    /// A signal transformer: `inputs` in, `outputs` out, no event ports.
    pub const fn siso(inputs: usize, outputs: usize) -> Self {
        PortSpec::new(inputs, outputs, 0, 0)
    }

    /// A pure event source: `event_outputs` event outputs only.
    pub const fn event_source(event_outputs: usize) -> Self {
        PortSpec::new(0, 0, 0, event_outputs)
    }

    /// A pure event sink: `event_inputs` event inputs only.
    pub const fn event_sink(event_inputs: usize) -> Self {
        PortSpec::new(0, 0, event_inputs, 0)
    }

    /// An event transformer: `event_inputs` in, `event_outputs` out.
    pub const fn event_pipe(event_inputs: usize, event_outputs: usize) -> Self {
        PortSpec::new(0, 0, event_inputs, event_outputs)
    }
}

/// Deferred event emissions produced by a block during
/// [`Block::on_start`] or [`Block::on_event`].
///
/// Each entry is `(event output port, delay from now)`. The engine
/// validates the port index and the non-negativity of the delay, then
/// schedules the emission on the event calendar.
#[derive(Debug, Default)]
pub struct EventActions {
    pub(crate) emissions: Vec<(usize, TimeNs)>,
}

impl EventActions {
    /// Creates an empty action set.
    pub fn new() -> Self {
        EventActions::default()
    }

    /// Creates an empty action set with room for `cap` emissions.
    pub(crate) fn with_capacity(cap: usize) -> Self {
        EventActions {
            emissions: Vec::with_capacity(cap),
        }
    }

    /// Requests an event on event-output `port`, `delay` after the current
    /// instant. `TimeNs::ZERO` emits at the current instant (after the
    /// current event finishes — Scicos "end of execution" semantics).
    pub fn emit(&mut self, port: usize, delay: TimeNs) {
        self.emissions.push((port, delay));
    }

    /// Number of queued emissions.
    pub fn len(&self) -> usize {
        self.emissions.len()
    }

    /// `true` if nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.emissions.is_empty()
    }
}

/// Context handed to [`Block::on_event`].
///
/// Exposes the block's freshly evaluated regular inputs and the action set
/// through which it emits events at the end of its execution.
#[derive(Debug)]
pub struct EventCtx<'a> {
    /// Current values of the block's regular inputs.
    pub inputs: &'a [f64],
    /// Event emissions to schedule when this activation completes.
    pub actions: &'a mut EventActions,
}

/// A simulation block (Scicos "bloc").
///
/// A block declares its ports via [`Block::ports`] and participates in the
/// three evaluation passes of the engine:
///
/// 1. **Output pass** — [`Block::outputs`] maps (time, continuous state,
///    inputs) to outputs. Must be *idempotent*: it may be called many times
///    per instant (once per ODE stage) and must not advance logical state.
/// 2. **Derivative pass** — [`Block::derivatives`] fills `dx` for blocks
///    with continuous state ([`Block::num_states`] > 0).
/// 3. **Event pass** — [`Block::on_event`] runs when an activation event
///    arrives on one of the block's event inputs; this is where discrete
///    state advances and new events are emitted.
///
/// Implementors must also provide the two `as_any` accessors (used to
/// recover concrete block types after a simulation); the
/// [`impl_block_any!`](crate::impl_block_any) macro writes them for you.
///
/// Blocks are `Send` so a whole [`Model`](crate::Model) — and therefore a
/// co-simulation — can be built on one thread and run on another, which
/// is what the scenario-sweep worker pool does. Blocks are plain state
/// machines; none needs shared interior mutability.
pub trait Block: Send + 'static {
    /// A short, stable name of the block *type* (e.g. `"SampleHold"`).
    fn type_name(&self) -> &'static str;

    /// The port counts of this block instance.
    fn ports(&self) -> PortSpec;

    /// `true` if some regular output depends *directly* (at the same
    /// instant) on regular input `input`. Used for algebraic-loop detection
    /// and evaluation ordering. Defaults to `true` (conservative); blocks
    /// whose outputs read only internal state (integrators, delays,
    /// sample-and-hold) should return `false`.
    fn feedthrough(&self, input: usize) -> bool {
        let _ = input;
        true
    }

    /// Number of continuous states integrated by the engine.
    fn num_states(&self) -> usize {
        0
    }

    /// Writes the initial continuous state into `x`
    /// (`x.len() == self.num_states()`). Defaults to zeros.
    fn init_states(&self, x: &mut [f64]) {
        for xi in x {
            *xi = 0.0;
        }
    }

    /// Writes the state derivative at time `t` (seconds) into `dx`.
    ///
    /// Only called when [`Block::num_states`] is non-zero.
    fn derivatives(&self, t: f64, x: &[f64], inputs: &[f64], dx: &mut [f64]) {
        let _ = (t, x, inputs);
        for d in dx {
            *d = 0.0;
        }
    }

    /// Computes the block's regular outputs at time `t` (seconds).
    ///
    /// Must be idempotent (see the trait-level docs). Defaults to leaving
    /// the outputs untouched, which is correct for blocks without regular
    /// outputs.
    fn outputs(&mut self, t: f64, x: &[f64], inputs: &[f64], outputs: &mut [f64]) {
        let _ = (t, x, inputs, outputs);
    }

    /// Called once before simulation starts; the usual place for activation
    /// sources to schedule their first emission.
    fn on_start(&mut self, actions: &mut EventActions) {
        let _ = actions;
    }

    /// Called when an activation event arrives on event input `port` at
    /// instant `t`. Discrete state advances here; emissions are queued on
    /// `ctx.actions`.
    fn on_event(&mut self, port: usize, t: TimeNs, ctx: &mut EventCtx<'_>) {
        let _ = (port, t, ctx);
    }

    /// Upcast for post-simulation downcasting. Write it with
    /// [`impl_block_any!`](crate::impl_block_any).
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for post-simulation downcasting.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Implements the boilerplate [`Block::as_any`] / [`Block::as_any_mut`]
/// pair inside a `Block` impl.
///
/// # Examples
///
/// ```
/// use ecl_sim::{Block, PortSpec};
///
/// struct Null;
/// impl Block for Null {
///     fn type_name(&self) -> &'static str { "Null" }
///     fn ports(&self) -> PortSpec { PortSpec::default() }
///     ecl_sim::impl_block_any!();
/// }
/// ```
#[macro_export]
macro_rules! impl_block_any {
    () => {
        fn as_any(&self) -> &dyn ::std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn ::std::any::Any {
            self
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Block for Nop {
        fn type_name(&self) -> &'static str {
            "Nop"
        }
        fn ports(&self) -> PortSpec {
            PortSpec::siso(1, 1)
        }
        impl_block_any!();
    }

    #[test]
    fn port_spec_helpers() {
        assert_eq!(PortSpec::source(2), PortSpec::new(0, 2, 0, 0));
        assert_eq!(PortSpec::sink(3), PortSpec::new(3, 0, 0, 0));
        assert_eq!(PortSpec::siso(1, 2), PortSpec::new(1, 2, 0, 0));
        assert_eq!(PortSpec::event_source(1), PortSpec::new(0, 0, 0, 1));
        assert_eq!(PortSpec::event_sink(2), PortSpec::new(0, 0, 2, 0));
        assert_eq!(PortSpec::event_pipe(2, 1), PortSpec::new(0, 0, 2, 1));
    }

    #[test]
    fn default_trait_methods() {
        let mut b = Nop;
        assert!(b.feedthrough(0));
        assert_eq!(b.num_states(), 0);
        let mut x = [1.0, 2.0];
        b.init_states(&mut x);
        assert_eq!(x, [0.0, 0.0]);
        let mut dx = [5.0];
        b.derivatives(0.0, &[], &[], &mut dx);
        assert_eq!(dx, [0.0]);
        // default on_start / on_event do nothing
        let mut actions = EventActions::new();
        b.on_start(&mut actions);
        assert!(actions.is_empty());
    }

    #[test]
    fn event_actions_collect() {
        let mut a = EventActions::new();
        assert!(a.is_empty());
        a.emit(0, TimeNs::ZERO);
        a.emit(1, TimeNs::from_millis(5));
        assert_eq!(a.len(), 2);
        assert_eq!(
            a.emissions,
            vec![(0, TimeNs::ZERO), (1, TimeNs::from_millis(5))]
        );
        a.emissions.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn downcast_via_as_any() {
        let b: Box<dyn Block> = Box::new(Nop);
        assert!(b.as_any().downcast_ref::<Nop>().is_some());
    }
}
