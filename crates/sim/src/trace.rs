//! Simulation outputs: recorded signals and the event log.

use std::fmt;

use crate::model::BlockId;
use crate::time::TimeNs;

/// Handle to a probe registered with [`Model::probe`](crate::Model::probe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProbeId(usize);

impl ProbeId {
    /// Creates a `ProbeId` from a raw index (mainly useful in tests).
    pub const fn from_index(index: usize) -> Self {
        ProbeId(index)
    }

    /// The raw index of this probe.
    pub const fn index(self) -> usize {
        self.0
    }
}

/// A recorded scalar signal: parallel `(time, value)` samples, sorted by
/// time (ties allowed — discontinuities at event instants record both the
/// pre- and post-event value).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Signal {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl Signal {
    /// Creates an empty signal.
    pub fn new() -> Self {
        Signal::default()
    }

    /// Builds a signal from parallel sample vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors disagree in length.
    pub fn from_samples(times: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(times.len(), values.len(), "sample vectors disagree");
        Signal { times, values }
    }

    /// Appends one sample. Time must be non-decreasing (debug-asserted).
    pub fn push(&mut self, t: f64, v: f64) {
        debug_assert!(
            self.times.last().is_none_or(|&last| t >= last),
            "samples must be time-ordered"
        );
        self.times.push(t);
        self.values.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample times (seconds).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// The last sample, if any.
    pub fn last(&self) -> Option<(f64, f64)> {
        match (self.times.last(), self.values.last()) {
            (Some(&t), Some(&v)) => Some((t, v)),
            _ => None,
        }
    }

    /// Linear interpolation at time `t`; clamps outside the recorded range.
    ///
    /// Returns `None` if the signal is empty.
    pub fn sample(&self, t: f64) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        if t <= self.times[0] {
            return Some(self.values[0]);
        }
        if t >= *self.times.last().expect("non-empty") {
            return Some(*self.values.last().expect("non-empty"));
        }
        // Binary search for the bracketing interval.
        let idx = self.times.partition_point(|&x| x <= t);
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let (v0, v1) = (self.values[idx - 1], self.values[idx]);
        if t1 == t0 {
            return Some(v1);
        }
        Some(v0 + (v1 - v0) * (t - t0) / (t1 - t0))
    }

    /// Maximum value, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Minimum value, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Renders the signal as two-column CSV (`t,value` with a header).
    pub fn to_csv(&self, name: &str) -> String {
        let mut s = format!("t,{name}\n");
        for (t, v) in self.iter() {
            s.push_str(&format!("{t:.9},{v:.9}\n"));
        }
        s
    }
}

/// One delivered activation: at `time`, `emitter`'s event output `out_port`
/// activated event input `port` of block `target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Delivery instant.
    pub time: TimeNs,
    /// Block whose emission fired.
    pub emitter: BlockId,
    /// Event-output port of the emitter.
    pub out_port: usize,
    /// Activated block.
    pub target: BlockId,
    /// Event-input port of the target that received the activation.
    pub port: usize,
}

impl fmt::Display for EventRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}.{} -> {}.{}",
            self.time, self.emitter, self.out_port, self.target, self.port
        )
    }
}

/// Everything a simulation run produced: probe recordings and the event
/// log.
#[derive(Debug, Clone, Default)]
pub struct SimResult {
    pub(crate) signals: Vec<(String, Signal)>,
    pub(crate) events: Vec<EventRecord>,
    pub(crate) end_time: TimeNs,
}

impl SimResult {
    /// The recording of the probe registered under `name`, if any.
    pub fn signal(&self, name: &str) -> Option<&Signal> {
        self.signals.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// All `(name, signal)` recordings.
    pub fn signals(&self) -> impl Iterator<Item = (&str, &Signal)> {
        self.signals.iter().map(|(n, s)| (n.as_str(), s))
    }

    /// The full event log, in delivery order.
    pub fn event_log(&self) -> &[EventRecord] {
        &self.events
    }

    /// Delivery instants of activations received by `target` (optionally on
    /// one specific event-input `port`).
    pub fn activation_times(&self, target: BlockId, port: Option<usize>) -> Vec<TimeNs> {
        self.events
            .iter()
            .filter(|e| e.target == target && port.is_none_or(|p| e.port == p))
            .map(|e| e.time)
            .collect()
    }

    /// The instant at which the run stopped.
    pub fn end_time(&self) -> TimeNs {
        self.end_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_push_and_iter() {
        let mut s = Signal::new();
        s.push(0.0, 1.0);
        s.push(1.0, 3.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.last(), Some((1.0, 3.0)));
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs, vec![(0.0, 1.0), (1.0, 3.0)]);
        assert_eq!(s.max(), Some(3.0));
        assert_eq!(s.min(), Some(1.0));
    }

    #[test]
    fn sample_interpolates_and_clamps() {
        let s = Signal::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 0.0]);
        assert_eq!(s.sample(0.5), Some(5.0));
        assert_eq!(s.sample(1.5), Some(5.0));
        assert_eq!(s.sample(-1.0), Some(0.0));
        assert_eq!(s.sample(9.0), Some(0.0));
        assert_eq!(Signal::new().sample(0.0), None);
    }

    #[test]
    fn sample_handles_duplicate_times() {
        // A discontinuity recorded as two samples at the same instant.
        let s = Signal::from_samples(vec![0.0, 1.0, 1.0, 2.0], vec![0.0, 0.0, 5.0, 5.0]);
        assert_eq!(s.sample(1.0), Some(5.0));
        assert_eq!(s.sample(0.5), Some(0.0));
        assert_eq!(s.sample(1.5), Some(5.0));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let s = Signal::from_samples(vec![0.0], vec![2.0]);
        let csv = s.to_csv("y");
        assert!(csv.starts_with("t,y\n"));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn result_signal_lookup() {
        let mut r = SimResult::default();
        r.signals.push(("y".into(), Signal::new()));
        assert!(r.signal("y").is_some());
        assert!(r.signal("z").is_none());
        assert_eq!(r.signals().count(), 1);
    }

    #[test]
    fn activation_times_filters() {
        let mut r = SimResult::default();
        let a = BlockId::from_index(0);
        let b = BlockId::from_index(1);
        for (i, tgt) in [(0, a), (1, b), (2, a)] {
            r.events.push(EventRecord {
                time: TimeNs::from_millis(i),
                emitter: b,
                out_port: 0,
                target: tgt,
                port: (i % 2) as usize,
            });
        }
        assert_eq!(r.activation_times(a, None).len(), 2);
        assert_eq!(r.activation_times(a, Some(0)).len(), 2);
        assert_eq!(r.activation_times(b, Some(1)).len(), 1);
    }

    #[test]
    fn event_record_display() {
        let e = EventRecord {
            time: TimeNs::from_millis(1),
            emitter: BlockId::from_index(0),
            out_port: 0,
            target: BlockId::from_index(1),
            port: 2,
        };
        assert_eq!(e.to_string(), "1.000ms: #0.0 -> #1.2");
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn from_samples_checks_lengths() {
        let _ = Signal::from_samples(vec![0.0], vec![]);
    }
}
