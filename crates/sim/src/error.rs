use std::error::Error;
use std::fmt;

use crate::time::TimeNs;

/// Errors produced while building or running a simulation model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A block id did not refer to a block of this model.
    UnknownBlock {
        /// The offending block index.
        index: usize,
    },
    /// A port index exceeded the block's declared port count.
    InvalidPort {
        /// Name of the block whose port was referenced.
        block: String,
        /// Port kind: `"input"`, `"output"`, `"event input"`, `"event output"`.
        kind: &'static str,
        /// The offending port index.
        port: usize,
        /// Number of ports of that kind the block declares.
        count: usize,
    },
    /// A regular input already has a driver (signals are single-writer).
    InputAlreadyDriven {
        /// Name of the block whose input is doubly driven.
        block: String,
        /// The input port index.
        port: usize,
    },
    /// The feedthrough graph contains an algebraic loop.
    AlgebraicLoop {
        /// Names of blocks participating in the cycle.
        blocks: Vec<String>,
    },
    /// A regular input was left unconnected.
    UnconnectedInput {
        /// Name of the block with the dangling input.
        block: String,
        /// The input port index.
        port: usize,
    },
    /// A block tried to emit on an event-output port it does not declare.
    InvalidEmit {
        /// Name of the emitting block.
        block: String,
        /// The event-output port index used.
        port: usize,
        /// Number of event outputs the block declares.
        count: usize,
    },
    /// A block emitted an event with a negative delay.
    NegativeDelay {
        /// Name of the emitting block.
        block: String,
        /// The (negative) requested delay.
        delay: TimeNs,
    },
    /// Too many events fired at one instant — almost certainly a zero-delay
    /// event loop in the model.
    EventCascadeOverflow {
        /// The instant at which the cascade diverged.
        time: TimeNs,
        /// The cascade limit that was exceeded.
        limit: usize,
    },
    /// The adaptive integrator could not meet its tolerance even at the
    /// minimum step size.
    IntegrationFailure {
        /// Simulation time at which integration failed.
        time: f64,
        /// Explanation (step underflow, non-finite derivative, ...).
        reason: String,
    },
    /// A simulation was asked to run backwards or past `TimeNs::MAX`.
    InvalidHorizon {
        /// Current simulation time.
        now: TimeNs,
        /// Requested end time.
        until: TimeNs,
    },
    /// Model construction data was inconsistent.
    InvalidModel {
        /// Explanation of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownBlock { index } => write!(f, "unknown block id {index}"),
            SimError::InvalidPort {
                block,
                kind,
                port,
                count,
            } => write!(
                f,
                "block '{block}' has {count} {kind} port(s), index {port} is out of range"
            ),
            SimError::InputAlreadyDriven { block, port } => write!(
                f,
                "input {port} of block '{block}' is already driven by another signal"
            ),
            SimError::AlgebraicLoop { blocks } => {
                write!(f, "algebraic loop through blocks: {}", blocks.join(" -> "))
            }
            SimError::UnconnectedInput { block, port } => {
                write!(f, "input {port} of block '{block}' is not connected")
            }
            SimError::InvalidEmit { block, port, count } => write!(
                f,
                "block '{block}' emitted on event output {port} but declares only {count}"
            ),
            SimError::NegativeDelay { block, delay } => {
                write!(f, "block '{block}' emitted an event with negative delay {delay}")
            }
            SimError::EventCascadeOverflow { time, limit } => write!(
                f,
                "more than {limit} events at instant {time}; the model likely contains a zero-delay event loop"
            ),
            SimError::IntegrationFailure { time, reason } => {
                write!(f, "integration failed at t = {time:.9}s: {reason}")
            }
            SimError::InvalidHorizon { now, until } => {
                write!(f, "cannot run from {now} to earlier/invalid instant {until}")
            }
            SimError::InvalidModel { reason } => write!(f, "invalid model: {reason}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = vec![
            SimError::UnknownBlock { index: 3 },
            SimError::InvalidPort {
                block: "b".into(),
                kind: "input",
                port: 2,
                count: 1,
            },
            SimError::InputAlreadyDriven {
                block: "b".into(),
                port: 0,
            },
            SimError::AlgebraicLoop {
                blocks: vec!["a".into(), "b".into()],
            },
            SimError::UnconnectedInput {
                block: "b".into(),
                port: 0,
            },
            SimError::InvalidEmit {
                block: "b".into(),
                port: 1,
                count: 0,
            },
            SimError::NegativeDelay {
                block: "b".into(),
                delay: TimeNs::from_nanos(-5),
            },
            SimError::EventCascadeOverflow {
                time: TimeNs::ZERO,
                limit: 100,
            },
            SimError::IntegrationFailure {
                time: 0.5,
                reason: "step underflow".into(),
            },
            SimError::InvalidHorizon {
                now: TimeNs::from_secs(1),
                until: TimeNs::ZERO,
            },
            SimError::InvalidModel {
                reason: "empty".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
