use std::fmt;

use crate::block::{Block, PortSpec};
use crate::error::SimError;
use crate::trace::ProbeId;

/// Handle to a block inside a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(usize);

impl BlockId {
    /// Creates a `BlockId` from a raw index. Only meaningful for ids handed
    /// out by [`Model::add_block`]; mainly useful in tests.
    pub const fn from_index(index: usize) -> Self {
        BlockId(index)
    }

    /// The raw index of this block.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

pub(crate) struct Entry {
    pub(crate) name: String,
    pub(crate) block: Box<dyn Block>,
    pub(crate) spec: PortSpec,
}

impl fmt::Debug for Entry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Entry")
            .field("name", &self.name)
            .field("type", &self.block.type_name())
            .field("spec", &self.spec)
            .finish()
    }
}

/// A signal connection `src.out -> dst.inp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SigConn {
    pub(crate) src: BlockId,
    pub(crate) out: usize,
    pub(crate) dst: BlockId,
    pub(crate) inp: usize,
}

/// An event connection `src.event_out -> dst.event_in`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EvtConn {
    pub(crate) src: BlockId,
    pub(crate) out: usize,
    pub(crate) dst: BlockId,
    pub(crate) inp: usize,
}

#[derive(Debug, Clone)]
pub(crate) struct Probe {
    pub(crate) name: String,
    pub(crate) block: BlockId,
    pub(crate) out: usize,
}

/// A block-diagram model: blocks plus signal and event wiring.
///
/// Build a model with [`Model::add_block`], [`Model::connect`] (signals) and
/// [`Model::connect_event`] (activations), register [`Model::probe`]s on the
/// outputs you want recorded, then hand it to
/// [`Simulator::new`](crate::Simulator::new).
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Default)]
pub struct Model {
    pub(crate) entries: Vec<Entry>,
    pub(crate) sig_conns: Vec<SigConn>,
    pub(crate) evt_conns: Vec<EvtConn>,
    pub(crate) probes: Vec<Probe>,
}

impl fmt::Debug for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Model")
            .field("blocks", &self.entries.len())
            .field("signal_connections", &self.sig_conns.len())
            .field("event_connections", &self.evt_conns.len())
            .field("probes", &self.probes.len())
            .finish()
    }
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Adds a block under an instance `name` and returns its handle.
    ///
    /// Names need not be unique, but unique names make event logs and error
    /// messages much easier to read.
    pub fn add_block(&mut self, name: impl Into<String>, block: impl Block) -> BlockId {
        let spec = block.ports();
        self.entries.push(Entry {
            name: name.into(),
            block: Box::new(block),
            spec,
        });
        BlockId(self.entries.len() - 1)
    }

    /// Number of blocks in the model.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the model has no blocks.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The instance name of a block.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownBlock`] for a foreign id.
    pub fn name(&self, id: BlockId) -> Result<&str, SimError> {
        self.entry(id).map(|e| e.name.as_str())
    }

    /// The port spec of a block.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownBlock`] for a foreign id.
    pub fn ports(&self, id: BlockId) -> Result<PortSpec, SimError> {
        self.entry(id).map(|e| e.spec)
    }

    /// Downcasts a block to its concrete type.
    ///
    /// Returns `None` if the id is unknown or the type does not match.
    pub fn block_as<T: Block>(&self, id: BlockId) -> Option<&T> {
        self.entries
            .get(id.0)
            .and_then(|e| e.block.as_any().downcast_ref::<T>())
    }

    /// Mutable variant of [`Model::block_as`].
    pub fn block_as_mut<T: Block>(&mut self, id: BlockId) -> Option<&mut T> {
        self.entries
            .get_mut(id.0)
            .and_then(|e| e.block.as_any_mut().downcast_mut::<T>())
    }

    /// Connects signal output `out` of `src` to signal input `inp` of `dst`.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownBlock`] for a foreign id.
    /// * [`SimError::InvalidPort`] if either port index is out of range.
    /// * [`SimError::InputAlreadyDriven`] if the destination input already
    ///   has a driver (signals are single-writer).
    pub fn connect(
        &mut self,
        src: BlockId,
        out: usize,
        dst: BlockId,
        inp: usize,
    ) -> Result<(), SimError> {
        let src_e = self.entry(src)?;
        if out >= src_e.spec.outputs {
            return Err(SimError::InvalidPort {
                block: src_e.name.clone(),
                kind: "output",
                port: out,
                count: src_e.spec.outputs,
            });
        }
        let dst_e = self.entry(dst)?;
        if inp >= dst_e.spec.inputs {
            return Err(SimError::InvalidPort {
                block: dst_e.name.clone(),
                kind: "input",
                port: inp,
                count: dst_e.spec.inputs,
            });
        }
        if self.sig_conns.iter().any(|c| c.dst == dst && c.inp == inp) {
            return Err(SimError::InputAlreadyDriven {
                block: dst_e.name.clone(),
                port: inp,
            });
        }
        self.sig_conns.push(SigConn { src, out, dst, inp });
        Ok(())
    }

    /// Connects event output `out` of `src` to event input `inp` of `dst`.
    ///
    /// One event output may feed any number of event inputs (broadcast), and
    /// one event input may be fed by several outputs (merge).
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownBlock`] for a foreign id.
    /// * [`SimError::InvalidPort`] if either port index is out of range.
    pub fn connect_event(
        &mut self,
        src: BlockId,
        out: usize,
        dst: BlockId,
        inp: usize,
    ) -> Result<(), SimError> {
        let src_e = self.entry(src)?;
        if out >= src_e.spec.event_outputs {
            return Err(SimError::InvalidPort {
                block: src_e.name.clone(),
                kind: "event output",
                port: out,
                count: src_e.spec.event_outputs,
            });
        }
        let dst_e = self.entry(dst)?;
        if inp >= dst_e.spec.event_inputs {
            return Err(SimError::InvalidPort {
                block: dst_e.name.clone(),
                kind: "event input",
                port: inp,
                count: dst_e.spec.event_inputs,
            });
        }
        self.evt_conns.push(EvtConn { src, out, dst, inp });
        Ok(())
    }

    /// Registers a recorded probe on signal output `out` of `block`.
    ///
    /// The engine samples every probe at each accepted integration step and
    /// after every event cascade; retrieve the recording with
    /// [`SimResult::signal`](crate::SimResult::signal) under `name`.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownBlock`] for a foreign id.
    /// * [`SimError::InvalidPort`] if the port index is out of range.
    /// * [`SimError::InvalidModel`] if a probe with the same name exists.
    pub fn probe(
        &mut self,
        name: impl Into<String>,
        block: BlockId,
        out: usize,
    ) -> Result<ProbeId, SimError> {
        let name = name.into();
        let e = self.entry(block)?;
        if out >= e.spec.outputs {
            return Err(SimError::InvalidPort {
                block: e.name.clone(),
                kind: "output",
                port: out,
                count: e.spec.outputs,
            });
        }
        if self.probes.iter().any(|p| p.name == name) {
            return Err(SimError::InvalidModel {
                reason: format!("duplicate probe name '{name}'"),
            });
        }
        self.probes.push(Probe { name, block, out });
        Ok(ProbeId::from_index(self.probes.len() - 1))
    }

    pub(crate) fn entry(&self, id: BlockId) -> Result<&Entry, SimError> {
        self.entries
            .get(id.0)
            .ok_or(SimError::UnknownBlock { index: id.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{EventActions, EventCtx};
    use crate::impl_block_any;
    use crate::time::TimeNs;

    struct Gain(f64);
    impl Block for Gain {
        fn type_name(&self) -> &'static str {
            "Gain"
        }
        fn ports(&self) -> PortSpec {
            PortSpec::siso(1, 1)
        }
        fn outputs(&mut self, _t: f64, _x: &[f64], u: &[f64], y: &mut [f64]) {
            y[0] = self.0 * u[0];
        }
        impl_block_any!();
    }

    struct Src;
    impl Block for Src {
        fn type_name(&self) -> &'static str {
            "Src"
        }
        fn ports(&self) -> PortSpec {
            PortSpec::source(1)
        }
        fn outputs(&mut self, _t: f64, _x: &[f64], _u: &[f64], y: &mut [f64]) {
            y[0] = 1.0;
        }
        impl_block_any!();
    }

    struct Evt;
    impl Block for Evt {
        fn type_name(&self) -> &'static str {
            "Evt"
        }
        fn ports(&self) -> PortSpec {
            PortSpec::event_pipe(1, 1)
        }
        fn on_event(&mut self, _p: usize, _t: TimeNs, _ctx: &mut EventCtx<'_>) {}
        fn on_start(&mut self, _a: &mut EventActions) {}
        impl_block_any!();
    }

    #[test]
    fn add_and_lookup() {
        let mut m = Model::new();
        let g = m.add_block("g", Gain(2.0));
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
        assert_eq!(m.name(g).unwrap(), "g");
        assert_eq!(m.ports(g).unwrap(), PortSpec::siso(1, 1));
        assert!(m.block_as::<Gain>(g).is_some());
        assert!(m.block_as::<Src>(g).is_none());
        m.block_as_mut::<Gain>(g).unwrap().0 = 3.0;
        assert_eq!(m.block_as::<Gain>(g).unwrap().0, 3.0);
    }

    #[test]
    fn unknown_block_errors() {
        let m = Model::new();
        let ghost = BlockId::from_index(7);
        assert!(matches!(m.name(ghost), Err(SimError::UnknownBlock { .. })));
        assert!(m.block_as::<Gain>(ghost).is_none());
    }

    #[test]
    fn connect_validates_ports() {
        let mut m = Model::new();
        let s = m.add_block("s", Src);
        let g = m.add_block("g", Gain(1.0));
        assert!(m.connect(s, 0, g, 0).is_ok());
        assert!(matches!(
            m.connect(s, 1, g, 0),
            Err(SimError::InvalidPort { kind: "output", .. })
        ));
        assert!(matches!(
            m.connect(s, 0, g, 1),
            Err(SimError::InvalidPort { kind: "input", .. })
        ));
    }

    #[test]
    fn double_driver_rejected() {
        let mut m = Model::new();
        let s1 = m.add_block("s1", Src);
        let s2 = m.add_block("s2", Src);
        let g = m.add_block("g", Gain(1.0));
        m.connect(s1, 0, g, 0).unwrap();
        assert!(matches!(
            m.connect(s2, 0, g, 0),
            Err(SimError::InputAlreadyDriven { .. })
        ));
    }

    #[test]
    fn event_connect_validates_ports() {
        let mut m = Model::new();
        let a = m.add_block("a", Evt);
        let b = m.add_block("b", Evt);
        assert!(m.connect_event(a, 0, b, 0).is_ok());
        assert!(m.connect_event(a, 1, b, 0).is_err());
        assert!(m.connect_event(a, 0, b, 1).is_err());
        // broadcast and merge are both fine
        assert!(m.connect_event(a, 0, b, 0).is_ok());
        assert!(m.connect_event(b, 0, a, 0).is_ok());
    }

    #[test]
    fn probe_registration() {
        let mut m = Model::new();
        let s = m.add_block("s", Src);
        assert!(m.probe("y", s, 0).is_ok());
        assert!(matches!(
            m.probe("y", s, 0),
            Err(SimError::InvalidModel { .. })
        ));
        assert!(matches!(
            m.probe("z", s, 3),
            Err(SimError::InvalidPort { .. })
        ));
    }

    #[test]
    fn block_id_display_and_index() {
        let id = BlockId::from_index(4);
        assert_eq!(id.index(), 4);
        assert_eq!(id.to_string(), "#4");
    }

    #[test]
    fn model_debug_summary() {
        let mut m = Model::new();
        m.add_block("s", Src);
        let dbg = format!("{m:?}");
        assert!(dbg.contains("blocks"));
    }
}
