use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Simulation time as a signed integer nanosecond count.
///
/// All event instants — activation clocks, SynDEx schedule start/end times,
/// graph-of-delays emissions — are integer nanoseconds, giving a totally
/// ordered, drift-free event calendar. Differences of instants (latencies,
/// durations) use the same type; negative values are legal and represent
/// instants before the simulation origin or negative offsets.
///
/// Conversion to `f64` seconds ([`TimeNs::as_secs_f64`]) happens only at the
/// boundary with the continuous-time ODE solver.
///
/// # Examples
///
/// ```
/// use ecl_sim::TimeNs;
///
/// let period = TimeNs::from_millis(10);
/// let third_tick = period * 3;
/// assert_eq!(third_tick.as_nanos(), 30_000_000);
/// assert!(period < third_tick);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimeNs(i64);

impl TimeNs {
    /// The zero instant (simulation origin).
    pub const ZERO: TimeNs = TimeNs(0);
    /// The largest representable instant.
    pub const MAX: TimeNs = TimeNs(i64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: i64) -> Self {
        TimeNs(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: i64) -> Self {
        TimeNs(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        TimeNs(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: i64) -> Self {
        TimeNs(s * 1_000_000_000)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not finite or overflows the `i64` nanosecond range
    /// (≈ ±292 years).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite(), "time must be finite, got {s}");
        let ns = (s * 1e9).round();
        assert!(
            ns >= i64::MIN as f64 && ns <= i64::MAX as f64,
            "time {s} s overflows the nanosecond range"
        );
        TimeNs(ns as i64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> i64 {
        self.0
    }

    /// This instant in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// `true` if this is the zero instant.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `true` if strictly negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Saturating addition (clamps at the representable range).
    pub const fn saturating_add(self, other: TimeNs) -> TimeNs {
        TimeNs(self.0.saturating_add(other.0))
    }

    /// Checked addition; `None` on overflow.
    pub const fn checked_add(self, other: TimeNs) -> Option<TimeNs> {
        match self.0.checked_add(other.0) {
            Some(v) => Some(TimeNs(v)),
            None => None,
        }
    }

    /// Checked multiplication by an integer factor; `None` on overflow.
    pub const fn checked_mul(self, k: i64) -> Option<TimeNs> {
        match self.0.checked_mul(k) {
            Some(v) => Some(TimeNs(v)),
            None => None,
        }
    }

    /// The larger of two instants.
    pub fn max(self, other: TimeNs) -> TimeNs {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two instants.
    pub fn min(self, other: TimeNs) -> TimeNs {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Absolute value of this duration.
    pub const fn abs(self) -> TimeNs {
        TimeNs(self.0.abs())
    }
}

impl Add for TimeNs {
    type Output = TimeNs;
    fn add(self, rhs: TimeNs) -> TimeNs {
        TimeNs(self.0 + rhs.0)
    }
}

impl AddAssign for TimeNs {
    fn add_assign(&mut self, rhs: TimeNs) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeNs {
    type Output = TimeNs;
    fn sub(self, rhs: TimeNs) -> TimeNs {
        TimeNs(self.0 - rhs.0)
    }
}

impl SubAssign for TimeNs {
    fn sub_assign(&mut self, rhs: TimeNs) {
        self.0 -= rhs.0;
    }
}

impl Neg for TimeNs {
    type Output = TimeNs;
    fn neg(self) -> TimeNs {
        TimeNs(-self.0)
    }
}

impl Mul<i64> for TimeNs {
    type Output = TimeNs;
    fn mul(self, rhs: i64) -> TimeNs {
        TimeNs(self.0 * rhs)
    }
}

impl Div<i64> for TimeNs {
    type Output = TimeNs;
    fn div(self, rhs: i64) -> TimeNs {
        TimeNs(self.0 / rhs)
    }
}

impl Sum for TimeNs {
    fn sum<I: Iterator<Item = TimeNs>>(iter: I) -> TimeNs {
        TimeNs(iter.map(|t| t.0).sum())
    }
}

impl fmt::Display for TimeNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        let abs = ns.unsigned_abs();
        if abs >= 1_000_000_000 && abs.is_multiple_of(1_000_000) {
            write!(f, "{:.3}s", ns as f64 * 1e-9)
        } else if abs >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 * 1e-6)
        } else if abs >= 1_000 {
            write!(f, "{:.3}us", ns as f64 * 1e-3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(TimeNs::from_secs(1), TimeNs::from_millis(1000));
        assert_eq!(TimeNs::from_millis(1), TimeNs::from_micros(1000));
        assert_eq!(TimeNs::from_micros(1), TimeNs::from_nanos(1000));
        assert_eq!(TimeNs::from_secs_f64(0.25), TimeNs::from_millis(250));
    }

    #[test]
    fn secs_f64_roundtrip() {
        let t = TimeNs::from_secs_f64(1.234_567_891);
        assert!((t.as_secs_f64() - 1.234_567_891).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = TimeNs::from_millis(30);
        let b = TimeNs::from_millis(10);
        assert_eq!(a - b, TimeNs::from_millis(20));
        assert_eq!(a + b, TimeNs::from_millis(40));
        assert_eq!(b * 3, a);
        assert_eq!(a / 3, b);
        assert_eq!(-b, TimeNs::from_millis(-10));
        assert_eq!((-b).abs(), b);
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn ordering_and_sign() {
        assert!(TimeNs::ZERO.is_zero());
        assert!(TimeNs::from_nanos(-1).is_negative());
        assert!(TimeNs::from_nanos(1) > TimeNs::ZERO);
        assert_eq!(
            TimeNs::from_nanos(5).max(TimeNs::from_nanos(3)),
            TimeNs::from_nanos(5)
        );
        assert_eq!(
            TimeNs::from_nanos(5).min(TimeNs::from_nanos(3)),
            TimeNs::from_nanos(3)
        );
    }

    #[test]
    fn saturating_and_checked() {
        assert_eq!(
            TimeNs::MAX.saturating_add(TimeNs::from_nanos(1)),
            TimeNs::MAX
        );
        assert_eq!(TimeNs::MAX.checked_add(TimeNs::from_nanos(1)), None);
        assert_eq!(
            TimeNs::ZERO.checked_add(TimeNs::from_nanos(7)),
            Some(TimeNs::from_nanos(7))
        );
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(TimeNs::from_nanos(500).to_string(), "500ns");
        assert_eq!(TimeNs::from_micros(5).to_string(), "5.000us");
        assert_eq!(TimeNs::from_millis(5).to_string(), "5.000ms");
        assert_eq!(TimeNs::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: TimeNs = [TimeNs::from_millis(1), TimeNs::from_millis(2)]
            .into_iter()
            .sum();
        assert_eq!(total, TimeNs::from_millis(3));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn from_secs_f64_rejects_nan() {
        let _ = TimeNs::from_secs_f64(f64::NAN);
    }
}
