//! Hot-loop execution counters exposed by the engine.

use crate::model::BlockId;

/// Counters from the ODE integrator.
///
/// Maintained by [`crate::ode::integrate`] and accumulated across spans by
/// the engine. All counters are exact and deterministic for a given model
/// and horizon.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OdeStepStats {
    /// Steps whose error estimate met the tolerance (every RK4 step
    /// counts as accepted).
    pub steps_accepted: u64,
    /// Adaptive steps rejected and retried with a smaller `h` (always 0
    /// for fixed-step RK4).
    pub steps_rejected: u64,
    /// Right-hand-side evaluations (7 per RK45 attempt, 4 per RK4 step).
    pub rhs_evals: u64,
}

impl OdeStepStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: OdeStepStats) {
        self.steps_accepted += other.steps_accepted;
        self.steps_rejected += other.steps_rejected;
        self.rhs_evals += other.rhs_evals;
    }
}

/// Execution counters for one [`crate::Simulator`], accumulated across
/// `run` calls.
///
/// Everything here is a plain integer updated inline in the hot loops —
/// no allocation, no wall clock — so the counters are always on and
/// byte-identical across identical runs. (The kernel schedules all
/// discrete activity on the integer-nanosecond calendar and has no
/// zero-crossing root finder, so there is no zero-crossing iteration
/// count to report.)
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Event deliveries per block, indexed by `BlockId` index.
    activations: Vec<u64>,
    /// Total event deliveries across all blocks.
    pub events_delivered: u64,
    /// Distinct event instants processed.
    pub event_instants: u64,
    /// Largest number of pending events observed in the calendar.
    pub calendar_peak: usize,
    /// Largest same-instant delivery cascade (bounded by
    /// [`crate::SimOptions::cascade_limit`]).
    pub max_cascade: usize,
    /// Continuous spans handed to the ODE integrator.
    pub integration_spans: u64,
    /// Heap allocations observed on the event hot path — growths of the
    /// engine's reusable scratch buffers (the per-delivery emission
    /// queue). The kernel pre-sizes those buffers, so this stays 0 in
    /// steady state; a nonzero delta between identical runs is an
    /// allocation regression and is asserted against in tests and the
    /// E16 gate.
    pub hot_allocs: u64,
    /// Accumulated integrator counters.
    pub ode: OdeStepStats,
}

impl EngineStats {
    pub(crate) fn new(n_blocks: usize) -> Self {
        EngineStats {
            activations: vec![0; n_blocks],
            ..EngineStats::default()
        }
    }

    pub(crate) fn count_activation(&mut self, block_index: usize) {
        self.activations[block_index] += 1;
        self.events_delivered += 1;
    }

    /// Event deliveries to `block`.
    pub fn activations(&self, block: BlockId) -> u64 {
        self.activations.get(block.index()).copied().unwrap_or(0)
    }

    /// Per-block delivery counts, indexed by `BlockId` index.
    pub fn activation_counts(&self) -> &[u64] {
        &self.activations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = OdeStepStats {
            steps_accepted: 1,
            steps_rejected: 2,
            rhs_evals: 7,
        };
        a.merge(OdeStepStats {
            steps_accepted: 10,
            steps_rejected: 0,
            rhs_evals: 70,
        });
        assert_eq!(a.steps_accepted, 11);
        assert_eq!(a.steps_rejected, 2);
        assert_eq!(a.rhs_evals, 77);
    }

    #[test]
    fn activations_out_of_range_are_zero() {
        let s = EngineStats::new(2);
        assert_eq!(s.activations(BlockId::from_index(5)), 0);
        assert_eq!(s.activation_counts(), &[0, 0]);
    }
}
