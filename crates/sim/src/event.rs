//! The event calendar: a deterministic priority queue of scheduled
//! emissions.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::model::BlockId;
use crate::time::TimeNs;

/// A scheduled emission: at instant `time`, block `emitter` fires its event
/// output `out_port`, delivering an activation to every connected event
/// input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledEvent {
    /// The instant at which the emission fires.
    pub time: TimeNs,
    /// Tie-break sequence number (scheduling order) for determinism.
    pub seq: u64,
    /// The emitting block.
    pub emitter: BlockId,
    /// The emitting block's event-output port.
    pub out_port: usize,
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event calendar ordered by `(time, scheduling order)`.
///
/// Two events at the same instant pop in the order they were scheduled,
/// which makes zero-delay cascades reproducible.
///
/// # Examples
///
/// ```
/// use ecl_sim::{EventCalendar, TimeNs};
/// # use ecl_sim::{Model, Block, PortSpec};
/// let mut cal = EventCalendar::new();
/// let b = ecl_sim::BlockId::from_index(0);
/// cal.schedule(TimeNs::from_millis(2), b, 0);
/// cal.schedule(TimeNs::from_millis(1), b, 0);
/// assert_eq!(cal.peek_time(), Some(TimeNs::from_millis(1)));
/// ```
#[derive(Debug, Default)]
pub struct EventCalendar {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
}

impl EventCalendar {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        EventCalendar::default()
    }

    /// Schedules an emission and returns its sequence number.
    pub fn schedule(&mut self, time: TimeNs, emitter: BlockId, out_port: usize) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent {
            time,
            seq,
            emitter,
            out_port,
        });
        seq
    }

    /// The instant of the earliest scheduled emission, if any.
    pub fn peek_time(&self) -> Option<TimeNs> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest emission.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        self.heap.pop()
    }

    /// Number of pending emissions.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes every pending emission.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(i: usize) -> BlockId {
        BlockId::from_index(i)
    }

    #[test]
    fn pops_in_time_order() {
        let mut cal = EventCalendar::new();
        cal.schedule(TimeNs::from_millis(3), blk(0), 0);
        cal.schedule(TimeNs::from_millis(1), blk(1), 0);
        cal.schedule(TimeNs::from_millis(2), blk(2), 0);
        let order: Vec<_> = std::iter::from_fn(|| cal.pop())
            .map(|e| e.time.as_nanos() / 1_000_000)
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_pops_in_schedule_order() {
        let mut cal = EventCalendar::new();
        let t = TimeNs::from_millis(5);
        for i in 0..10 {
            cal.schedule(t, blk(i), 0);
        }
        let order: Vec<_> = std::iter::from_fn(|| cal.pop())
            .map(|e| e.emitter.index())
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut cal = EventCalendar::new();
        cal.schedule(TimeNs::from_millis(1), blk(0), 0);
        assert_eq!(cal.peek_time(), Some(TimeNs::from_millis(1)));
        assert_eq!(cal.len(), 1);
        assert!(!cal.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut cal = EventCalendar::new();
        cal.schedule(TimeNs::ZERO, blk(0), 0);
        cal.clear();
        assert!(cal.is_empty());
        assert_eq!(cal.peek_time(), None);
        assert!(cal.pop().is_none());
    }

    #[test]
    fn seq_numbers_monotone() {
        let mut cal = EventCalendar::new();
        let s1 = cal.schedule(TimeNs::ZERO, blk(0), 0);
        let s2 = cal.schedule(TimeNs::ZERO, blk(0), 0);
        assert!(s2 > s1);
    }
}
