//! Streaming fixed-bucket histograms for latency series.

use crate::bytes::{ByteReader, ByteWriter, CodecError};

/// A streaming histogram over integer-nanosecond values with fixed-width
/// buckets on `[0, upper_bound_ns)` plus underflow/overflow buckets.
///
/// `count`, `min`, `max` and the running sum are exact; percentiles are
/// bucket-resolution estimates **clamped to `[min, max]`**, so they can
/// never contradict the exact extrema (and are exact for constant
/// series). The sum accumulates in `i128`, which cannot overflow before
/// `count` itself wraps, so long co-simulations never wrap the mean.
///
/// # Examples
///
/// ```
/// use ecl_telemetry::Histogram;
///
/// let mut h = Histogram::new(1_000_000, 64);
/// for v in [250_000i64, 250_000, 250_000] {
///     h.record(v);
/// }
/// let s = h.summary();
/// assert_eq!(s.count, 3);
/// assert_eq!(s.p50_ns, 250_000); // clamped to the exact extrema
/// assert_eq!(s.min_ns, s.max_ns);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    upper_bound: i64,
    bucket_width: i64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: i128,
    min: i64,
    max: i64,
}

impl Histogram {
    /// A histogram with `buckets` equal-width buckets spanning
    /// `[0, upper_bound_ns)`.
    ///
    /// The bucket width is `upper_bound_ns / buckets` rounded up, so the
    /// last bucket may nominally extend past the bound; [`record`]
    /// nevertheless routes every `value_ns >= upper_bound_ns` to the
    /// overflow bucket, keeping the in-range buckets exactly on
    /// `[0, upper_bound_ns)`.
    ///
    /// # Panics
    ///
    /// Panics if `upper_bound_ns <= 0` or `buckets == 0`.
    ///
    /// [`record`]: Histogram::record
    pub fn new(upper_bound_ns: i64, buckets: usize) -> Self {
        assert!(upper_bound_ns > 0, "histogram needs a positive bound");
        assert!(buckets > 0, "histogram needs at least one bucket");
        let bucket_width = (upper_bound_ns + buckets as i64 - 1) / buckets as i64;
        Histogram {
            upper_bound: upper_bound_ns,
            bucket_width: bucket_width.max(1),
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0,
            min: i64::MAX,
            max: i64::MIN,
        }
    }

    /// Records one value (negative values land in the underflow bucket,
    /// values at or above the bound in the overflow bucket).
    pub fn record(&mut self, value_ns: i64) {
        self.count += 1;
        self.sum += i128::from(value_ns);
        self.min = self.min.min(value_ns);
        self.max = self.max.max(value_ns);
        if value_ns < 0 {
            self.underflow += 1;
        } else if value_ns >= self.upper_bound {
            // The ceil-rounded bucket width would otherwise count values
            // in [upper_bound, buckets·width) in the last bucket.
            self.overflow += 1;
        } else {
            let idx = (value_ns / self.bucket_width) as usize;
            match self.buckets.get_mut(idx) {
                Some(b) => *b += 1,
                None => self.overflow += 1,
            }
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The exclusive upper bound of the in-range buckets.
    pub fn upper_bound(&self) -> i64 {
        self.upper_bound
    }

    /// Number of recorded negative values.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Number of recorded values at or above the bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The per-bucket counts over `[0, upper_bound_ns)`.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Merges another histogram recorded with the same bound and bucket
    /// count into this one, as if every value had been recorded here —
    /// the sweep aggregator's fold over per-scenario histograms.
    ///
    /// # Panics
    ///
    /// Panics if the bound or bucket count differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            (self.upper_bound, self.buckets.len()),
            (other.upper_bound, other.buckets.len()),
            "histograms must share bound and bucket count to merge"
        );
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum, or `None` when empty.
    pub fn min(&self) -> Option<i64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum, or `None` when empty.
    pub fn max(&self) -> Option<i64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean (the `i128` running sum divided by the count), or
    /// `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Estimated `q`-quantile (`0 < q <= 1`), clamped to `[min, max]`;
    /// `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<i64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = self.underflow;
        if rank <= cumulative {
            return Some(self.min);
        }
        for (i, &b) in self.buckets.iter().enumerate() {
            cumulative += b;
            if rank <= cumulative {
                // Upper edge of the bucket — the last in-range bucket's
                // edge is the bound itself (in-range values are strictly
                // below it) — clamped to the exact extrema.
                let edge = ((i as i64 + 1) * self.bucket_width).min(self.upper_bound) - 1;
                return Some(edge.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Appends the histogram's full state to a [`ByteWriter`] (the
    /// content-addressed cache layer's layout; see [`decode_from`]).
    ///
    /// [`decode_from`]: Histogram::decode_from
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_i64(self.upper_bound);
        w.put_seq_len(self.buckets.len());
        for &b in &self.buckets {
            w.put_u64(b);
        }
        w.put_u64(self.underflow);
        w.put_u64(self.overflow);
        w.put_u64(self.count);
        w.put_i128(self.sum);
        w.put_i64(self.min);
        w.put_i64(self.max);
    }

    /// Reconstructs a histogram written by [`encode_into`], revalidating
    /// the structural invariants (`bucket_width` is re-derived from the
    /// bound exactly as [`new`] does, and the total count must equal the
    /// routed counts) so a corrupt cache file decodes to a typed error,
    /// never a histogram that lies.
    ///
    /// [`encode_into`]: Histogram::encode_into
    /// [`new`]: Histogram::new
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Histogram, CodecError> {
        let upper_bound = r.get_i64()?;
        if upper_bound <= 0 {
            return Err(CodecError::Invalid {
                reason: format!("histogram bound {upper_bound} must be positive"),
            });
        }
        let n = r.get_seq_len()?;
        if n == 0 {
            return Err(CodecError::Invalid {
                reason: "histogram needs buckets".into(),
            });
        }
        let mut buckets = Vec::with_capacity(n);
        for _ in 0..n {
            buckets.push(r.get_u64()?);
        }
        let underflow = r.get_u64()?;
        let overflow = r.get_u64()?;
        let count = r.get_u64()?;
        let sum = r.get_i128()?;
        let min = r.get_i64()?;
        let max = r.get_i64()?;
        let routed = buckets
            .iter()
            .try_fold(underflow + overflow, |acc, &b| acc.checked_add(b))
            .ok_or_else(|| CodecError::Invalid {
                reason: "histogram counts overflow".into(),
            })?;
        if routed != count {
            return Err(CodecError::Invalid {
                reason: format!("histogram count {count} != routed {routed}"),
            });
        }
        let bucket_width = ((upper_bound + n as i64 - 1) / n as i64).max(1);
        Ok(Histogram {
            upper_bound,
            bucket_width,
            buckets,
            underflow,
            overflow,
            count,
            sum,
            min,
            max,
        })
    }

    /// The standard summary (count, exact extrema/mean, p50/p95/p99).
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            min_ns: self.min().unwrap_or(0),
            max_ns: self.max().unwrap_or(0),
            mean_ns: self.mean().unwrap_or(0.0),
            p50_ns: self.percentile(0.50).unwrap_or(0),
            p95_ns: self.percentile(0.95).unwrap_or(0),
            p99_ns: self.percentile(0.99).unwrap_or(0),
        }
    }
}

/// Point-in-time digest of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of recorded values.
    pub count: u64,
    /// Exact minimum (0 when empty).
    pub min_ns: i64,
    /// Exact maximum (0 when empty).
    pub max_ns: i64,
    /// Exact mean (0 when empty).
    pub mean_ns: f64,
    /// Estimated median, clamped to `[min, max]`.
    pub p50_ns: i64,
    /// Estimated 95th percentile, clamped to `[min, max]`.
    pub p95_ns: i64,
    /// Estimated 99th percentile, clamped to `[min, max]`.
    pub p99_ns: i64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_series_is_exact() {
        let mut h = Histogram::new(1_000, 10);
        for _ in 0..100 {
            h.record(137);
        }
        let s = h.summary();
        assert_eq!((s.min_ns, s.max_ns), (137, 137));
        assert_eq!((s.p50_ns, s.p95_ns, s.p99_ns), (137, 137, 137));
        assert!((s.mean_ns - 137.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_monotone_and_clamped() {
        let mut h = Histogram::new(10_000, 16);
        for v in 0..1_000i64 {
            h.record(v * 7 % 10_000);
        }
        let s = h.summary();
        assert!(s.min_ns <= s.p50_ns);
        assert!(s.p50_ns <= s.p95_ns);
        assert!(s.p95_ns <= s.p99_ns);
        assert!(s.p99_ns <= s.max_ns);
    }

    #[test]
    fn underflow_and_overflow_hit_exact_extrema() {
        let mut h = Histogram::new(100, 4);
        h.record(-50);
        h.record(1_000_000);
        assert_eq!(h.percentile(0.01), Some(-50));
        assert_eq!(h.percentile(1.0), Some(1_000_000));
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn boundary_values_route_to_overflow() {
        // 1000/64 ceil-rounds to width 16, so buckets nominally span
        // [0, 1024): values in [1000, 1024) used to land in the last
        // bucket instead of overflow.
        let mut h = Histogram::new(1_000, 64);
        h.record(1_000); // exactly the bound
        h.record(1_023); // inside the rounding slack
        h.record(999); // last in-range value
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 1);
        assert_eq!(h.upper_bound(), 1_000);
    }

    #[test]
    fn percentile_edge_clamped_to_bound() {
        // Many values in the last in-range bucket: the estimated edge must
        // stay below the bound even though the rounded bucket extends to
        // 1024.
        let mut h = Histogram::new(1_000, 64);
        for _ in 0..100 {
            h.record(995);
        }
        // A wide-max series so the extrema clamp is not what saves us.
        h.record(5_000);
        let p50 = h.percentile(0.5).unwrap();
        assert!(p50 < 1_000, "p50 {p50} must stay below the bound");
    }

    #[test]
    fn percentile_with_non_empty_overflow() {
        let mut h = Histogram::new(100, 4);
        for _ in 0..10 {
            h.record(24); // upper edge of bucket 0 (width 25)
        }
        for _ in 0..10 {
            h.record(100); // all overflow
        }
        assert_eq!(h.overflow(), 10);
        // The upper half of the distribution is the exact max.
        assert_eq!(h.percentile(0.99), Some(100));
        assert_eq!(h.percentile(0.25), Some(24));
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let mut a = Histogram::new(1_000, 8);
        let mut b = Histogram::new(1_000, 8);
        a.record(-5);
        a.record(100);
        b.record(999);
        b.record(1_000);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.min(), Some(-5));
        assert_eq!(a.max(), Some(1_000));
        assert_eq!(
            a.count(),
            a.underflow() + a.bucket_counts().iter().sum::<u64>() + a.overflow()
        );
        // Merging an empty histogram changes nothing.
        let before = a.clone();
        a.merge(&Histogram::new(1_000, 8));
        assert_eq!(a, before);
    }

    #[test]
    #[should_panic(expected = "share bound")]
    fn merge_rejects_mismatched_shape() {
        let mut a = Histogram::new(1_000, 8);
        a.merge(&Histogram::new(500, 8));
    }

    #[test]
    fn codec_round_trips_exactly() {
        let mut h = Histogram::new(1_000, 64);
        for v in [-3i64, 0, 999, 1_000, 5_000, 137, 137] {
            h.record(v);
        }
        let mut w = ByteWriter::new();
        h.encode_into(&mut w);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        let back = Histogram::decode_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, h);
        // An empty histogram round-trips too.
        let empty = Histogram::new(17, 3);
        let mut w = ByteWriter::new();
        empty.encode_into(&mut w);
        let buf = w.into_bytes();
        assert_eq!(
            Histogram::decode_from(&mut ByteReader::new(&buf)).unwrap(),
            empty
        );
    }

    #[test]
    fn codec_rejects_corrupt_counts() {
        let mut h = Histogram::new(1_000, 4);
        h.record(10);
        let mut w = ByteWriter::new();
        h.encode_into(&mut w);
        let mut buf = w.into_bytes();
        // Flip the total-count field (after bound + len + 4 buckets +
        // under/overflow = 8 + 4 + 32 + 16 bytes).
        buf[60] ^= 0xff;
        assert!(matches!(
            Histogram::decode_from(&mut ByteReader::new(&buf)),
            Err(CodecError::Invalid { .. })
        ));
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = Histogram::new(100, 4);
        assert!(h.is_empty());
        assert_eq!(h.min(), None);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.summary().count, 0);
    }
}
