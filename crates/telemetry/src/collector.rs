//! The [`Collector`]: the handle instrumentation sites write through.

use crate::event::{Event, NoopSink, Sink};
use std::time::Instant;

/// Telemetry handle parameterized over its sink.
///
/// With [`NoopSink`] every emission and span-timing site is statically
/// disabled (guarded by `S::ENABLED`), so instrumented code paths cost
/// nothing; with [`crate::RecordingSink`] the full event stream is
/// captured.
#[derive(Debug)]
pub struct Collector<S: Sink> {
    sink: S,
    epoch: Instant,
}

impl Collector<NoopSink> {
    /// A collector that observes nothing and costs nothing.
    pub fn noop() -> Self {
        Collector::new(NoopSink)
    }
}

impl Default for Collector<NoopSink> {
    fn default() -> Self {
        Collector::noop()
    }
}

impl<S: Sink> Collector<S> {
    /// Wraps a sink; the wall-clock epoch for span offsets is now.
    pub fn new(sink: S) -> Self {
        Collector {
            sink,
            epoch: Instant::now(),
        }
    }

    /// Whether events are observed at all (false for [`NoopSink`]).
    pub fn enabled(&self) -> bool {
        S::ENABLED
    }

    /// Emits the event built by `build`; with a disabled sink the closure
    /// is never called, so event construction is free.
    pub fn emit(&mut self, build: impl FnOnce() -> Event) {
        if S::ENABLED {
            self.sink.record(build());
        }
    }

    /// Times `body` as a named phase, recording [`Event::SpanBegin`] /
    /// [`Event::SpanEnd`] with wall-clock offsets from the collector
    /// epoch. With a disabled sink this is exactly a call to `body`.
    pub fn span<T>(&mut self, name: &str, body: impl FnOnce(&mut Self) -> T) -> T {
        if !S::ENABLED {
            return body(self);
        }
        self.sink.record(Event::SpanBegin {
            name: name.to_string(),
            wall_ns: self.elapsed_ns(),
        });
        let out = body(self);
        self.sink.record(Event::SpanEnd {
            name: name.to_string(),
            wall_ns: self.elapsed_ns(),
        });
        out
    }

    /// Wall-clock nanoseconds since this collector was created.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Shared access to the sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Consumes the collector, returning the sink with everything it
    /// recorded.
    pub fn into_sink(self) -> S {
        self.sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RecordingSink;

    #[test]
    fn noop_collector_observes_nothing() {
        let mut tel = Collector::noop();
        let mut called = false;
        let v = tel.span("phase", |tel| {
            tel.emit(|| unreachable!("emit closure must not run for NoopSink"));
            called = true;
            7
        });
        assert_eq!(v, 7);
        assert!(called);
        assert!(!tel.enabled());
    }

    #[test]
    fn spans_nest_and_time() {
        let mut tel = Collector::new(RecordingSink::default());
        tel.span("outer", |tel| {
            tel.span("inner", |_| {});
        });
        let sink = tel.into_sink();
        let names: Vec<_> = sink
            .events()
            .iter()
            .map(|e| match e {
                Event::SpanBegin { name, .. } => format!("B:{name}"),
                Event::SpanEnd { name, .. } => format!("E:{name}"),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, ["B:outer", "B:inner", "E:inner", "E:outer"]);
        let durs = sink.span_durations();
        assert_eq!(durs[0].0, "inner");
        assert_eq!(durs[1].0, "outer");
        assert!(durs[1].1 >= durs[0].1);
    }
}
