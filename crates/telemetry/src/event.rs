//! Telemetry events and the sinks that consume them.

use std::fmt::Write as _;

/// One observability event.
///
/// Sim-derived variants ([`Event::Slice`], [`Event::Instant`],
/// [`Event::Counter`]) carry integer nanoseconds of *simulated* time and
/// are fully deterministic; only span variants carry wall-clock offsets
/// (nanoseconds since the owning collector's epoch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A timed phase opened (wall clock).
    SpanBegin {
        /// Phase name, e.g. `"adequation"`.
        name: String,
        /// Nanoseconds since the collector epoch.
        wall_ns: u64,
    },
    /// The most recently opened phase closed (wall clock).
    SpanEnd {
        /// Phase name; matches the corresponding [`Event::SpanBegin`].
        name: String,
        /// Nanoseconds since the collector epoch.
        wall_ns: u64,
    },
    /// A duration on a named track in simulated time, e.g. one scheduled
    /// operation's execution window on its processor.
    Slice {
        /// Track (e.g. `"proc:ecu0"` or `"bus:can"`).
        track: String,
        /// Displayed name of the slice.
        name: String,
        /// Start instant, simulated ns.
        start_ns: i64,
        /// End instant, simulated ns.
        end_ns: i64,
    },
    /// A zero-duration marker in simulated time.
    Instant {
        /// Track the marker belongs to.
        track: String,
        /// Displayed name.
        name: String,
        /// Instant, simulated ns.
        at_ns: i64,
    },
    /// A sampled counter value in simulated time, e.g. one latency
    /// observation `Ls_j(k)`.
    Counter {
        /// Counter series (e.g. `"Ls[0]"`).
        track: String,
        /// Displayed name.
        name: String,
        /// Sample instant, simulated ns.
        at_ns: i64,
        /// Sampled value, ns.
        value_ns: i64,
    },
}

/// A consumer of telemetry [`Event`]s.
///
/// The associated constant [`Sink::ENABLED`] lets instrumentation sites
/// guard event *construction*, not just delivery: with [`NoopSink`] the
/// whole emission expression is dead code the optimizer removes.
pub trait Sink {
    /// Whether this sink observes events at all.
    const ENABLED: bool = true;

    /// Consumes one event.
    fn record(&mut self, event: Event);
}

/// A sink that ignores everything; `ENABLED = false` compiles emission
/// sites away entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    const ENABLED: bool = false;

    fn record(&mut self, _event: Event) {}
}

/// A sink that stores every event in order, for tests and exporters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordingSink {
    events: Vec<Event>,
}

impl Sink for RecordingSink {
    fn record(&mut self, event: Event) {
        self.events.push(event);
    }
}

/// A sink adapter that prepends a fixed prefix to the track of every
/// sim-derived event before forwarding it.
///
/// Every co-simulation restarts at simulated time 0, so merging the
/// streams of several runs (the fleet's per-scenario traces) into one
/// collector would interleave colliding timestamps on identical tracks.
/// Namespacing each run's tracks (`s0:Ls[0]`, `s1:Ls[0]`, …) keeps
/// per-track timestamps monotone in the merged Chrome trace. Span events
/// are forwarded untouched — wall clock is already collector-global.
///
/// # Examples
///
/// ```
/// use ecl_telemetry::{Collector, Event, PrefixSink, RecordingSink};
///
/// let mut tel = Collector::new(PrefixSink::new("s3:", RecordingSink::default()));
/// tel.emit(|| Event::Instant { track: "La[0]".into(), name: "a".into(), at_ns: 5 });
/// let sink = tel.into_sink().into_inner();
/// assert_eq!(sink.render(), "instant s3:La[0] a @5\n");
/// ```
#[derive(Debug, Clone, Default)]
pub struct PrefixSink<S: Sink> {
    prefix: String,
    inner: S,
}

impl<S: Sink> PrefixSink<S> {
    /// Wraps `inner`, prefixing every event track with `prefix`.
    pub fn new(prefix: impl Into<String>, inner: S) -> Self {
        PrefixSink {
            prefix: prefix.into(),
            inner,
        }
    }

    /// The wrapped sink with everything it recorded.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Shared access to the wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: Sink> Sink for PrefixSink<S> {
    const ENABLED: bool = S::ENABLED;

    fn record(&mut self, event: Event) {
        let prefixed = match event {
            Event::Slice {
                track,
                name,
                start_ns,
                end_ns,
            } => Event::Slice {
                track: format!("{}{track}", self.prefix),
                name,
                start_ns,
                end_ns,
            },
            Event::Instant { track, name, at_ns } => Event::Instant {
                track: format!("{}{track}", self.prefix),
                name,
                at_ns,
            },
            Event::Counter {
                track,
                name,
                at_ns,
                value_ns,
            } => Event::Counter {
                track: format!("{}{track}", self.prefix),
                name,
                at_ns,
                value_ns,
            },
            span @ (Event::SpanBegin { .. } | Event::SpanEnd { .. }) => span,
        };
        self.inner.record(prefixed);
    }
}

impl RecordingSink {
    /// The recorded events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Appends every event of `other`, in order — merging per-scenario
    /// streams whose tracks were namespaced with [`PrefixSink`].
    pub fn absorb(&mut self, other: RecordingSink) {
        self.events.extend(other.events);
    }

    /// Renders the stream one line per event in a stable text format,
    /// suitable for byte-for-byte determinism comparisons.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            match ev {
                Event::SpanBegin { name, wall_ns } => {
                    let _ = writeln!(out, "span-begin {name} wall={wall_ns}");
                }
                Event::SpanEnd { name, wall_ns } => {
                    let _ = writeln!(out, "span-end {name} wall={wall_ns}");
                }
                Event::Slice {
                    track,
                    name,
                    start_ns,
                    end_ns,
                } => {
                    let _ = writeln!(out, "slice {track} {name} [{start_ns}, {end_ns}]");
                }
                Event::Instant { track, name, at_ns } => {
                    let _ = writeln!(out, "instant {track} {name} @{at_ns}");
                }
                Event::Counter {
                    track,
                    name,
                    at_ns,
                    value_ns,
                } => {
                    let _ = writeln!(out, "counter {track} {name} @{at_ns} = {value_ns}");
                }
            }
        }
        out
    }

    /// Durations of completed spans as `(name, ns)` pairs, in completion
    /// order, matching each `SpanEnd` with the nearest open `SpanBegin`.
    pub fn span_durations(&self) -> Vec<(String, u64)> {
        let mut open: Vec<(&str, u64)> = Vec::new();
        let mut done = Vec::new();
        for ev in &self.events {
            match ev {
                Event::SpanBegin { name, wall_ns } => open.push((name, *wall_ns)),
                Event::SpanEnd { name, wall_ns } => {
                    if let Some(pos) = open.iter().rposition(|(n, _)| n == name) {
                        let (_, begin) = open.remove(pos);
                        done.push((name.clone(), wall_ns.saturating_sub(begin)));
                    }
                }
                _ => {}
            }
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_sink_renders_stably() {
        let mut s = RecordingSink::default();
        s.record(Event::Slice {
            track: "proc:p0".into(),
            name: "f".into(),
            start_ns: 10,
            end_ns: 20,
        });
        s.record(Event::Counter {
            track: "Ls[0]".into(),
            name: "Ls".into(),
            at_ns: 30,
            value_ns: -5,
        });
        assert_eq!(
            s.render(),
            "slice proc:p0 f [10, 20]\ncounter Ls[0] Ls @30 = -5\n"
        );
    }

    #[test]
    fn prefix_sink_namespaces_tracks() {
        let mk = |prefix: &str| {
            let mut s = PrefixSink::new(prefix, RecordingSink::default());
            s.record(Event::Counter {
                track: "Ls[0]".into(),
                name: "Ls".into(),
                at_ns: 0,
                value_ns: 1,
            });
            s.record(Event::Slice {
                track: "proc:ecu0".into(),
                name: "f".into(),
                start_ns: 0,
                end_ns: 2,
            });
            s.into_inner()
        };
        // Two scenarios both starting at simulated time 0: merged stream
        // has no track collision, so per-track timestamps stay monotone.
        let mut merged = mk("s0:");
        merged.absorb(mk("s1:"));
        assert_eq!(
            merged.render(),
            "counter s0:Ls[0] Ls @0 = 1\nslice s0:proc:ecu0 f [0, 2]\n\
             counter s1:Ls[0] Ls @0 = 1\nslice s1:proc:ecu0 f [0, 2]\n"
        );
        let tracks: std::collections::HashSet<_> = merged
            .events()
            .iter()
            .map(|e| match e {
                Event::Counter { track, .. } | Event::Slice { track, .. } => track.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tracks.len(), 4);
    }

    #[test]
    fn span_durations_match_nesting() {
        let mut s = RecordingSink::default();
        s.record(Event::SpanBegin {
            name: "outer".into(),
            wall_ns: 0,
        });
        s.record(Event::SpanBegin {
            name: "inner".into(),
            wall_ns: 10,
        });
        s.record(Event::SpanEnd {
            name: "inner".into(),
            wall_ns: 25,
        });
        s.record(Event::SpanEnd {
            name: "outer".into(),
            wall_ns: 100,
        });
        assert_eq!(
            s.span_durations(),
            vec![("inner".to_string(), 15), ("outer".to_string(), 100)]
        );
    }
}
