//! Deterministic named counters.
//!
//! A [`Counts`] is a sorted map from counter name to a `u64` count. Fault
//! injection uses it to tally injected faults per class (frames lost,
//! retransmissions, outage drops, dead-processor drops); the sorted
//! rendering makes the tally byte-comparable across runs and mergeable
//! across fleet workers in index order.

use std::collections::BTreeMap;
use std::fmt;

/// A deterministic bag of named `u64` counters.
///
/// Iteration and rendering order is the lexicographic order of the names
/// (the `BTreeMap` invariant), so two `Counts` built from the same
/// increments in any order compare and render identically.
///
/// # Examples
///
/// ```
/// use ecl_telemetry::Counts;
///
/// let mut c = Counts::new();
/// c.add("frames_lost", 2);
/// c.add("retries", 5);
/// c.add("frames_lost", 1);
/// assert_eq!(c.get("frames_lost"), 3);
/// assert_eq!(c.render(), "frames_lost=3 retries=5");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counts {
    counters: BTreeMap<String, u64>,
}

impl Counts {
    /// Creates an empty counter bag.
    pub fn new() -> Self {
        Counts::default()
    }

    /// Adds `n` to counter `name`, creating it at zero first if absent.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Current value of counter `name` (0 if never incremented).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// `true` if no counter was ever incremented (all-zero bags with
    /// registered names are *not* empty).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Sum of all counter values.
    pub fn total(&self) -> u64 {
        self.counters.values().sum()
    }

    /// Folds `other` into `self`, adding matching counters.
    pub fn merge(&mut self, other: &Counts) {
        for (name, n) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += n;
        }
    }

    /// Iterates `(name, value)` in lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Renders as `name=value` pairs separated by single spaces, in
    /// lexicographic name order — byte-deterministic.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.iter() {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(name);
            out.push('=');
            out.push_str(&v.to_string());
        }
        out
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_total() {
        let mut c = Counts::new();
        assert!(c.is_empty());
        assert_eq!(c.get("x"), 0);
        c.add("x", 3);
        c.add("y", 1);
        c.add("x", 2);
        assert!(!c.is_empty());
        assert_eq!(c.get("x"), 5);
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn render_is_sorted_and_deterministic() {
        let mut a = Counts::new();
        a.add("zeta", 1);
        a.add("alpha", 2);
        let mut b = Counts::new();
        b.add("alpha", 2);
        b.add("zeta", 1);
        assert_eq!(a, b);
        assert_eq!(a.render(), "alpha=2 zeta=1");
        assert_eq!(format!("{b}"), "alpha=2 zeta=1");
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = Counts::new();
        a.add("lost", 1);
        let mut b = Counts::new();
        b.add("lost", 2);
        b.add("retries", 4);
        a.merge(&b);
        assert_eq!(a.get("lost"), 3);
        assert_eq!(a.get("retries"), 4);
        assert_eq!(a.render(), "lost=3 retries=4");
    }
}
