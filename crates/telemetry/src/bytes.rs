//! Minimal little-endian byte codec for content-addressed persistence.
//!
//! The workspace builds offline against no-op `serde` shims, so every
//! durable artifact is hand-rolled. This module is the shared substrate:
//! a [`ByteWriter`] that appends fixed-width little-endian scalars and
//! length-prefixed strings to a `Vec<u8>`, and a [`ByteReader`] that
//! consumes the same layout and reports structural problems as typed
//! [`CodecError`]s instead of panicking. The on-disk cache files under
//! `results/cache/` and the `ecl-serve` wire frames are both built on it.
//!
//! Layout conventions shared by every encoder in the workspace:
//!
//! - scalars are little-endian (`u32`/`u64`/`i64`; `f64` as IEEE-754 bit
//!   pattern via `to_bits`, so values round-trip bit-exactly, including
//!   `-0.0` and NaN payloads);
//! - `i128` (the histogram running sum) is split into low/high `u64`
//!   halves;
//! - strings are `u32` byte length + UTF-8 bytes; sequence lengths are
//!   `u32` counts checked against [`MAX_SEQ`] before any allocation, so
//!   a corrupt length cannot trigger an absurd reservation.
//!
//! # Examples
//!
//! ```
//! use ecl_telemetry::bytes::{ByteReader, ByteWriter};
//!
//! let mut w = ByteWriter::new();
//! w.put_u64(42);
//! w.put_str("adequation");
//! let buf = w.into_bytes();
//! let mut r = ByteReader::new(&buf);
//! assert_eq!(r.get_u64().unwrap(), 42);
//! assert_eq!(r.get_str().unwrap(), "adequation");
//! assert!(r.finish().is_ok());
//! ```

use std::fmt;

/// Upper bound on any length prefix a [`ByteReader`] will honor, so a
/// corrupt length field cannot drive a multi-gigabyte allocation.
pub const MAX_SEQ: usize = 1 << 24;

/// Structural decode failure (truncated input, bad magic, corrupt
/// length, invalid UTF-8, checksum mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the requested field.
    Truncated {
        /// Bytes needed to finish the read.
        needed: usize,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// A magic tag or version did not match the expected value.
    BadMagic {
        /// What the decoder expected (human-readable).
        expected: String,
        /// What it found.
        found: String,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A semantic invariant failed (bad length, checksum mismatch, …).
    Invalid {
        /// What went wrong.
        reason: String,
    },
    /// Trailing bytes remained after a complete decode.
    TrailingBytes {
        /// How many bytes were left over.
        count: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated input: needed {needed} bytes, {remaining} remaining"
                )
            }
            CodecError::BadMagic { expected, found } => {
                write!(f, "bad magic: expected {expected}, found {found}")
            }
            CodecError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            CodecError::Invalid { reason } => write!(f, "invalid payload: {reason}"),
            CodecError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after decode")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends little-endian fields to a growable byte buffer.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// A writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i128` as two little-endian `u64` halves (low, high).
    pub fn put_i128(&mut self, v: i128) {
        let bits = v as u128;
        self.put_u64(bits as u64);
        self.put_u64((bits >> 64) as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact round
    /// trip, including `-0.0`).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `usize` as a `u64` (platform-independent layout).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a `u32` length prefix and the string's UTF-8 bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes with no prefix (the caller owns the framing).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u32` element count (sequence header). Pairs with
    /// [`ByteReader::get_seq_len`].
    pub fn put_seq_len(&mut self, len: usize) {
        debug_assert!(len <= MAX_SEQ, "sequence of {len} exceeds codec bound");
        self.put_u32(len as u32);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Consumes little-endian fields from a byte slice, reporting structural
/// problems as [`CodecError`]s.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over the whole slice.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads an `i128` written by [`ByteWriter::put_i128`].
    pub fn get_i128(&mut self) -> Result<i128, CodecError> {
        let low = self.get_u64()? as u128;
        let high = self.get_u64()? as u128;
        Ok((low | (high << 64)) as i128)
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `usize` written by [`ByteWriter::put_usize`]; rejects
    /// values that do not fit the platform's `usize`.
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CodecError::Invalid {
            reason: format!("usize field {v} out of range"),
        })
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let len = self.get_u32()? as usize;
        if len > MAX_SEQ {
            return Err(CodecError::Invalid {
                reason: format!("string length {len} exceeds bound"),
            });
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    /// Reads a sequence header written by [`ByteWriter::put_seq_len`],
    /// bounded by [`MAX_SEQ`].
    pub fn get_seq_len(&mut self) -> Result<usize, CodecError> {
        let len = self.get_u32()? as usize;
        if len > MAX_SEQ {
            return Err(CodecError::Invalid {
                reason: format!("sequence length {len} exceeds bound"),
            });
        }
        Ok(len)
    }

    /// Reads `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Checks a fixed magic tag, reporting both sides on mismatch.
    pub fn expect_magic(&mut self, magic: &[u8]) -> Result<(), CodecError> {
        let found = self.take(magic.len())?;
        if found != magic {
            return Err(CodecError::BadMagic {
                expected: String::from_utf8_lossy(magic).into_owned(),
                found: String::from_utf8_lossy(found).into_owned(),
            });
        }
        Ok(())
    }

    /// Succeeds only when every byte has been consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::TrailingBytes {
                count: self.remaining(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX);
        w.put_i64(i64::MIN);
        w.put_i128(-(1i128 << 100) + 17);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_usize(123_456);
        w.put_str("Ls_j(k) ≤ La_j(k)");
        let buf = w.into_bytes();

        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), i64::MIN);
        assert_eq!(r.get_i128().unwrap(), -(1i128 << 100) + 17);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_usize().unwrap(), 123_456);
        assert_eq!(r.get_str().unwrap(), "Ls_j(k) ≤ La_j(k)");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut w = ByteWriter::new();
        w.put_u32(5);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert!(matches!(
            r.get_u64(),
            Err(CodecError::Truncated {
                needed: 8,
                remaining: 4
            })
        ));
        // A string whose length prefix overruns the buffer is truncated,
        // not a panic.
        let mut r = ByteReader::new(&buf);
        assert!(matches!(r.get_str(), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn oversized_lengths_are_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let buf = w.into_bytes();
        assert!(matches!(
            ByteReader::new(&buf).get_seq_len(),
            Err(CodecError::Invalid { .. })
        ));
        assert!(matches!(
            ByteReader::new(&buf).get_str(),
            Err(CodecError::Invalid { .. })
        ));
    }

    #[test]
    fn magic_mismatch_names_both_sides() {
        let buf = b"ECLX".to_vec();
        let err = ByteReader::new(&buf).expect_magic(b"ECLS").unwrap_err();
        match err {
            CodecError::BadMagic { expected, found } => {
                assert_eq!(expected, "ECLS");
                assert_eq!(found, "ECLX");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let mut w = ByteWriter::new();
        w.put_u64(1);
        w.put_u8(9);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        r.get_u64().unwrap();
        assert_eq!(r.finish(), Err(CodecError::TrailingBytes { count: 1 }));
    }

    #[test]
    fn bad_utf8_is_typed() {
        let mut w = ByteWriter::new();
        w.put_u32(2);
        w.put_raw(&[0xff, 0xfe]);
        let buf = w.into_bytes();
        assert_eq!(ByteReader::new(&buf).get_str(), Err(CodecError::BadUtf8));
    }
}
