//! A minimal JSON parser, used to validate emitted Chrome traces in
//! tests without a registry dependency.
//!
//! Supports the full JSON grammar the trace writer emits (objects,
//! arrays, strings with escapes, numbers, booleans, null). Numbers are
//! parsed as `f64`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, as `f64`.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, preserving member order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset on malformed input or trailing
/// garbage.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| format!("truncated \\u escape at byte {}", *pos))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad code point at byte {}", *pos))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar from the remaining input.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let c = rest.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII digits");
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\"y"}, "d": true, "e": null}"#)
            .expect("valid");
        assert_eq!(
            v.get("a").and_then(Value::as_array).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Value::as_str),
            Some("x\"y")
        );
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} extra").is_err());
        assert!(parse("[1, ]").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
