//! Chrome trace-event-format export.
//!
//! [`chrome_trace`] renders a recorded event stream as a JSON array with
//! one trace event per line — the format `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) open directly. Spans become `B`/`E`
//! duration events on the `lifecycle` track (wall-clock), sim-derived
//! slices become `X` complete events on their own per-track threads
//! (simulated time), instants become `i` events and counter samples
//! become `C` events. Timestamps are microseconds with nanosecond
//! fraction, as the format requires.

use crate::event::Event;
use std::fmt::Write as _;

/// The reserved thread id for wall-clock lifecycle spans.
const SPAN_TID: u64 = 0;

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats nanoseconds as the microsecond timestamps trace events use.
fn ts_us(ns: i64) -> String {
    format!("{:.3}", ns as f64 / 1_000.0)
}

fn ts_us_u(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1_000.0)
}

/// Stable track → thread-id assignment in order of first appearance
/// (tid 0 is reserved for lifecycle spans).
fn tid_for<'a>(tracks: &mut Vec<&'a str>, track: &'a str) -> u64 {
    match tracks.iter().position(|t| *t == track) {
        Some(i) => i as u64 + 1,
        None => {
            tracks.push(track);
            tracks.len() as u64
        }
    }
}

/// Renders events as a Chrome trace-event JSON array, one event per line.
///
/// Track names become named threads via `thread_name` metadata events, so
/// viewers show `proc:ecu0`-style labels instead of raw thread ids.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut tracks: Vec<&str> = Vec::new();
    let mut lines: Vec<String> = Vec::new();
    for ev in events {
        let line = match ev {
            Event::SpanBegin { name, wall_ns } => format!(
                r#"{{"name":"{}","ph":"B","pid":1,"tid":{},"ts":{}}}"#,
                escape_json(name),
                SPAN_TID,
                ts_us_u(*wall_ns)
            ),
            Event::SpanEnd { name, wall_ns } => format!(
                r#"{{"name":"{}","ph":"E","pid":1,"tid":{},"ts":{}}}"#,
                escape_json(name),
                SPAN_TID,
                ts_us_u(*wall_ns)
            ),
            Event::Slice {
                track,
                name,
                start_ns,
                end_ns,
            } => {
                let tid = tid_for(&mut tracks, track);
                format!(
                    r#"{{"name":"{}","ph":"X","pid":1,"tid":{},"ts":{},"dur":{}}}"#,
                    escape_json(name),
                    tid,
                    ts_us(*start_ns),
                    ts_us(end_ns - start_ns)
                )
            }
            Event::Instant { track, name, at_ns } => {
                let tid = tid_for(&mut tracks, track);
                format!(
                    r#"{{"name":"{}","ph":"i","s":"t","pid":1,"tid":{},"ts":{}}}"#,
                    escape_json(name),
                    tid,
                    ts_us(*at_ns)
                )
            }
            Event::Counter {
                track,
                at_ns,
                value_ns,
                ..
            } => {
                // The *track* is the chrome `name` so each latency series
                // gets its own counter lane in the viewer.
                let tid = tid_for(&mut tracks, track);
                format!(
                    r#"{{"name":"{}","ph":"C","pid":1,"tid":{},"ts":{},"args":{{"value_ns":{}}}}}"#,
                    escape_json(track),
                    tid,
                    ts_us(*at_ns),
                    value_ns
                )
            }
        };
        lines.push(line);
    }

    let mut out = String::from("[\n");
    let mut first = true;
    let push = |line: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        out.push_str(&line);
        *first = false;
    };
    push(
        format!(
            r#"{{"name":"thread_name","ph":"M","pid":1,"tid":{},"args":{{"name":"lifecycle"}}}}"#,
            SPAN_TID
        ),
        &mut out,
        &mut first,
    );
    for (i, track) in tracks.iter().enumerate() {
        push(
            format!(
                r#"{{"name":"thread_name","ph":"M","pid":1,"tid":{},"args":{{"name":"{}"}}}}"#,
                i as u64 + 1,
                escape_json(track)
            ),
            &mut out,
            &mut first,
        );
    }
    for line in lines {
        push(line, &mut out, &mut first);
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn trace_parses_and_names_tracks() {
        let events = vec![
            Event::SpanBegin {
                name: "adequation".into(),
                wall_ns: 1_500,
            },
            Event::SpanEnd {
                name: "adequation".into(),
                wall_ns: 2_500,
            },
            Event::Slice {
                track: "proc:p0".into(),
                name: "sensor".into(),
                start_ns: 0,
                end_ns: 300_000,
            },
            Event::Counter {
                track: "Ls[0]".into(),
                name: "Ls".into(),
                at_ns: 300_000,
                value_ns: 300_000,
            },
        ];
        let text = chrome_trace(&events);
        let parsed = json::parse(&text).expect("valid JSON");
        let arr = parsed.as_array().expect("array");
        // 2 thread_name metadata (lifecycle + proc) + 1 for counter track + 4 events.
        assert_eq!(arr.len(), 7);
        let slice = arr
            .iter()
            .find(|e| e.get("ph").and_then(json::Value::as_str) == Some("X"))
            .expect("slice event");
        assert_eq!(slice.get("dur").and_then(json::Value::as_f64), Some(300.0));
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }
}
