//! The fleet profiler: per-worker, per-phase attribution of sweep wall
//! time.
//!
//! A Monte-Carlo sweep runs hundreds of scenarios through a pipeline of
//! phases (adequation, delay-graph synthesis, co-simulation, executive
//! validation, static verification) on a self-scheduling worker pool.
//! This module answers *where the wall time of such a sweep goes* while
//! disturbing neither the pool nor the sweep's deterministic artifacts:
//!
//! * each worker records monotonic-clock [`ProfileSpan`]s into its own
//!   [`WorkerProfile`] buffer — **no shared-state writes on the hot
//!   path**, so profiling cannot serialize the pool;
//! * after the pool joins, the buffers merge **in worker-index order**
//!   into a [`ProfileReport`] with per-phase latency [`Histogram`]s,
//!   per-worker utilization/idle/claim counters and per-digest schedule
//!   cache attribution;
//! * wall-clock readings appear **only** here. A sweep's summary, trace
//!   and histogram artifacts carry no profiler state, so they stay
//!   byte-identical whether profiling is on or off and for any worker
//!   count. The report itself is a *sidecar*: its structure (phases,
//!   counts, cache digests) is deterministic, its nanosecond values are
//!   wall-clock measurements and are not.

use std::time::Instant;

use crate::event::Event;
use crate::hist::Histogram;

/// Buckets of each per-phase latency histogram in a [`ProfileReport`].
const PHASE_BUCKETS: usize = 32;

/// A pipeline phase the profiler attributes wall time to.
///
/// The variants mirror the lifecycle span names of the single-run
/// collector (`adequation`, `delay-graph synthesis`, `co-simulation`)
/// plus the sweep-only stages around them, so a fleet profile reads like
/// the per-run trace it aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Scenario derivation: PRNG draws and the jittered WCET table.
    Derive,
    /// Schedule lookup/computation (the `ScheduleCache` + list scheduler).
    Adequation,
    /// Fault-envelope abstract interpretation (static sweep pruning).
    Envelope,
    /// The stroboscopic reference run the cost ratio is measured against.
    IdealSim,
    /// Deterministic fault-plan generation (faulty scenarios only).
    FaultPlan,
    /// Graph-of-delays synthesis from the schedule.
    Synthesis,
    /// The co-simulation itself (including any fault-free twin replay).
    Cosim,
    /// Latency extraction, histogram filling and outcome assembly.
    Metrics,
    /// Executive generation + virtual-machine cross-validation.
    Validation,
    /// Static verification and soundness-margin measurement.
    Verification,
}

impl Phase {
    /// Every phase, in canonical report order.
    pub const ALL: [Phase; 10] = [
        Phase::Derive,
        Phase::Adequation,
        Phase::Envelope,
        Phase::IdealSim,
        Phase::FaultPlan,
        Phase::Synthesis,
        Phase::Cosim,
        Phase::Metrics,
        Phase::Validation,
        Phase::Verification,
    ];

    /// Stable display name (matches the lifecycle span names where a
    /// counterpart exists).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Derive => "derive",
            Phase::Adequation => "adequation",
            Phase::Envelope => "fault envelope",
            Phase::IdealSim => "ideal co-simulation",
            Phase::FaultPlan => "fault planning",
            Phase::Synthesis => "delay-graph synthesis",
            Phase::Cosim => "co-simulation",
            Phase::Metrics => "metrics",
            Phase::Validation => "executive validation",
            Phase::Verification => "static verify",
        }
    }

    /// One-character glyph used by the Gantt renderer.
    pub fn glyph(self) -> char {
        match self {
            Phase::Derive => 'd',
            Phase::Adequation => 'a',
            Phase::Envelope => 'e',
            Phase::IdealSim => 'i',
            Phase::FaultPlan => 'f',
            Phase::Synthesis => 'g',
            Phase::Cosim => 'c',
            Phase::Metrics => 'm',
            Phase::Validation => 'v',
            Phase::Verification => 's',
        }
    }
}

/// One monotonic-clock phase window a worker recorded, in nanoseconds
/// since the sweep epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileSpan {
    /// Scenario index the window belongs to.
    pub scenario: usize,
    /// Attributed phase.
    pub phase: Phase,
    /// Window start, ns since the sweep epoch.
    pub start_ns: u64,
    /// Window end, ns since the sweep epoch.
    pub end_ns: u64,
}

impl ProfileSpan {
    /// Window length in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One schedule-cache lookup as a worker observed it.
///
/// The digest is the deterministic [`schedule_digest`] key; the `hit`
/// flag is this worker's *local* observation (two workers racing to
/// compute the same digest both observe a miss), so it belongs in the
/// profiler sidecar, never in a deterministic artifact.
///
/// [`schedule_digest`]: https://docs.rs/ecl-aaa
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEvent {
    /// Scenario index that performed the lookup.
    pub scenario: usize,
    /// Content digest of the adequation inputs.
    pub digest: u64,
    /// Whether this worker's lookup was answered from the cache.
    pub hit: bool,
    /// Lookup instant, ns since the sweep epoch.
    pub at_ns: u64,
}

/// A worker's private profiling buffer.
///
/// Created once per pool worker (never shared), filled on the worker's
/// own thread, and handed back whole when the pool joins. A disabled
/// buffer records nothing and reads no clock beyond construction, so a
/// profiling-off sweep pays only a branch per instrumentation site.
#[derive(Debug, Clone)]
pub struct WorkerProfile {
    worker: usize,
    enabled: bool,
    epoch: Instant,
    tasks: u64,
    busy_ns: u64,
    first_ns: u64,
    last_ns: u64,
    spans: Vec<ProfileSpan>,
    cache_events: Vec<CacheEvent>,
    memo_events: Vec<CacheEvent>,
}

impl WorkerProfile {
    /// A buffer for pool worker `worker`, measuring against the shared
    /// sweep `epoch` (every worker must use the same epoch or the merged
    /// lanes will not line up).
    pub fn new(worker: usize, epoch: Instant, enabled: bool) -> Self {
        WorkerProfile {
            worker,
            enabled,
            epoch,
            tasks: 0,
            busy_ns: 0,
            first_ns: u64::MAX,
            last_ns: 0,
            spans: Vec::new(),
            cache_events: Vec::new(),
            memo_events: Vec::new(),
        }
    }

    /// Whether this buffer records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Pool index of the owning worker.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Nanoseconds since the sweep epoch (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        if self.enabled {
            self.epoch.elapsed().as_nanos() as u64
        } else {
            0
        }
    }

    /// Runs `f` as one claimed task: counts it and adds its wall time to
    /// the busy total. Phases recorded inside nest within the window.
    pub fn task<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        if !self.enabled {
            return f(self);
        }
        let start = self.now_ns();
        let r = f(self);
        let end = self.now_ns();
        self.note_task(start, end);
        r
    }

    /// Records a pre-measured task window (the raw form of [`task`]).
    ///
    /// [`task`]: WorkerProfile::task
    pub fn note_task(&mut self, start_ns: u64, end_ns: u64) {
        if !self.enabled {
            return;
        }
        self.tasks += 1;
        self.busy_ns += end_ns.saturating_sub(start_ns);
        self.first_ns = self.first_ns.min(start_ns);
        self.last_ns = self.last_ns.max(end_ns);
    }

    /// Runs `f` and attributes its wall time to `phase` of `scenario`.
    pub fn phase<R>(&mut self, scenario: usize, phase: Phase, f: impl FnOnce(&mut Self) -> R) -> R {
        if !self.enabled {
            return f(self);
        }
        let start = self.now_ns();
        let r = f(self);
        let end = self.now_ns();
        self.push_span(scenario, phase, start, end);
        r
    }

    /// Records a pre-measured phase window (used when the callee timed
    /// its own sub-phases, e.g. the split co-simulation).
    pub fn push_span(&mut self, scenario: usize, phase: Phase, start_ns: u64, end_ns: u64) {
        if !self.enabled {
            return;
        }
        self.spans.push(ProfileSpan {
            scenario,
            phase,
            start_ns,
            end_ns,
        });
    }

    /// Records one schedule-cache lookup observation.
    pub fn cache_event(&mut self, scenario: usize, digest: u64, hit: bool) {
        if !self.enabled {
            return;
        }
        let at_ns = self.now_ns();
        self.cache_events.push(CacheEvent {
            scenario,
            digest,
            hit,
            at_ns,
        });
    }

    /// Records one scheduled-run memo lookup observation. Kept on a
    /// separate channel from [`cache_event`](WorkerProfile::cache_event)
    /// so per-digest memo attribution does not mix with schedule-cache
    /// lines — a memo digest composes a schedule digest with the loop
    /// and fault-plan digests, so the key spaces are disjoint by
    /// construction but share the same `u64` representation.
    pub fn memo_event(&mut self, scenario: usize, digest: u64, hit: bool) {
        if !self.enabled {
            return;
        }
        let at_ns = self.now_ns();
        self.memo_events.push(CacheEvent {
            scenario,
            digest,
            hit,
            at_ns,
        });
    }

    /// Recorded phase windows, in execution order.
    pub fn spans(&self) -> &[ProfileSpan] {
        &self.spans
    }

    /// Tasks claimed from the pool's shared index counter.
    pub fn tasks(&self) -> u64 {
        self.tasks
    }

    /// Total wall time spent inside claimed tasks.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }
}

/// Aggregate statistics of one phase across the whole sweep.
#[derive(Debug, Clone)]
pub struct PhaseStat {
    /// The phase.
    pub phase: Phase,
    /// Number of recorded windows.
    pub count: u64,
    /// Summed window length, ns.
    pub total_ns: u64,
    /// Latency histogram over the window lengths (bound: longest window
    /// + 1 ns, so every observation is in range).
    pub hist: Histogram,
}

/// One worker's merged lane: counters plus its recorded windows.
#[derive(Debug, Clone)]
pub struct WorkerLane {
    /// Pool index.
    pub worker: usize,
    /// Scenarios claimed (self-scheduled/stolen) from the shared counter.
    pub tasks: u64,
    /// Wall time inside claimed tasks.
    pub busy_ns: u64,
    /// Active window: last task end − first task start (0 when idle).
    pub active_ns: u64,
    /// Idle time inside the active window (`active_ns − busy_ns`).
    pub idle_ns: u64,
    /// Phase windows, in execution order.
    pub spans: Vec<ProfileSpan>,
    /// Schedule-cache observations, in execution order.
    pub cache_events: Vec<CacheEvent>,
    /// Scheduled-run memo observations, in execution order.
    pub memo_events: Vec<CacheEvent>,
}

/// Per-digest schedule-cache attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheLine {
    /// The [`schedule_digest`] key.
    ///
    /// [`schedule_digest`]: https://docs.rs/ecl-aaa
    pub digest: u64,
    /// Lookups of this digest across the sweep.
    pub lookups: u64,
    /// Lookups answered from the cache (as workers observed them).
    pub hits: u64,
    /// Scenario indices that looked this digest up, ascending.
    pub scenarios: Vec<usize>,
}

/// The merged fleet profile: where every nanosecond of a sweep went.
///
/// Built by [`ProfileReport::from_workers`] after the pool joins, from
/// the per-worker buffers **in worker-index order** — never in completion
/// order — so the report's *structure* (lanes, phase set, digest set,
/// counts) is deterministic; only the measured nanoseconds vary run to
/// run. It is a sidecar artifact: nothing in it feeds back into the
/// sweep's deterministic summary/trace/histogram outputs.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Sweep wall time (pool start → join), ns.
    pub wall_ns: u64,
    /// Per-worker lanes, in worker-index order.
    pub workers: Vec<WorkerLane>,
    /// Per-phase aggregates, in [`Phase::ALL`] order (empty phases
    /// omitted).
    pub phases: Vec<PhaseStat>,
    /// Per-digest cache attribution, ascending by digest.
    pub cache: Vec<CacheLine>,
    /// Per-digest scheduled-run memo attribution, ascending by digest.
    pub memo: Vec<CacheLine>,
}

impl ProfileReport {
    /// Merges the joined pool's buffers (worker-index order) under the
    /// measured sweep wall time.
    pub fn from_workers(wall_ns: u64, buffers: Vec<WorkerProfile>) -> Self {
        let mut workers = Vec::with_capacity(buffers.len());
        for b in buffers {
            let active_ns = if b.first_ns == u64::MAX {
                0
            } else {
                b.last_ns.saturating_sub(b.first_ns)
            };
            workers.push(WorkerLane {
                worker: b.worker,
                tasks: b.tasks,
                busy_ns: b.busy_ns,
                active_ns,
                idle_ns: active_ns.saturating_sub(b.busy_ns),
                spans: b.spans,
                cache_events: b.cache_events,
                memo_events: b.memo_events,
            });
        }

        let mut phases = Vec::new();
        for phase in Phase::ALL {
            let durations: Vec<u64> = workers
                .iter()
                .flat_map(|w| w.spans.iter())
                .filter(|s| s.phase == phase)
                .map(ProfileSpan::duration_ns)
                .collect();
            if durations.is_empty() {
                continue;
            }
            let bound = durations.iter().copied().max().unwrap_or(0) as i64 + 1;
            let mut hist = Histogram::new(bound, PHASE_BUCKETS);
            let mut total_ns = 0u64;
            for d in &durations {
                hist.record(*d as i64);
                total_ns += d;
            }
            phases.push(PhaseStat {
                phase,
                count: durations.len() as u64,
                total_ns,
                hist,
            });
        }

        // BTreeMap keeps lines ascending by digest, so the merged order
        // is deterministic regardless of which worker saw a digest first.
        let merge_lines = |events: &mut dyn Iterator<Item = &CacheEvent>| -> Vec<CacheLine> {
            let mut by_digest: std::collections::BTreeMap<u64, CacheLine> =
                std::collections::BTreeMap::new();
            for ev in events {
                let line = by_digest.entry(ev.digest).or_insert_with(|| CacheLine {
                    digest: ev.digest,
                    lookups: 0,
                    hits: 0,
                    scenarios: Vec::new(),
                });
                line.lookups += 1;
                line.hits += u64::from(ev.hit);
                line.scenarios.push(ev.scenario);
            }
            by_digest
                .into_values()
                .map(|mut l| {
                    l.scenarios.sort_unstable();
                    l
                })
                .collect()
        };
        let cache = merge_lines(&mut workers.iter().flat_map(|w| w.cache_events.iter()));
        let memo = merge_lines(&mut workers.iter().flat_map(|w| w.memo_events.iter()));

        ProfileReport {
            wall_ns,
            workers,
            phases,
            cache,
            memo,
        }
    }

    /// Wall time attributed to named phases, summed across workers.
    pub fn attributed_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.total_ns).sum()
    }

    /// Wall time workers spent inside claimed tasks.
    pub fn busy_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_ns).sum()
    }

    /// Fraction of worker busy time attributed to named phases (1.0 for
    /// an empty sweep). On a single worker, busy time is the sweep wall
    /// time minus pool overhead, so this is also the attributed fraction
    /// of wall time.
    pub fn attributed_fraction(&self) -> f64 {
        let busy = self.busy_ns();
        if busy == 0 {
            1.0
        } else {
            self.attributed_ns() as f64 / busy as f64
        }
    }

    /// Pool utilization: busy time over `workers × wall` (0.0 for an
    /// empty report).
    pub fn utilization(&self) -> f64 {
        let denom = self.workers.len() as u64 * self.wall_ns;
        if denom == 0 {
            0.0
        } else {
            self.busy_ns() as f64 / denom as f64
        }
    }

    /// Total schedule-cache lookups the workers observed.
    pub fn cache_lookups(&self) -> u64 {
        self.cache.iter().map(|l| l.lookups).sum()
    }

    /// Total scheduled-run memo lookups the workers observed.
    pub fn memo_lookups(&self) -> u64 {
        self.memo.iter().map(|l| l.lookups).sum()
    }

    /// The profile as worker-lane telemetry events: one [`Event::Slice`]
    /// per phase window on a `worker <i>` track (wall ns since the sweep
    /// epoch in the slice's "simulated" field) and one [`Event::Instant`]
    /// per cache observation — directly consumable by
    /// [`chrome_trace`](crate::trace::chrome_trace) alongside any
    /// sim-derived events of the same sweep.
    pub fn to_events(&self) -> Vec<Event> {
        let mut events = Vec::new();
        for lane in &self.workers {
            let track = format!("worker {}", lane.worker);
            // One timestamp-sorted stream per lane: Chrome-trace viewers
            // expect non-decreasing ts within a (pid, tid) track, so the
            // cache instants are interleaved with the phase slices
            // instead of appended after them.
            let mut timed: Vec<(u64, Event)> = Vec::new();
            for s in &lane.spans {
                timed.push((
                    s.start_ns,
                    Event::Slice {
                        track: track.clone(),
                        name: format!("s{} {}", s.scenario, s.phase.name()),
                        start_ns: s.start_ns as i64,
                        end_ns: s.end_ns as i64,
                    },
                ));
            }
            for (kind, events) in [("cache", &lane.cache_events), ("memo", &lane.memo_events)] {
                for c in events {
                    timed.push((
                        c.at_ns,
                        Event::Instant {
                            track: track.clone(),
                            name: format!(
                                "s{} {kind} {} {:#018x}",
                                c.scenario,
                                if c.hit { "hit" } else { "miss" },
                                c.digest
                            ),
                            at_ns: c.at_ns as i64,
                        },
                    ));
                }
            }
            timed.sort_by_key(|(at, _)| *at);
            events.extend(timed.into_iter().map(|(_, e)| e));
        }
        events
    }

    /// A text Gantt chart: one row per worker over `[0, wall_ns]`,
    /// `width` cells wide, each cell showing the glyph of the phase that
    /// last touched it (`.` = idle, `-` = unattributed busy time).
    pub fn gantt(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let width = width.max(1);
        let wall = self.wall_ns.max(1);
        let cell = |ns: u64| ((ns.min(wall)) as usize * width / wall as usize).min(width - 1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "gantt over {:.3} ms ({} cells/row; {})",
            self.wall_ns as f64 / 1e6,
            width,
            Phase::ALL
                .iter()
                .map(|p| format!("{}={}", p.glyph(), p.name()))
                .collect::<Vec<_>>()
                .join(" ")
        );
        for lane in &self.workers {
            let mut row = vec!['.'; width];
            for s in &lane.spans {
                let (a, b) = (cell(s.start_ns), cell(s.end_ns));
                for c in row.iter_mut().take(b + 1).skip(a) {
                    *c = s.phase.glyph();
                }
            }
            let _ = writeln!(
                out,
                "w{} |{}|",
                lane.worker,
                row.into_iter().collect::<String>()
            );
        }
        out
    }

    /// Human-readable profile text (wall-clock sidecar; not byte-stable
    /// across runs).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# Fleet profile: {:.3} ms wall, {} worker(s), utilization {:.1}%, \
             {:.1}% of busy time attributed",
            self.wall_ns as f64 / 1e6,
            self.workers.len(),
            self.utilization() * 100.0,
            self.attributed_fraction() * 100.0
        );
        let _ = writeln!(out, "\n## Phases");
        let attributed = self.attributed_ns().max(1);
        for p in &self.phases {
            let s = p.hist.summary();
            let _ = writeln!(
                out,
                "{:<22} count {:>5}  total {:>10.3} ms  mean {:>9.1} us  p95 {:>9.1} us  \
                 share {:>5.1}%",
                p.phase.name(),
                p.count,
                p.total_ns as f64 / 1e6,
                s.mean_ns / 1e3,
                s.p95_ns as f64 / 1e3,
                p.total_ns as f64 * 100.0 / attributed as f64
            );
        }
        let _ = writeln!(out, "\n## Workers");
        for w in &self.workers {
            let util = if w.active_ns == 0 {
                0.0
            } else {
                w.busy_ns as f64 * 100.0 / w.active_ns as f64
            };
            let _ = writeln!(
                out,
                "w{:<3} claimed {:>5}  busy {:>10.3} ms  idle {:>10.3} ms  util {:>5.1}%",
                w.worker,
                w.tasks,
                w.busy_ns as f64 / 1e6,
                w.idle_ns as f64 / 1e6,
                util
            );
        }
        if !self.cache.is_empty() {
            let _ = writeln!(out, "\n## Schedule cache (by digest)");
            for l in &self.cache {
                let _ = writeln!(
                    out,
                    "{:#018x}  lookups {:>4}  hits {:>4}  scenarios {}",
                    l.digest,
                    l.lookups,
                    l.hits,
                    l.scenarios.len()
                );
            }
        }
        if !self.memo.is_empty() {
            let _ = writeln!(out, "\n## Scheduled-run memo (by digest)");
            for l in &self.memo {
                let _ = writeln!(
                    out,
                    "{:#018x}  lookups {:>4}  hits {:>4}  scenarios {}",
                    l.digest,
                    l.lookups,
                    l.hits,
                    l.scenarios.len()
                );
            }
        }
        out
    }

    /// The profile as a JSON object (wall-clock sidecar).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"wall_ns\":{},\"attributed_ns\":{},\"busy_ns\":{},\
             \"attributed_fraction\":{:.6},\"utilization\":{:.6}",
            self.wall_ns,
            self.attributed_ns(),
            self.busy_ns(),
            self.attributed_fraction(),
            self.utilization()
        );
        out.push_str(",\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = p.hist.summary();
            let _ = write!(
                out,
                "{{\"phase\":\"{}\",\"count\":{},\"total_ns\":{},\"mean_ns\":{:.1},\
                 \"p50_ns\":{},\"p95_ns\":{},\"max_ns\":{}}}",
                p.phase.name(),
                p.count,
                p.total_ns,
                s.mean_ns,
                s.p50_ns,
                s.p95_ns,
                s.max_ns
            );
        }
        out.push_str("],\"workers\":[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"worker\":{},\"tasks\":{},\"busy_ns\":{},\"active_ns\":{},\"idle_ns\":{}}}",
                w.worker, w.tasks, w.busy_ns, w.active_ns, w.idle_ns
            );
        }
        for (key, lines) in [("cache", &self.cache), ("memo", &self.memo)] {
            let _ = write!(out, "],\"{key}\":[");
            for (i, l) in lines.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"digest\":\"{:#018x}\",\"lookups\":{},\"hits\":{},\"scenarios\":{}}}",
                    l.digest,
                    l.lookups,
                    l.hits,
                    l.scenarios.len()
                );
            }
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker_with(worker: usize, windows: &[(usize, Phase, u64, u64)]) -> WorkerProfile {
        let mut wp = WorkerProfile::new(worker, Instant::now(), true);
        for &(scenario, phase, a, b) in windows {
            wp.push_span(scenario, phase, a, b);
        }
        wp
    }

    #[test]
    fn disabled_buffer_records_nothing() {
        let mut wp = WorkerProfile::new(0, Instant::now(), false);
        assert_eq!(wp.now_ns(), 0);
        let v = wp.task(|wp| {
            wp.phase(0, Phase::Adequation, |wp| {
                wp.cache_event(0, 42, true);
                wp.push_span(0, Phase::Cosim, 0, 10);
                7
            })
        });
        assert_eq!(v, 7);
        assert_eq!(wp.tasks(), 0);
        assert_eq!(wp.busy_ns(), 0);
        assert!(wp.spans().is_empty());
        let report = ProfileReport::from_workers(0, vec![wp]);
        assert!(report.phases.is_empty());
        assert!(report.cache.is_empty());
        assert_eq!(report.attributed_fraction(), 1.0);
    }

    #[test]
    fn enabled_buffer_nests_phases_inside_tasks() {
        let mut wp = WorkerProfile::new(0, Instant::now(), true);
        let v = wp.task(|wp| {
            wp.phase(3, Phase::Adequation, |wp| {
                wp.cache_event(3, 0xabc, false);
                1 + 1
            })
        });
        assert_eq!(v, 2);
        assert_eq!(wp.tasks(), 1);
        assert_eq!(wp.spans().len(), 1);
        let s = wp.spans()[0];
        assert_eq!((s.scenario, s.phase), (3, Phase::Adequation));
        assert!(s.end_ns >= s.start_ns);
        // The phase window sits inside the busy window.
        assert!(wp.busy_ns() >= s.duration_ns());
    }

    #[test]
    fn report_merges_index_ordered_and_attributes() {
        let mut w0 = worker_with(
            0,
            &[
                (0, Phase::Adequation, 0, 100),
                (0, Phase::Cosim, 100, 400),
                (2, Phase::Adequation, 500, 550),
            ],
        );
        w0.note_task(0, 450);
        w0.note_task(500, 600);
        let mut w1 = worker_with(1, &[(1, Phase::Cosim, 50, 250)]);
        w1.note_task(50, 300);
        w1.cache_event(1, 0xbeef, true);

        let report = ProfileReport::from_workers(1_000, vec![w0, w1]);
        assert_eq!(report.workers.len(), 2);
        assert_eq!(report.workers[0].worker, 0);
        assert_eq!(report.workers[0].tasks, 2);
        assert_eq!(report.workers[0].busy_ns, 550);
        assert_eq!(report.workers[0].active_ns, 600);
        assert_eq!(report.workers[0].idle_ns, 50);

        // Phases appear in canonical order with merged histograms.
        let names: Vec<_> = report.phases.iter().map(|p| p.phase).collect();
        assert_eq!(names, vec![Phase::Adequation, Phase::Cosim]);
        let adequation = &report.phases[0];
        assert_eq!(adequation.count, 2);
        assert_eq!(adequation.total_ns, 150);
        assert_eq!(adequation.hist.count(), 2);
        assert_eq!(adequation.hist.overflow(), 0);
        let cosim = &report.phases[1];
        assert_eq!((cosim.count, cosim.total_ns), (2, 500));

        assert_eq!(report.attributed_ns(), 650);
        assert_eq!(report.busy_ns(), 800);
        assert!((report.attributed_fraction() - 650.0 / 800.0).abs() < 1e-12);
        assert!((report.utilization() - 800.0 / 2_000.0).abs() < 1e-12);

        // Cache attribution keyed and counted by digest.
        assert_eq!(report.cache.len(), 1);
        assert_eq!(report.cache[0].digest, 0xbeef);
        assert_eq!((report.cache[0].lookups, report.cache[0].hits), (1, 1));
        assert_eq!(report.cache[0].scenarios, vec![1]);
    }

    /// Memo observations stay on their own channel: they merge into
    /// `ProfileReport::memo` (ascending by digest), never into the
    /// schedule-cache lines, and surface in the render/JSON/trace
    /// outputs under their own section.
    #[test]
    fn memo_events_merge_on_a_separate_channel() {
        let mut w0 = worker_with(0, &[(0, Phase::Cosim, 0, 50)]);
        w0.note_task(0, 60);
        w0.cache_event(0, 0x10, false);
        w0.memo_event(0, 0x20, false);
        let mut w1 = worker_with(1, &[(1, Phase::Cosim, 10, 40)]);
        w1.note_task(10, 50);
        w1.memo_event(1, 0x20, true);
        w1.memo_event(1, 0x05, false);

        let report = ProfileReport::from_workers(100, vec![w0, w1]);
        assert_eq!(report.cache.len(), 1);
        assert_eq!(report.cache[0].digest, 0x10);
        assert_eq!(report.cache_lookups(), 1);

        // Ascending by digest regardless of observation order.
        assert_eq!(report.memo.len(), 2);
        assert_eq!(report.memo[0].digest, 0x05);
        assert_eq!(report.memo[1].digest, 0x20);
        assert_eq!((report.memo[1].lookups, report.memo[1].hits), (2, 1));
        assert_eq!(report.memo[1].scenarios, vec![0, 1]);
        assert_eq!(report.memo_lookups(), 3);

        let text = report.render();
        assert!(text.contains("## Scheduled-run memo (by digest)"));
        let json = report.to_json();
        let parsed = crate::json::parse(&json).expect("profile JSON parses");
        let memo = parsed
            .get("memo")
            .and_then(|v| v.as_array())
            .map(<[_]>::len);
        assert_eq!(memo, Some(2));
        let cache = parsed
            .get("cache")
            .and_then(|v| v.as_array())
            .map(<[_]>::len);
        assert_eq!(cache, Some(1));
        // Trace instants label the channel.
        let events = report.to_events();
        let names: Vec<String> = events
            .iter()
            .filter_map(|e| match e {
                Event::Instant { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        assert!(names.iter().any(|n| n.contains("memo miss")));
        assert!(names.iter().any(|n| n.contains("memo hit")));
        assert!(names.iter().any(|n| n.contains("cache miss")));
    }

    #[test]
    fn merged_phase_totals_equal_single_lane_totals() {
        // The same spans split across two workers or recorded by one
        // worker must aggregate identically (per-phase count/total/hist).
        let spans = [
            (0, Phase::Cosim, 0u64, 70u64),
            (1, Phase::Cosim, 10, 90),
            (2, Phase::Metrics, 5, 25),
            (3, Phase::Cosim, 40, 45),
        ];
        let single = ProfileReport::from_workers(100, vec![worker_with(0, &spans)]);
        let split = ProfileReport::from_workers(
            100,
            vec![worker_with(0, &spans[..2]), worker_with(1, &spans[2..])],
        );
        assert_eq!(single.phases.len(), split.phases.len());
        for (a, b) in single.phases.iter().zip(&split.phases) {
            assert_eq!(a.phase, b.phase);
            assert_eq!(a.count, b.count);
            assert_eq!(a.total_ns, b.total_ns);
            assert_eq!(a.hist, b.hist);
        }
    }

    #[test]
    fn events_and_renders_cover_every_lane() {
        let mut w0 = worker_with(
            0,
            &[(0, Phase::Synthesis, 0, 10), (0, Phase::Cosim, 10, 90)],
        );
        w0.note_task(0, 100);
        let mut w1 = worker_with(1, &[(1, Phase::Verification, 20, 60)]);
        w1.note_task(20, 60);
        let report = ProfileReport::from_workers(100, vec![w0, w1]);

        let events = report.to_events();
        assert_eq!(events.len(), 3);
        assert!(matches!(
            &events[0],
            Event::Slice { track, name, .. }
                if track == "worker 0" && name == "s0 delay-graph synthesis"
        ));
        let trace = crate::trace::chrome_trace(&events);
        assert!(crate::json::parse(&trace).is_ok());
        assert!(trace.contains("worker 1"));

        let text = report.render();
        assert!(text.contains("delay-graph synthesis"));
        assert!(text.contains("w0"));
        assert!(text.contains("w1"));

        let gantt = report.gantt(20);
        assert_eq!(gantt.lines().count(), 3);
        assert!(gantt.contains('c'), "cosim glyph missing:\n{gantt}");

        let json = report.to_json();
        let parsed = crate::json::parse(&json).expect("profile JSON parses");
        let workers = parsed
            .get("workers")
            .and_then(|v| v.as_array())
            .map(<[_]>::len);
        assert_eq!(workers, Some(2));
    }
}
