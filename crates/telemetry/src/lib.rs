//! Dependency-free observability substrate for the co-design workspace.
//!
//! The DATE 2008 methodology is about making implementation-induced timing
//! visible *early*: sampling latency `Ls_j(k)` and actuation latency
//! `La_j(k)` are observability artifacts before they are control
//! artifacts. This crate provides the measurement substrate the rest of
//! the workspace threads through the lifecycle:
//!
//! - [`Collector`]/[`Sink`] — span-style phase timing (translate →
//!   adequation → delay-graph synthesis → co-simulation) over
//!   `std::time::Instant`, with a [`NoopSink`] whose emission paths
//!   compile to nothing (guarded by the `Sink::ENABLED` associated
//!   constant) and a [`RecordingSink`] that captures a deterministic,
//!   byte-renderable event stream for tests;
//! - [`Histogram`] — streaming fixed-bucket latency histograms with exact
//!   `min`/`max`/`count`/`mean` and clamped p50/p95/p99 in nanoseconds;
//! - [`trace`] — a Chrome trace-event-format writer (one JSON event per
//!   line) viewable in `chrome://tracing` or Perfetto, plus [`json`], a
//!   minimal parser used to validate emitted traces in tests;
//! - [`profile`] — the fleet profiler: per-worker, per-phase attribution
//!   of sweep wall time ([`WorkerProfile`] hot-path buffers merged
//!   index-ordered into a [`ProfileReport`] sidecar).
//!
//! Everything sim-derived in an [`Event`] carries integer nanoseconds of
//! *simulated* time; wall-clock appears only in span events. Recording a
//! co-simulation therefore yields byte-identical streams across runs.
//!
//! # Examples
//!
//! ```
//! use ecl_telemetry::{Collector, Event, RecordingSink};
//!
//! let mut tel = Collector::new(RecordingSink::default());
//! let sum = tel.span("adequation", |tel| {
//!     tel.emit(|| Event::Instant {
//!         track: "sched".into(),
//!         name: "op done".into(),
//!         at_ns: 42,
//!     });
//!     1 + 1
//! });
//! assert_eq!(sum, 2);
//! let sink = tel.into_sink();
//! assert_eq!(sink.events().len(), 3); // begin, instant, end
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
mod collector;
mod counts;
mod event;
mod hist;
pub mod json;
pub mod profile;
pub mod trace;

pub use collector::Collector;
pub use counts::Counts;
pub use event::{Event, NoopSink, PrefixSink, RecordingSink, Sink};
pub use hist::{Histogram, Summary};
pub use profile::{Phase, ProfileReport, ProfileSpan, WorkerProfile};
