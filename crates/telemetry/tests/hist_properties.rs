//! Property-based tests of the streaming histogram invariants.

use ecl_telemetry::Histogram;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every recorded value lands in exactly one of underflow, an
    /// in-range bucket, or overflow.
    #[test]
    fn count_partitions_exactly(
        bound in 1i64..10_000,
        buckets in 1usize..100,
        values in proptest::collection::vec(-20_000i64..20_000, 0..200),
    ) {
        let mut h = Histogram::new(bound, buckets);
        for &v in &values {
            h.record(v);
        }
        let in_range: u64 = h.bucket_counts().iter().sum();
        prop_assert_eq!(h.count(), h.underflow() + in_range + h.overflow());
        prop_assert_eq!(h.count(), values.len() as u64);
        // The documented contract: at-or-above-bound routes to overflow.
        let expect_over = values.iter().filter(|&&v| v >= bound).count() as u64;
        let expect_under = values.iter().filter(|&&v| v < 0).count() as u64;
        prop_assert_eq!(h.overflow(), expect_over);
        prop_assert_eq!(h.underflow(), expect_under);
    }

    /// Merging two histograms is equivalent to recording both series into
    /// one, and percentiles stay within the exact extrema.
    #[test]
    fn merge_equals_joint_recording(
        bound in 1i64..5_000,
        buckets in 1usize..50,
        xs in proptest::collection::vec(-10_000i64..10_000, 0..100),
        ys in proptest::collection::vec(-10_000i64..10_000, 0..100),
    ) {
        let mut a = Histogram::new(bound, buckets);
        let mut b = Histogram::new(bound, buckets);
        let mut joint = Histogram::new(bound, buckets);
        for &v in &xs {
            a.record(v);
            joint.record(v);
        }
        for &v in &ys {
            b.record(v);
            joint.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(&a, &joint);
        if !a.is_empty() {
            for q in [0.01, 0.5, 0.95, 1.0] {
                let p = a.percentile(q).expect("non-empty");
                prop_assert!(p >= a.min().unwrap() && p <= a.max().unwrap());
            }
        }
    }

    /// The fleet-profiler merge invariant: however a sweep's observations
    /// are partitioned across per-worker histograms (any worker count,
    /// any claim order), the index-ordered merge equals the histogram a
    /// single worker would have recorded.
    #[test]
    fn k_way_worker_merge_equals_single_worker(
        bound in 1i64..5_000,
        buckets in 1usize..50,
        workers in 1usize..8,
        values in proptest::collection::vec((-10_000i64..10_000, 0usize..8), 0..200),
    ) {
        let mut single = Histogram::new(bound, buckets);
        let mut per_worker = vec![Histogram::new(bound, buckets); workers];
        for &(v, claim) in &values {
            single.record(v);
            per_worker[claim % workers].record(v);
        }
        let mut merged = Histogram::new(bound, buckets);
        for h in &per_worker {
            merged.merge(h);
        }
        prop_assert_eq!(&merged, &single);
        prop_assert_eq!(merged.count(), values.len() as u64);
    }
}
