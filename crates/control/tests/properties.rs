//! Property-based tests of the control toolbox.

use ecl_control::{
    acker, c2d_zoh, c2d_zoh_delayed, charpoly_from_real_poles, dlqr, stability, StateSpace,
};
use ecl_linalg::{spectral_radius, Mat};
use proptest::prelude::*;

prop_compose! {
    /// A random stable second-order plant in controllable canonical form.
    fn stable_siso()(wn in 0.5f64..10.0, zeta in 0.05f64..2.0) -> StateSpace {
        StateSpace::from_tf(&[wn * wn], &[1.0, 2.0 * zeta * wn, wn * wn]).expect("proper")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ZOH discretization maps continuous stability into the unit circle
    /// for any second-order plant and period.
    #[test]
    fn zoh_preserves_stability(sys in stable_siso(), ts in 0.001f64..1.0) {
        let d = c2d_zoh(&sys, ts).expect("ok");
        prop_assert!(stability::is_stable_dt(&d).expect("eigs"));
        prop_assert!(spectral_radius(d.a()).expect("eigs") < 1.0);
    }

    /// LQR always stabilizes the sampled double integrator, for any
    /// positive weights.
    #[test]
    fn dlqr_always_stabilizes(
        ts in 0.01f64..0.5,
        q0 in 0.1f64..100.0,
        r0 in 0.001f64..10.0,
    ) {
        let sys = StateSpace::new(
            Mat::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).expect("ok"),
            Mat::col_vec(&[0.0, 1.0]),
            Mat::from_rows(&[&[1.0, 0.0]]).expect("ok"),
            Mat::zeros(1, 1),
        ).expect("ok");
        let d = c2d_zoh(&sys, ts).expect("ok");
        let gain = dlqr(&d, &Mat::diag(&[q0, q0]), &Mat::diag(&[r0])).expect("solves");
        let rho = stability::closed_loop_radius_dt(&d, &gain.k).expect("eigs");
        prop_assert!(rho < 1.0, "rho {rho} with q={q0} r={r0} ts={ts}");
    }

    /// Cheaper control (smaller R) never increases the optimal cost-to-go
    /// (P is monotone in R).
    #[test]
    fn dlqr_cost_monotone_in_r(ts in 0.01f64..0.2, r_hi in 0.1f64..10.0) {
        let sys = StateSpace::new(
            Mat::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).expect("ok"),
            Mat::col_vec(&[0.0, 1.0]),
            Mat::from_rows(&[&[1.0, 0.0]]).expect("ok"),
            Mat::zeros(1, 1),
        ).expect("ok");
        let d = c2d_zoh(&sys, ts).expect("ok");
        let q = Mat::identity(2);
        let cheap = dlqr(&d, &q, &Mat::diag(&[r_hi / 10.0])).expect("solves");
        let dear = dlqr(&d, &q, &Mat::diag(&[r_hi])).expect("solves");
        // Compare x0' P x0 for a probe state.
        let x0 = [1.0, 0.5];
        let cost = |p: &Mat| {
            let px = p.matvec(&x0).expect("ok");
            x0.iter().zip(&px).map(|(a, b)| a * b).sum::<f64>()
        };
        prop_assert!(cost(&cheap.p) <= cost(&dear.p) + 1e-9);
    }

    /// Ackermann places the characteristic polynomial exactly: trace and
    /// determinant of the closed loop match the requested poles.
    #[test]
    fn acker_places_trace_det(
        p1 in -0.9f64..0.9,
        p2 in -0.9f64..0.9,
        ts in 0.05f64..0.5,
    ) {
        let sys = StateSpace::new(
            Mat::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).expect("ok"),
            Mat::col_vec(&[0.0, 1.0]),
            Mat::from_rows(&[&[1.0, 0.0]]).expect("ok"),
            Mat::zeros(1, 1),
        ).expect("ok");
        let d = c2d_zoh(&sys, ts).expect("ok");
        let cp = charpoly_from_real_poles(&[p1, p2]);
        let k = acker(d.a(), d.b(), &cp).expect("controllable");
        let acl = d.a().sub(&d.b().matmul(&k).expect("ok")).expect("ok");
        prop_assert!((acl.trace() - (p1 + p2)).abs() < 1e-7);
        let det = acl[(0, 0)] * acl[(1, 1)] - acl[(0, 1)] * acl[(1, 0)];
        prop_assert!((det - p1 * p2).abs() < 1e-7);
    }

    /// The delayed-ZOH input matrices partition the plain ZOH input
    /// response: Γ0 + Γ1 equals Bd mapped through nothing for A = 0, and
    /// more generally Φ(τ)·∫₀^{Ts−τ} + ∫ over [Ts−τ, Ts] ... we check the
    /// directly provable identity Γ0(τ=0) = Bd and Γ1(τ=Ts) = Bd.
    #[test]
    fn delayed_zoh_limits(sys in stable_siso(), ts in 0.01f64..0.5) {
        let plain = c2d_zoh(&sys, ts).expect("ok");
        let d0 = c2d_zoh_delayed(&sys, ts, 0.0).expect("ok");
        let dfull = c2d_zoh_delayed(&sys, ts, ts).expect("ok");
        prop_assert!(d0.gamma0.approx_eq(plain.b(), 1e-9));
        prop_assert!(d0.gamma1.norm_inf() < 1e-9);
        prop_assert!(dfull.gamma1.approx_eq(plain.b(), 1e-9));
        prop_assert!(dfull.gamma0.norm_inf() < 1e-9);
        prop_assert!(d0.phi.approx_eq(plain.a(), 1e-9));
    }

    /// The augmented delayed model under zero delay behaves like the plain
    /// sampled model: identical step responses on the physical states.
    #[test]
    fn augmented_zero_delay_equals_plain(sys in stable_siso(), ts in 0.02f64..0.3) {
        let plain = c2d_zoh(&sys, ts).expect("ok");
        let aug = c2d_zoh_delayed(&sys, ts, 0.0)
            .expect("ok")
            .augmented(sys.c())
            .expect("ok");
        let y_plain = plain.simulate(&[0.0, 0.0], 30, |_| vec![1.0]).expect("ok");
        let y_aug = aug
            .simulate(&[0.0, 0.0, 0.0], 30, |_| vec![1.0])
            .expect("ok");
        for (a, b) in y_plain.iter().zip(&y_aug) {
            prop_assert!((a[0] - b[0]).abs() < 1e-9);
        }
    }
}
