//! Pole-based stability analysis for continuous and discrete LTI models.
//!
//! Built on [`ecl_linalg::eigenvalues`]; used to verify designs before
//! co-simulation and to report the closed-loop pole pattern after a
//! calibration redesign.

use ecl_linalg::{eigenvalues, Eigenvalue, Mat};

use crate::ss::{DiscreteSs, StateSpace};
use crate::ControlError;

/// One pole of a system with its modal characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pole {
    /// Real part (continuous) or real component of `z` (discrete).
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
    /// Magnitude `|λ|` — the stability measure in discrete time.
    pub magnitude: f64,
    /// Damping ratio `ζ` of the equivalent second-order mode
    /// (continuous-time interpretation; 1.0 for real stable poles).
    pub damping: f64,
    /// Natural frequency `ωn` in rad/s (continuous-time interpretation;
    /// `0.0` for a pole at the origin).
    pub natural_freq: f64,
}

fn pole_from_ct(re: f64, im: f64) -> Pole {
    let wn = (re * re + im * im).sqrt();
    let damping = if wn == 0.0 { 1.0 } else { -re / wn };
    Pole {
        re,
        im,
        magnitude: wn,
        damping,
        natural_freq: wn,
    }
}

fn pole_from_dt(re: f64, im: f64, ts: f64) -> Pole {
    let mag = (re * re + im * im).sqrt();
    // Map z back to s = ln(z)/Ts for the modal interpretation.
    if mag == 0.0 {
        return Pole {
            re,
            im,
            magnitude: 0.0,
            damping: 1.0,
            natural_freq: 0.0,
        };
    }
    let s_re = mag.ln() / ts;
    let s_im = im.atan2(re) / ts;
    let wn = (s_re * s_re + s_im * s_im).sqrt();
    Pole {
        re,
        im,
        magnitude: mag,
        damping: if wn == 0.0 { 1.0 } else { -s_re / wn },
        natural_freq: wn,
    }
}

/// The poles of a continuous-time model.
///
/// # Errors
///
/// Propagates eigenvalue-computation failures.
pub fn poles_ct(sys: &StateSpace) -> Result<Vec<Pole>, ControlError> {
    Ok(eigenvalues(sys.a())?
        .into_iter()
        .map(|(re, im)| pole_from_ct(re, im))
        .collect())
}

/// The poles of a discrete-time model (with the continuous-equivalent
/// damping/frequency annotation).
///
/// # Errors
///
/// Propagates eigenvalue-computation failures.
pub fn poles_dt(sys: &DiscreteSs) -> Result<Vec<Pole>, ControlError> {
    Ok(eigenvalues(sys.a())?
        .into_iter()
        .map(|(re, im)| pole_from_dt(re, im, sys.ts()))
        .collect())
}

/// `true` if every continuous pole has a strictly negative real part.
///
/// # Errors
///
/// Propagates eigenvalue-computation failures.
pub fn is_stable_ct(sys: &StateSpace) -> Result<bool, ControlError> {
    Ok(poles_ct(sys)?.iter().all(|p| p.re < 0.0))
}

/// `true` if every discrete pole lies strictly inside the unit circle.
///
/// # Errors
///
/// Propagates eigenvalue-computation failures.
pub fn is_stable_dt(sys: &DiscreteSs) -> Result<bool, ControlError> {
    Ok(poles_dt(sys)?.iter().all(|p| p.magnitude < 1.0))
}

/// Eigenvalues of the discrete closed loop `Ad − Bd·K`.
///
/// # Errors
///
/// Returns [`ControlError::InvalidDimensions`] for a mismatched gain, plus
/// eigenvalue failures.
pub fn closed_loop_poles_dt(sys: &DiscreteSs, k: &Mat) -> Result<Vec<Eigenvalue>, ControlError> {
    if k.shape() != (sys.input_dim(), sys.state_dim()) {
        return Err(ControlError::InvalidDimensions {
            reason: format!(
                "gain must be {}x{}, got {}x{}",
                sys.input_dim(),
                sys.state_dim(),
                k.rows(),
                k.cols()
            ),
        });
    }
    let acl = sys.a().sub(&sys.b().matmul(k)?)?;
    Ok(eigenvalues(&acl)?)
}

/// The spectral radius of the discrete closed loop `Ad − Bd·K`
/// (`< 1` means stable; the margin `1 − ρ` is a robustness hint).
///
/// # Errors
///
/// Same as [`closed_loop_poles_dt`].
pub fn closed_loop_radius_dt(sys: &DiscreteSs, k: &Mat) -> Result<f64, ControlError> {
    Ok(closed_loop_poles_dt(sys, k)?
        .into_iter()
        .map(|(re, im)| (re * re + im * im).sqrt())
        .fold(0.0, f64::max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::dlqr;
    use crate::discretize::c2d_zoh;
    use crate::plants;

    #[test]
    fn dc_motor_stable_pendulum_not() {
        assert!(is_stable_ct(&plants::dc_motor().sys).unwrap());
        assert!(!is_stable_ct(&plants::inverted_pendulum().sys).unwrap());
        assert!(is_stable_ct(&plants::quarter_car().sys).unwrap());
        assert!(is_stable_ct(&plants::cruise_control().sys).unwrap());
    }

    #[test]
    fn zoh_maps_stability() {
        for p in plants::all() {
            let d = c2d_zoh(&p.sys, p.ts).unwrap();
            assert_eq!(
                is_stable_ct(&p.sys).unwrap(),
                is_stable_dt(&d).unwrap(),
                "{}",
                p.name
            );
        }
    }

    #[test]
    fn pole_mapping_exp_relation() {
        // Discrete poles of ZOH are exp(s_i Ts); damping/frequency must
        // round-trip for a complex pair.
        let sys = StateSpace::from_tf(&[1.0], &[1.0, 0.8, 4.0]).unwrap(); // wn=2, z=0.2
        let ts = 0.05;
        let d = c2d_zoh(&sys, ts).unwrap();
        let poles = poles_dt(&d).unwrap();
        for p in &poles {
            assert!((p.natural_freq - 2.0).abs() < 1e-6, "{p:?}");
            assert!((p.damping - 0.2).abs() < 1e-6, "{p:?}");
        }
    }

    #[test]
    fn lqr_closed_loop_stable_with_margin() {
        let p = plants::inverted_pendulum();
        let d = c2d_zoh(&p.sys, p.ts).unwrap();
        let gain = dlqr(&d, &Mat::identity(4), &Mat::diag(&[0.1])).unwrap();
        let rho = closed_loop_radius_dt(&d, &gain.k).unwrap();
        assert!(rho < 1.0, "rho {rho}");
        // Open loop is unstable.
        let rho_open = ecl_linalg::spectral_radius(d.a()).unwrap();
        assert!(rho_open > 1.0);
    }

    #[test]
    fn gain_shape_checked() {
        let p = plants::dc_motor();
        let d = c2d_zoh(&p.sys, p.ts).unwrap();
        assert!(closed_loop_poles_dt(&d, &Mat::zeros(2, 2)).is_err());
    }

    #[test]
    fn real_stable_pole_has_unit_damping() {
        let sys = StateSpace::from_tf(&[1.0], &[1.0, 3.0]).unwrap();
        let poles = poles_ct(&sys).unwrap();
        assert_eq!(poles.len(), 1);
        assert!((poles[0].damping - 1.0).abs() < 1e-12);
        assert!((poles[0].natural_freq - 3.0).abs() < 1e-12);
    }
}
