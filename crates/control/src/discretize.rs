//! Discretization of continuous plants: zero-order hold, Tustin, and the
//! delayed-ZOH model used by the calibration phase.

use ecl_linalg::{expm, lu, Mat};

use crate::ss::{DiscreteSs, StateSpace};
use crate::ControlError;

fn check_ts(ts: f64) -> Result<(), ControlError> {
    if !(ts > 0.0) || !ts.is_finite() {
        return Err(ControlError::InvalidParameter {
            parameter: "ts",
            reason: format!("sampling period must be positive and finite, got {ts}"),
        });
    }
    Ok(())
}

/// Zero-order-hold discretization.
///
/// Computes `Ad = e^{A·Ts}` and `Bd = ∫₀^Ts e^{A·s} ds · B` in one matrix
/// exponential of the augmented block matrix `[[A, B], [0, 0]]·Ts`
/// (Van Loan's method). `C` and `D` carry over unchanged.
///
/// # Errors
///
/// Propagates [`ControlError::InvalidParameter`] for a bad `ts` and any
/// linear-algebra failure from the exponential.
///
/// # Examples
///
/// ```
/// use ecl_control::{c2d_zoh, StateSpace};
/// use ecl_linalg::Mat;
/// # fn main() -> Result<(), ecl_control::ControlError> {
/// // Integrator ẋ = u: ZOH gives x⁺ = x + Ts·u.
/// let sys = StateSpace::new(
///     Mat::zeros(1, 1), Mat::col_vec(&[1.0]), Mat::row_vec(&[1.0]), Mat::zeros(1, 1))?;
/// let d = c2d_zoh(&sys, 0.5)?;
/// assert!((d.b()[(0, 0)] - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn c2d_zoh(sys: &StateSpace, ts: f64) -> Result<DiscreteSs, ControlError> {
    check_ts(ts)?;
    let n = sys.state_dim();
    let m = sys.input_dim();
    // M = [[A, B], [0, 0]] * Ts ; exp(M) = [[Ad, Bd], [0, I]].
    let mut aug = Mat::zeros(n + m, n + m);
    aug.set_block(0, 0, sys.a())?;
    aug.set_block(0, n, sys.b())?;
    let e = expm(&aug.scaled(ts))?;
    let ad = e.block(0, 0, n, n)?;
    let bd = e.block(0, n, n, m)?;
    DiscreteSs::new(ad, bd, sys.c().clone(), sys.d().clone(), ts)
}

/// Tustin (bilinear) discretization.
///
/// `Ad = (I − A·Ts/2)⁻¹ (I + A·Ts/2)`, `Bd = (I − A·Ts/2)⁻¹ B·Ts`,
/// `Cd = C`, `Dd = D + C·Bd/2`.
///
/// # Errors
///
/// Returns an error for a bad `ts` or when `(I − A·Ts/2)` is singular
/// (a plant pole at `2/Ts`).
pub fn c2d_tustin(sys: &StateSpace, ts: f64) -> Result<DiscreteSs, ControlError> {
    check_ts(ts)?;
    let n = sys.state_dim();
    let eye = Mat::identity(n);
    let half = sys.a().scaled(ts / 2.0);
    let minus = eye.sub(&half)?;
    let plus = eye.add(&half)?;
    let inv = lu::inverse(&minus)?;
    let ad = inv.matmul(&plus)?;
    let bd = inv.matmul(&sys.b().scaled(ts))?;
    let cd = sys.c().clone();
    let dd = sys.d().add(&sys.c().matmul(&bd.scaled(0.5))?)?;
    DiscreteSs::new(ad, bd, cd, dd, ts)
}

/// A sampled model with a fractional input delay `τ ∈ [0, Ts]`:
///
/// ```text
/// x_{k+1} = Φ·x_k + Γ1·u_{k-1} + Γ0·u_k
/// ```
///
/// (Åström & Wittenmark). Augmenting the state with `u_{k-1}` yields a
/// delay-free model on which standard synthesis applies — this is the
/// *calibration* step of the methodology: once co-simulation has measured
/// the implementation's actuation latency, the control law is redesigned
/// against this model instead of the ideal one.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayedDiscreteSs {
    /// `Φ = e^{A·Ts}`.
    pub phi: Mat,
    /// Input matrix for `u_k` (active during `[τ, Ts)`).
    pub gamma0: Mat,
    /// Input matrix for `u_{k-1}` (active during `[0, τ)`).
    pub gamma1: Mat,
    /// Sampling period (seconds).
    pub ts: f64,
    /// Input delay (seconds).
    pub tau: f64,
}

impl DelayedDiscreteSs {
    /// The augmented delay-free model with state `[x_k; u_{k-1}]`:
    ///
    /// ```text
    /// [x⁺; u_k] = [[Φ, Γ1], [0, 0]]·[x; u_{k-1}] + [[Γ0], [I]]·u_k
    /// ```
    ///
    /// The output map observes `x` through the original `C` (zero on the
    /// input memory).
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidDimensions`] if `c` does not match
    /// the plant state dimension.
    pub fn augmented(&self, c: &Mat) -> Result<DiscreteSs, ControlError> {
        let n = self.phi.rows();
        let m = self.gamma0.cols();
        if c.cols() != n {
            return Err(ControlError::InvalidDimensions {
                reason: format!("C must have {n} cols, got {}", c.cols()),
            });
        }
        let mut a = Mat::zeros(n + m, n + m);
        a.set_block(0, 0, &self.phi)?;
        a.set_block(0, n, &self.gamma1)?;
        let mut b = Mat::zeros(n + m, m);
        b.set_block(0, 0, &self.gamma0)?;
        b.set_block(n, 0, &Mat::identity(m))?;
        let mut ca = Mat::zeros(c.rows(), n + m);
        ca.set_block(0, 0, c)?;
        let d = Mat::zeros(c.rows(), m);
        DiscreteSs::new(a, b, ca, d, self.ts)
    }
}

/// ZOH discretization with a constant input delay `tau ∈ [0, ts]`.
///
/// With `Φ = e^{A·Ts}`,
/// `Γ1 = e^{A·(Ts−τ)} · ∫₀^τ e^{A·s} ds · B` and
/// `Γ0 = ∫₀^{Ts−τ} e^{A·s} ds · B`.
///
/// # Errors
///
/// Returns [`ControlError::InvalidParameter`] if `tau` is outside
/// `[0, ts]`, plus any failure of the underlying exponentials.
pub fn c2d_zoh_delayed(
    sys: &StateSpace,
    ts: f64,
    tau: f64,
) -> Result<DelayedDiscreteSs, ControlError> {
    check_ts(ts)?;
    if !(0.0..=ts).contains(&tau) {
        return Err(ControlError::InvalidParameter {
            parameter: "tau",
            reason: format!("delay must lie in [0, ts] = [0, {ts}], got {tau}"),
        });
    }
    let n = sys.state_dim();
    let m = sys.input_dim();
    // One augmented exponential per horizon gives both Φ(h) and
    // ∫₀^h e^{A s} ds · B.
    let seg = |h: f64| -> Result<(Mat, Mat), ControlError> {
        let mut aug = Mat::zeros(n + m, n + m);
        aug.set_block(0, 0, sys.a())?;
        aug.set_block(0, n, sys.b())?;
        let e = expm(&aug.scaled(h))?;
        Ok((e.block(0, 0, n, n)?, e.block(0, n, n, m)?))
    };
    let (phi, _) = seg(ts)?;
    let (phi_rest, gamma0) = seg(ts - tau)?;
    let (_, int_tau_b) = seg(tau)?;
    let gamma1 = phi_rest.matmul(&int_tau_b)?;
    Ok(DelayedDiscreteSs {
        phi,
        gamma0,
        gamma1,
        ts,
        tau,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lag() -> StateSpace {
        // ẋ = -x + u
        StateSpace::new(
            Mat::diag(&[-1.0]),
            Mat::col_vec(&[1.0]),
            Mat::row_vec(&[1.0]),
            Mat::zeros(1, 1),
        )
        .unwrap()
    }

    fn double_integrator() -> StateSpace {
        StateSpace::new(
            Mat::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).unwrap(),
            Mat::col_vec(&[0.0, 1.0]),
            Mat::from_rows(&[&[1.0, 0.0]]).unwrap(),
            Mat::zeros(1, 1),
        )
        .unwrap()
    }

    #[test]
    fn zoh_first_order_closed_form() {
        // Ad = e^{-Ts}, Bd = 1 - e^{-Ts}.
        let ts = 0.3;
        let d = c2d_zoh(&lag(), ts).unwrap();
        assert!((d.a()[(0, 0)] - (-ts).exp()).abs() < 1e-12);
        assert!((d.b()[(0, 0)] - (1.0 - (-ts).exp())).abs() < 1e-12);
        assert_eq!(d.ts(), ts);
    }

    #[test]
    fn zoh_double_integrator_closed_form() {
        // Ad = [[1, Ts], [0, 1]], Bd = [Ts²/2, Ts].
        let ts = 0.2;
        let d = c2d_zoh(&double_integrator(), ts).unwrap();
        assert!((d.a()[(0, 1)] - ts).abs() < 1e-12);
        assert!((d.b()[(0, 0)] - ts * ts / 2.0).abs() < 1e-12);
        assert!((d.b()[(1, 0)] - ts).abs() < 1e-12);
    }

    #[test]
    fn zoh_rejects_bad_ts() {
        assert!(c2d_zoh(&lag(), 0.0).is_err());
        assert!(c2d_zoh(&lag(), f64::NAN).is_err());
    }

    #[test]
    fn tustin_matches_zoh_for_small_ts() {
        let ts = 1e-4;
        let z = c2d_zoh(&lag(), ts).unwrap();
        let t = c2d_tustin(&lag(), ts).unwrap();
        assert!((z.a()[(0, 0)] - t.a()[(0, 0)]).abs() < 1e-8);
        assert!((z.b()[(0, 0)] - t.b()[(0, 0)]).abs() < 1e-8);
    }

    #[test]
    fn tustin_preserves_stability_mapping() {
        // Stable pole -1 maps inside the unit circle for any Ts.
        for ts in [0.1, 1.0, 10.0] {
            let t = c2d_tustin(&lag(), ts).unwrap();
            assert!(t.a()[(0, 0)].abs() < 1.0, "ts={ts}");
        }
    }

    #[test]
    fn delayed_zoh_limits() {
        // tau = 0 degenerates to plain ZOH (Γ1 = 0, Γ0 = Bd).
        let ts = 0.25;
        let plain = c2d_zoh(&lag(), ts).unwrap();
        let d0 = c2d_zoh_delayed(&lag(), ts, 0.0).unwrap();
        assert!((d0.gamma0[(0, 0)] - plain.b()[(0, 0)]).abs() < 1e-12);
        assert!(d0.gamma1[(0, 0)].abs() < 1e-12);
        // tau = ts: everything through Γ1 (one full sample of delay).
        let dfull = c2d_zoh_delayed(&lag(), ts, ts).unwrap();
        assert!(dfull.gamma0[(0, 0)].abs() < 1e-12);
        assert!((dfull.gamma1[(0, 0)] - plain.b()[(0, 0)]).abs() < 1e-12);
    }

    #[test]
    fn delayed_zoh_gammas_sum_to_bd() {
        // For any tau, Γ0 + Γ1 equals ... not Bd in general, but for the
        // integrator (A = 0) it does: contributions partition the period.
        let integ = StateSpace::new(
            Mat::zeros(1, 1),
            Mat::col_vec(&[1.0]),
            Mat::row_vec(&[1.0]),
            Mat::zeros(1, 1),
        )
        .unwrap();
        let ts = 0.5;
        for tau in [0.1, 0.25, 0.4] {
            let d = c2d_zoh_delayed(&integ, ts, tau).unwrap();
            assert!((d.gamma0[(0, 0)] + d.gamma1[(0, 0)] - ts).abs() < 1e-12);
            assert!((d.gamma1[(0, 0)] - tau).abs() < 1e-12, "tau={tau}");
        }
    }

    #[test]
    fn delayed_zoh_rejects_out_of_range_tau() {
        assert!(c2d_zoh_delayed(&lag(), 0.1, -0.01).is_err());
        assert!(c2d_zoh_delayed(&lag(), 0.1, 0.2).is_err());
    }

    #[test]
    fn augmented_model_shape_and_dynamics() {
        let sys = double_integrator();
        let ts = 0.1;
        let tau = 0.04;
        let d = c2d_zoh_delayed(&sys, ts, tau).unwrap();
        let aug = d.augmented(sys.c()).unwrap();
        assert_eq!(aug.state_dim(), 3);
        assert_eq!(aug.input_dim(), 1);
        // Last augmented state stores u_k: the bottom row of A is zero and
        // B's last entry is 1.
        assert_eq!(aug.a()[(2, 0)], 0.0);
        assert_eq!(aug.b()[(2, 0)], 1.0);
        // Simulating the augmented model with constant u reproduces the
        // non-delayed steady behaviour of the double integrator: x grows.
        let y = aug.simulate(&[0.0, 0.0, 0.0], 50, |_| vec![1.0]).unwrap();
        assert!(y.last().unwrap()[0] > y[10][0]);
    }

    #[test]
    fn augmented_checks_c() {
        let d = c2d_zoh_delayed(&lag(), 0.1, 0.05).unwrap();
        assert!(d.augmented(&Mat::zeros(1, 3)).is_err());
    }
}
