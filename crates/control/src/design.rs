//! Controller synthesis: discrete LQR, pole placement (Ackermann), and
//! observer design.

use ecl_linalg::{lu::Lu, solve_dare, DareOptions, Mat};

use crate::ss::DiscreteSs;
use crate::ControlError;

/// Result of a discrete LQR synthesis: the state-feedback gain and the
/// Riccati solution.
///
/// The control law is `u_k = −K·x_k`; the optimal infinite-horizon cost
/// from state `x0` is `x0ᵀ·P·x0`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dlqr {
    /// State-feedback gain (`m × n`).
    pub k: Mat,
    /// Stabilizing Riccati solution (`n × n`, symmetric).
    pub p: Mat,
}

/// Discrete-time LQR: minimizes `Σ xᵀQx + uᵀRu` for the sampled model.
///
/// # Errors
///
/// * [`ControlError::InvalidDimensions`] if `Q`/`R` do not match the model.
/// * Propagated [`ControlError::Linalg`] if the DARE iteration fails
///   (non-stabilizable pair, indefinite `R`, ...).
///
/// # Examples
///
/// ```
/// use ecl_control::{c2d_zoh, dlqr, plants};
/// use ecl_linalg::Mat;
/// # fn main() -> Result<(), ecl_control::ControlError> {
/// let plant = plants::dc_motor();
/// let dss = c2d_zoh(&plant.sys, 0.01)?;
/// let lqr = dlqr(&dss, &Mat::identity(2), &Mat::diag(&[0.5]))?;
/// assert_eq!(lqr.k.rows(), 1);
/// # Ok(())
/// # }
/// ```
pub fn dlqr(sys: &DiscreteSs, q: &Mat, r: &Mat) -> Result<Dlqr, ControlError> {
    let n = sys.state_dim();
    let m = sys.input_dim();
    if q.shape() != (n, n) {
        return Err(ControlError::InvalidDimensions {
            reason: format!("Q must be {n}x{n}, got {}x{}", q.rows(), q.cols()),
        });
    }
    if r.shape() != (m, m) {
        return Err(ControlError::InvalidDimensions {
            reason: format!("R must be {m}x{m}, got {}x{}", r.rows(), r.cols()),
        });
    }
    let p = solve_dare(sys.a(), sys.b(), q, r, DareOptions::default())?;
    // K = (R + BᵀPB)⁻¹ BᵀPA
    let bt = sys.b().transpose();
    let g = r.add(&bt.matmul(&p)?.matmul(sys.b())?)?;
    let bpa = bt.matmul(&p)?.matmul(sys.a())?;
    let k = Lu::factor(&g)?.solve_mat(&bpa)?;
    Ok(Dlqr { k, p })
}

/// Builds monic characteristic-polynomial coefficients from real roots.
///
/// Returns `[c0, c1, ..., c_{n-1}]` such that the polynomial is
/// `λⁿ + c_{n-1}·λ^{n-1} + … + c0`.
///
/// # Examples
///
/// ```
/// // (λ - 0.5)(λ - 0.2) = λ² - 0.7λ + 0.1
/// let c = ecl_control::charpoly_from_real_poles(&[0.5, 0.2]);
/// assert!((c[0] - 0.1).abs() < 1e-12);
/// assert!((c[1] + 0.7).abs() < 1e-12);
/// ```
pub fn charpoly_from_real_poles(poles: &[f64]) -> Vec<f64> {
    // coeffs of Π (λ - p), ascending order, excluding the leading 1.
    let mut c = vec![1.0]; // start with polynomial "1"
    for &p in poles {
        // multiply by (λ - p)
        let mut next = vec![0.0; c.len() + 1];
        for (i, &ci) in c.iter().enumerate() {
            next[i + 1] += ci; // λ * ci λ^i
            next[i] -= p * ci;
        }
        c = next;
    }
    c.pop(); // drop the leading 1
    c
}

/// Ackermann pole placement for single-input systems.
///
/// Computes `K` such that the closed loop `A − B·K` has the characteristic
/// polynomial `λⁿ + c_{n-1}λ^{n-1} + … + c0` described by `charpoly`
/// (ascending coefficients, as produced by [`charpoly_from_real_poles`]).
///
/// # Errors
///
/// * [`ControlError::NotSynthesizable`] if the system is not single-input
///   or not controllable.
/// * [`ControlError::InvalidDimensions`] if `charpoly.len() != n`.
pub fn acker(a: &Mat, b: &Mat, charpoly: &[f64]) -> Result<Mat, ControlError> {
    let n = a.rows();
    if !a.is_square() || b.rows() != n {
        return Err(ControlError::InvalidDimensions {
            reason: "A must be square and B conformable".into(),
        });
    }
    if b.cols() != 1 {
        return Err(ControlError::NotSynthesizable {
            reason: format!("Ackermann requires a single input, got {}", b.cols()),
        });
    }
    if charpoly.len() != n {
        return Err(ControlError::InvalidDimensions {
            reason: format!(
                "characteristic polynomial needs {n} coefficients, got {}",
                charpoly.len()
            ),
        });
    }
    // Controllability matrix Wc = [B, AB, ..., A^{n-1}B].
    let mut wc = Mat::zeros(n, n);
    let mut col = b.clone();
    for j in 0..n {
        for i in 0..n {
            wc[(i, j)] = col[(i, 0)];
        }
        col = a.matmul(&col)?;
    }
    let lu = Lu::factor(&wc).map_err(|_| ControlError::NotSynthesizable {
        reason: "system is not controllable (singular controllability matrix)".into(),
    })?;
    // φ(A) = Aⁿ + c_{n-1}A^{n-1} + ... + c0 I, Horner-style.
    let mut phi = Mat::identity(n); // will become A^n + ...
    for k in (0..n).rev() {
        phi = phi.matmul(a)?;
        phi = phi.add(&Mat::identity(n).scaled(charpoly[k]))?;
        // After the loop from top power down: phi = ((I·A + c_{n-1}I)·A + c_{n-2}I)·A ...
    }
    // K = eₙᵀ Wc⁻¹ φ(A): solve Wcᵀ z = eₙ, then K = zᵀ φ(A).
    // Simpler: X = Wc⁻¹ φ(A), K = last row of X.
    let x = lu.solve_mat(&phi)?;
    let mut k_mat = Mat::zeros(1, n);
    for j in 0..n {
        k_mat[(0, j)] = x[(n - 1, j)];
    }
    Ok(k_mat)
}

/// Luenberger observer gain by duality: places the poles of `A − L·C`.
///
/// `charpoly` describes the desired observer characteristic polynomial in
/// ascending coefficients (see [`charpoly_from_real_poles`]).
///
/// # Errors
///
/// Same as [`acker`], requiring a single output.
pub fn observer_gain(a: &Mat, c: &Mat, charpoly: &[f64]) -> Result<Mat, ControlError> {
    if c.rows() != 1 {
        return Err(ControlError::NotSynthesizable {
            reason: format!("observer design requires a single output, got {}", c.rows()),
        });
    }
    let l_t = acker(&a.transpose(), &c.transpose(), charpoly)?;
    Ok(l_t.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::c2d_zoh;
    use crate::ss::StateSpace;

    fn double_integrator_d(ts: f64) -> DiscreteSs {
        let sys = StateSpace::new(
            Mat::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).unwrap(),
            Mat::col_vec(&[0.0, 1.0]),
            Mat::from_rows(&[&[1.0, 0.0]]).unwrap(),
            Mat::zeros(1, 1),
        )
        .unwrap();
        c2d_zoh(&sys, ts).unwrap()
    }

    fn spectral_radius_2x2(m: &Mat) -> f64 {
        let tr = m.trace();
        let det = m[(0, 0)] * m[(1, 1)] - m[(0, 1)] * m[(1, 0)];
        let disc = tr * tr - 4.0 * det;
        if disc >= 0.0 {
            let s = disc.sqrt();
            ((tr + s) / 2.0).abs().max(((tr - s) / 2.0).abs())
        } else {
            det.abs().sqrt()
        }
    }

    #[test]
    fn dlqr_stabilizes_double_integrator() {
        let d = double_integrator_d(0.1);
        let lqr = dlqr(&d, &Mat::identity(2), &Mat::diag(&[1.0])).unwrap();
        let acl = d.a().sub(&d.b().matmul(&lqr.k).unwrap()).unwrap();
        assert!(spectral_radius_2x2(&acl) < 1.0);
        // P is symmetric positive on the diagonal.
        assert!((lqr.p[(0, 1)] - lqr.p[(1, 0)]).abs() < 1e-9);
        assert!(lqr.p[(0, 0)] > 0.0);
    }

    #[test]
    fn dlqr_dimension_checks() {
        let d = double_integrator_d(0.1);
        assert!(dlqr(&d, &Mat::identity(3), &Mat::identity(1)).is_err());
        assert!(dlqr(&d, &Mat::identity(2), &Mat::identity(2)).is_err());
    }

    #[test]
    fn charpoly_roots_roundtrip() {
        let c = charpoly_from_real_poles(&[0.5]);
        assert_eq!(c.len(), 1);
        assert!((c[0] + 0.5).abs() < 1e-12);
        let c = charpoly_from_real_poles(&[1.0, 2.0, 3.0]);
        // (λ-1)(λ-2)(λ-3) = λ³ -6λ² +11λ -6
        assert!((c[0] + 6.0).abs() < 1e-12);
        assert!((c[1] - 11.0).abs() < 1e-12);
        assert!((c[2] + 6.0).abs() < 1e-12);
    }

    #[test]
    fn acker_places_poles_exactly() {
        let d = double_integrator_d(0.1);
        let want = [0.5, 0.6];
        let cp = charpoly_from_real_poles(&want);
        let k = acker(d.a(), d.b(), &cp).unwrap();
        let acl = d.a().sub(&d.b().matmul(&k).unwrap()).unwrap();
        // Closed-loop char poly: trace = sum of poles, det = product.
        assert!((acl.trace() - 1.1).abs() < 1e-9, "trace {}", acl.trace());
        let det = acl[(0, 0)] * acl[(1, 1)] - acl[(0, 1)] * acl[(1, 0)];
        assert!((det - 0.3).abs() < 1e-9, "det {det}");
    }

    #[test]
    fn acker_deadbeat() {
        // All poles at zero: A_cl is nilpotent, (A_cl)² = 0.
        let d = double_integrator_d(0.2);
        let cp = charpoly_from_real_poles(&[0.0, 0.0]);
        let k = acker(d.a(), d.b(), &cp).unwrap();
        let acl = d.a().sub(&d.b().matmul(&k).unwrap()).unwrap();
        let sq = acl.matmul(&acl).unwrap();
        assert!(sq.norm_inf() < 1e-9, "{sq:?}");
    }

    #[test]
    fn acker_rejects_uncontrollable() {
        // B in the null direction: x2 unreachable.
        let a = Mat::diag(&[0.5, 0.7]);
        let b = Mat::col_vec(&[1.0, 0.0]);
        let cp = charpoly_from_real_poles(&[0.1, 0.2]);
        assert!(matches!(
            acker(&a, &b, &cp),
            Err(ControlError::NotSynthesizable { .. })
        ));
    }

    #[test]
    fn acker_requires_siso_and_matching_len() {
        let d = double_integrator_d(0.1);
        let b2 = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        assert!(acker(d.a(), &b2, &[0.0, 0.0]).is_err());
        assert!(acker(d.a(), d.b(), &[0.0]).is_err());
    }

    #[test]
    fn observer_gain_places_estimator_poles() {
        let d = double_integrator_d(0.1);
        let cp = charpoly_from_real_poles(&[0.2, 0.3]);
        let l = observer_gain(d.a(), d.c(), &cp).unwrap();
        assert_eq!(l.shape(), (2, 1));
        let acl = d.a().sub(&l.matmul(d.c()).unwrap()).unwrap();
        assert!((acl.trace() - 0.5).abs() < 1e-9);
        let det = acl[(0, 0)] * acl[(1, 1)] - acl[(0, 1)] * acl[(1, 0)];
        assert!((det - 0.06).abs() < 1e-9);
        // Multi-output rejected.
        let c2 = Mat::identity(2);
        assert!(observer_gain(d.a(), &c2, &cp).is_err());
    }
}
