//! Frequency-domain analysis of continuous LTI systems.
//!
//! The latency a distributed implementation injects into a loop eats
//! phase margin at the gain-crossover frequency; the classic back-of-the-
//! envelope bound is the **delay margin** `τ_max = φ_m / ω_gc`. This
//! module computes frequency responses without complex-matrix machinery —
//! `(jωI − A)x = b` is solved as a real `2n × 2n` system — and derives
//! gain/phase/delay margins for SISO loop transfers. Experiment E12
//! compares the analytic delay margin against the latency tolerance the
//! co-simulation observes.

use ecl_linalg::{lu::Lu, Mat};

use crate::ss::StateSpace;
use crate::ControlError;

/// One point of a SISO frequency response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreqPoint {
    /// Angular frequency (rad/s).
    pub omega: f64,
    /// Real part of `G(jω)`.
    pub re: f64,
    /// Imaginary part of `G(jω)`.
    pub im: f64,
}

impl FreqPoint {
    /// Magnitude `|G(jω)|`.
    pub fn magnitude(&self) -> f64 {
        (self.re * self.re + self.im * self.im).sqrt()
    }

    /// Phase in radians, in `(−π, π]`.
    pub fn phase(&self) -> f64 {
        self.im.atan2(self.re)
    }
}

/// Stability margins of a SISO open-loop transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Margins {
    /// Gain-crossover frequency `ω_gc` where `|L| = 1` (rad/s).
    pub omega_gc: f64,
    /// Phase margin `180° + ∠L(jω_gc)` in degrees.
    pub phase_margin_deg: f64,
    /// Delay margin `φ_m / ω_gc` in seconds — the extra loop delay that
    /// erases the phase margin.
    pub delay_margin: f64,
}

fn check_siso(sys: &StateSpace) -> Result<(), ControlError> {
    if sys.input_dim() != 1 || sys.output_dim() != 1 {
        return Err(ControlError::InvalidDimensions {
            reason: format!(
                "frequency analysis requires a SISO system, got {} inputs x {} outputs",
                sys.input_dim(),
                sys.output_dim()
            ),
        });
    }
    Ok(())
}

/// Evaluates `G(jω) = C (jωI − A)⁻¹ B + D` for a SISO system.
///
/// # Errors
///
/// * [`ControlError::InvalidDimensions`] for a non-SISO system.
/// * [`ControlError::Linalg`] if `jω` is an eigenvalue of `A` (the solve
///   is singular — evaluate slightly off the pole).
pub fn response(sys: &StateSpace, omega: f64) -> Result<FreqPoint, ControlError> {
    check_siso(sys)?;
    let n = sys.state_dim();
    if n == 0 {
        let d = sys.d()[(0, 0)];
        return Ok(FreqPoint {
            omega,
            re: d,
            im: 0.0,
        });
    }
    // (jwI - A)(xr + j xi) = b  =>  [[-A, -wI], [wI, -A]] [xr; xi] = [b; 0]
    let mut m = Mat::zeros(2 * n, 2 * n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = -sys.a()[(i, j)];
            m[(n + i, n + j)] = -sys.a()[(i, j)];
        }
        m[(i, n + i)] = -omega;
        m[(n + i, i)] = omega;
    }
    let mut rhs = vec![0.0; 2 * n];
    for i in 0..n {
        rhs[i] = sys.b()[(i, 0)];
    }
    let x = Lu::factor(&m)?.solve(&rhs)?;
    let mut re = sys.d()[(0, 0)];
    let mut im = 0.0;
    for j in 0..n {
        re += sys.c()[(0, j)] * x[j];
        im += sys.c()[(0, j)] * x[n + j];
    }
    Ok(FreqPoint { omega, re, im })
}

/// Evaluates the response over a logarithmic frequency grid
/// (`n_points` between `omega_min` and `omega_max`).
///
/// # Errors
///
/// Same as [`response`], plus [`ControlError::InvalidParameter`] for a
/// degenerate grid.
pub fn bode(
    sys: &StateSpace,
    omega_min: f64,
    omega_max: f64,
    n_points: usize,
) -> Result<Vec<FreqPoint>, ControlError> {
    if !(omega_min > 0.0) || !(omega_max > omega_min) || n_points < 2 {
        return Err(ControlError::InvalidParameter {
            parameter: "grid",
            reason: format!(
                "need 0 < omega_min < omega_max and >= 2 points, got [{omega_min}, {omega_max}] x {n_points}"
            ),
        });
    }
    let ratio = (omega_max / omega_min).ln();
    (0..n_points)
        .map(|k| {
            let w = omega_min * (ratio * k as f64 / (n_points - 1) as f64).exp();
            response(sys, w)
        })
        .collect()
}

/// Computes the stability margins of a SISO open-loop transfer `L(s)`.
///
/// Scans a logarithmic grid for the gain crossover (`|L| = 1`), refines it
/// by bisection, and reports the phase and delay margins. Returns
/// `Ok(None)` when `|L|` never crosses unity on the grid (no finite
/// crossover — an unconditionally low- or high-gain loop).
///
/// # Errors
///
/// Same as [`bode`].
pub fn margins(
    sys: &StateSpace,
    omega_min: f64,
    omega_max: f64,
) -> Result<Option<Margins>, ControlError> {
    let grid = bode(sys, omega_min, omega_max, 400)?;
    let mut bracket = None;
    for w in grid.windows(2) {
        let (m0, m1) = (w[0].magnitude(), w[1].magnitude());
        if (m0 - 1.0) * (m1 - 1.0) <= 0.0 && m0 != m1 {
            bracket = Some((w[0].omega, w[1].omega));
            break;
        }
    }
    let Some((mut lo, mut hi)) = bracket else {
        return Ok(None);
    };
    for _ in 0..80 {
        let mid = (lo * hi).sqrt();
        let m = response(sys, mid)?.magnitude();
        let m_lo = response(sys, lo)?.magnitude();
        if (m_lo - 1.0) * (m - 1.0) <= 0.0 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let omega_gc = (lo * hi).sqrt();
    let phase = response(sys, omega_gc)?.phase();
    let pm_rad = std::f64::consts::PI + phase;
    Ok(Some(Margins {
        omega_gc,
        phase_margin_deg: pm_rad.to_degrees(),
        delay_margin: pm_rad / omega_gc,
    }))
}

/// The open-loop transfer `L(s) = K (sI − A)⁻¹ B` of a full-state-feedback
/// loop (loop broken at the single plant input).
///
/// # Errors
///
/// Returns [`ControlError::InvalidDimensions`] if the plant is not
/// single-input or `k` is not `1 × n`.
pub fn state_feedback_loop(sys: &StateSpace, k: &Mat) -> Result<StateSpace, ControlError> {
    if sys.input_dim() != 1 {
        return Err(ControlError::InvalidDimensions {
            reason: format!(
                "loop transfer needs a single input, got {}",
                sys.input_dim()
            ),
        });
    }
    if k.shape() != (1, sys.state_dim()) {
        return Err(ControlError::InvalidDimensions {
            reason: format!(
                "gain must be 1x{}, got {}x{}",
                sys.state_dim(),
                k.rows(),
                k.cols()
            ),
        });
    }
    StateSpace::new(
        sys.a().clone(),
        sys.b().clone(),
        k.clone(),
        Mat::zeros(1, 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lag(tau: f64) -> StateSpace {
        // G(s) = 1 / (tau s + 1)
        StateSpace::new(
            Mat::diag(&[-1.0 / tau]),
            Mat::col_vec(&[1.0 / tau]),
            Mat::row_vec(&[1.0]),
            Mat::zeros(1, 1),
        )
        .unwrap()
    }

    #[test]
    fn first_order_lag_closed_form() {
        // |G(jw)| = 1/sqrt(1 + (w tau)^2), phase = -atan(w tau).
        let sys = lag(2.0);
        for w in [0.1, 0.5, 2.0, 10.0] {
            let p = response(&sys, w).unwrap();
            let expect_mag = 1.0 / (1.0 + (2.0 * w).powi(2)).sqrt();
            assert!((p.magnitude() - expect_mag).abs() < 1e-10, "w={w}");
            assert!((p.phase() + (2.0 * w).atan()).abs() < 1e-10, "w={w}");
        }
    }

    #[test]
    fn dc_gain_matches_static_solve() {
        let sys = StateSpace::from_tf(&[3.0], &[1.0, 2.0, 3.0]).unwrap();
        let p = response(&sys, 1e-6).unwrap();
        assert!(
            (p.magnitude() - 1.0).abs() < 1e-4,
            "dc gain {}",
            p.magnitude()
        );
    }

    #[test]
    fn integrator_rolls_off_at_minus_90() {
        // L(s) = 1/s: |L| = 1/w, phase -90 deg.
        let sys = StateSpace::new(
            Mat::zeros(1, 1),
            Mat::col_vec(&[1.0]),
            Mat::row_vec(&[1.0]),
            Mat::zeros(1, 1),
        )
        .unwrap();
        let p = response(&sys, 2.0).unwrap();
        assert!((p.magnitude() - 0.5).abs() < 1e-10);
        assert!((p.phase().to_degrees() + 90.0).abs() < 1e-8);
        // Margins: crossover at w = 1, PM = 90 deg, delay margin pi/2.
        let m = margins(&sys, 1e-2, 1e2).unwrap().unwrap();
        assert!((m.omega_gc - 1.0).abs() < 1e-3);
        assert!((m.phase_margin_deg - 90.0).abs() < 1e-2);
        assert!((m.delay_margin - std::f64::consts::FRAC_PI_2).abs() < 1e-3);
    }

    #[test]
    fn double_integrator_with_pd_margins() {
        // L(s) = (s + 1) / s²: crossover ~1.27 rad/s, PM ~52 deg.
        let sys = StateSpace::from_tf(&[1.0, 1.0], &[1.0, 0.0, 0.0]).unwrap();
        let m = margins(&sys, 1e-2, 1e2).unwrap().unwrap();
        assert!((m.omega_gc - 1.272).abs() < 0.01, "wgc {}", m.omega_gc);
        assert!(
            (m.phase_margin_deg - 51.8).abs() < 0.5,
            "pm {}",
            m.phase_margin_deg
        );
        assert!(m.delay_margin > 0.5 && m.delay_margin < 0.8);
    }

    #[test]
    fn no_crossover_returns_none() {
        // |L| < 1 everywhere: a lag with dc gain 0.1.
        let sys = StateSpace::new(
            Mat::diag(&[-1.0]),
            Mat::col_vec(&[0.1]),
            Mat::row_vec(&[1.0]),
            Mat::zeros(1, 1),
        )
        .unwrap();
        assert!(margins(&sys, 1e-2, 1e2).unwrap().is_none());
    }

    #[test]
    fn bode_grid_shape_and_validation() {
        let sys = lag(1.0);
        let pts = bode(&sys, 0.01, 100.0, 50).unwrap();
        assert_eq!(pts.len(), 50);
        assert!(pts[0].omega < pts[49].omega);
        assert!(pts.windows(2).all(|w| w[0].magnitude() >= w[1].magnitude()));
        assert!(bode(&sys, 0.0, 1.0, 10).is_err());
        assert!(bode(&sys, 1.0, 0.5, 10).is_err());
        assert!(bode(&sys, 0.1, 1.0, 1).is_err());
    }

    #[test]
    fn siso_required() {
        let mimo = StateSpace::new(
            Mat::identity(2).scaled(-1.0),
            Mat::identity(2),
            Mat::identity(2),
            Mat::zeros(2, 2),
        )
        .unwrap();
        assert!(response(&mimo, 1.0).is_err());
    }

    #[test]
    fn state_feedback_loop_transfer() {
        use crate::design::dlqr;
        use crate::discretize::c2d_zoh;
        use crate::plants;
        let p = plants::dc_motor();
        let d = c2d_zoh(&p.sys, p.ts).unwrap();
        let lqr = dlqr(&d, &Mat::identity(2), &Mat::diag(&[0.1])).unwrap();
        let l = state_feedback_loop(&p.sys, &lqr.k).unwrap();
        // A stabilizing LQR loop has healthy margins (LQR guarantees
        // PM >= 60 deg in continuous time; the ZOH design is close).
        let m = margins(&l, 1e-3, 1e4).unwrap().unwrap();
        assert!(m.phase_margin_deg > 45.0, "pm {}", m.phase_margin_deg);
        assert!(m.delay_margin > 0.0);
        // Shape errors rejected.
        assert!(state_feedback_loop(&p.sys, &Mat::zeros(2, 2)).is_err());
    }
}
