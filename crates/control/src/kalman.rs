//! Steady-state Kalman filter design (dual of the LQR problem).
//!
//! The distributed implementations this workspace studies often sample
//! noisy sensors; a steady-state Kalman gain provides the standard
//! estimator to pair with LQR state feedback (LQG). The filter Riccati
//! equation is the dual of the control one, so the solver reuses
//! [`ecl_linalg::solve_dare`] on transposed data.

use ecl_linalg::{lu::Lu, solve_dare, DareOptions, Mat};

use crate::ss::DiscreteSs;
use crate::ControlError;

/// Result of a steady-state Kalman design.
#[derive(Debug, Clone, PartialEq)]
pub struct Kalman {
    /// The steady-state filter gain `L` (`n × p`): the measurement update
    /// is `x̂⁺ = Ad·x̂ + Bd·u + L·(y − Cd·x̂)`.
    pub l: Mat,
    /// The steady-state a-priori error covariance `P`.
    pub p: Mat,
}

/// Designs the steady-state Kalman gain for the sampled model with process
/// noise covariance `Q` (`n × n`, entering through the state) and
/// measurement noise covariance `R` (`p × p`).
///
/// # Errors
///
/// * [`ControlError::InvalidDimensions`] for mismatched covariances.
/// * Propagated Riccati failures (undetectable pair, singular innovation
///   covariance).
///
/// # Examples
///
/// ```
/// use ecl_control::{c2d_zoh, kalman, plants};
/// use ecl_linalg::Mat;
/// # fn main() -> Result<(), ecl_control::ControlError> {
/// let p = plants::dc_motor();
/// let d = c2d_zoh(&p.sys, p.ts)?;
/// let kf = kalman::design(&d, &Mat::identity(2).scaled(1e-4), &Mat::diag(&[1e-2]))?;
/// assert_eq!(kf.l.shape(), (2, 1));
/// # Ok(())
/// # }
/// ```
pub fn design(sys: &DiscreteSs, q: &Mat, r: &Mat) -> Result<Kalman, ControlError> {
    let n = sys.state_dim();
    let p_out = sys.output_dim();
    if q.shape() != (n, n) {
        return Err(ControlError::InvalidDimensions {
            reason: format!("Q must be {n}x{n}, got {}x{}", q.rows(), q.cols()),
        });
    }
    if r.shape() != (p_out, p_out) {
        return Err(ControlError::InvalidDimensions {
            reason: format!("R must be {p_out}x{p_out}, got {}x{}", r.rows(), r.cols()),
        });
    }
    // Dual DARE: substitute A -> Aᵀ, B -> Cᵀ.
    let p = solve_dare(
        &sys.a().transpose(),
        &sys.c().transpose(),
        q,
        r,
        DareOptions::default(),
    )?;
    // L = A P Cᵀ (C P Cᵀ + R)⁻¹.
    let pct = p.matmul(&sys.c().transpose())?;
    let s = sys.c().matmul(&pct)?.add(r)?;
    // Solve Sᵀ Xᵀ = (A P Cᵀ)ᵀ for X = A P Cᵀ S⁻¹.
    let apc = sys.a().matmul(&pct)?;
    let lt = Lu::factor(&s.transpose())?.solve_mat(&apc.transpose())?;
    Ok(Kalman {
        l: lt.transpose(),
        p,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::c2d_zoh;
    use crate::plants;
    use crate::stability;

    fn motor() -> DiscreteSs {
        let p = plants::dc_motor();
        c2d_zoh(&p.sys, p.ts).unwrap()
    }

    #[test]
    fn estimator_dynamics_stable() {
        let d = motor();
        let kf = design(&d, &Mat::identity(2).scaled(1e-4), &Mat::diag(&[1e-2])).unwrap();
        // A - L C must be Schur stable.
        let acl = d.a().sub(&kf.l.matmul(d.c()).unwrap()).unwrap();
        let rho = ecl_linalg::spectral_radius(&acl).unwrap();
        assert!(rho < 1.0, "estimator unstable: {rho}");
    }

    #[test]
    fn covariance_symmetric_positive_diagonal() {
        let d = motor();
        let kf = design(&d, &Mat::identity(2).scaled(1e-3), &Mat::diag(&[1e-2])).unwrap();
        assert!((kf.p[(0, 1)] - kf.p[(1, 0)]).abs() < 1e-10);
        assert!(kf.p[(0, 0)] > 0.0 && kf.p[(1, 1)] > 0.0);
    }

    #[test]
    fn more_measurement_noise_means_smaller_gain() {
        let d = motor();
        let quiet = design(&d, &Mat::identity(2).scaled(1e-4), &Mat::diag(&[1e-4])).unwrap();
        let noisy = design(&d, &Mat::identity(2).scaled(1e-4), &Mat::diag(&[1.0])).unwrap();
        assert!(
            noisy.l.norm_fro() < quiet.l.norm_fro(),
            "noisy {} vs quiet {}",
            noisy.l.norm_fro(),
            quiet.l.norm_fro()
        );
    }

    #[test]
    fn estimator_converges_in_simulation() {
        // Run the filter against the true model from a wrong initial
        // estimate; the error must shrink.
        let d = motor();
        let kf = design(&d, &Mat::identity(2).scaled(1e-6), &Mat::diag(&[1e-6])).unwrap();
        let mut x = vec![1.0, 0.0];
        let mut xh = vec![0.0, 0.0];
        let u = [0.5];
        for _ in 0..200 {
            let y = d.c().matvec(&x).unwrap();
            let yh = d.c().matvec(&xh).unwrap();
            let innov: Vec<f64> = y.iter().zip(&yh).map(|(a, b)| a - b).collect();
            let ax = d.a().matvec(&x).unwrap();
            let bu = d.b().matvec(&u).unwrap();
            x = ax.iter().zip(&bu).map(|(a, b)| a + b).collect();
            let axh = d.a().matvec(&xh).unwrap();
            let li = kf.l.matvec(&innov).unwrap();
            xh = axh
                .iter()
                .zip(&bu)
                .zip(&li)
                .map(|((a, b), l)| a + b + l)
                .collect();
        }
        let err = ((x[0] - xh[0]).powi(2) + (x[1] - xh[1]).powi(2)).sqrt();
        assert!(err < 1e-3, "estimation error {err}");
    }

    #[test]
    fn dimension_checks() {
        let d = motor();
        assert!(design(&d, &Mat::identity(3), &Mat::diag(&[1.0])).is_err());
        assert!(design(&d, &Mat::identity(2), &Mat::identity(2)).is_err());
    }

    #[test]
    fn works_on_multi_output_plant() {
        let p = plants::quarter_car();
        let d = c2d_zoh(&p.sys, p.ts).unwrap();
        let kf = design(
            &d,
            &Mat::identity(4).scaled(1e-5),
            &Mat::identity(2).scaled(1e-4),
        )
        .unwrap();
        assert_eq!(kf.l.shape(), (4, 2));
        let acl = d.a().sub(&kf.l.matmul(d.c()).unwrap()).unwrap();
        assert!(ecl_linalg::spectral_radius(&acl).unwrap() < 1.0);
        // And the plant is stable so poles_dt agrees.
        assert!(stability::is_stable_dt(&d).unwrap());
    }
}
