//! Control-performance metrics over sampled trajectories.
//!
//! All functions take parallel `times`/`values` slices (seconds / signal)
//! as produced by the simulation probes, integrate with the trapezoid rule,
//! and are the quantities reported by the benchmark harness when comparing
//! the ideal (stroboscopic) design against the implemented one.

/// Integral of absolute error `∫ |r − y| dt`.
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn iae(times: &[f64], values: &[f64], reference: f64) -> f64 {
    trapz(times, values, |y, _t| (reference - y).abs())
}

/// Integral of squared error `∫ (r − y)² dt`.
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn ise(times: &[f64], values: &[f64], reference: f64) -> f64 {
    trapz(times, values, |y, _t| (reference - y).powi(2))
}

/// Time-weighted integral of absolute error `∫ t·|r − y| dt`.
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn itae(times: &[f64], values: &[f64], reference: f64) -> f64 {
    trapz(times, values, |y, t| t * (reference - y).abs())
}

/// Quadratic (LQ-style) cost `∫ qy·(r − y)² + ru·u² dt` over paired output
/// and control trajectories. The control trajectory is linearly resampled
/// onto the output time grid.
///
/// # Panics
///
/// Panics if either pair of slices disagrees in length, or the output
/// trace is empty while the control trace is not.
pub fn quadratic_cost(
    times: &[f64],
    y: &[f64],
    u_times: &[f64],
    u: &[f64],
    qy: f64,
    ru: f64,
    reference: f64,
) -> f64 {
    assert_eq!(times.len(), y.len(), "output slices disagree");
    assert_eq!(u_times.len(), u.len(), "control slices disagree");
    let mut acc = 0.0;
    for i in 1..times.len() {
        let dt = times[i] - times[i - 1];
        if dt <= 0.0 {
            continue;
        }
        let cost_at = |j: usize| {
            let e = reference - y[j];
            let uv = sample(u_times, u, times[j]);
            qy * e * e + ru * uv * uv
        };
        acc += 0.5 * dt * (cost_at(i - 1) + cost_at(i));
    }
    acc
}

/// Percentage overshoot of a step response relative to the reference
/// (`0.0` if the response never exceeds it). `initial` anchors the step
/// size.
///
/// # Panics
///
/// Panics if `reference == initial`.
pub fn overshoot(values: &[f64], reference: f64, initial: f64) -> f64 {
    assert!(
        reference != initial,
        "reference must differ from the initial value"
    );
    let span = reference - initial;
    let peak = values
        .iter()
        .map(|&y| (y - initial) / span)
        .fold(f64::NEG_INFINITY, f64::max);
    ((peak - 1.0) * 100.0).max(0.0)
}

/// Time (seconds) after which the response stays within `band` (fraction,
/// e.g. `0.02`) of the reference; `None` if it never settles.
///
/// # Panics
///
/// Panics if the slices disagree in length or `band <= 0`.
pub fn settling_time(times: &[f64], values: &[f64], reference: f64, band: f64) -> Option<f64> {
    assert_eq!(times.len(), values.len(), "slices disagree");
    assert!(band > 0.0, "band must be positive");
    let tol = band * reference.abs().max(1e-12);
    let mut settle: Option<f64> = None;
    for (&t, &y) in times.iter().zip(values) {
        if (y - reference).abs() <= tol {
            settle.get_or_insert(t);
        } else {
            settle = None;
        }
    }
    settle
}

/// Steady-state error: mean of `r − y` over the trailing `fraction` of the
/// trace (e.g. `0.1` for the last tenth).
///
/// # Panics
///
/// Panics if the slices disagree, are empty, or `fraction` is outside
/// `(0, 1]`.
pub fn steady_state_error(times: &[f64], values: &[f64], reference: f64, fraction: f64) -> f64 {
    assert_eq!(times.len(), values.len(), "slices disagree");
    assert!(!values.is_empty(), "empty trace");
    assert!(fraction > 0.0 && fraction <= 1.0, "fraction out of range");
    let t_end = *times.last().expect("non-empty");
    let t_start = t_end - fraction * (t_end - times[0]);
    let tail: Vec<f64> = times
        .iter()
        .zip(values)
        .filter(|(&t, _)| t >= t_start)
        .map(|(_, &y)| reference - y)
        .collect();
    tail.iter().sum::<f64>() / tail.len() as f64
}

/// Root-mean-square of a signal (useful for disturbance-rejection scores).
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn rms(times: &[f64], values: &[f64]) -> f64 {
    assert_eq!(times.len(), values.len(), "slices disagree");
    if times.len() < 2 {
        return values.first().map_or(0.0, |v| v.abs());
    }
    let span = times.last().expect("non-empty") - times[0];
    if span <= 0.0 {
        return values.first().map_or(0.0, |v| v.abs());
    }
    (trapz(times, values, |y, _| y * y) / span).sqrt()
}

fn trapz(times: &[f64], values: &[f64], f: impl Fn(f64, f64) -> f64) -> f64 {
    assert_eq!(times.len(), values.len(), "slices disagree");
    let mut acc = 0.0;
    for i in 1..times.len() {
        let dt = times[i] - times[i - 1];
        if dt <= 0.0 {
            continue; // duplicate instants from event discontinuities
        }
        acc += 0.5 * dt * (f(values[i - 1], times[i - 1]) + f(values[i], times[i]));
    }
    acc
}

fn sample(times: &[f64], values: &[f64], t: f64) -> f64 {
    if times.is_empty() {
        return 0.0;
    }
    if t <= times[0] {
        return values[0];
    }
    if t >= *times.last().expect("non-empty") {
        return *values.last().expect("non-empty");
    }
    let idx = times.partition_point(|&x| x <= t);
    let (t0, t1) = (times[idx - 1], times[idx]);
    let (v0, v1) = (values[idx - 1], values[idx]);
    if t1 == t0 {
        v1
    } else {
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iae_of_constant_error() {
        // e = 1 over [0, 2] -> IAE = 2.
        let t = [0.0, 1.0, 2.0];
        let y = [0.0, 0.0, 0.0];
        assert!((iae(&t, &y, 1.0) - 2.0).abs() < 1e-12);
        assert!((ise(&t, &y, 1.0) - 2.0).abs() < 1e-12);
        // ITAE of constant error 1: ∫ t dt = 2.
        assert!((itae(&t, &y, 1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ise_penalizes_larger_errors_more() {
        let t = [0.0, 1.0];
        let small = [0.9, 0.9];
        let large = [0.0, 0.0];
        let ratio = ise(&t, &large, 1.0) / ise(&t, &small, 1.0);
        assert!((ratio - 100.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_instants_skipped() {
        // Event discontinuity recorded twice at t = 1.
        let t = [0.0, 1.0, 1.0, 2.0];
        let y = [0.0, 0.0, 1.0, 1.0];
        assert!((iae(&t, &y, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overshoot_cases() {
        assert_eq!(overshoot(&[0.0, 0.5, 1.0], 1.0, 0.0), 0.0);
        assert!((overshoot(&[0.0, 1.2, 1.0], 1.0, 0.0) - 20.0).abs() < 1e-9);
        // Downward step: overshoot means undershooting below the target.
        assert!((overshoot(&[1.0, -0.1, 0.0], 0.0, 1.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn settling_time_finds_last_entry_into_band() {
        let t = [0.0, 1.0, 2.0, 3.0, 4.0];
        let y = [0.0, 1.1, 0.99, 1.01, 1.0];
        let st = settling_time(&t, &y, 1.0, 0.02).unwrap();
        assert_eq!(st, 2.0);
        // Never settles.
        assert!(settling_time(&t, &[0.0; 5], 1.0, 0.02).is_none());
    }

    #[test]
    fn steady_state_error_tail_mean() {
        let t = [0.0, 1.0, 2.0, 3.0, 4.0];
        let y = [0.0, 0.5, 0.9, 0.95, 0.95];
        let e = steady_state_error(&t, &y, 1.0, 0.25);
        assert!((e - 0.05).abs() < 1e-9);
    }

    #[test]
    fn quadratic_cost_combines_terms() {
        let t = [0.0, 1.0];
        let y = [0.0, 0.0]; // e = 1
        let u = [2.0, 2.0];
        let j = quadratic_cost(&t, &y, &t, &u, 1.0, 0.5, 1.0);
        // ∫ 1 + 0.5·4 dt = 3.
        assert!((j - 3.0).abs() < 1e-12);
    }

    #[test]
    fn quadratic_cost_resamples_u() {
        let ty = [0.0, 1.0, 2.0];
        let y = [1.0, 1.0, 1.0]; // zero error
        let tu = [0.0, 2.0];
        let u = [0.0, 2.0]; // ramp in u
        let j = quadratic_cost(&ty, &y, &tu, &u, 1.0, 1.0, 1.0);
        // ∫ t² dt over [0,2] = 8/3, trapezoid on 3 points: 0.5·(0+1) + 0.5·(1+4) = 3.
        assert!((j - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rms_of_sine_like() {
        let n = 10_000;
        let t: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
        let y: Vec<f64> = t
            .iter()
            .map(|&ti| (2.0 * std::f64::consts::PI * ti).sin())
            .collect();
        assert!((rms(&t, &y) - 1.0 / 2.0f64.sqrt()).abs() < 1e-3);
        assert_eq!(rms(&[0.0], &[3.0]), 3.0);
        assert_eq!(rms(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "reference must differ")]
    fn overshoot_rejects_degenerate_step() {
        overshoot(&[0.0], 1.0, 1.0);
    }
}
