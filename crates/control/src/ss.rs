//! Linear time-invariant state-space models.

use ecl_linalg::Mat;

use crate::ControlError;

/// Validates that `(a, b, c, d)` form a consistent state-space quadruple
/// and returns `(n, m, p)`.
fn check_dims(a: &Mat, b: &Mat, c: &Mat, d: &Mat) -> Result<(usize, usize, usize), ControlError> {
    if !a.is_square() {
        return Err(ControlError::InvalidDimensions {
            reason: format!("A must be square, got {}x{}", a.rows(), a.cols()),
        });
    }
    let n = a.rows();
    let m = b.cols();
    let p = c.rows();
    if b.rows() != n {
        return Err(ControlError::InvalidDimensions {
            reason: format!("B must have {n} rows, got {}", b.rows()),
        });
    }
    if c.cols() != n {
        return Err(ControlError::InvalidDimensions {
            reason: format!("C must have {n} cols, got {}", c.cols()),
        });
    }
    if d.shape() != (p, m) {
        return Err(ControlError::InvalidDimensions {
            reason: format!("D must be {p}x{m}, got {}x{}", d.rows(), d.cols()),
        });
    }
    if m == 0 || p == 0 {
        return Err(ControlError::InvalidDimensions {
            reason: format!("need at least one input and one output, got m={m}, p={p}"),
        });
    }
    Ok((n, m, p))
}

/// A continuous-time LTI system `ẋ = A·x + B·u`, `y = C·x + D·u`.
///
/// # Examples
///
/// ```
/// use ecl_control::StateSpace;
/// use ecl_linalg::Mat;
/// # fn main() -> Result<(), ecl_control::ControlError> {
/// // First-order lag 1/(s+1).
/// let sys = StateSpace::new(
///     Mat::diag(&[-1.0]),
///     Mat::col_vec(&[1.0]),
///     Mat::row_vec(&[1.0]),
///     Mat::zeros(1, 1),
/// )?;
/// assert_eq!(sys.state_dim(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateSpace {
    a: Mat,
    b: Mat,
    c: Mat,
    d: Mat,
}

impl StateSpace {
    /// Creates a continuous state-space model.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidDimensions`] for inconsistent shapes.
    pub fn new(a: Mat, b: Mat, c: Mat, d: Mat) -> Result<Self, ControlError> {
        check_dims(&a, &b, &c, &d)?;
        Ok(StateSpace { a, b, c, d })
    }

    /// The `A` matrix.
    pub fn a(&self) -> &Mat {
        &self.a
    }
    /// The `B` matrix.
    pub fn b(&self) -> &Mat {
        &self.b
    }
    /// The `C` matrix.
    pub fn c(&self) -> &Mat {
        &self.c
    }
    /// The `D` matrix.
    pub fn d(&self) -> &Mat {
        &self.d
    }

    /// Number of states.
    pub fn state_dim(&self) -> usize {
        self.a.rows()
    }
    /// Number of inputs.
    pub fn input_dim(&self) -> usize {
        self.b.cols()
    }
    /// Number of outputs.
    pub fn output_dim(&self) -> usize {
        self.c.rows()
    }

    /// Builds a SISO model from transfer-function coefficients in
    /// controllable canonical form.
    ///
    /// `num` and `den` are ordered from the highest power downwards; the
    /// transfer function must be strictly proper (`num.len() < den.len()`)
    /// and the leading denominator coefficient non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidParameter`] for an improper or
    /// degenerate fraction.
    ///
    /// # Examples
    ///
    /// ```
    /// use ecl_control::StateSpace;
    /// # fn main() -> Result<(), ecl_control::ControlError> {
    /// // 1 / (s² + 2s + 1)
    /// let sys = StateSpace::from_tf(&[1.0], &[1.0, 2.0, 1.0])?;
    /// assert_eq!(sys.state_dim(), 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_tf(num: &[f64], den: &[f64]) -> Result<Self, ControlError> {
        if den.is_empty() || den[0] == 0.0 {
            return Err(ControlError::InvalidParameter {
                parameter: "den",
                reason: "leading denominator coefficient must be non-zero".into(),
            });
        }
        if num.is_empty() || num.len() >= den.len() {
            return Err(ControlError::InvalidParameter {
                parameter: "num",
                reason: format!(
                    "transfer function must be strictly proper (num degree {} < den degree {})",
                    num.len().saturating_sub(1),
                    den.len() - 1
                ),
            });
        }
        let n = den.len() - 1;
        // Normalize by the leading denominator coefficient.
        let den_n: Vec<f64> = den.iter().map(|&x| x / den[0]).collect();
        let num_n: Vec<f64> = num.iter().map(|&x| x / den[0]).collect();
        // Controllable canonical form.
        let mut a = Mat::zeros(n, n);
        for i in 0..n - 1 {
            a[(i, i + 1)] = 1.0;
        }
        for j in 0..n {
            a[(n - 1, j)] = -den_n[n - j];
        }
        let mut b = Mat::zeros(n, 1);
        b[(n - 1, 0)] = 1.0;
        let mut c = Mat::zeros(1, n);
        // num padded to length n (low-order first alignment).
        for (k, &coef) in num_n.iter().rev().enumerate() {
            c[(0, k)] = coef;
        }
        let d = Mat::zeros(1, 1);
        StateSpace::new(a, b, c, d)
    }
}

/// A discrete-time LTI system `x⁺ = Ad·x + Bd·u`, `y = Cd·x + Dd·u` with an
/// attached sampling period.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteSs {
    a: Mat,
    b: Mat,
    c: Mat,
    d: Mat,
    ts: f64,
}

impl DiscreteSs {
    /// Creates a discrete state-space model with sampling period `ts`
    /// seconds.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidDimensions`] for inconsistent shapes
    /// or [`ControlError::InvalidParameter`] for a non-positive `ts`.
    pub fn new(a: Mat, b: Mat, c: Mat, d: Mat, ts: f64) -> Result<Self, ControlError> {
        check_dims(&a, &b, &c, &d)?;
        if !(ts > 0.0) || !ts.is_finite() {
            return Err(ControlError::InvalidParameter {
                parameter: "ts",
                reason: format!("sampling period must be positive and finite, got {ts}"),
            });
        }
        Ok(DiscreteSs { a, b, c, d, ts })
    }

    /// The `Ad` matrix.
    pub fn a(&self) -> &Mat {
        &self.a
    }
    /// The `Bd` matrix.
    pub fn b(&self) -> &Mat {
        &self.b
    }
    /// The `Cd` matrix.
    pub fn c(&self) -> &Mat {
        &self.c
    }
    /// The `Dd` matrix.
    pub fn d(&self) -> &Mat {
        &self.d
    }
    /// The sampling period in seconds.
    pub fn ts(&self) -> f64 {
        self.ts
    }

    /// Number of states.
    pub fn state_dim(&self) -> usize {
        self.a.rows()
    }
    /// Number of inputs.
    pub fn input_dim(&self) -> usize {
        self.b.cols()
    }
    /// Number of outputs.
    pub fn output_dim(&self) -> usize {
        self.c.rows()
    }

    /// Simulates the model for `steps` samples under the input sequence
    /// produced by `u_of_k`, starting from `x0`, and returns the output
    /// sequence (one `Vec<f64>` of length `p` per step).
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidDimensions`] if `x0` or the produced
    /// input vectors have the wrong length.
    pub fn simulate(
        &self,
        x0: &[f64],
        steps: usize,
        mut u_of_k: impl FnMut(usize) -> Vec<f64>,
    ) -> Result<Vec<Vec<f64>>, ControlError> {
        let n = self.state_dim();
        if x0.len() != n {
            return Err(ControlError::InvalidDimensions {
                reason: format!("x0 has {} entries, expected {n}", x0.len()),
            });
        }
        let mut x = x0.to_vec();
        let mut out = Vec::with_capacity(steps);
        for k in 0..steps {
            let u = u_of_k(k);
            if u.len() != self.input_dim() {
                return Err(ControlError::InvalidDimensions {
                    reason: format!(
                        "input at step {k} has {} entries, expected {}",
                        u.len(),
                        self.input_dim()
                    ),
                });
            }
            let mut y = self.c.matvec(&x)?;
            let du = self.d.matvec(&u)?;
            for (yi, dui) in y.iter_mut().zip(&du) {
                *yi += dui;
            }
            out.push(y);
            let ax = self.a.matvec(&x)?;
            let bu = self.b.matvec(&u)?;
            x = ax.iter().zip(&bu).map(|(a, b)| a + b).collect();
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lag() -> StateSpace {
        StateSpace::new(
            Mat::diag(&[-1.0]),
            Mat::col_vec(&[1.0]),
            Mat::row_vec(&[1.0]),
            Mat::zeros(1, 1),
        )
        .unwrap()
    }

    #[test]
    fn dims_checked() {
        assert!(StateSpace::new(
            Mat::zeros(2, 3),
            Mat::zeros(2, 1),
            Mat::zeros(1, 2),
            Mat::zeros(1, 1)
        )
        .is_err());
        assert!(StateSpace::new(
            Mat::zeros(2, 2),
            Mat::zeros(3, 1),
            Mat::zeros(1, 2),
            Mat::zeros(1, 1)
        )
        .is_err());
        assert!(StateSpace::new(
            Mat::zeros(2, 2),
            Mat::zeros(2, 1),
            Mat::zeros(1, 3),
            Mat::zeros(1, 1)
        )
        .is_err());
        assert!(StateSpace::new(
            Mat::zeros(2, 2),
            Mat::zeros(2, 1),
            Mat::zeros(1, 2),
            Mat::zeros(2, 2)
        )
        .is_err());
    }

    #[test]
    fn accessors() {
        let s = lag();
        assert_eq!(s.state_dim(), 1);
        assert_eq!(s.input_dim(), 1);
        assert_eq!(s.output_dim(), 1);
        assert_eq!(s.a()[(0, 0)], -1.0);
        assert_eq!(s.b()[(0, 0)], 1.0);
        assert_eq!(s.c()[(0, 0)], 1.0);
        assert_eq!(s.d()[(0, 0)], 0.0);
    }

    #[test]
    fn from_tf_canonical_form() {
        // G(s) = (s + 2) / (s² + 3s + 5)
        let s = StateSpace::from_tf(&[1.0, 2.0], &[1.0, 3.0, 5.0]).unwrap();
        assert_eq!(s.state_dim(), 2);
        // Companion last row: [-5, -3]
        assert_eq!(s.a()[(1, 0)], -5.0);
        assert_eq!(s.a()[(1, 1)], -3.0);
        assert_eq!(s.a()[(0, 1)], 1.0);
        // C = [2, 1] (constant term first)
        assert_eq!(s.c()[(0, 0)], 2.0);
        assert_eq!(s.c()[(0, 1)], 1.0);
    }

    #[test]
    fn from_tf_rejects_improper() {
        assert!(StateSpace::from_tf(&[1.0, 0.0], &[1.0, 1.0]).is_err());
        assert!(StateSpace::from_tf(&[1.0], &[0.0, 1.0]).is_err());
        assert!(StateSpace::from_tf(&[], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn discrete_validation() {
        let a = Mat::diag(&[0.5]);
        let b = Mat::col_vec(&[1.0]);
        let c = Mat::row_vec(&[1.0]);
        let d = Mat::zeros(1, 1);
        assert!(DiscreteSs::new(a.clone(), b.clone(), c.clone(), d.clone(), 0.1).is_ok());
        assert!(DiscreteSs::new(a, b, c, d, 0.0).is_err());
    }

    #[test]
    fn discrete_simulation_geometric() {
        // x+ = 0.5 x + u, y = x: step response 0, 1, 1.5, 1.75, ...
        let dss = DiscreteSs::new(
            Mat::diag(&[0.5]),
            Mat::col_vec(&[1.0]),
            Mat::row_vec(&[1.0]),
            Mat::zeros(1, 1),
            1.0,
        )
        .unwrap();
        let y = dss.simulate(&[0.0], 4, |_| vec![1.0]).unwrap();
        let flat: Vec<f64> = y.into_iter().map(|v| v[0]).collect();
        assert_eq!(flat, vec![0.0, 1.0, 1.5, 1.75]);
    }

    #[test]
    fn simulate_checks_dims() {
        let dss = DiscreteSs::new(
            Mat::diag(&[0.5]),
            Mat::col_vec(&[1.0]),
            Mat::row_vec(&[1.0]),
            Mat::zeros(1, 1),
            1.0,
        )
        .unwrap();
        assert!(dss.simulate(&[0.0, 1.0], 1, |_| vec![1.0]).is_err());
        assert!(dss.simulate(&[0.0], 1, |_| vec![1.0, 2.0]).is_err());
    }
}
