//! Benchmark plants from the embedded-control literature.
//!
//! Each constructor returns a [`Plant`]: the continuous model, a suggested
//! sampling period, and naming metadata. These are the plants exercised by
//! the paper's companion works — the automotive case study sketched in the
//! conclusion (active suspension over a multi-ECU network, Kocik et al.
//! 2005) and the latency-sensitivity studies of Cervin et al. 2003.

use ecl_linalg::Mat;

use crate::ss::StateSpace;
use crate::ControlError;

/// A named continuous plant with a recommended sampling period.
#[derive(Debug, Clone, PartialEq)]
pub struct Plant {
    /// Human-readable plant name.
    pub name: &'static str,
    /// The continuous-time model.
    pub sys: StateSpace,
    /// A reasonable sampling period (seconds) for digital control.
    pub ts: f64,
    /// Index of the control input among the model inputs (the remaining
    /// inputs are disturbances).
    pub control_input: usize,
    /// Index of the primary controlled output.
    pub controlled_output: usize,
}

fn build(
    name: &'static str,
    a: Mat,
    b: Mat,
    c: Mat,
    d: Mat,
    ts: f64,
) -> Result<Plant, ControlError> {
    Ok(Plant {
        name,
        sys: StateSpace::new(a, b, c, d)?,
        ts,
        control_input: 0,
        controlled_output: 0,
    })
}

/// A permanent-magnet DC motor (speed control).
///
/// States `[ω (rad/s), i (A)]`, input armature voltage `V`, output `ω`.
///
/// ```text
/// J·ω̇ = Kt·i − b·ω
/// L·i̇ = −R·i − Ke·ω + V
/// ```
///
/// Parameters (classic tutorial values): `J = 0.01 kg·m²`,
/// `b = 0.1 N·m·s`, `Kt = Ke = 0.01`, `R = 1 Ω`, `L = 0.5 H`.
///
/// # Panics
///
/// Never panics: the fixed matrices are consistent by construction.
pub fn dc_motor() -> Plant {
    let (j, b, k, r, l) = (0.01, 0.1, 0.01, 1.0, 0.5);
    let a = Mat::from_rows(&[&[-b / j, k / j], &[-k / l, -r / l]]).expect("rectangular");
    let bm = Mat::col_vec(&[0.0, 1.0 / l]);
    let c = Mat::row_vec(&[1.0, 0.0]);
    let d = Mat::zeros(1, 1);
    build("dc-motor", a, bm, c, d, 0.05).expect("consistent dims")
}

/// An inverted pendulum on a cart, linearized around the upright position.
///
/// States `[x, ẋ, θ, θ̇]`, input cart force `F`, outputs `[x, θ]`.
/// Parameters (classic tutorial values): cart mass `M = 0.5 kg`, pendulum
/// mass `m = 0.2 kg`, friction `b = 0.1 N/m/s`, pendulum length to CoM
/// `l = 0.3 m`, inertia `I = 0.006 kg·m²`.
///
/// The open loop is unstable — the canonical stress test for
/// implementation-induced latency (an unstable pole amplifies every
/// microsecond of delay).
pub fn inverted_pendulum() -> Plant {
    let (mc, m, b, l, i_p, g) = (0.5, 0.2, 0.1, 0.3, 0.006, 9.81);
    let den = i_p * (mc + m) + mc * m * l * l;
    let a = Mat::from_rows(&[
        &[0.0, 1.0, 0.0, 0.0],
        &[
            0.0,
            -(i_p + m * l * l) * b / den,
            m * m * g * l * l / den,
            0.0,
        ],
        &[0.0, 0.0, 0.0, 1.0],
        &[0.0, -m * l * b / den, m * g * l * (mc + m) / den, 0.0],
    ])
    .expect("rectangular");
    let bm = Mat::col_vec(&[0.0, (i_p + m * l * l) / den, 0.0, m * l / den]);
    let c = Mat::from_rows(&[&[1.0, 0.0, 0.0, 0.0], &[0.0, 0.0, 1.0, 0.0]]).expect("rectangular");
    let d = Mat::zeros(2, 1);
    let mut p = build("inverted-pendulum", a, bm, c, d, 0.01).expect("consistent dims");
    p.controlled_output = 1; // regulate the angle
    p
}

/// A quarter-car active suspension.
///
/// States `[x1 = z_s − z_u (suspension deflection), x2 = ż_s,
/// x3 = z_u − z_r (tire deflection), x4 = ż_u]`; inputs `[F (active
/// force), ż_r (road velocity)]`; outputs `[x1, x2]`.
///
/// Parameters: sprung mass `ms = 250 kg`, unsprung mass `mu = 35 kg`,
/// suspension stiffness `ks = 16 kN/m`, damping `cs = 1 kN·s/m`, tire
/// stiffness `kt = 160 kN/m`. This is the automotive workload of the
/// paper's case-study domain.
pub fn quarter_car() -> Plant {
    let (ms, mu, ks, cs, kt) = (250.0, 35.0, 16_000.0, 1_000.0, 160_000.0);
    let a = Mat::from_rows(&[
        &[0.0, 1.0, 0.0, -1.0],
        &[-ks / ms, -cs / ms, 0.0, cs / ms],
        &[0.0, 0.0, 0.0, 1.0],
        &[ks / mu, cs / mu, -kt / mu, -cs / mu],
    ])
    .expect("rectangular");
    let b = Mat::from_rows(&[
        &[0.0, 0.0],
        &[1.0 / ms, 0.0],
        &[0.0, -1.0],
        &[-1.0 / mu, 0.0],
    ])
    .expect("rectangular");
    let c = Mat::from_rows(&[&[1.0, 0.0, 0.0, 0.0], &[0.0, 1.0, 0.0, 0.0]]).expect("rectangular");
    let d = Mat::zeros(2, 2);
    build("quarter-car-suspension", a, b, c, d, 0.005).expect("consistent dims")
}

/// Cruise control: a vehicle as a first-order lag.
///
/// State `v` (m/s), input traction force `u` (N), output `v`.
/// `m·v̇ = u − b·v` with `m = 1000 kg`, `b = 50 N·s/m`.
pub fn cruise_control() -> Plant {
    let (m, b) = (1000.0, 50.0);
    let a = Mat::diag(&[-b / m]);
    let bm = Mat::col_vec(&[1.0 / m]);
    let c = Mat::row_vec(&[1.0]);
    let d = Mat::zeros(1, 1);
    build("cruise-control", a, bm, c, d, 0.1).expect("consistent dims")
}

/// All benchmark plants, for sweep-style experiments.
pub fn all() -> Vec<Plant> {
    vec![
        dc_motor(),
        inverted_pendulum(),
        quarter_car(),
        cruise_control(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::c2d_zoh;

    #[test]
    fn shapes_are_consistent() {
        for p in all() {
            assert!(p.sys.state_dim() >= 1);
            assert!(p.control_input < p.sys.input_dim());
            assert!(p.controlled_output < p.sys.output_dim());
            assert!(p.ts > 0.0);
            assert!(!p.name.is_empty());
        }
    }

    #[test]
    fn dc_motor_is_stable() {
        // Both eigenvalues negative: trace < 0 and det > 0 for the 2x2 A.
        let p = dc_motor();
        let a = p.sys.a();
        let det = a[(0, 0)] * a[(1, 1)] - a[(0, 1)] * a[(1, 0)];
        assert!(a.trace() < 0.0 && det > 0.0);
    }

    #[test]
    fn pendulum_is_unstable() {
        // ZOH-discretized A must have spectral radius > 1: check that the
        // powers of Ad diverge.
        let p = inverted_pendulum();
        let d = c2d_zoh(&p.sys, p.ts).unwrap();
        let mut m = d.a().clone();
        for _ in 0..400 {
            m = m.matmul(d.a()).unwrap();
        }
        assert!(m.norm_inf() > 1.0, "pendulum should diverge open loop");
    }

    #[test]
    fn quarter_car_statics() {
        // With zero active force and zero road input, the suspension is
        // stable: simulate the discretized model from a deflected state.
        let p = quarter_car();
        let d = c2d_zoh(&p.sys, p.ts).unwrap();
        let y = d
            .simulate(&[0.05, 0.0, 0.0, 0.0], 4000, |_| vec![0.0, 0.0])
            .unwrap();
        let last = y.last().unwrap();
        assert!(last[0].abs() < 1e-3, "deflection decays, got {}", last[0]);
    }

    #[test]
    fn cruise_steady_state_gain() {
        // dc gain = 1/b = 0.02 m/s per N.
        let p = cruise_control();
        let d = c2d_zoh(&p.sys, p.ts).unwrap();
        let y = d.simulate(&[0.0], 3000, |_| vec![100.0]).unwrap();
        assert!((y.last().unwrap()[0] - 2.0).abs() < 1e-3);
    }
}
