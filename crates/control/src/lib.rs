//! Control-engineering toolbox: plants, discretization, synthesis and
//! performance metrics.
//!
//! This crate supplies the *control design* half of the DATE 2008
//! methodology: the continuous plant models and discrete control laws whose
//! interplay with the computing implementation the co-simulation exposes.
//!
//! * [`StateSpace`] / [`DiscreteSs`] — linear time-invariant models,
//! * [`c2d_zoh`] / [`c2d_tustin`] — discretization (the paper's step from
//!   synthesized control laws to digitally executable ones),
//! * [`c2d_zoh_delayed`] — sampled model with a fractional input delay
//!   (Åström–Wittenmark), the kernel of the *calibration* phase,
//! * [`dlqr`], [`acker`], [`observer_gain`] — controller synthesis,
//! * [`plants`] — the benchmark plants (DC motor, inverted pendulum,
//!   quarter-car active suspension, cruise control),
//! * [`metrics`] — IAE/ISE/ITAE/quadratic cost, overshoot, settling time.
//!
//! # Examples
//!
//! Discretize a DC motor and design an LQR state-feedback law:
//!
//! ```
//! use ecl_control::{c2d_zoh, dlqr, plants};
//! use ecl_linalg::Mat;
//!
//! # fn main() -> Result<(), ecl_control::ControlError> {
//! let plant = plants::dc_motor();
//! let dss = c2d_zoh(&plant.sys, plant.ts)?;
//! let q = Mat::identity(dss.state_dim());
//! let r = Mat::identity(dss.input_dim()).scaled(0.1);
//! let lqr = dlqr(&dss, &q, &r)?;
//! assert_eq!(lqr.k.shape(), (1, 2));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![allow(
    // `!(x > 0.0)` deliberately treats NaN as invalid; partial_cmp would
    // obscure that.
    clippy::neg_cmp_op_on_partial_ord,
    // Index loops mirror the textbook matrix formulas they implement.
    clippy::needless_range_loop
)]
#![warn(missing_docs)]

mod design;
mod discretize;
mod error;
pub mod frequency;
pub mod kalman;
pub mod lqg;
pub mod metrics;
pub mod plants;
mod ss;
pub mod stability;

pub use design::{acker, charpoly_from_real_poles, dlqr, observer_gain, Dlqr};
pub use discretize::{c2d_tustin, c2d_zoh, c2d_zoh_delayed, DelayedDiscreteSs};
pub use error::ControlError;
pub use ss::{DiscreteSs, StateSpace};
