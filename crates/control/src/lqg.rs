//! LQG output feedback: combining the LQR gain with the steady-state
//! Kalman estimator into one discrete compensator.
//!
//! Distributed deployments rarely measure the full state; the standard
//! remedy is the certainty-equivalence compensator
//!
//! ```text
//! x̂_{k+1} = (Ad − Bd·K − L·Cd + L·Dd·K)·x̂_k + L·y_k
//! u_k     = −K·x̂_k
//! ```
//!
//! packaged here as a [`DiscreteSs`] so it can be simulated, analysed
//! ([`crate::stability`]) or dropped into a co-simulated loop as an
//! event-activated block.

use crate::design::Dlqr;
use crate::kalman::Kalman;
use crate::ss::DiscreteSs;
use crate::ControlError;

/// Builds the discrete LQG compensator from a plant model, an LQR design
/// and a Kalman design.
///
/// The returned system maps measurements `y` to controls `u`
/// (`p` inputs, `m` outputs) with the estimator as its state.
///
/// # Errors
///
/// Returns [`ControlError::InvalidDimensions`] if the designs do not match
/// the plant's dimensions.
///
/// # Examples
///
/// ```
/// use ecl_control::{c2d_zoh, dlqr, kalman, lqg, plants};
/// use ecl_linalg::Mat;
/// # fn main() -> Result<(), ecl_control::ControlError> {
/// let p = plants::dc_motor();
/// let d = c2d_zoh(&p.sys, p.ts)?;
/// let k = dlqr(&d, &Mat::identity(2), &Mat::diag(&[0.1]))?;
/// let kf = kalman::design(&d, &Mat::identity(2).scaled(1e-4), &Mat::diag(&[1e-3]))?;
/// let comp = lqg::compensator(&d, &k, &kf)?;
/// assert_eq!(comp.input_dim(), 1);  // one measurement
/// assert_eq!(comp.output_dim(), 1); // one control
/// # Ok(())
/// # }
/// ```
pub fn compensator(sys: &DiscreteSs, lqr: &Dlqr, kf: &Kalman) -> Result<DiscreteSs, ControlError> {
    let n = sys.state_dim();
    let m = sys.input_dim();
    let p = sys.output_dim();
    if lqr.k.shape() != (m, n) {
        return Err(ControlError::InvalidDimensions {
            reason: format!(
                "LQR gain must be {m}x{n}, got {}x{}",
                lqr.k.rows(),
                lqr.k.cols()
            ),
        });
    }
    if kf.l.shape() != (n, p) {
        return Err(ControlError::InvalidDimensions {
            reason: format!(
                "Kalman gain must be {n}x{p}, got {}x{}",
                kf.l.rows(),
                kf.l.cols()
            ),
        });
    }
    // A_c = Ad - Bd K - L Cd + L Dd K ; B_c = L ; C_c = -K ; D_c = 0.
    let bk = sys.b().matmul(&lqr.k)?;
    let lc = kf.l.matmul(sys.c())?;
    let ldk = kf.l.matmul(sys.d())?.matmul(&lqr.k)?;
    let a_c = sys.a().sub(&bk)?.sub(&lc)?.add(&ldk)?;
    let b_c = kf.l.clone();
    let c_c = lqr.k.scaled(-1.0);
    let d_c = ecl_linalg::Mat::zeros(m, p);
    DiscreteSs::new(a_c, b_c, c_c, d_c, sys.ts())
}

/// Spectral radius of the closed loop formed by `sys` and the LQG
/// compensator (separation principle: the spectrum is the union of the
/// LQR and estimator spectra, so this should be `< 1` whenever both
/// designs succeeded).
///
/// # Errors
///
/// Propagates dimension and eigenvalue errors.
pub fn closed_loop_radius(sys: &DiscreteSs, lqr: &Dlqr, kf: &Kalman) -> Result<f64, ControlError> {
    let n = sys.state_dim();
    let comp = compensator(sys, lqr, kf)?;
    // Closed loop state [x; x̂]:
    // x⁺  = Ad x + Bd Cc x̂         (u = Cc x̂)
    // x̂⁺ = Bc Cd x + (Ac + Bc Dd Cc) x̂
    let mut acl = ecl_linalg::Mat::zeros(2 * n, 2 * n);
    acl.set_block(0, 0, sys.a())?;
    acl.set_block(0, n, &sys.b().matmul(comp.c())?)?;
    acl.set_block(n, 0, &comp.b().matmul(sys.c())?)?;
    let corr = comp.b().matmul(sys.d())?.matmul(comp.c())?;
    acl.set_block(n, n, &comp.a().add(&corr)?)?;
    Ok(ecl_linalg::spectral_radius(&acl)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::dlqr;
    use crate::discretize::c2d_zoh;
    use crate::kalman;
    use crate::plants;
    use ecl_linalg::Mat;

    fn designs(p: &crate::plants::Plant) -> (DiscreteSs, Dlqr, Kalman) {
        let n = p.sys.state_dim();
        // Control channel only.
        let sys1 = crate::StateSpace::new(
            p.sys.a().clone(),
            p.sys.b().block(0, 0, n, 1).unwrap(),
            p.sys.c().clone(),
            Mat::zeros(p.sys.output_dim(), 1),
        )
        .unwrap();
        let d = c2d_zoh(&sys1, p.ts).unwrap();
        let lqr = dlqr(&d, &Mat::identity(n), &Mat::diag(&[0.1])).unwrap();
        let kf = kalman::design(
            &d,
            &Mat::identity(n).scaled(1e-4),
            &Mat::identity(d.output_dim()).scaled(1e-3),
        )
        .unwrap();
        (d, lqr, kf)
    }

    #[test]
    fn separation_principle_holds() {
        for p in [plants::dc_motor(), plants::inverted_pendulum()] {
            let (d, lqr, kf) = designs(&p);
            let rho = closed_loop_radius(&d, &lqr, &kf).unwrap();
            assert!(rho < 1.0, "{}: rho {rho}", p.name);
        }
    }

    #[test]
    fn compensator_regulates_in_simulation() {
        // Plant + compensator co-simulated discretely from a perturbed
        // state: the output must converge to zero.
        let p = plants::dc_motor();
        let (d, lqr, kf) = designs(&p);
        let comp = compensator(&d, &lqr, &kf).unwrap();
        let mut x = vec![1.0, 0.0];
        let mut xc = vec![0.0, 0.0];
        let mut last_y = 0.0;
        for _ in 0..400 {
            let y = d.c().matvec(&x).unwrap();
            let u = comp.c().matvec(&xc).unwrap(); // D_c = 0
                                                   // plant update
            let ax = d.a().matvec(&x).unwrap();
            let bu = d.b().matvec(&u).unwrap();
            x = ax.iter().zip(&bu).map(|(a, b)| a + b).collect();
            // compensator update
            let ac = comp.a().matvec(&xc).unwrap();
            let by = comp.b().matvec(&y).unwrap();
            xc = ac.iter().zip(&by).map(|(a, b)| a + b).collect();
            last_y = y[0];
        }
        assert!(last_y.abs() < 1e-3, "output did not regulate: {last_y}");
    }

    #[test]
    fn dimension_validation() {
        let p = plants::dc_motor();
        let (d, lqr, kf) = designs(&p);
        let bad_lqr = Dlqr {
            k: Mat::zeros(1, 3),
            p: Mat::identity(3),
        };
        assert!(compensator(&d, &bad_lqr, &kf).is_err());
        let bad_kf = Kalman {
            l: Mat::zeros(3, 1),
            p: Mat::identity(3),
        };
        assert!(compensator(&d, &lqr, &bad_kf).is_err());
    }

    #[test]
    fn compensator_shape() {
        let p = plants::quarter_car(); // 2 outputs
        let (d, lqr, kf) = designs(&p);
        let comp = compensator(&d, &lqr, &kf).unwrap();
        assert_eq!(comp.state_dim(), 4);
        assert_eq!(comp.input_dim(), 2); // measurements
        assert_eq!(comp.output_dim(), 1); // control
        assert_eq!(comp.ts(), p.ts);
    }
}
