use std::error::Error;
use std::fmt;

use ecl_linalg::LinalgError;

/// Errors produced by the control toolbox.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ControlError {
    /// Model matrices had inconsistent dimensions.
    InvalidDimensions {
        /// Explanation of the inconsistency.
        reason: String,
    },
    /// A scalar parameter (sampling period, delay, ...) was out of range.
    InvalidParameter {
        /// Parameter name.
        parameter: &'static str,
        /// Explanation of the violation.
        reason: String,
    },
    /// The system does not satisfy a structural requirement
    /// (controllability, SISO shape, ...).
    NotSynthesizable {
        /// Explanation of the failed requirement.
        reason: String,
    },
    /// An underlying linear-algebra kernel failed.
    Linalg(LinalgError),
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::InvalidDimensions { reason } => {
                write!(f, "invalid model dimensions: {reason}")
            }
            ControlError::InvalidParameter { parameter, reason } => {
                write!(f, "invalid parameter '{parameter}': {reason}")
            }
            ControlError::NotSynthesizable { reason } => {
                write!(f, "synthesis requirement not met: {reason}")
            }
            ControlError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for ControlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ControlError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for ControlError {
    fn from(e: LinalgError) -> Self {
        ControlError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ControlError::from(LinalgError::Singular { pivot: 0 });
        assert!(e.to_string().contains("linear algebra"));
        assert!(Error::source(&e).is_some());
        let e = ControlError::InvalidParameter {
            parameter: "ts",
            reason: "negative".into(),
        };
        assert!(e.to_string().contains("ts"));
        assert!(Error::source(&e).is_none());
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ControlError>();
    }
}
