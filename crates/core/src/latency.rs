//! Sampling and actuation latency analysis — the paper's equations (1)
//! and (2).
//!
//! Given the activation instants of an input Sample/Hold (its `I_j(k)`) or
//! an output hold (`O_j(k)`), [`latencies`] computes the per-period
//! latency series `L_j(k) = t_j(k) − k·Ts` and [`LatencySeries::stats`]
//! summarizes it (mean, extremes, jitter).

use ecl_sim::TimeNs;

use crate::CoreError;

/// A per-period latency series `L_j(k)`, `k = 0..`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencySeries {
    values: Vec<TimeNs>,
    overruns: usize,
}

/// Summary statistics of a latency series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyStats {
    /// Smallest latency observed.
    pub min: TimeNs,
    /// Largest latency observed.
    pub max: TimeNs,
    /// Mean latency (integer nanoseconds, rounded down).
    pub mean: TimeNs,
    /// Jitter `max − min`.
    pub jitter: TimeNs,
}

impl LatencySeries {
    /// The per-period latency values.
    pub fn values(&self) -> &[TimeNs] {
        &self.values
    }

    /// Number of recorded periods.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if no period was recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of periods whose latency reached or exceeded the sampling
    /// period — actuations completing in a later period (eq. 2 under
    /// heavy communication load). Always `0` for a series built by
    /// [`latencies_strict`].
    pub fn overruns(&self) -> usize {
        self.overruns
    }

    /// Summary statistics, or `None` for an empty series.
    ///
    /// The mean is accumulated in `i128`, so it cannot overflow no
    /// matter how many periods were recorded (an `i64`-nanosecond sum
    /// wraps after ~107 days of accumulated latency). Should the `i128`
    /// mean itself exceed the `i64` range — impossible when every value
    /// is an `i64` — it saturates rather than wraps.
    pub fn stats(&self) -> Option<LatencyStats> {
        if self.values.is_empty() {
            return None;
        }
        let min = *self.values.iter().min().expect("non-empty");
        let max = *self.values.iter().max().expect("non-empty");
        let sum: i128 = self.values.iter().map(|t| i128::from(t.as_nanos())).sum();
        let mean_ns = sum / self.values.len() as i128;
        let mean = TimeNs::from_nanos(i64::try_from(mean_ns).unwrap_or(if mean_ns > 0 {
            i64::MAX
        } else {
            i64::MIN
        }));
        Some(LatencyStats {
            min,
            max,
            mean,
            jitter: max - min,
        })
    }
}

/// Computes the latency series from one activation instant per period.
///
/// The `k`-th activation is matched against the grid instant `k·Ts`
/// (eq. 1–2 of the paper). The activations must be complete — one per
/// period, in order — which is what the graph of delays produces.
///
/// Latencies at or beyond `Ts` are **accepted**: eq. 2 actuation
/// latencies `La_j(k)` legitimately reach or exceed the period under
/// heavy communication load (the actuation completes in the next
/// period). Such periods are counted by [`LatencySeries::overruns`]. Use
/// [`latencies_strict`] where the one-activation-per-period invariant
/// genuinely bounds the latency, i.e. the sampling side.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] if `period` is non-positive or an
/// activation precedes its grid instant `k·Ts` (a negative latency is
/// causally impossible) or precedes the previous activation (unsorted
/// series).
pub fn latencies(activations: &[TimeNs], period: TimeNs) -> Result<LatencySeries, CoreError> {
    latencies_impl(activations, period, false)
}

/// Like [`latencies`], but additionally rejects any latency at or beyond
/// the period — the strict one-activation-per-`[k·Ts, (k+1)·Ts)` check
/// that holds for sampling latencies `Ls_j(k)` (eq. 1), where a sample
/// landing in the next period means the schedule does not sustain `Ts`.
///
/// # Errors
///
/// Everything [`latencies`] rejects, plus any activation at or after
/// `(k+1)·Ts`.
pub fn latencies_strict(
    activations: &[TimeNs],
    period: TimeNs,
) -> Result<LatencySeries, CoreError> {
    latencies_impl(activations, period, true)
}

fn latencies_impl(
    activations: &[TimeNs],
    period: TimeNs,
    strict: bool,
) -> Result<LatencySeries, CoreError> {
    if period <= TimeNs::ZERO {
        return Err(CoreError::InvalidInput {
            reason: format!("period must be positive, got {period}"),
        });
    }
    let mut values = Vec::with_capacity(activations.len());
    let mut overruns = 0usize;
    let mut prev = None;
    for (k, &t) in activations.iter().enumerate() {
        if prev.is_some_and(|p| t < p) {
            return Err(CoreError::InvalidInput {
                reason: format!("activation {k} at {t} precedes its predecessor (unsorted)"),
            });
        }
        prev = Some(t);
        let origin = period
            .checked_mul(k as i64)
            .ok_or_else(|| CoreError::InvalidInput {
                reason: format!("period origin {k}·{period} overflows the i64 nanosecond range"),
            })?;
        let lat = t - origin;
        if lat.is_negative() {
            return Err(CoreError::InvalidInput {
                reason: format!("activation {k} at {t} precedes its period origin {origin}"),
            });
        }
        if lat >= period {
            if strict {
                return Err(CoreError::InvalidInput {
                    reason: format!(
                        "activation {k} at {t} is outside its period [{origin}, {})",
                        origin + period
                    ),
                });
            }
            overruns += 1;
        }
        values.push(lat);
    }
    Ok(LatencySeries { values, overruns })
}

/// Latency report for a whole loop: one series per controller input and
/// output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyReport {
    /// `Ls_j(k)` per controller input `j` (paper eq. 1).
    pub sampling: Vec<LatencySeries>,
    /// `La_j(k)` per controller output `j` (paper eq. 2).
    pub actuation: Vec<LatencySeries>,
}

impl LatencyReport {
    /// Mean actuation latency across outputs and periods — the `τ` fed to
    /// the calibration redesign. `TimeNs::ZERO` when nothing was recorded.
    ///
    /// Accumulates in `i128` (see [`LatencySeries::stats`] for the
    /// saturation policy).
    pub fn mean_actuation(&self) -> TimeNs {
        let (mut sum, mut n) = (0i128, 0i128);
        for s in &self.actuation {
            for v in s.values() {
                sum += i128::from(v.as_nanos());
                n += 1;
            }
        }
        if n == 0 {
            TimeNs::ZERO
        } else {
            let mean = sum / n;
            TimeNs::from_nanos(i64::try_from(mean).unwrap_or(if mean > 0 {
                i64::MAX
            } else {
                i64::MIN
            }))
        }
    }

    /// Mean sampling latency across inputs and periods — the `Ls_j(k)`
    /// counterpart of [`mean_actuation`](Self::mean_actuation).
    /// `TimeNs::ZERO` when nothing was recorded.
    pub fn mean_sampling(&self) -> TimeNs {
        let (mut sum, mut n) = (0i128, 0i128);
        for s in &self.sampling {
            for v in s.values() {
                sum += i128::from(v.as_nanos());
                n += 1;
            }
        }
        if n == 0 {
            TimeNs::ZERO
        } else {
            let mean = sum / n;
            TimeNs::from_nanos(i64::try_from(mean).unwrap_or(if mean > 0 {
                i64::MAX
            } else {
                i64::MIN
            }))
        }
    }

    /// Total period overruns across all series — periods whose actuation
    /// completed at or after the next grid instant.
    pub fn total_overruns(&self) -> usize {
        self.sampling
            .iter()
            .chain(&self.actuation)
            .map(LatencySeries::overruns)
            .sum()
    }

    /// Largest jitter over all sampling and actuation series.
    pub fn worst_jitter(&self) -> TimeNs {
        self.sampling
            .iter()
            .chain(&self.actuation)
            .filter_map(|s| s.stats())
            .map(|st| st.jitter)
            .max()
            .unwrap_or(TimeNs::ZERO)
    }

    /// Renders the report as an aligned text table (one row per I/O).
    pub fn render(&self) -> String {
        let mut s = String::from("io        |      min |      max |     mean |   jitter\n");
        s.push_str("----------+----------+----------+----------+---------\n");
        let mut row = |label: String, st: Option<LatencyStats>| {
            if let Some(st) = st {
                s.push_str(&format!(
                    "{label:<10}| {:>8} | {:>8} | {:>8} | {:>8}\n",
                    st.min.to_string(),
                    st.max.to_string(),
                    st.mean.to_string(),
                    st.jitter.to_string()
                ));
            }
        };
        for (j, series) in self.sampling.iter().enumerate() {
            row(format!("Ls[{j}]"), series.stats());
        }
        for (j, series) in self.actuation.iter().enumerate() {
            row(format!("La[{j}]"), series.stats());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: i64) -> TimeNs {
        TimeNs::from_micros(v)
    }

    #[test]
    fn constant_latency_series() {
        let period = TimeNs::from_millis(1);
        let acts: Vec<TimeNs> = (0..5).map(|k| period * k + us(120)).collect();
        let s = latencies(&acts, period).unwrap();
        assert_eq!(s.len(), 5);
        assert!(s.values().iter().all(|&v| v == us(120)));
        let st = s.stats().unwrap();
        assert_eq!(st.min, us(120));
        assert_eq!(st.max, us(120));
        assert_eq!(st.mean, us(120));
        assert_eq!(st.jitter, TimeNs::ZERO);
    }

    #[test]
    fn jitter_captured() {
        let period = TimeNs::from_millis(1);
        let lats = [us(100), us(300), us(100), us(500)];
        let acts: Vec<TimeNs> = lats
            .iter()
            .enumerate()
            .map(|(k, &l)| period * k as i64 + l)
            .collect();
        let st = latencies(&acts, period).unwrap().stats().unwrap();
        assert_eq!(st.min, us(100));
        assert_eq!(st.max, us(500));
        assert_eq!(st.jitter, us(400));
        assert_eq!(st.mean, us(250));
    }

    #[test]
    fn cross_period_actuation_accepted_and_counted() {
        let period = TimeNs::from_millis(1);
        // Second activation completes in period 2 instead of 1 (heavy
        // comm load): La_1 = 1.1 ms >= Ts, a legitimate eq. 2 latency.
        let acts = [us(100), TimeNs::from_millis(2) + us(100)];
        let s = latencies(&acts, period).expect("cross-period actuation is legal");
        assert_eq!(s.overruns(), 1);
        assert_eq!(s.values()[1], TimeNs::from_millis(1) + us(100));
        let st = s.stats().unwrap();
        assert_eq!(st.max, TimeNs::from_millis(1) + us(100));
        // The strict (sampling-side) check still rejects it.
        assert!(latencies_strict(&acts, period).is_err());
        // In-period series report zero overruns under both modes.
        let aligned = [us(100), period + us(100)];
        assert_eq!(latencies(&aligned, period).unwrap().overruns(), 0);
        assert!(latencies_strict(&aligned, period).is_ok());
    }

    #[test]
    fn negative_and_unsorted_rejected_in_both_modes() {
        let period = TimeNs::from_millis(1);
        // Negative latency impossible.
        assert!(latencies(&[-us(1)], period).is_err());
        assert!(latencies_strict(&[-us(1)], period).is_err());
        // Unsorted activations: the second precedes the first.
        let acts = [TimeNs::from_millis(2) + us(100), us(100)];
        assert!(latencies(&acts, period).is_err());
        // An activation before its own period origin is negative latency.
        let acts = [us(100), us(200)];
        assert!(latencies(&acts, period).is_err());
        assert!(latencies(&[], TimeNs::ZERO).is_err());
    }

    #[test]
    fn period_origin_overflow_is_an_error_not_a_wrap() {
        // With a period of i64::MAX/2 ns (~146 years), activation k = 2
        // sits at origin 2·period, past i64::MAX: the multiplication must
        // surface as an error instead of wrapping negative (a wrapped
        // origin makes the latency positive-looking garbage in release).
        let period = TimeNs::from_nanos(i64::MAX / 2 + 1);
        let acts = [
            TimeNs::from_nanos(1),
            TimeNs::from_nanos(i64::MAX / 2 + 2),
            TimeNs::from_nanos(i64::MAX - 1),
        ];
        let err = latencies(&acts, period).unwrap_err();
        assert!(matches!(err, CoreError::InvalidInput { .. }));
        assert!(err.to_string().contains("overflows"));
        // Two activations (k = 0, 1) still fit and succeed.
        let ok = latencies(&acts[..2], period).unwrap();
        assert_eq!(ok.len(), 2);
        assert!(latencies_strict(&acts, period).is_err());
    }

    #[test]
    fn empty_series() {
        let s = latencies(&[], TimeNs::from_millis(1)).unwrap();
        assert!(s.is_empty());
        assert!(s.stats().is_none());
    }

    #[test]
    fn stats_survive_sums_beyond_i64() {
        // Two near-`i64::MAX` values: a naive `i64` sum would wrap
        // negative; the `i128` accumulator keeps the mean exact.
        let s = LatencySeries {
            values: vec![
                TimeNs::from_nanos(i64::MAX - 1),
                TimeNs::from_nanos(i64::MAX - 3),
            ],
            overruns: 0,
        };
        let st = s.stats().unwrap();
        assert_eq!(st.mean, TimeNs::from_nanos(i64::MAX - 2));
        assert_eq!(st.min, TimeNs::from_nanos(i64::MAX - 3));
        assert_eq!(st.jitter, TimeNs::from_nanos(2));
        let rep = LatencyReport {
            sampling: vec![],
            actuation: vec![s],
        };
        assert_eq!(rep.mean_actuation(), TimeNs::from_nanos(i64::MAX - 2));
    }

    #[test]
    fn report_aggregates() {
        let period = TimeNs::from_millis(1);
        let mk = |lat: i64| {
            let acts: Vec<TimeNs> = (0..3).map(|k| period * k + us(lat)).collect();
            latencies(&acts, period).unwrap()
        };
        let rep = LatencyReport {
            sampling: vec![mk(50)],
            actuation: vec![mk(200), mk(400)],
        };
        assert_eq!(rep.mean_actuation(), us(300));
        assert_eq!(rep.worst_jitter(), TimeNs::ZERO);
        let text = rep.render();
        assert!(text.contains("Ls[0]"));
        assert!(text.contains("La[1]"));
        assert_eq!(LatencyReport::default().mean_actuation(), TimeNs::ZERO);
    }
}
