//! The full design lifecycle the paper proposes: design → adequation →
//! co-simulate → calibrate → generate executives.
//!
//! [`run`] executes, in one call, the cycle the methodology is meant to
//! shorten:
//!
//! 1. **Design** — LQR synthesis on the ideally sampled plant, validated
//!    under the stroboscopic model ([`cosim::run_ideal`]);
//! 2. **Adequation** — the control law is translated to an algorithm
//!    graph and distributed over the architecture by
//!    [`ecl_aaa::adequation`];
//! 3. **Co-simulation** — the graph of delays replays the schedule's
//!    temporal behaviour against the continuous plant
//!    ([`cosim::run_scheduled`]), measuring the latency report and the
//!    control-performance degradation;
//! 4. **Calibration** — the measured mean actuation latency feeds a
//!    delay-aware redesign ([`ecl_control::c2d_zoh_delayed`] +
//!    state-augmented LQR), and the loop is co-simulated again;
//! 5. **Code generation** — the deadlock-free distributed executives are
//!    emitted ([`ecl_aaa::codegen`]).

use ecl_aaa::{adequation, codegen, AdequationOptions, ArchitectureGraph, Schedule, TimingDb};
use ecl_control::{c2d_zoh, c2d_zoh_delayed, dlqr, StateSpace};
use ecl_linalg::Mat;
use ecl_telemetry::{Collector, Sink};

use crate::cosim::{self, DisturbanceKind, LoopResult, LoopSpec};
use crate::latency::LatencyReport;
use crate::translate::ControlLawSpec;
use crate::CoreError;

/// Inputs of the lifecycle pipeline.
#[derive(Debug, Clone)]
pub struct LifecycleInputs {
    /// Continuous plant (first `n_controls` inputs are controls).
    pub plant: StateSpace,
    /// Number of control inputs.
    pub n_controls: usize,
    /// Initial state for the regulation experiment.
    pub x0: Vec<f64>,
    /// Sampling period (seconds).
    pub ts: f64,
    /// Simulation horizon (seconds).
    pub horizon: f64,
    /// LQR state weight matrix (`n × n`).
    pub lqr_q: Mat,
    /// LQR control weight matrix (`m × m`).
    pub lqr_r: Mat,
    /// Evaluation weights of the reported quadratic cost.
    pub q_weight: f64,
    /// Control weight of the reported quadratic cost.
    pub r_weight: f64,
    /// The control law's computational structure.
    pub law: ControlLawSpec,
    /// Target distributed architecture.
    pub arch: ArchitectureGraph,
    /// WCET characterization of the law on the architecture.
    pub db: TimingDb,
    /// Adequation options.
    pub adequation: AdequationOptions,
    /// Disturbance model.
    pub disturbance: DisturbanceKind,
}

/// Everything the lifecycle produces.
#[derive(Debug)]
pub struct LifecycleReport {
    /// Step 1: the ideal (stroboscopic) run with the nominal LQR gain.
    pub ideal: LoopResult,
    /// Step 3: the co-simulated distributed implementation (same gain).
    pub implemented: LoopResult,
    /// Step 4: the co-simulated loop after delay-aware redesign.
    pub calibrated: LoopResult,
    /// The static schedule produced by the adequation.
    pub schedule: Schedule,
    /// The latency report of the implemented run (paper eq. 1–2).
    pub latency: LatencyReport,
    /// The generated distributed executives, rendered as text.
    pub executives: String,
    /// `true` if the executives passed the deadlock-freedom replay.
    pub deadlock_free: bool,
}

impl LifecycleReport {
    /// Relative cost degradation of the naive implementation
    /// (`implemented/ideal − 1`).
    pub fn degradation(&self) -> f64 {
        self.implemented.cost / self.ideal.cost - 1.0
    }

    /// Fraction of the degradation recovered by calibration
    /// (1.0 = fully recovered, 0.0 = none, negative = made it worse).
    pub fn calibration_recovery(&self) -> f64 {
        let lost = self.implemented.cost - self.ideal.cost;
        if lost.abs() < f64::EPSILON {
            return 1.0;
        }
        (self.implemented.cost - self.calibrated.cost) / lost
    }
}

/// Runs the full lifecycle.
///
/// # Errors
///
/// Propagates synthesis, adequation, wiring and simulation errors; see the
/// module docs for the steps involved.
pub fn run(inputs: &LifecycleInputs) -> Result<LifecycleReport, CoreError> {
    run_with(inputs, &mut Collector::noop())
}

/// Runs the full lifecycle, streaming telemetry into `tel`.
///
/// Each phase is timed as a wall-clock span (`design`, `translate`,
/// `adequation`, `delay-graph synthesis`, `co-simulation`, `calibration`,
/// `codegen`); the implemented co-simulation additionally records the
/// schedule timeline and per-period latency counters in simulated time
/// (the ideal and calibrated runs use `ideal:`/`cal:`-prefixed tracks so
/// the three simulations never share a track).
/// With a [`ecl_telemetry::NoopSink`] collector every instrumentation
/// site compiles to nothing and this is exactly [`run`].
///
/// # Errors
///
/// Same as [`run`].
pub fn run_with<S: Sink>(
    inputs: &LifecycleInputs,
    tel: &mut Collector<S>,
) -> Result<LifecycleReport, CoreError> {
    // --- step 1: nominal design + ideal validation ---
    // Synthesis sees only the control inputs (the remaining plant inputs
    // are disturbances the controller does not command).
    let n = inputs.plant.state_dim();
    let m = inputs.n_controls;
    let control_plant = StateSpace::new(
        inputs.plant.a().clone(),
        inputs.plant.b().block(0, 0, n, m)?,
        inputs.plant.c().clone(),
        inputs.plant.d().block(0, 0, inputs.plant.output_dim(), m)?,
    )?;
    let (spec, ideal) = tel.span("design", |tel| -> Result<_, CoreError> {
        let dss = c2d_zoh(&control_plant, inputs.ts)?;
        let nominal = dlqr(&dss, &inputs.lqr_q, &inputs.lqr_r)?;
        let spec = LoopSpec {
            plant: inputs.plant.clone(),
            n_controls: inputs.n_controls,
            x0: inputs.x0.clone(),
            feedback: nominal.k.clone(),
            input_memory: None,
            ts: inputs.ts,
            horizon: inputs.horizon,
            q_weight: inputs.q_weight,
            r_weight: inputs.r_weight,
            disturbance: inputs.disturbance,
        };
        let ideal = cosim::run_ideal_traced(&spec, tel)?;
        Ok((spec, ideal))
    })?;

    // --- step 2: translation + adequation ---
    let (alg, io) = tel.span("translate", |_| inputs.law.to_algorithm())?;
    let schedule = tel.span("adequation", |_| -> Result<_, CoreError> {
        let schedule = adequation(&alg, &inputs.arch, &inputs.db, inputs.adequation)?;
        schedule.validate(&alg, &inputs.arch)?;
        Ok(schedule)
    })?;

    // --- step 3: co-simulation of the implementation ---
    let lm = tel.span("delay-graph synthesis", |_| {
        cosim::wire_scheduled(&spec, &alg, &io, &schedule, &inputs.arch, |_| {
            Ok(crate::delays::DelayGraphConfig::default())
        })
    })?;
    let implemented = tel.span("co-simulation", |tel| {
        cosim::emit_schedule_timeline(tel, &schedule, &alg, &inputs.arch, spec.ts, spec.horizon);
        cosim::finish_loop(&spec, lm, "", tel)
    })?;
    let latency = implemented.latency_report()?;

    // --- step 4: calibration (delay-aware redesign) ---
    let calibrated = tel.span("calibration", |tel| -> Result<_, CoreError> {
        let tau = latency.mean_actuation().as_secs_f64().clamp(0.0, inputs.ts);
        let delayed = c2d_zoh_delayed(&control_plant, inputs.ts, tau)?;
        let augmented = delayed.augmented(&Mat::identity(n))?;
        // Q on the physical states, a tiny weight on the input memory.
        let mut q_aug = Mat::identity(n + m).scaled(1e-9);
        q_aug.set_block(0, 0, &inputs.lqr_q)?;
        let redesigned = dlqr(&augmented, &q_aug, &inputs.lqr_r)?;
        let kx = redesigned.k.block(0, 0, m, n)?;
        let ku = redesigned.k.block(0, n, m, m)?;
        let spec_cal = LoopSpec {
            feedback: kx,
            input_memory: Some(ku),
            ..spec.clone()
        };
        let lm = cosim::wire_scheduled(&spec_cal, &alg, &io, &schedule, &inputs.arch, |_| {
            Ok(crate::delays::DelayGraphConfig::default())
        })?;
        // Distinct track prefix: this second simulation restarts at
        // simulated time 0, and a shared track would regress in the trace.
        cosim::finish_loop(&spec_cal, lm, "cal:", tel)
    })?;

    // --- step 5: executive generation ---
    let (executives, deadlock_free) = tel.span("codegen", |_| -> Result<_, CoreError> {
        let generated = codegen::generate(&schedule, &alg, &inputs.arch)?;
        let deadlock_free = codegen::check_deadlock_free(&generated.executives).is_free()
            && codegen::replay(&generated, &inputs.arch).is_ok();
        let executives = generated
            .executives
            .iter()
            .map(|e| codegen::render(e, &alg, &inputs.arch))
            .chain(
                generated
                    .comm_sequences
                    .iter()
                    .map(|c| codegen::render_comm_sequence(c, &alg, &inputs.arch)),
            )
            .collect::<Vec<_>>()
            .join("\n");
        Ok((executives, deadlock_free))
    })?;

    Ok(LifecycleReport {
        ideal,
        implemented,
        calibrated,
        schedule,
        latency,
        executives,
        deadlock_free,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::uniform_timing;
    use ecl_aaa::TimeNs;
    use ecl_control::plants;

    fn us(v: i64) -> TimeNs {
        TimeNs::from_micros(v)
    }

    /// DC motor over two ECUs and a slow bus — the canonical lifecycle.
    fn dc_motor_inputs() -> LifecycleInputs {
        let plant = plants::dc_motor();
        let law = ControlLawSpec::monolithic("lqr", 2, 1);
        let (alg, io) = law.to_algorithm().unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("ecu0", "arm");
        let p1 = arch.add_processor("ecu1", "arm");
        arch.add_bus("can", &[p0, p1], TimeNs::from_millis(3), us(10))
            .unwrap();
        let mut db = uniform_timing(&alg, &io, us(200), TimeNs::from_millis(5));
        for &s in io.sensors.iter().chain(&io.actuators) {
            db.forbid(s, p1);
        }
        db.forbid(io.stages[0], p0);
        LifecycleInputs {
            plant: plant.sys,
            n_controls: 1,
            x0: vec![1.0, 0.0],
            ts: plant.ts,
            horizon: 2.0,
            lqr_q: Mat::identity(2),
            lqr_r: Mat::diag(&[0.1]),
            q_weight: 1.0,
            r_weight: 0.1,
            law,
            arch,
            db,
            adequation: AdequationOptions::default(),
            disturbance: DisturbanceKind::None,
        }
    }

    #[test]
    fn lifecycle_end_to_end() {
        let rep = run(&dc_motor_inputs()).unwrap();
        // The implementation degrades performance...
        assert!(rep.degradation() > 0.0, "degradation {}", rep.degradation());
        // ...calibration recovers a meaningful share of it...
        assert!(
            rep.calibrated.cost < rep.implemented.cost,
            "calibrated {} vs implemented {}",
            rep.calibrated.cost,
            rep.implemented.cost
        );
        // ...latencies are non-trivial...
        assert!(rep.latency.mean_actuation() > TimeNs::from_millis(5));
        // ...and the executives are generated and deadlock-free.
        assert!(rep.deadlock_free);
        assert!(rep.executives.contains("compute lqr_step"));
        assert!(rep.executives.contains("send"));
        assert!(rep.schedule.makespan() > TimeNs::ZERO);
    }

    #[test]
    fn lifecycle_records_phase_spans() {
        use ecl_telemetry::RecordingSink;
        let mut tel = Collector::new(RecordingSink::default());
        let rep = run_with(&dc_motor_inputs(), &mut tel).unwrap();
        assert!(rep.deadlock_free);
        let sink = tel.into_sink();
        let durations = sink.span_durations();
        let names: Vec<&str> = durations.iter().map(|(n, _)| n.as_str()).collect();
        for phase in [
            "design",
            "translate",
            "adequation",
            "delay-graph synthesis",
            "co-simulation",
            "calibration",
            "codegen",
        ] {
            assert!(names.contains(&phase), "missing span {phase}: {names:?}");
        }
        // The co-simulation span contains the schedule timeline and the
        // per-period latency counters.
        let has_slice = sink
            .events()
            .iter()
            .any(|e| matches!(e, ecl_telemetry::Event::Slice { track, .. } if track.starts_with("proc:")));
        let has_counter = sink
            .events()
            .iter()
            .any(|e| matches!(e, ecl_telemetry::Event::Counter { track, .. } if track == "La[0]"));
        assert!(has_slice && has_counter);
    }

    #[test]
    fn recovery_metric_sane() {
        let rep = run(&dc_motor_inputs()).unwrap();
        let rec = rep.calibration_recovery();
        assert!(rec > 0.0, "calibration should help, recovery {rec}");
        assert!(rec <= 1.5, "recovery out of plausible range: {rec}");
    }
}
