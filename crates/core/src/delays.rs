//! Graph-of-delays synthesis (paper §3.2).
//!
//! Given the static schedule produced by the adequation, this module
//! builds, inside an `ecl-sim` [`Model`], the Scicos event sub-graph that
//! replays the schedule's temporal behaviour:
//!
//! * **Sequencing** (§3.2.1, Fig. 4) — every computation and communication
//!   slot becomes an [`EventDelay`] whose duration is the slot's length;
//!   chaining the delays in schedule order reproduces each operation's
//!   start and completion instants.
//! * **Synchronization** (§3.2.3) — when an operation must wait for both
//!   its processor predecessor *and* data arriving over a medium, a
//!   [`Synchronization`] block joins the corresponding completion events;
//!   it fires at the *latest* of them, exactly like the rendezvous in the
//!   generated executive.
//! * **Conditioning** (§3.2.2, Fig. 5) — operations conditioned on a
//!   branch variable are routed through an [`EventSelect`] whose
//!   *condition mapping* reads a regular signal of the model; each branch
//!   gets its own delay chain, so branches of unequal execution time
//!   produce the activation jitter the paper warns about.
//!
//! The returned [`DelayGraph`] exposes, for every operation, the event
//! that marks its completion; connecting the completion events of sensor
//! and actuator operations to the model's Sample/Hold blocks makes the
//! co-simulation sample and actuate at the implementation's instants — the
//! `I_j(k)` and `O_j(k)` of the paper's equations (1)–(2).

use std::collections::HashMap;

use ecl_aaa::{AlgorithmGraph, ArchitectureGraph, OpId, Schedule, TimeNs};
use ecl_blocks::{
    add_clock, ConditionMapping, EventDelay, EventSelect, FaultyDelay, Synchronization,
};
use ecl_sim::{BlockId, Model};

use crate::faults::FaultPlan;
use crate::CoreError;

/// Where a condition variable's value can be read in the model, and how it
/// maps to a branch index.
pub struct ConditionSource {
    /// Block whose regular output carries the condition value.
    pub block: BlockId,
    /// Output port index on that block.
    pub output: usize,
    /// Condition mapping (paper §3.2.2): value → branch index.
    pub mapping: ConditionMapping,
}

impl std::fmt::Debug for ConditionSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConditionSource")
            .field("block", &self.block)
            .field("output", &self.output)
            .finish()
    }
}

/// Configuration of the synthesis.
#[derive(Debug, Default)]
pub struct DelayGraphConfig {
    /// One [`ConditionSource`] per condition variable of the algorithm
    /// graph. Required iff the graph has conditioned operations.
    pub condition_sources: HashMap<OpId, ConditionSource>,
    /// Optional fault plan (see [`crate::faults`]). A trivial (or absent)
    /// plan takes the exact nominal synthesis path — same blocks, same
    /// wiring, byte-identical behaviour. A non-trivial plan swaps
    /// [`FaultyDelay`] blocks in for faulted slots and arms every
    /// [`Synchronization`] with a timeout so a dead predecessor degrades
    /// the period instead of deadlocking it.
    pub faults: Option<FaultPlan>,
}

/// The synthesized graph of delays.
#[derive(Debug)]
pub struct DelayGraph {
    /// The period clock driving the whole structure.
    pub clock: BlockId,
    /// Per-operation completion event (the operation's own delay block).
    op_done: HashMap<OpId, (BlockId, usize)>,
    /// Event sources signalling an operation's completion for *successor
    /// chaining*: for a conditioned operation these are the tails of every
    /// branch of its group (exactly one fires per period).
    op_ready: HashMap<OpId, Vec<(BlockId, usize)>>,
    /// The `EventSelect` block of each condition variable, for inspection.
    selectors: HashMap<OpId, BlockId>,
}

impl DelayGraph {
    /// The event `(block, event output)` marking `op`'s completion.
    ///
    /// For a conditioned operation this event only fires on periods where
    /// its branch is selected.
    pub fn completion(&self, op: OpId) -> Option<(BlockId, usize)> {
        self.op_done.get(&op).copied()
    }

    /// Connects `op`'s completion event to event input `port` of `target`
    /// — the call that re-activates a Sample/Hold or controller block at
    /// the implementation's instant.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] for an unknown operation, and
    /// propagates wiring errors.
    pub fn activate_on_completion(
        &self,
        model: &mut Model,
        op: OpId,
        target: BlockId,
        port: usize,
    ) -> Result<(), CoreError> {
        let &(b, o) = self
            .op_done
            .get(&op)
            .ok_or_else(|| CoreError::InvalidInput {
                reason: format!("operation {op} is not part of the delay graph"),
            })?;
        model.connect_event(b, o, target, port)?;
        Ok(())
    }

    /// The `EventSelect` synthesized for condition variable `var`, if any.
    pub fn selector(&self, var: OpId) -> Option<BlockId> {
        self.selectors.get(&var).copied()
    }
}

/// Joins one or more event sources onto `target`'s event input `port`.
///
/// A single source connects directly; several sources go through a fresh
/// [`Synchronization`] block (the rendezvous fires at the latest source).
/// Sources listed as alternatives (`any_of`) are merged onto the same
/// synchronization input. With a `timeout` event source the barrier gets
/// a timeout arm wired to it, so a source that never fires (fault
/// injection) forces the rendezvous at the end of the period instead of
/// deadlocking every following period.
fn join(
    model: &mut Model,
    name: &str,
    sources: &[Vec<(BlockId, usize)>],
    target: BlockId,
    port: usize,
    timeout: Option<(BlockId, usize)>,
) -> Result<(), CoreError> {
    match sources.len() {
        0 => Err(CoreError::InvalidInput {
            reason: format!("'{name}' has no activation source"),
        }),
        1 => {
            for &(b, o) in &sources[0] {
                model.connect_event(b, o, target, port)?;
            }
            Ok(())
        }
        n => {
            let sync = match timeout {
                None => model.add_block(format!("sync_{name}"), Synchronization::new(n)?),
                Some((tb, to)) => {
                    let sync =
                        model.add_block(format!("sync_{name}"), Synchronization::with_timeout(n)?);
                    model.connect_event(tb, to, sync, n)?;
                    sync
                }
            };
            for (i, alt) in sources.iter().enumerate() {
                for &(b, o) in alt {
                    model.connect_event(b, o, sync, i)?;
                }
            }
            model.connect_event(sync, 0, target, port)?;
            Ok(())
        }
    }
}

/// Synthesizes the graph of delays for `schedule` inside `model`.
///
/// `period` is the control period `Ts`; the schedule's makespan must fit
/// within it (the paper's schedules are single-period, non-pipelined).
///
/// # Errors
///
/// * [`CoreError::InvalidInput`] if the makespan exceeds the period, a
///   condition variable lacks a [`ConditionSource`], or a conditioned
///   group spans several processors.
/// * Propagated model-wiring errors.
pub fn build(
    model: &mut Model,
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
    schedule: &Schedule,
    period: TimeNs,
    config: DelayGraphConfig,
) -> Result<DelayGraph, CoreError> {
    if schedule.makespan() > period {
        return Err(CoreError::InvalidInput {
            reason: format!(
                "schedule makespan {} exceeds the period {period}; the loop cannot sustain Ts",
                schedule.makespan()
            ),
        });
    }
    let DelayGraphConfig {
        condition_sources,
        faults,
    } = config;
    let clock = add_clock(model, "delay_clock", period, TimeNs::ZERO)?;
    let clock_src: Vec<(BlockId, usize)> = vec![(clock, 0)];

    // A non-trivial fault plan switches the synthesis to the degraded
    // vocabulary; a trivial (or absent) one takes the nominal path below,
    // block for block.
    let plan = faults.as_ref().filter(|p| !p.is_trivial());
    // Shared timeout source for every barrier: the period clock delayed to
    // just before the next tick, so a rendezvous whose predecessor died is
    // forced at the end of its own period. (With a makespan equal to the
    // full period, nominal completions at exactly `period` land after the
    // forced fire — acceptable for the degraded replay, documented in
    // DESIGN.md.)
    let timeout_src: Option<(BlockId, usize)> = match plan {
        Some(_) => {
            let d = model.add_block(
                "fault_timeout",
                EventDelay::new(period - TimeNs::from_nanos(1)).map_err(|e| {
                    CoreError::InvalidInput {
                        reason: e.to_string(),
                    }
                })?,
            );
            model.connect_event(clock, 0, d, 0)?;
            Some((d, 0))
        }
        None => None,
    };

    // ---- group conditioned operations by condition variable ------------
    // group_of[op] = condition variable if conditioned.
    let mut groups: HashMap<OpId, Vec<OpId>> = HashMap::new();
    for op in alg.ops() {
        if let Some(c) = alg.condition(op) {
            groups.entry(c.variable).or_default().push(op);
        }
    }
    for members in groups.values_mut() {
        // Deterministic order: by schedule start, then id.
        members.sort_by_key(|&o| (schedule.slot(o).map(|s| s.start), o));
    }

    let mut dg = DelayGraph {
        clock,
        op_done: HashMap::new(),
        op_ready: HashMap::new(),
        selectors: HashMap::new(),
    };

    // ---- per-operation delay blocks -------------------------------------
    for s in schedule.ops() {
        let dur = s.end - s.start;
        let name = format!("dly_{}", alg.name(s.op));
        let faulted = plan.and_then(|p| p.op_delay_actions(s.proc.index()));
        let blk = match faulted {
            Some(actions) => model.add_block(
                name,
                FaultyDelay::new(dur, actions).map_err(|e| CoreError::InvalidInput {
                    reason: e.to_string(),
                })?,
            ),
            None => model.add_block(
                name,
                EventDelay::new(dur).map_err(|e| CoreError::InvalidInput {
                    reason: e.to_string(),
                })?,
            ),
        };
        dg.op_done.insert(s.op, (blk, 0));
        dg.op_ready.insert(s.op, vec![(blk, 0)]);
    }

    // For conditioned groups: successors outside the group wait on the
    // tails of *all* branches (exactly one fires per period).
    for (var, members) in &groups {
        let mut tails: Vec<(BlockId, usize)> = Vec::new();
        let mut branches: HashMap<usize, Vec<OpId>> = HashMap::new();
        for &m in members {
            let c = alg.condition(m).expect("grouped because conditioned");
            branches.entry(c.branch).or_default().push(m);
        }
        for ops in branches.values() {
            let &tail = ops.last().expect("non-empty branch");
            tails.push(dg.op_done[&tail]);
        }
        tails.sort();
        for &m in members {
            dg.op_ready.insert(m, tails.clone());
        }
        let _ = var;
    }

    // ---- per-communication delay blocks ----------------------------------
    let mut comm_done: Vec<(BlockId, usize)> = Vec::new();
    for (i, c) in schedule.comms().iter().enumerate() {
        let dur = c.end - c.start;
        let name = format!(
            "comm_{}_{}_to_{}",
            alg.name(c.src_op),
            arch.proc_name(c.from),
            arch.proc_name(c.to)
        );
        // One retransmission re-sends the payload: it costs the medium's
        // full transfer time for the slot's data.
        let faulted = plan.and_then(|p| {
            let cost = schedule.comm_retry_cost(arch, i)?;
            p.comm_delay_actions(i, cost)
        });
        let blk = match faulted {
            Some(actions) => model.add_block(
                name,
                FaultyDelay::new(dur, actions).map_err(|e| CoreError::InvalidInput {
                    reason: e.to_string(),
                })?,
            ),
            None => model.add_block(
                name,
                EventDelay::new(dur).map_err(|e| CoreError::InvalidInput {
                    reason: e.to_string(),
                })?,
            ),
        };
        comm_done.push((blk, 0));
    }

    // ---- helper lookups --------------------------------------------------
    // Previous computation slot on the same processor.
    let prev_on_proc = |op: OpId| -> Option<OpId> {
        let slot = schedule.slot(op)?;
        schedule
            .proc_sequence(slot.proc)
            .iter()
            .filter(|s| s.start < slot.start)
            .max_by_key(|s| s.start)
            .map(|s| s.op)
    };
    // The communication delivering `src`'s data to processor `proc` in
    // time for `before` — earliest qualifying transfer (broadcast-aware).
    let delivering_comm = |src: OpId, proc: ecl_aaa::ProcId, before: TimeNs| -> Option<usize> {
        schedule
            .comms()
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.src_op == src && c.end <= before && arch.medium_procs(c.medium).contains(&proc)
            })
            .min_by_key(|(_, c)| c.end)
            .map(|(i, _)| i)
    };

    // ---- wire communications ---------------------------------------------
    for (i, c) in schedule.comms().iter().enumerate() {
        let mut sources: Vec<Vec<(BlockId, usize)>> = Vec::new();
        // Producer completion.
        sources.push(dg.op_ready[&c.src_op].clone());
        // Previous transfer on the same medium.
        let prev = schedule
            .comms()
            .iter()
            .enumerate()
            .filter(|(_, o)| o.medium == c.medium && o.start < c.start)
            .max_by_key(|(_, o)| o.start)
            .map(|(j, _)| j);
        match prev {
            Some(j) => sources.push(vec![comm_done[j]]),
            None => sources.push(clock_src.clone()),
        }
        let name = format!("comm{i}");
        let (target, port) = (comm_done[i].0, 0);
        join(model, &name, &sources, target, port, timeout_src)?;
    }

    // ---- wire computations -------------------------------------------------
    // Conditioned groups get an EventSelect; plain operations get direct
    // precondition joins.
    let mut handled: HashMap<OpId, bool> = HashMap::new();

    // Validate conditioned groups up front: a source must exist for every
    // condition variable, and a group must sit on one processor (paper
    // Fig. 5: a conditional branch inside one processor's sequence).
    for (var, members) in &groups {
        if !condition_sources.contains_key(var) {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "condition variable '{}' has no ConditionSource in the config",
                    alg.name(*var)
                ),
            });
        }
        let procs: Vec<_> = members
            .iter()
            .filter_map(|&m| schedule.slot(m).map(|s| s.proc))
            .collect();
        if procs.windows(2).any(|w| w[0] != w[1]) {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "conditioned group of '{}' spans several processors",
                    alg.name(*var)
                ),
            });
        }
    }

    // The EventSelect blocks take ownership of the condition mappings.
    let mut sources_by_var = condition_sources;

    for (var, members) in &groups {
        let src = sources_by_var
            .remove(var)
            .expect("validated in the loop above");
        let mut branches: HashMap<usize, Vec<OpId>> = HashMap::new();
        for &m in members {
            branches
                .entry(alg.condition(m).expect("conditioned").branch)
                .or_default()
                .push(m);
        }
        let n_branches = branches.keys().max().expect("non-empty") + 1;
        let select = model.add_block(
            format!("select_{}", alg.name(*var)),
            EventSelect::new(n_branches, src.mapping)?,
        );
        model.connect(src.block, src.output, select, 0)?;
        dg.selectors.insert(*var, select);

        // Group preconditions: previous non-group op on the processor (or
        // the clock), plus comm arrivals needed by any member from outside
        // the group, plus the condition variable's own completion if it
        // runs on another processor (then it arrives via a comm anyway).
        let head = members
            .iter()
            .min_by_key(|&&m| schedule.slot(m).map(|s| s.start))
            .copied()
            .expect("non-empty");
        let mut sources: Vec<Vec<(BlockId, usize)>> = Vec::new();
        let mut prev = prev_on_proc(head);
        // Skip group-internal predecessors (other branches of this group).
        while let Some(p) = prev {
            if members.contains(&p) {
                prev = prev_on_proc(p);
            } else {
                break;
            }
        }
        match prev {
            Some(p) => sources.push(dg.op_ready[&p].clone()),
            None => sources.push(clock_src.clone()),
        }
        let group_proc = schedule.slot(head).map(|s| s.proc);
        for &m in members {
            let slot = schedule.slot(m).expect("scheduled");
            for e in alg.edges().iter().filter(|e| e.dst == m) {
                if members.contains(&e.src) {
                    continue;
                }
                let pslot = schedule.slot(e.src).expect("scheduled");
                if Some(pslot.proc) != group_proc {
                    if let Some(ci) = delivering_comm(e.src, slot.proc, slot.start) {
                        let s = vec![comm_done[ci]];
                        if !sources.contains(&s) {
                            sources.push(s);
                        }
                    }
                }
            }
        }
        join(
            model,
            &format!("group_{}", alg.name(*var)),
            &sources,
            select,
            0,
            timeout_src,
        )?;

        // Per-branch internal chains: select output k -> first member of
        // branch k -> ... -> tail.
        for (branch, ops) in &branches {
            let mut prev_evt: (BlockId, usize) = (select, *branch);
            for &m in ops {
                let (blk, _) = dg.op_done[&m];
                model.connect_event(prev_evt.0, prev_evt.1, blk, 0)?;
                prev_evt = (blk, 0);
            }
        }
        for &m in members {
            handled.insert(m, true);
        }
    }

    // Plain operations.
    for s in schedule.ops() {
        if handled.get(&s.op).copied().unwrap_or(false) {
            continue;
        }
        let mut sources: Vec<Vec<(BlockId, usize)>> = Vec::new();
        match prev_on_proc(s.op) {
            Some(p) => sources.push(dg.op_ready[&p].clone()),
            None => sources.push(clock_src.clone()),
        }
        for e in alg.edges().iter().filter(|e| e.dst == s.op) {
            let pslot = schedule.slot(e.src).expect("scheduled");
            if pslot.proc != s.proc {
                if let Some(ci) = delivering_comm(e.src, s.proc, s.start) {
                    let src = vec![comm_done[ci]];
                    if !sources.contains(&src) {
                        sources.push(src);
                    }
                }
            }
        }
        let (target, _) = dg.op_done[&s.op];
        join(model, alg.name(s.op), &sources, target, 0, timeout_src)?;
    }

    Ok(dg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_aaa::{adequation, AdequationOptions, ArchitectureGraph, TimingDb};
    use ecl_blocks::{Constant, Scope};
    use ecl_sim::{SimOptions, Simulator};

    fn us(v: i64) -> TimeNs {
        TimeNs::from_micros(v)
    }

    /// 3-op chain on one processor, checks Fig. 4 sequencing instants.
    #[test]
    fn sequencing_reproduces_schedule_instants() {
        let mut alg = AlgorithmGraph::new();
        let s = alg.add_sensor("s");
        let f = alg.add_function("f");
        let a = alg.add_actuator("a");
        alg.add_edge(s, f, 1).unwrap();
        alg.add_edge(f, a, 1).unwrap();
        let mut arch = ArchitectureGraph::new();
        arch.add_processor("p0", "arm");
        let mut db = TimingDb::new();
        db.set_default(s, us(100));
        db.set_default(f, us(300));
        db.set_default(a, us(50));
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();

        let mut model = Model::new();
        let dg = build(
            &mut model,
            &alg,
            &arch,
            &schedule,
            TimeNs::from_millis(1),
            DelayGraphConfig::default(),
        )
        .unwrap();

        // Observe each completion with a scope on a constant input.
        let c = model.add_block("c", Constant::new(0.0));
        let mut scopes = Vec::new();
        for op in [s, f, a] {
            let sc = model.add_block(format!("sc_{op}"), Scope::new());
            model.connect(c, 0, sc, 0).unwrap();
            dg.activate_on_completion(&mut model, op, sc, 0).unwrap();
            scopes.push(sc);
        }
        let mut sim = Simulator::new(model, SimOptions::default()).unwrap();
        let r = sim.run(TimeNs::from_millis(2)).unwrap();
        let times = |sc| r.activation_times(sc, Some(0));
        // Period 0: s done at 100us, f at 400us, a at 450us; period 1 at +1ms.
        assert_eq!(times(scopes[0]), vec![us(100), us(1100)]);
        assert_eq!(times(scopes[1]), vec![us(400), us(1400)]);
        assert_eq!(times(scopes[2]), vec![us(450), us(1450)]);
    }

    /// Two processors + bus: the synchronization fires at the comm arrival.
    #[test]
    fn synchronization_reproduces_comm_arrival() {
        let mut alg = AlgorithmGraph::new();
        let s = alg.add_sensor("s");
        let f = alg.add_function("f");
        alg.add_edge(s, f, 2).unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("p0", "arm");
        let p1 = arch.add_processor("p1", "arm");
        arch.add_bus("bus", &[p0, p1], us(10), us(5)).unwrap();
        let mut db = TimingDb::new();
        db.set(s, p0, us(100));
        db.set(f, p1, us(200)); // forces distribution
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        schedule.validate(&alg, &arch).unwrap();
        // comm: starts 100, lasts 10 + 2*5 = 20 -> f runs 120..320.
        let slot_f = schedule.slot(f).unwrap();
        assert_eq!(slot_f.start, us(120));

        let mut model = Model::new();
        let dg = build(
            &mut model,
            &alg,
            &arch,
            &schedule,
            TimeNs::from_millis(1),
            DelayGraphConfig::default(),
        )
        .unwrap();
        let c = model.add_block("c", Constant::new(0.0));
        let sc = model.add_block("sc", Scope::new());
        model.connect(c, 0, sc, 0).unwrap();
        dg.activate_on_completion(&mut model, f, sc, 0).unwrap();
        let mut sim = Simulator::new(model, SimOptions::default()).unwrap();
        let r = sim.run(TimeNs::from_millis(1)).unwrap();
        assert_eq!(r.activation_times(sc, Some(0)), vec![us(320)]);
    }

    /// Conditioning: two branches of unequal duration produce jitter.
    #[test]
    fn conditioning_routes_and_jitters() {
        let mut alg = AlgorithmGraph::new();
        let s = alg.add_sensor("s");
        let mode = alg.add_function("mode");
        let fast = alg.add_function("fast");
        let slow = alg.add_function("slow");
        let a = alg.add_actuator("a");
        alg.add_edge(s, mode, 1).unwrap();
        alg.set_condition(fast, mode, 0).unwrap();
        alg.set_condition(slow, mode, 1).unwrap();
        alg.add_edge(fast, a, 1).unwrap();
        alg.add_edge(slow, a, 1).unwrap();
        let mut arch = ArchitectureGraph::new();
        arch.add_processor("p0", "arm");
        let mut db = TimingDb::new();
        db.set_default(s, us(10));
        db.set_default(mode, us(10));
        db.set_default(fast, us(50));
        db.set_default(slow, us(400));
        db.set_default(a, us(10));
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();

        // Condition signal: a constant selecting branch 1 (slow).
        let mut model = Model::new();
        let cond = model.add_block("cond", Constant::new(1.0));
        let mut cfg = DelayGraphConfig::default();
        cfg.condition_sources.insert(
            mode,
            ConditionSource {
                block: cond,
                output: 0,
                mapping: Box::new(|v| v as usize),
            },
        );
        let dg = build(
            &mut model,
            &alg,
            &arch,
            &schedule,
            TimeNs::from_millis(1),
            cfg,
        )
        .unwrap();
        assert!(dg.selector(mode).is_some());

        let c = model.add_block("c", Constant::new(0.0));
        let sc = model.add_block("sc", Scope::new());
        model.connect(c, 0, sc, 0).unwrap();
        dg.activate_on_completion(&mut model, a, sc, 0).unwrap();
        let mut sim = Simulator::new(model, SimOptions::default()).unwrap();
        let r = sim.run(TimeNs::from_millis(1)).unwrap();
        let t = r.activation_times(sc, Some(0));
        assert_eq!(t.len(), 1);
        // Branch 1 (slow): s(10) + mode(10) + slow(400) + a(10) = 430us.
        assert_eq!(t[0], us(430));
    }

    #[test]
    fn conditioning_without_source_rejected() {
        let mut alg = AlgorithmGraph::new();
        let mode = alg.add_function("mode");
        let f = alg.add_function("f");
        alg.set_condition(f, mode, 0).unwrap();
        let mut arch = ArchitectureGraph::new();
        arch.add_processor("p0", "arm");
        let mut db = TimingDb::new();
        db.set_default(mode, us(10));
        db.set_default(f, us(10));
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        let mut model = Model::new();
        let r = build(
            &mut model,
            &alg,
            &arch,
            &schedule,
            TimeNs::from_millis(1),
            DelayGraphConfig::default(),
        );
        assert!(matches!(r, Err(CoreError::InvalidInput { .. })));
    }

    #[test]
    fn makespan_exceeding_period_rejected() {
        let mut alg = AlgorithmGraph::new();
        let f = alg.add_function("f");
        let mut arch = ArchitectureGraph::new();
        arch.add_processor("p0", "arm");
        let mut db = TimingDb::new();
        db.set_default(f, TimeNs::from_millis(2));
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        let mut model = Model::new();
        let r = build(
            &mut model,
            &alg,
            &arch,
            &schedule,
            TimeNs::from_millis(1),
            DelayGraphConfig::default(),
        );
        assert!(matches!(r, Err(CoreError::InvalidInput { .. })));
    }

    /// Distributed fixture of `synchronization_reproduces_comm_arrival`:
    /// s on p0 (100us), 20us bus transfer, f on p1 (200us), so nominal f
    /// completion is 320us into each 1ms period.
    fn distributed_fixture() -> (AlgorithmGraph, ArchitectureGraph, ecl_aaa::Schedule) {
        let mut alg = AlgorithmGraph::new();
        let s = alg.add_sensor("s");
        let f = alg.add_function("f");
        alg.add_edge(s, f, 2).unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("p0", "arm");
        let p1 = arch.add_processor("p1", "arm");
        arch.add_bus("bus", &[p0, p1], us(10), us(5)).unwrap();
        let mut db = TimingDb::new();
        db.set(s, p0, us(100));
        db.set(f, p1, us(200));
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        (alg, arch, schedule)
    }

    fn observe_completion(model: &mut Model, dg: &DelayGraph, op: OpId) -> ecl_sim::BlockId {
        let c = model.add_block(format!("c_{op}"), Constant::new(0.0));
        let sc = model.add_block(format!("sc_{op}"), Scope::new());
        model.connect(c, 0, sc, 0).unwrap();
        dg.activate_on_completion(model, op, sc, 0).unwrap();
        sc
    }

    /// A dropped frame (retry budget exhausted every period) leaves the
    /// consumer's rendezvous to the timeout arm: f is forced at the end
    /// of the period and completes 200us later, instead of deadlocking.
    #[test]
    fn dropped_frame_forces_timeout_degradation() {
        let (alg, arch, schedule) = distributed_fixture();
        let f = alg.ops().find(|&o| alg.name(o) == "f").unwrap();
        let cfg_faults = crate::faults::FaultConfig {
            frame_loss_rate: 1.0,
            max_retries: 1,
            ..Default::default()
        };
        let plan = crate::faults::FaultPlan::generate(&cfg_faults, &schedule, &arch, 2).unwrap();
        assert!(!plan.is_trivial());
        let mut model = Model::new();
        let cfg = DelayGraphConfig {
            faults: Some(plan),
            ..Default::default()
        };
        let dg = build(
            &mut model,
            &alg,
            &arch,
            &schedule,
            TimeNs::from_millis(1),
            cfg,
        )
        .unwrap();
        let sc = observe_completion(&mut model, &dg, f);
        let mut sim = Simulator::new(model, SimOptions::default()).unwrap();
        let r = sim.run(TimeNs::from_millis(2)).unwrap();
        // Forced at kP + (P - 1ns), f done 200us later; the period-1 fire
        // completes past the horizon.
        assert_eq!(
            r.activation_times(sc, Some(0)),
            vec![TimeNs::from_nanos(1_199_999)]
        );
    }

    /// A retransmitted frame stretches the transfer by k·cost, shifting
    /// the consumer's completion by exactly that much.
    #[test]
    fn retransmission_stretches_consumer_completion() {
        let (alg, arch, schedule) = distributed_fixture();
        let f = alg.ops().find(|&o| alg.name(o) == "f").unwrap();
        // Deterministic seed scan: first seed whose period-0 fate is a
        // single retransmission.
        let plan = (0..200u64)
            .find_map(|seed| {
                let cfg = crate::faults::FaultConfig {
                    seed,
                    frame_loss_rate: 0.3,
                    max_retries: 3,
                    ..Default::default()
                };
                let p = crate::faults::FaultPlan::generate(&cfg, &schedule, &arch, 1).unwrap();
                (p.comm_fault(0, 0) == crate::faults::CommFault::Retry(1)).then_some(p)
            })
            .expect("a seed with Retry(1) in period 0 exists");
        let mut model = Model::new();
        let cfg = DelayGraphConfig {
            faults: Some(plan),
            ..Default::default()
        };
        let dg = build(
            &mut model,
            &alg,
            &arch,
            &schedule,
            TimeNs::from_millis(1),
            cfg,
        )
        .unwrap();
        let sc = observe_completion(&mut model, &dg, f);
        let mut sim = Simulator::new(model, SimOptions::default()).unwrap();
        let r = sim.run(TimeNs::from_millis(1)).unwrap();
        // Retry cost = full 20us transfer: 320us + 20us = 340us.
        assert_eq!(r.activation_times(sc, Some(0)), vec![us(340)]);
    }

    /// A dead producer processor silences its sensor; the consumer is
    /// forced by the timeout every period and keeps actuating (on stale
    /// data) instead of stopping.
    #[test]
    fn dead_processor_degrades_but_does_not_deadlock() {
        let (alg, arch, schedule) = distributed_fixture();
        let s = alg.ops().find(|&o| alg.name(o) == "s").unwrap();
        let f = alg.ops().find(|&o| alg.name(o) == "f").unwrap();
        // Deterministic seed scan: p0 dead from period 0, p1 alive for
        // all 3 periods.
        let plan = (0..400u64)
            .find_map(|seed| {
                let cfg = crate::faults::FaultConfig {
                    seed,
                    proc_dropout_rate: 0.4,
                    ..Default::default()
                };
                let p = crate::faults::FaultPlan::generate(&cfg, &schedule, &arch, 3).unwrap();
                (p.proc_dead_from(0) == Some(0) && p.proc_dead_from(1).is_none()).then_some(p)
            })
            .expect("a seed killing only p0 at period 0 exists");
        let mut model = Model::new();
        let cfg = DelayGraphConfig {
            faults: Some(plan),
            ..Default::default()
        };
        let dg = build(
            &mut model,
            &alg,
            &arch,
            &schedule,
            TimeNs::from_millis(1),
            cfg,
        )
        .unwrap();
        let sc_s = observe_completion(&mut model, &dg, s);
        let sc_f = observe_completion(&mut model, &dg, f);
        let mut sim = Simulator::new(model, SimOptions::default()).unwrap();
        let r = sim.run(TimeNs::from_millis(3)).unwrap();
        assert!(r.activation_times(sc_s, Some(0)).is_empty());
        // Forced fires at kP + (P - 1ns) + 200us; the period-2 one
        // completes past the horizon.
        assert_eq!(
            r.activation_times(sc_f, Some(0)),
            vec![TimeNs::from_nanos(1_199_999), TimeNs::from_nanos(2_199_999)]
        );
    }

    /// A trivial plan takes the nominal synthesis path: same block count,
    /// same instants as a build without any fault config.
    #[test]
    fn trivial_plan_is_byte_identical_to_nominal() {
        let (alg, arch, schedule) = distributed_fixture();
        let f = alg.ops().find(|&o| alg.name(o) == "f").unwrap();
        let run = |faults: Option<crate::faults::FaultPlan>| {
            let mut model = Model::new();
            let cfg = DelayGraphConfig {
                faults,
                ..Default::default()
            };
            let dg = build(
                &mut model,
                &alg,
                &arch,
                &schedule,
                TimeNs::from_millis(1),
                cfg,
            )
            .unwrap();
            let sc = observe_completion(&mut model, &dg, f);
            let n_blocks = model.len();
            let mut sim = Simulator::new(model, SimOptions::default()).unwrap();
            let r = sim.run(TimeNs::from_millis(2)).unwrap();
            (n_blocks, r.activation_times(sc, Some(0)))
        };
        let nominal = run(None);
        let trivial = run(Some(crate::faults::FaultPlan::trivial(2)));
        let zero_rate = run(Some(
            crate::faults::FaultPlan::generate(
                &crate::faults::FaultConfig {
                    seed: 9,
                    ..Default::default()
                },
                &schedule,
                &arch,
                2,
            )
            .unwrap(),
        ));
        assert_eq!(nominal, trivial);
        assert_eq!(nominal, zero_rate);
    }

    #[test]
    fn unknown_op_activation_rejected() {
        let mut alg = AlgorithmGraph::new();
        let f = alg.add_function("f");
        let ghost = {
            let mut other = AlgorithmGraph::new();
            other.add_function("a");
            other.add_function("b")
        };
        let mut arch = ArchitectureGraph::new();
        arch.add_processor("p0", "arm");
        let mut db = TimingDb::new();
        db.set_default(f, us(10));
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        let mut model = Model::new();
        let dg = build(
            &mut model,
            &alg,
            &arch,
            &schedule,
            TimeNs::from_millis(1),
            DelayGraphConfig::default(),
        )
        .unwrap();
        let sc = model.add_block("sc", Scope::new());
        assert!(dg.activate_on_completion(&mut model, ghost, sc, 0).is_err());
    }
}
