//! Cross-validation of executive-measured latencies against the graph of
//! delays.
//!
//! The methodology's step 3 *predicts* the distributed implementation's
//! operation instants with the graph of delays; `ecl-exec` *measures*
//! them by actually running the generated executives as concurrent
//! threads under a virtual clock. Both series are pure functions of the
//! same inputs (schedule, architecture timing, fault plan), so they must
//! agree op-by-op, period-by-period — any divergence is a bug in one of
//! the two models. This module holds the shared timeline type
//! ([`OpTimeline`]), the predictor ([`predict_op_completions`], a thin
//! harness over [`crate::delays`]) and the comparator
//! ([`validate_schedule`] → [`ValidationReport`]).

use ecl_aaa::{AlgorithmGraph, ArchitectureGraph, OpId, Schedule, TimeNs};
use ecl_blocks::{Constant, Scope};
use ecl_sim::{Model, SimOptions, Simulator};

use crate::delays::{self, DelayGraphConfig};
use crate::faults::FaultPlan;
use crate::CoreError;

/// Completion instants of every operation over a whole run, one series
/// per operation, in operation order. Instants are absolute (period `k`'s
/// nominal completions sit at `k·period + offset`) and strictly below the
/// run horizon `periods · period`, so measured and predicted runs of
/// equal length align index-by-index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpTimeline {
    /// The sampling period the run was driven at.
    pub period: TimeNs,
    /// Number of periods the run covered.
    pub periods: u32,
    /// Per-operation completion instants, sorted by operation id; each
    /// series ascending.
    pub series: Vec<(OpId, Vec<TimeNs>)>,
}

impl OpTimeline {
    /// The run horizon: instants at or beyond it are excluded.
    pub fn horizon(&self) -> TimeNs {
        self.period * i64::from(self.periods)
    }

    /// The completion series of `op`, if the timeline holds one.
    pub fn series_for(&self, op: OpId) -> Option<&[TimeNs]> {
        self.series
            .iter()
            .find(|(o, _)| *o == op)
            .map(|(_, s)| s.as_slice())
    }
}

/// Predicts every scheduled operation's completion instants by building
/// the graph of delays for `schedule` (with `faults` injected, when
/// given) and simulating it for `periods` periods.
///
/// This is the modeled side of the cross-validation; the measured side is
/// an `ecl-exec` run of the generated executives under the same plan.
///
/// # Errors
///
/// Propagates [`crate::delays::build`] failures (makespan exceeding the
/// period, conditioned operations — this harness supplies no condition
/// sources) and simulator errors.
pub fn predict_op_completions(
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
    schedule: &Schedule,
    period: TimeNs,
    periods: u32,
    faults: Option<&FaultPlan>,
) -> Result<OpTimeline, CoreError> {
    let mut model = Model::new();
    let config = DelayGraphConfig {
        faults: faults.cloned(),
        ..DelayGraphConfig::default()
    };
    let dg = delays::build(&mut model, alg, arch, schedule, period, config)?;
    let probe = model.add_block("xval_probe", Constant::new(0.0));
    let mut scopes = Vec::with_capacity(schedule.ops().len());
    for s in schedule.ops() {
        let sc = model.add_block(format!("xval_{}", s.op), Scope::new());
        model.connect(probe, 0, sc, 0)?;
        dg.activate_on_completion(&mut model, s.op, sc, 0)?;
        scopes.push((s.op, sc));
    }
    let horizon = period * i64::from(periods);
    let mut sim = Simulator::new(model, SimOptions::default())?;
    let result = sim.run(horizon)?;
    let mut series: Vec<(OpId, Vec<TimeNs>)> = scopes
        .into_iter()
        .map(|(op, sc)| {
            let instants = result
                .activation_times(sc, Some(0))
                .into_iter()
                .filter(|&t| t < horizon)
                .collect();
            (op, instants)
        })
        .collect();
    series.sort_by_key(|(op, _)| op.index());
    Ok(OpTimeline {
        period,
        periods,
        series,
    })
}

/// The first index at which one operation's measured and predicted series
/// disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// Activation ordinal (index into both series).
    pub index: usize,
    /// The measured instant at that index, if the series reaches it.
    pub measured: Option<TimeNs>,
    /// The predicted instant at that index, if the series reaches it.
    pub predicted: Option<TimeNs>,
}

/// Per-operation comparison of measured against predicted completions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpValidation {
    /// The operation compared.
    pub op: OpId,
    /// Its name in the algorithm graph.
    pub name: String,
    /// Number of measured completions.
    pub measured: usize,
    /// Number of predicted completions.
    pub predicted: usize,
    /// Largest |measured − predicted| over the common prefix, in ns.
    pub max_abs_delta_ns: i64,
    /// First index where the series disagree, if any.
    pub first_divergence: Option<Divergence>,
}

impl OpValidation {
    /// `true` iff the two series are identical.
    pub fn is_exact(&self) -> bool {
        self.first_divergence.is_none()
    }
}

/// Outcome of [`validate_schedule`]: the op-by-op diff of an executive
/// run against the graph-of-delays prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationReport {
    /// The common sampling period.
    pub period: TimeNs,
    /// The common run length in periods.
    pub periods: u32,
    /// One row per operation, in operation order.
    pub rows: Vec<OpValidation>,
}

impl ValidationReport {
    /// `true` iff every operation's series match exactly (zero
    /// divergence).
    pub fn is_exact(&self) -> bool {
        self.rows.iter().all(OpValidation::is_exact)
    }

    /// Largest absolute measured-vs-predicted delta across all
    /// operations, in ns (0 for an exact report).
    pub fn max_divergence_ns(&self) -> i64 {
        self.rows
            .iter()
            .map(|r| r.max_abs_delta_ns)
            .max()
            .unwrap_or(0)
    }

    /// The earliest period containing a divergent instant, if any.
    pub fn first_divergent_period(&self) -> Option<u32> {
        let p = self.period.as_nanos();
        self.rows
            .iter()
            .filter_map(|r| r.first_divergence)
            .filter_map(|d| d.measured.or(d.predicted))
            .map(|t| (t.as_nanos() / p) as u32)
            .min()
    }

    /// Renders the per-op table.
    pub fn render(&self) -> String {
        let mut s = format!(
            "cross-validation over {} periods of {}: {}\n",
            self.periods,
            self.period,
            if self.is_exact() {
                "EXACT".to_string()
            } else {
                format!(
                    "DIVERGENT (max {} ns, first period {})",
                    self.max_divergence_ns(),
                    self.first_divergent_period()
                        .map(|k| k.to_string())
                        .unwrap_or_else(|| "-".into())
                )
            }
        );
        s.push_str("op               measured predicted max|Δ|ns first-divergence\n");
        for r in &self.rows {
            let div = match r.first_divergence {
                None => "-".to_string(),
                Some(d) => format!(
                    "#{}: {} vs {}",
                    d.index,
                    d.measured
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "missing".into()),
                    d.predicted
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "missing".into()),
                ),
            };
            s.push_str(&format!(
                "{:<16} {:>8} {:>9} {:>8} {}\n",
                r.name, r.measured, r.predicted, r.max_abs_delta_ns, div
            ));
        }
        s
    }
}

/// Compares a measured timeline (from the `ecl-exec` virtual executive)
/// against a predicted one (from [`predict_op_completions`]) op-by-op.
/// Operations present on only one side compare against an empty series.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] if the two timelines do not cover
/// the same period/periods — such series cannot be aligned.
pub fn validate_schedule(
    measured: &OpTimeline,
    predicted: &OpTimeline,
    alg: &AlgorithmGraph,
) -> Result<ValidationReport, CoreError> {
    if measured.period != predicted.period || measured.periods != predicted.periods {
        return Err(CoreError::InvalidInput {
            reason: format!(
                "timeline mismatch: measured {} x {} vs predicted {} x {}",
                measured.periods, measured.period, predicted.periods, predicted.period
            ),
        });
    }
    let empty: &[TimeNs] = &[];
    let mut ops: Vec<OpId> = measured
        .series
        .iter()
        .chain(&predicted.series)
        .map(|(op, _)| *op)
        .collect();
    ops.sort_by_key(|op| op.index());
    ops.dedup();
    let rows = ops
        .into_iter()
        .map(|op| {
            let m = measured.series_for(op).unwrap_or(empty);
            let p = predicted.series_for(op).unwrap_or(empty);
            let max_abs_delta_ns = m
                .iter()
                .zip(p)
                .map(|(a, b)| (a.as_nanos() - b.as_nanos()).abs())
                .max()
                .unwrap_or(0);
            let first_divergence = (0..m.len().max(p.len())).find_map(|i| {
                let (a, b) = (m.get(i).copied(), p.get(i).copied());
                (a != b).then_some(Divergence {
                    index: i,
                    measured: a,
                    predicted: b,
                })
            });
            OpValidation {
                op,
                name: alg.name(op).to_string(),
                measured: m.len(),
                predicted: p.len(),
                max_abs_delta_ns,
                first_divergence,
            }
        })
        .collect();
    Ok(ValidationReport {
        period: measured.period,
        periods: measured.periods,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_aaa::{adequation, AdequationOptions, ArchitectureGraph, TimingDb};

    fn us(v: i64) -> TimeNs {
        TimeNs::from_micros(v)
    }

    /// Two processors + bus (the delays-module fixture): s on p0, f on
    /// p1, one 2-unit transfer.
    fn distributed_fixture() -> (AlgorithmGraph, ArchitectureGraph, Schedule, OpId, OpId) {
        let mut alg = AlgorithmGraph::new();
        let s = alg.add_sensor("s");
        let f = alg.add_function("f");
        alg.add_edge(s, f, 2).unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("p0", "arm");
        let p1 = arch.add_processor("p1", "arm");
        arch.add_bus("bus", &[p0, p1], us(10), us(5)).unwrap();
        let mut db = TimingDb::new();
        db.set(s, p0, us(100));
        db.set(f, p1, us(200));
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        schedule.validate(&alg, &arch).unwrap();
        (alg, arch, schedule, s, f)
    }

    #[test]
    fn prediction_reproduces_schedule_instants() {
        let (alg, arch, schedule, s, f) = distributed_fixture();
        let tl = predict_op_completions(&alg, &arch, &schedule, TimeNs::from_millis(1), 2, None)
            .unwrap();
        assert_eq!(tl.series_for(s).unwrap(), &[us(100), us(1100)]);
        assert_eq!(tl.series_for(f).unwrap(), &[us(320), us(1320)]);
    }

    #[test]
    fn prediction_truncates_at_horizon() {
        let (alg, arch, schedule, s, _) = distributed_fixture();
        let tl = predict_op_completions(&alg, &arch, &schedule, TimeNs::from_millis(1), 1, None)
            .unwrap();
        assert_eq!(tl.series_for(s).unwrap(), &[us(100)]);
        assert_eq!(tl.horizon(), TimeNs::from_millis(1));
    }

    #[test]
    fn identical_timelines_validate_exactly() {
        let (alg, arch, schedule, _, _) = distributed_fixture();
        let tl = predict_op_completions(&alg, &arch, &schedule, TimeNs::from_millis(1), 3, None)
            .unwrap();
        let rep = validate_schedule(&tl, &tl.clone(), &alg).unwrap();
        assert!(rep.is_exact());
        assert_eq!(rep.max_divergence_ns(), 0);
        assert_eq!(rep.first_divergent_period(), None);
        assert!(rep.render().contains("EXACT"));
    }

    #[test]
    fn divergence_is_located_and_quantified() {
        let (alg, arch, schedule, _, f) = distributed_fixture();
        let tl = predict_op_completions(&alg, &arch, &schedule, TimeNs::from_millis(1), 3, None)
            .unwrap();
        let mut skewed = tl.clone();
        for (op, series) in &mut skewed.series {
            if *op == f {
                series[1] += TimeNs::from_nanos(250);
                series.pop(); // and lose the last activation
            }
        }
        let rep = validate_schedule(&skewed, &tl, &alg).unwrap();
        assert!(!rep.is_exact());
        assert_eq!(rep.max_divergence_ns(), 250);
        // The first divergent instant is f's period-1 completion.
        assert_eq!(rep.first_divergent_period(), Some(1));
        let row = rep.rows.iter().find(|r| r.op == f).unwrap();
        assert_eq!(row.measured, 2);
        assert_eq!(row.predicted, 3);
        let d = row.first_divergence.unwrap();
        assert_eq!(d.index, 1);
        assert!(rep.render().contains("DIVERGENT"));
    }

    #[test]
    fn mismatched_horizons_are_rejected() {
        let (alg, arch, schedule, _, _) = distributed_fixture();
        let a = predict_op_completions(&alg, &arch, &schedule, TimeNs::from_millis(1), 2, None)
            .unwrap();
        let b = predict_op_completions(&alg, &arch, &schedule, TimeNs::from_millis(1), 3, None)
            .unwrap();
        assert!(matches!(
            validate_schedule(&a, &b, &alg),
            Err(CoreError::InvalidInput { .. })
        ));
    }

    #[test]
    fn missing_series_compare_against_empty() {
        let (alg, arch, schedule, s, _) = distributed_fixture();
        let tl = predict_op_completions(&alg, &arch, &schedule, TimeNs::from_millis(1), 1, None)
            .unwrap();
        let mut partial = tl.clone();
        partial.series.retain(|(op, _)| *op != s);
        let rep = validate_schedule(&partial, &tl, &alg).unwrap();
        let row = rep.rows.iter().find(|r| r.op == s).unwrap();
        assert_eq!(row.measured, 0);
        assert_eq!(row.predicted, 1);
        assert!(!row.is_exact());
    }
}
