//! The DATE 2008 co-design methodology: early simulation of a distributed
//! implementation's impact on control performance.
//!
//! This crate is the paper's primary contribution, assembled from the
//! workspace substrates:
//!
//! 1. [`translate`] — turns a discrete control law (inputs, computation
//!    stages, outputs) into a SynDEx [`AlgorithmGraph`](ecl_aaa::AlgorithmGraph)
//!    (the ECLIPSE Scicos→SynDEx translator);
//! 2. `ecl-aaa`'s adequation produces the static distributed schedule;
//! 3. [`delays`] — synthesizes the **graph of delays** (paper §3.2): a
//!    Scicos event sub-graph of `EventDelay` / `EventSelect` /
//!    `Synchronization` blocks replaying the schedule's temporal behaviour,
//!    re-activating the Sample/Hold and controller blocks at the instants
//!    the real implementation would;
//! 4. [`latency`] — extracts the sampling latencies `Ls_j(k)` (eq. 1) and
//!    actuation latencies `La_j(k)` (eq. 2) from the co-simulation trace;
//! 5. [`cosim`] — one-call drivers for the ideal (stroboscopic) and
//!    implemented (graph-of-delays) closed loops;
//! 6. [`lifecycle`] — the full design lifecycle: design → adequation →
//!    co-simulate → calibrate (delay-aware LQR redesign) → generate
//!    executives;
//! 7. [`xval`] — cross-validates the graph-of-delays prediction against
//!    the measured instants of the concurrent virtual executive
//!    (`ecl-exec`).
//!
//! # Examples
//!
//! ```
//! use ecl_core::cosim::{self, DisturbanceKind, LoopSpec};
//! use ecl_control::{c2d_zoh, dlqr, plants};
//! use ecl_linalg::Mat;
//!
//! # fn main() -> Result<(), ecl_core::CoreError> {
//! let plant = plants::dc_motor();
//! let dss = c2d_zoh(&plant.sys, plant.ts)?;
//! let lqr = dlqr(&dss, &Mat::identity(2), &Mat::diag(&[0.1]))?;
//! let spec = LoopSpec {
//!     plant: plant.sys.clone(),
//!     n_controls: 1,
//!     x0: vec![1.0, 0.0],
//!     feedback: lqr.k.clone(),
//!     input_memory: None,
//!     ts: plant.ts,
//!     horizon: 2.0,
//!     q_weight: 1.0,
//!     r_weight: 0.1,
//!     disturbance: DisturbanceKind::None,
//! };
//! let ideal = cosim::run_ideal(&spec)?;
//! assert!(ideal.cost.is_finite() && ideal.cost > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![allow(
    // `!(x > 0.0)` deliberately treats NaN as invalid; partial_cmp would
    // obscure that.
    clippy::neg_cmp_op_on_partial_ord,
    // Index loops mirror the textbook matrix formulas they implement.
    clippy::needless_range_loop
)]
#![warn(missing_docs)]

pub mod cosim;
pub mod delays;
mod error;
pub mod faults;
pub mod interval;
pub mod latency;
pub mod lifecycle;
pub mod report;
pub mod translate;
pub mod xval;

pub use error::CoreError;
