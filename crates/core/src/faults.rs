//! Deterministic fault injection for the distributed implementation.
//!
//! The graph of delays (paper §3.2) replays the schedule's *nominal*
//! timing; this module perturbs that replay with the failure modes a real
//! networked embedded control system exhibits:
//!
//! * **Frame loss with bounded retransmission** — a communication slot's
//!   transfer is lost with probability `frame_loss_rate` per attempt and
//!   retransmitted up to `max_retries` times; `k` retransmissions stretch
//!   the slot's [`EventDelay`](ecl_blocks::EventDelay) by `k ·
//!   retry_cost`, feeding extra actuation latency `La_j(k)` into eq. (2).
//!   Exhausting the retry budget drops the frame for the period.
//! * **Transient link outage** — a medium goes down for `outage_periods`
//!   consecutive periods with per-period probability `link_outage_rate`;
//!   every transfer scheduled on it during the window is dropped.
//! * **Permanent processor dropout** — a processor dies with per-period
//!   hazard `proc_dropout_rate`; from its death period onward every
//!   computation it hosts is dropped (fail-silent node).
//!
//! A [`FaultPlan`] is generated *up front* from a [`FaultConfig`] by
//! counter-based hashing: every random draw is a pure function of
//! `(seed, fault class, entity index, period, attempt)` through a
//! splitmix64 finalizer. Generation is therefore independent of iteration
//! order, thread count, and machine — the same config and schedule shape
//! yield byte-identical plans on 1 or 64 fleet workers.
//!
//! The plan compiles, per delay block of the graph, into a sequence of
//! [`DelayAction`]s indexed by activation count. Downstream, dropped
//! activations become *skipped* events: the Sample/Hold keeps its last
//! value (graceful degradation instead of divergence) and
//! `Synchronization` timeout arms keep dead predecessors from
//! deadlocking the period.

use ecl_aaa::{ArchitectureGraph, Fnv1a, Schedule, TimeNs};
use ecl_blocks::DelayAction;
use ecl_telemetry::Counts;

use crate::CoreError;

/// Per-attempt splitmix64 finalizer: the counter-based hash behind every
/// fault draw.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from `(seed, class tag, entity, period,
/// attempt)` — order-independent by construction.
fn draw(seed: u64, tag: u64, entity: u64, period: u64, attempt: u64) -> f64 {
    let mut h = splitmix64(seed ^ splitmix64(tag));
    h = splitmix64(h ^ entity.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    h = splitmix64(h ^ period.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    h = splitmix64(h ^ attempt.wrapping_mul(0x94d0_49bb_1331_11eb));
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const TAG_FRAME: u64 = 1;
const TAG_OUTAGE: u64 = 2;
const TAG_PROC: u64 = 3;

/// Fault-injection configuration: one scenario's rates and budgets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the plan's hash stream.
    pub seed: u64,
    /// Per-attempt probability that a communication transfer is lost.
    pub frame_loss_rate: f64,
    /// Retransmission budget per communication slot and period.
    pub max_retries: u32,
    /// Per-period probability that a medium starts an outage window.
    pub link_outage_rate: f64,
    /// Length of an outage window in periods.
    pub outage_periods: u32,
    /// Per-period hazard of a processor dying permanently.
    pub proc_dropout_rate: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            frame_loss_rate: 0.0,
            max_retries: 3,
            link_outage_rate: 0.0,
            outage_periods: 2,
            proc_dropout_rate: 0.0,
        }
    }
}

impl FaultConfig {
    /// `true` if every rate is zero — the plan is guaranteed trivial.
    pub fn is_zero(&self) -> bool {
        self.frame_loss_rate == 0.0 && self.link_outage_rate == 0.0 && self.proc_dropout_rate == 0.0
    }

    fn validate(&self) -> Result<(), CoreError> {
        for (name, r) in [
            ("frame_loss_rate", self.frame_loss_rate),
            ("link_outage_rate", self.link_outage_rate),
            ("proc_dropout_rate", self.proc_dropout_rate),
        ] {
            if !(0.0..=1.0).contains(&r) {
                return Err(CoreError::InvalidInput {
                    reason: format!("{name} = {r} is outside [0, 1]"),
                });
            }
        }
        Ok(())
    }
}

/// The *family* of fault plans a configuration can draw: which fault
/// classes are enabled at all, plus the retransmission budget.
///
/// The fault-envelope analysis (DESIGN.md §15) abstracts over every plan
/// [`FaultPlan::generate`] can emit for *any* seed under a given set of
/// rates — only whether a rate is non-zero matters for what a plan *can*
/// contain, so the family is the right index for a sound `[lo, hi]`
/// interval bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultFamily {
    /// `true` iff frames can be lost (some member plan draws retries, and
    /// drops once the retry budget is exhausted).
    pub frame_loss: bool,
    /// Retransmission budget per communication slot and period.
    pub max_retries: u32,
    /// `true` iff media can enter outage windows (member plans drop every
    /// transfer of an affected medium for whole periods).
    pub link_outage: bool,
    /// `true` iff processors can die permanently (member plans silence
    /// every operation of a dead processor from its death period on).
    pub proc_dropout: bool,
}

impl FaultFamily {
    /// The family containing only the trivial (fault-free) plan.
    pub fn trivial() -> FaultFamily {
        FaultFamily {
            frame_loss: false,
            max_retries: 0,
            link_outage: false,
            proc_dropout: false,
        }
    }

    /// The smallest family containing every plan `config` can generate,
    /// over all seeds.
    pub fn from_config(config: &FaultConfig) -> FaultFamily {
        FaultFamily {
            frame_loss: config.frame_loss_rate > 0.0,
            max_retries: config.max_retries,
            link_outage: config.link_outage_rate > 0.0,
            proc_dropout: config.proc_dropout_rate > 0.0,
        }
    }

    /// `true` iff the family contains only the trivial plan.
    pub fn is_trivial(&self) -> bool {
        !self.frame_loss && !self.link_outage && !self.proc_dropout
    }

    /// `true` iff some member plan can drop a transfer outright (budget
    /// exhaustion, outage window, or dead producer) — degradation is then
    /// deadline-forced rather than stretch-bounded.
    pub fn admits_drops(&self) -> bool {
        self.frame_loss || self.link_outage || self.proc_dropout
    }

    /// `true` iff some member plan can stretch a transfer by
    /// retransmissions.
    pub fn admits_retries(&self) -> bool {
        self.frame_loss && self.max_retries > 0
    }

    /// `true` iff every plan `config` can generate (any seed) is a member
    /// of this family.
    pub fn contains_config(&self, config: &FaultConfig) -> bool {
        (self.frame_loss || config.frame_loss_rate == 0.0)
            && (self.link_outage || config.link_outage_rate == 0.0)
            && (self.proc_dropout || config.proc_dropout_rate == 0.0)
            && (config.frame_loss_rate == 0.0 || config.max_retries <= self.max_retries)
    }
}

/// The fate of one communication slot in one period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommFault {
    /// Transfer succeeds at the first attempt.
    Ok,
    /// Transfer succeeds after this many retransmissions.
    Retry(u32),
    /// Transfer is lost for the period (retry budget exhausted, outage,
    /// or dead producer).
    Drop,
}

/// A pre-computed, deterministic per-period fault assignment for one
/// schedule replay.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    periods: u32,
    /// Per processor index: the period it dies at, if ever.
    proc_dead_from: Vec<Option<u32>>,
    /// Per medium index, per period: `true` during an outage window.
    outage: Vec<Vec<bool>>,
    /// Per communication-slot index, per period.
    comm_faults: Vec<Vec<CommFault>>,
    counts: Counts,
}

impl FaultPlan {
    /// Generates the plan for `periods` periods of `schedule` on `arch`.
    ///
    /// Every draw is a pure hash of `(seed, class, entity, period,
    /// attempt)`, so the result is independent of worker count and call
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if a rate is outside `[0, 1]`.
    pub fn generate(
        config: &FaultConfig,
        schedule: &Schedule,
        arch: &ArchitectureGraph,
        periods: u32,
    ) -> Result<FaultPlan, CoreError> {
        config.validate()?;
        let mut counts = Counts::new();

        // --- permanent processor dropout --------------------------------
        let mut proc_dead_from: Vec<Option<u32>> = vec![None; arch.num_processors()];
        if config.proc_dropout_rate > 0.0 {
            for p in arch.processors() {
                for k in 0..periods {
                    if draw(config.seed, TAG_PROC, p.index() as u64, u64::from(k), 0)
                        < config.proc_dropout_rate
                    {
                        proc_dead_from[p.index()] = Some(k);
                        counts.add("proc_dropouts", 1);
                        break;
                    }
                }
            }
        }

        // --- transient link outage windows ------------------------------
        let mut outage: Vec<Vec<bool>> = vec![vec![false; periods as usize]; arch.num_media()];
        if config.link_outage_rate > 0.0 && config.outage_periods > 0 {
            for m in arch.media() {
                let mut k = 0u32;
                while k < periods {
                    if draw(config.seed, TAG_OUTAGE, m.index() as u64, u64::from(k), 0)
                        < config.link_outage_rate
                    {
                        counts.add("outage_windows", 1);
                        let end = (k + config.outage_periods).min(periods);
                        for kk in k..end {
                            outage[m.index()][kk as usize] = true;
                        }
                        // The next window can start only after this one —
                        // draws inside the window are skipped, keeping one
                        // draw per (medium, period) outside windows.
                        k = end;
                    } else {
                        k += 1;
                    }
                }
            }
        }

        // --- per-slot frame loss with bounded retransmission ------------
        let mut comm_faults: Vec<Vec<CommFault>> = Vec::with_capacity(schedule.comms().len());
        for (i, c) in schedule.comms().iter().enumerate() {
            let mut per_period = Vec::with_capacity(periods as usize);
            for k in 0..periods {
                let producer_dead = proc_dead_from[c.from.index()].is_some_and(|d| k >= d);
                let fault = if producer_dead {
                    counts.add("dead_producer_drops", 1);
                    CommFault::Drop
                } else if outage[c.medium.index()][k as usize] {
                    counts.add("outage_drops", 1);
                    CommFault::Drop
                } else if config.frame_loss_rate > 0.0 {
                    // Attempt a = 0 is the scheduled transmission; each
                    // loss consumes one retransmission from the budget.
                    let mut lost = 0u32;
                    while lost <= config.max_retries
                        && draw(
                            config.seed,
                            TAG_FRAME,
                            i as u64,
                            u64::from(k),
                            u64::from(lost),
                        ) < config.frame_loss_rate
                    {
                        lost += 1;
                        counts.add("frames_lost", 1);
                    }
                    if lost == 0 {
                        CommFault::Ok
                    } else if lost <= config.max_retries {
                        counts.add("retransmissions", u64::from(lost));
                        CommFault::Retry(lost)
                    } else {
                        counts.add("retry_budget_drops", 1);
                        CommFault::Drop
                    }
                } else {
                    CommFault::Ok
                };
                per_period.push(fault);
            }
            comm_faults.push(per_period);
        }

        Ok(FaultPlan {
            periods,
            proc_dead_from,
            outage,
            comm_faults,
            counts,
        })
    }

    /// A plan that injects nothing (the identity replay).
    pub fn trivial(periods: u32) -> FaultPlan {
        FaultPlan {
            periods,
            proc_dead_from: Vec::new(),
            outage: Vec::new(),
            comm_faults: Vec::new(),
            counts: Counts::new(),
        }
    }

    /// Number of periods the plan covers.
    pub fn periods(&self) -> u32 {
        self.periods
    }

    /// `true` if the plan injects no fault anywhere — the replay is
    /// byte-identical to a fault-free one and the synthesis takes the
    /// exact nominal code path.
    pub fn is_trivial(&self) -> bool {
        self.proc_dead_from.iter().all(Option::is_none)
            && self
                .comm_faults
                .iter()
                .all(|p| p.iter().all(|f| *f == CommFault::Ok))
    }

    /// The period processor index `proc` dies at, if ever.
    pub fn proc_dead_from(&self, proc: usize) -> Option<u32> {
        self.proc_dead_from.get(proc).copied().flatten()
    }

    /// The fate of communication slot `i` in period `k`.
    pub fn comm_fault(&self, i: usize, k: u32) -> CommFault {
        self.comm_faults
            .get(i)
            .and_then(|p| p.get(k as usize))
            .copied()
            .unwrap_or(CommFault::Ok)
    }

    /// Per-class injected-fault tally (deterministic rendering).
    pub fn counts(&self) -> &Counts {
        &self.counts
    }

    /// Compiles the actions of the computation-slot delay block hosted on
    /// processor index `proc`: `Drop` from the processor's death period
    /// onward. `None` if the block never needs to deviate from `Pass`.
    pub fn op_delay_actions(&self, proc: usize) -> Option<Vec<DelayAction>> {
        let dead = self.proc_dead_from(proc)?;
        let mut actions = vec![DelayAction::Pass; self.periods as usize];
        for a in actions.iter_mut().skip(dead as usize) {
            *a = DelayAction::Drop;
        }
        Some(actions)
    }

    /// Compiles the actions of communication slot `i`'s delay block, with
    /// one retransmission costing `retry_cost`. `None` if the slot never
    /// deviates from `Pass`.
    pub fn comm_delay_actions(&self, i: usize, retry_cost: TimeNs) -> Option<Vec<DelayAction>> {
        let per_period = self.comm_faults.get(i)?;
        if per_period.iter().all(|f| *f == CommFault::Ok) {
            return None;
        }
        Some(
            per_period
                .iter()
                .map(|f| match f {
                    CommFault::Ok => DelayAction::Pass,
                    CommFault::Retry(r) => DelayAction::Stretch(retry_cost * i64::from(*r)),
                    CommFault::Drop => DelayAction::Drop,
                })
                .collect(),
        )
    }

    /// Stable FNV-1a digest of the full plan content — two plans with the
    /// same digest injected the same faults in the same periods. Built on
    /// the same [`Fnv1a`] family as `schedule_digest`/`loop_spec_digest`
    /// so memo keys composed from all three stay in one hash family.
    /// Every section is length-prefixed, so plans whose flattened streams
    /// coincide but whose shapes differ (e.g. an outage row moved into a
    /// comm-fault row) cannot alias.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(u64::from(self.periods));
        h.write_u64(self.proc_dead_from.len() as u64);
        for d in &self.proc_dead_from {
            h.write_u64(match d {
                Some(k) => u64::from(*k) + 1,
                None => 0,
            });
        }
        h.write_u64(self.outage.len() as u64);
        for per_medium in &self.outage {
            h.write_u64(per_medium.len() as u64);
            for &o in per_medium {
                h.write_u64(u64::from(o));
            }
        }
        h.write_u64(self.comm_faults.len() as u64);
        for per_slot in &self.comm_faults {
            h.write_u64(per_slot.len() as u64);
            for f in per_slot {
                h.write_u64(match f {
                    CommFault::Ok => 0,
                    CommFault::Retry(r) => u64::from(*r) + 1,
                    CommFault::Drop => u64::MAX,
                });
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_aaa::{adequation, AdequationOptions, AlgorithmGraph, TimingDb};

    fn us(v: i64) -> TimeNs {
        TimeNs::from_micros(v)
    }

    /// Two processors + bus, one comm slot.
    fn distributed_fixture() -> (AlgorithmGraph, ArchitectureGraph, Schedule) {
        let mut alg = AlgorithmGraph::new();
        let s = alg.add_sensor("s");
        let f = alg.add_function("f");
        alg.add_edge(s, f, 2).unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("p0", "arm");
        let p1 = arch.add_processor("p1", "arm");
        arch.add_bus("bus", &[p0, p1], us(10), us(5)).unwrap();
        let mut db = TimingDb::new();
        db.set(s, p0, us(100));
        db.set(f, p1, us(200));
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        (alg, arch, schedule)
    }

    #[test]
    fn zero_rates_give_trivial_plan() {
        let (_, arch, schedule) = distributed_fixture();
        let cfg = FaultConfig {
            seed: 42,
            ..FaultConfig::default()
        };
        assert!(cfg.is_zero());
        let plan = FaultPlan::generate(&cfg, &schedule, &arch, 50).unwrap();
        assert!(plan.is_trivial());
        assert!(plan.counts().is_empty());
        assert_eq!(plan.comm_delay_actions(0, us(20)), None);
        assert_eq!(plan.op_delay_actions(0), None);
        assert!(FaultPlan::trivial(50).is_trivial());
    }

    #[test]
    fn invalid_rate_rejected() {
        let (_, arch, schedule) = distributed_fixture();
        let cfg = FaultConfig {
            frame_loss_rate: 1.5,
            ..FaultConfig::default()
        };
        assert!(FaultPlan::generate(&cfg, &schedule, &arch, 10).is_err());
    }

    #[test]
    fn generation_is_reproducible_and_seed_sensitive() {
        let (_, arch, schedule) = distributed_fixture();
        let cfg = FaultConfig {
            seed: 7,
            frame_loss_rate: 0.3,
            link_outage_rate: 0.05,
            proc_dropout_rate: 0.02,
            ..FaultConfig::default()
        };
        let a = FaultPlan::generate(&cfg, &schedule, &arch, 200).unwrap();
        let b = FaultPlan::generate(&cfg, &schedule, &arch, 200).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        let other =
            FaultPlan::generate(&FaultConfig { seed: 8, ..cfg }, &schedule, &arch, 200).unwrap();
        assert_ne!(a.digest(), other.digest());
    }

    /// Exhaustive digest sensitivity, mirroring
    /// `loop_spec_digest_flips_on_every_field`: flipping any single plan
    /// field — the period count, any processor's death period, any
    /// outage flag, any slot fate (including the retry count), or any
    /// section's shape — must change the digest, and no two flips may
    /// alias each other.
    #[test]
    fn fault_plan_digest_flips_on_every_field() {
        let base = || FaultPlan {
            periods: 4,
            proc_dead_from: vec![None, Some(2)],
            outage: vec![vec![false, true, false, false]],
            comm_faults: vec![vec![
                CommFault::Ok,
                CommFault::Retry(1),
                CommFault::Drop,
                CommFault::Ok,
            ]],
            counts: Counts::new(),
        };
        let mut digests = vec![("baseline", base().digest())];
        let mut check = |label: &'static str, plan: FaultPlan| {
            let d = plan.digest();
            for (prev, pd) in &digests {
                assert_ne!(*pd, d, "digest of '{label}' collides with '{prev}'");
            }
            digests.push((label, d));
        };

        check("periods", {
            let mut p = base();
            p.periods = 5;
            p
        });
        check("proc death appears", {
            let mut p = base();
            p.proc_dead_from[0] = Some(0);
            p
        });
        check("proc death period", {
            let mut p = base();
            p.proc_dead_from[1] = Some(3);
            p
        });
        check("proc death removed", {
            let mut p = base();
            p.proc_dead_from[1] = None;
            p
        });
        check("proc list grows", {
            let mut p = base();
            p.proc_dead_from.push(None);
            p
        });
        check("outage flag set", {
            let mut p = base();
            p.outage[0][0] = true;
            p
        });
        check("outage flag cleared", {
            let mut p = base();
            p.outage[0][1] = false;
            p
        });
        check("outage medium added", {
            let mut p = base();
            p.outage.push(vec![false; 4]);
            p
        });
        check("comm fault Ok -> Retry(0)", {
            let mut p = base();
            p.comm_faults[0][0] = CommFault::Retry(0);
            p
        });
        check("comm retry count", {
            let mut p = base();
            p.comm_faults[0][1] = CommFault::Retry(2);
            p
        });
        check("comm Drop -> Ok", {
            let mut p = base();
            p.comm_faults[0][2] = CommFault::Ok;
            p
        });
        check("comm slot added", {
            let mut p = base();
            p.comm_faults.push(vec![CommFault::Ok; 4]);
            p
        });

        // `counts` is derived from the injected content, not part of the
        // plan's identity: it must NOT perturb the digest.
        let mut with_counts = base();
        with_counts.counts.add("frames_lost", 3);
        assert_eq!(base().digest(), with_counts.digest());
    }

    #[test]
    fn frame_loss_rate_one_exhausts_retry_budget() {
        let (_, arch, schedule) = distributed_fixture();
        let cfg = FaultConfig {
            frame_loss_rate: 1.0,
            max_retries: 2,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::generate(&cfg, &schedule, &arch, 4).unwrap();
        for k in 0..4 {
            assert_eq!(plan.comm_fault(0, k), CommFault::Drop);
        }
        // 3 attempts lost per period (initial + 2 retries) × 4 periods.
        assert_eq!(plan.counts().get("frames_lost"), 12);
        assert_eq!(plan.counts().get("retry_budget_drops"), 4);
        let actions = plan.comm_delay_actions(0, us(20)).unwrap();
        assert_eq!(actions, vec![DelayAction::Drop; 4]);
    }

    #[test]
    fn dead_processor_drops_all_its_comms_and_ops() {
        let (_, arch, schedule) = distributed_fixture();
        let cfg = FaultConfig {
            proc_dropout_rate: 1.0,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::generate(&cfg, &schedule, &arch, 6).unwrap();
        // Hazard 1.0: both processors die in period 0.
        assert_eq!(plan.proc_dead_from(0), Some(0));
        assert_eq!(plan.proc_dead_from(1), Some(0));
        assert_eq!(plan.counts().get("proc_dropouts"), 2);
        assert_eq!(
            plan.op_delay_actions(0).unwrap(),
            vec![DelayAction::Drop; 6]
        );
        assert_eq!(plan.comm_fault(0, 3), CommFault::Drop);
        assert!(plan.counts().get("dead_producer_drops") > 0);
    }

    #[test]
    fn outage_windows_cover_consecutive_periods() {
        let (_, arch, schedule) = distributed_fixture();
        let cfg = FaultConfig {
            link_outage_rate: 1.0,
            outage_periods: 3,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::generate(&cfg, &schedule, &arch, 7).unwrap();
        // Rate 1.0: back-to-back windows cover every period.
        for k in 0..7 {
            assert_eq!(plan.comm_fault(0, k), CommFault::Drop, "period {k}");
        }
        // ceil(7 / 3) = 3 windows started.
        assert_eq!(plan.counts().get("outage_windows"), 3);
        assert_eq!(plan.counts().get("outage_drops"), 7);
    }

    #[test]
    fn retry_actions_stretch_by_multiples_of_cost() {
        let (_, arch, schedule) = distributed_fixture();
        let cfg = FaultConfig {
            seed: 3,
            frame_loss_rate: 0.5,
            max_retries: 5,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::generate(&cfg, &schedule, &arch, 64).unwrap();
        let cost = schedule.comm_retry_cost(&arch, 0).unwrap();
        let actions = plan.comm_delay_actions(0, cost).unwrap();
        assert_eq!(actions.len(), 64);
        let mut seen_retry = false;
        for (k, a) in actions.iter().enumerate() {
            match (plan.comm_fault(0, k as u32), a) {
                (CommFault::Ok, DelayAction::Pass) => {}
                (CommFault::Retry(r), DelayAction::Stretch(extra)) => {
                    assert_eq!(*extra, cost * i64::from(r));
                    seen_retry = true;
                }
                (CommFault::Drop, DelayAction::Drop) => {}
                (f, a) => panic!("period {k}: fault {f:?} compiled to {a:?}"),
            }
        }
        assert!(
            seen_retry,
            "rate 0.5 over 64 periods must retry at least once"
        );
    }

    #[test]
    fn family_abstracts_configs_by_enabled_classes() {
        assert!(FaultFamily::trivial().is_trivial());
        assert!(!FaultFamily::trivial().admits_drops());
        let cfg = FaultConfig {
            frame_loss_rate: 0.2,
            max_retries: 3,
            ..FaultConfig::default()
        };
        let fam = FaultFamily::from_config(&cfg);
        assert!(!fam.is_trivial());
        assert!(fam.admits_drops(), "loss beyond the budget drops");
        assert!(fam.admits_retries());
        assert!(fam.contains_config(&cfg));
        assert!(fam.contains_config(&FaultConfig::default()));
        // A bigger retry budget escapes the family; so does a new class.
        assert!(!fam.contains_config(&FaultConfig {
            frame_loss_rate: 0.1,
            max_retries: 4,
            ..FaultConfig::default()
        }));
        assert!(!fam.contains_config(&FaultConfig {
            proc_dropout_rate: 0.1,
            ..FaultConfig::default()
        }));
        // Loss disabled: the retry budget is irrelevant.
        let quiet = FaultFamily {
            frame_loss: false,
            max_retries: 0,
            link_outage: true,
            proc_dropout: false,
        };
        assert!(!quiet.admits_retries());
        assert!(quiet.contains_config(&FaultConfig {
            link_outage_rate: 0.5,
            max_retries: 9,
            ..FaultConfig::default()
        }));
    }

    #[test]
    fn every_generated_plan_is_within_its_family() {
        let (_, arch, schedule) = distributed_fixture();
        let cfg = FaultConfig {
            seed: 11,
            frame_loss_rate: 0.3,
            max_retries: 2,
            link_outage_rate: 0.1,
            proc_dropout_rate: 0.05,
            ..FaultConfig::default()
        };
        let fam = FaultFamily::from_config(&cfg);
        for seed in 0..32 {
            let plan =
                FaultPlan::generate(&FaultConfig { seed, ..cfg }, &schedule, &arch, 16).unwrap();
            for i in 0..schedule.comms().len() {
                for k in 0..plan.periods() {
                    if let CommFault::Retry(r) = plan.comm_fault(i, k) {
                        assert!(fam.admits_retries() && r <= fam.max_retries);
                    }
                }
            }
        }
    }
}
