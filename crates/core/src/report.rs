//! Rendering lifecycle results as Markdown and CSV artifacts.
//!
//! A methodology that shortens the design cycle lives or dies by what it
//! hands back to the designer; this module turns a
//! [`LifecycleReport`] into a
//! human-readable Markdown summary and machine-readable CSV traces.

use ecl_aaa::{AlgorithmGraph, ArchitectureGraph};
use ecl_telemetry::Counts;

use crate::cosim::LoopResult;
use crate::faults::FaultPlan;
use crate::lifecycle::LifecycleReport;
use crate::CoreError;

/// Renders the lifecycle report as a self-contained Markdown document.
pub fn to_markdown(
    report: &LifecycleReport,
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
) -> String {
    let mut s = String::new();
    s.push_str("# Design-lifecycle report\n\n");
    s.push_str("## Control performance\n\n");
    s.push_str("| run | quadratic cost | vs ideal |\n|---|---|---|\n");
    let base = report.ideal.cost;
    for (name, run) in [
        ("ideal (stroboscopic)", &report.ideal),
        ("implemented (co-simulated)", &report.implemented),
        ("calibrated (delay-aware redesign)", &report.calibrated),
    ] {
        s.push_str(&format!(
            "| {name} | {:.6} | {:+.2}% |\n",
            run.cost,
            (run.cost / base - 1.0) * 100.0
        ));
    }
    s.push_str(&format!(
        "\nDegradation {:+.2}%, calibration recovers {:.0}% of it.\n",
        report.degradation() * 100.0,
        report.calibration_recovery() * 100.0
    ));

    s.push_str("\n## Latencies (paper eq. 1–2)\n\n```text\n");
    s.push_str(&report.latency.render());
    s.push_str("```\n");

    s.push_str("\n## Observability\n\n");
    s.push_str("Latency percentiles of the implemented run (streaming histograms, ns):\n\n");
    s.push_str("| series | count | min | p50 | p95 | p99 | max | mean |\n");
    s.push_str("|---|---|---|---|---|---|---|---|\n");
    let mut hist_row = |label: String, h: &ecl_telemetry::Histogram| {
        let sm = h.summary();
        s.push_str(&format!(
            "| {label} | {} | {} | {} | {} | {} | {} | {:.1} |\n",
            sm.count, sm.min_ns, sm.p50_ns, sm.p95_ns, sm.p99_ns, sm.max_ns, sm.mean_ns
        ));
    };
    for (j, h) in report.implemented.sampling_hist.iter().enumerate() {
        hist_row(format!("Ls[{j}]"), h);
    }
    for (j, h) in report.implemented.actuation_hist.iter().enumerate() {
        hist_row(format!("La[{j}]"), h);
    }

    s.push_str("\nBusiest blocks of the implemented co-simulation (event deliveries):\n\n");
    s.push_str("| block | activations |\n|---|---|\n");
    for (name, count) in report.implemented.activity.iter().take(5) {
        s.push_str(&format!("| {name} | {count} |\n"));
    }
    let es = &report.implemented.stats;
    s.push_str(&format!(
        "\nEngine counters: {} event instants, {} deliveries, calendar peak {}, \
         {} ODE steps ({} rejected), {} RHS evaluations.\n",
        es.event_instants,
        es.events_delivered,
        es.calendar_peak,
        es.ode.steps_accepted,
        es.ode.steps_rejected,
        es.ode.rhs_evals
    ));

    s.push_str("\n## Static schedule\n\n```text\n");
    s.push_str(&report.schedule.render(alg, arch));
    s.push_str("```\n\n```text\n");
    s.push_str(&ecl_aaa::timeline::gantt_text(&report.schedule, alg, arch));
    s.push_str("```\n");

    s.push_str(&format!(
        "\n## Generated executives (deadlock-free: {})\n\n```text\n{}\n```\n",
        report.deadlock_free, report.executives
    ));
    s
}

/// The cost table of the report as CSV (`run,cost,relative`).
pub fn costs_csv(report: &LifecycleReport) -> String {
    let base = report.ideal.cost;
    let mut s = String::from("run,cost,relative_to_ideal\n");
    for (name, run) in [
        ("ideal", &report.ideal),
        ("implemented", &report.implemented),
        ("calibrated", &report.calibrated),
    ] {
        s.push_str(&format!("{name},{:.9},{:.6}\n", run.cost, run.cost / base));
    }
    s
}

/// Exports chosen probe signals of a run as a merged CSV, linearly
/// resampled on a uniform grid of step `dt` seconds.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] if `dt` is non-positive, a name is
/// unknown, or the run recorded nothing.
pub fn traces_csv(run: &LoopResult, names: &[&str], dt: f64) -> Result<String, CoreError> {
    if !(dt > 0.0) {
        return Err(CoreError::InvalidInput {
            reason: format!("resampling step must be positive, got {dt}"),
        });
    }
    let signals: Result<Vec<_>, CoreError> = names
        .iter()
        .map(|&n| {
            run.result.signal(n).ok_or_else(|| CoreError::InvalidInput {
                reason: format!("unknown probe '{n}'"),
            })
        })
        .collect();
    let signals = signals?;
    let t_end = signals
        .iter()
        .filter_map(|s| s.last().map(|(t, _)| t))
        .fold(0.0f64, f64::max);
    if t_end <= 0.0 {
        return Err(CoreError::InvalidInput {
            reason: "run recorded no samples".into(),
        });
    }
    let mut s = String::from("t");
    for n in names {
        s.push(',');
        s.push_str(n);
    }
    s.push('\n');
    let steps = (t_end / dt).floor() as usize;
    for k in 0..=steps {
        let t = k as f64 * dt;
        s.push_str(&format!("{t:.9}"));
        for sig in &signals {
            s.push_str(&format!(",{:.9}", sig.sample(t).unwrap_or(0.0)));
        }
        s.push('\n');
    }
    Ok(s)
}

/// Aggregated outcome of one scenario of a Monte-Carlo sweep.
///
/// Rows are produced by the sweep engine (`ecl-bench`'s fleet module) in
/// scenario-index order, so a [`SweepSummary`] renders byte-identically
/// regardless of how many workers ran the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Scenario index within the sweep (also the seed-derivation input).
    pub index: usize,
    /// The per-scenario PRNG seed actually used.
    pub seed: u64,
    /// Human-readable description of the perturbation.
    pub label: String,
    /// Quadratic cost of the implemented (co-simulated) run.
    pub cost: f64,
    /// `cost / ideal cost` of the same scenario.
    pub cost_ratio: f64,
    /// Makespan of the scenario's static schedule, ns.
    pub makespan_ns: i64,
    /// Worst observed actuation latency `La_j(k)`, ns.
    pub worst_actuation_ns: i64,
    /// Number of cross-period actuations (lenient-mode overruns).
    pub overruns: usize,
}

/// Verdict of a faulty run against its fault-free baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StabilityVerdict {
    /// Cost stayed within the sweep's cost-ratio bound despite the faults.
    Stable,
    /// Cost exceeded the bound but the loop still converged (finite cost
    /// within 10× the bound).
    Degraded,
    /// The loop diverged: non-finite cost, or beyond 10× the bound.
    Diverged,
}

impl StabilityVerdict {
    /// Fixed lower-case name, used by both renderers.
    pub fn as_str(self) -> &'static str {
        match self {
            StabilityVerdict::Stable => "stable",
            StabilityVerdict::Degraded => "degraded",
            StabilityVerdict::Diverged => "diverged",
        }
    }
}

/// How one faulty scenario degraded relative to its fault-free twin.
///
/// Built by [`DegradationSummary::from_runs`] from two co-simulations of
/// the *same* scenario — one with the fault plan active, one nominal —
/// so every delta isolates the injected faults from the scenario's own
/// perturbations.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationSummary {
    /// Scenario index within the sweep.
    pub index: usize,
    /// Periods covered by the fault plan.
    pub periods: u32,
    /// Injected-fault tallies from the plan (frame losses,
    /// retransmissions, outage windows, processor dropouts, ...).
    pub injected: Counts,
    /// Sampling activations lost versus the baseline run (skipped
    /// `I_j(k)` events — the Hold block kept its previous value).
    pub skipped_samples: usize,
    /// Actuation activations lost versus the baseline run.
    pub skipped_actuations: usize,
    /// Cross-period completions of the faulty run (lenient-mode
    /// overruns), counting retransmission stretch and forced rendezvous.
    pub overruns: usize,
    /// Mean `Ls_j(k)` inflation over the baseline, ns.
    pub ls_inflation_ns: i64,
    /// Mean `La_j(k)` inflation over the baseline, ns.
    pub la_inflation_ns: i64,
    /// `faulty cost / baseline cost` of the same scenario.
    pub cost_ratio: f64,
    /// Stability classification of the faulty run.
    pub verdict: StabilityVerdict,
}

impl DegradationSummary {
    /// Compares a faulty run against its fault-free baseline.
    ///
    /// `cost_bound_ratio` is the sweep's robustness bound: within it the
    /// verdict is [`Stable`](StabilityVerdict::Stable), within 10× it is
    /// [`Degraded`](StabilityVerdict::Degraded), beyond (or non-finite)
    /// [`Diverged`](StabilityVerdict::Diverged).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if either run's activation
    /// instants are unsorted or causally impossible.
    pub fn from_runs(
        index: usize,
        plan: &FaultPlan,
        baseline: &LoopResult,
        faulty: &LoopResult,
        cost_bound_ratio: f64,
    ) -> Result<DegradationSummary, CoreError> {
        let skipped = |base: &[Vec<ecl_aaa::TimeNs>], faul: &[Vec<ecl_aaa::TimeNs>]| {
            base.iter()
                .zip(faul)
                .map(|(b, f)| b.len().saturating_sub(f.len()))
                .sum()
        };
        let base_rep = baseline.latency_report_lenient()?;
        let faulty_rep = faulty.latency_report_lenient()?;
        let cost_ratio = faulty.cost / baseline.cost;
        let verdict = if !cost_ratio.is_finite() || cost_ratio > 10.0 * cost_bound_ratio {
            StabilityVerdict::Diverged
        } else if cost_ratio <= cost_bound_ratio {
            StabilityVerdict::Stable
        } else {
            StabilityVerdict::Degraded
        };
        Ok(DegradationSummary {
            index,
            periods: plan.periods(),
            injected: plan.counts().clone(),
            skipped_samples: skipped(&baseline.sample_instants, &faulty.sample_instants),
            skipped_actuations: skipped(&baseline.actuation_instants, &faulty.actuation_instants),
            overruns: faulty_rep.total_overruns(),
            ls_inflation_ns: faulty_rep.mean_sampling().as_nanos()
                - base_rep.mean_sampling().as_nanos(),
            la_inflation_ns: faulty_rep.mean_actuation().as_nanos()
                - base_rep.mean_actuation().as_nanos(),
            cost_ratio,
            verdict,
        })
    }
}

/// Aggregate of a sweep's executive cross-validations (experiment
/// E13-EXEC): every validated run executed the generated code in the
/// `ecl-exec` virtual machine and diffed the measured completion
/// instants against the graph-of-delays prediction
/// (`ecl_core::xval::validate_schedule`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationSummary {
    /// Executive runs cross-validated (a scenario's nominal and faulty
    /// runs count separately).
    pub validated: usize,
    /// Runs whose measured series matched the prediction exactly.
    pub exact: usize,
    /// Largest measured-vs-predicted divergence seen anywhere, ns.
    pub max_divergence_ns: i64,
}

/// Aggregate of a sweep's static verifications (experiment E14-VERIFY):
/// every verified scenario ran the `ecl-verify` passes over its schedule
/// and checked that the sound static `Ls`/`La` bounds dominate the
/// measured latencies.
///
/// Defined here (plain counts, no dependency on the verifier crate) so
/// the renderers stay in one place; the sweep engine populates it from
/// `ecl-verify` reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerificationSummary {
    /// Scenarios statically verified.
    pub verified: usize,
    /// Error-severity diagnostics across all verified scenarios.
    pub errors: usize,
    /// Warning-severity diagnostics across all verified scenarios.
    pub warnings: usize,
    /// Smallest `static bound - measured latency` margin observed
    /// anywhere, ns (non-negative iff the bounds are sound).
    pub worst_margin_ns: i64,
}

/// Aggregate of a sweep's static fault-envelope pruning (experiment
/// E19-ENVELOPE): scenarios whose envelope verdict was conclusive
/// skipped co-simulation entirely and contributed a statically derived
/// report row instead.
///
/// Defined here (plain counts, no dependency on the verifier crate) for
/// the same reason as [`VerificationSummary`]: the renderers stay in one
/// place and the sweep engine populates it from `ecl-verify` envelopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneSummary {
    /// Scenarios whose fault envelope was evaluated (traced scenarios
    /// are never pruned, so they do not count here).
    pub evaluated: usize,
    /// Scenarios pruned with a conclusively *safe* envelope (no period
    /// or budget violation is possible for any plan in the family).
    pub pruned_safe: usize,
    /// Scenarios pruned with a conclusively *unsafe* envelope (every
    /// plan in the family violates the period or budget).
    pub pruned_unsafe: usize,
    /// Scenarios that went on to co-simulate (inconclusive envelope, or
    /// traced/pass-skipped).
    pub simulated: usize,
}

/// The sweep-level report: per-scenario rows plus robustness statistics.
///
/// Rendering is deliberately free of wall-clock content — two sweeps over
/// the same scenarios produce identical bytes, which is what the
/// determinism check of experiment E11-MC diffs.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSummary {
    /// Per-scenario outcomes, ordered by scenario index.
    pub scenarios: Vec<ScenarioOutcome>,
    /// A scenario is *robust* when `cost_ratio <= cost_bound_ratio`.
    pub cost_bound_ratio: f64,
    /// Adequation-cache lookups answered from the cache.
    pub cache_hits: u64,
    /// Adequation-cache lookups that ran the scheduler.
    pub cache_misses: u64,
    /// Fault-degradation rows, ordered by scenario index; empty for a
    /// fault-free sweep, in which case neither renderer emits the
    /// degradation section (keeping fault-free output byte-identical to
    /// pre-fault sweeps).
    pub degradations: Vec<DegradationSummary>,
    /// Executive cross-validation aggregate; `None` when the sweep did
    /// not self-validate, in which case neither renderer emits the
    /// section (keeping earlier artifacts byte-identical).
    pub validation: Option<ValidationSummary>,
    /// Static-verification aggregate; `None` when the sweep did not run
    /// the verifier, in which case neither renderer emits the section
    /// (keeping earlier artifacts byte-identical).
    pub verification: Option<VerificationSummary>,
    /// Static fault-envelope pruning aggregate; `None` when the sweep
    /// did not prune, in which case neither renderer emits the section
    /// (keeping earlier artifacts byte-identical).
    pub prune: Option<PruneSummary>,
}

impl SweepSummary {
    /// Fraction of scenarios whose cost stayed within the bound
    /// (`cost_ratio <= cost_bound_ratio`); 0 for an empty sweep.
    pub fn robustness_margin(&self) -> f64 {
        if self.scenarios.is_empty() {
            return 0.0;
        }
        let met = self
            .scenarios
            .iter()
            .filter(|s| s.cost_ratio <= self.cost_bound_ratio)
            .count();
        met as f64 / self.scenarios.len() as f64
    }

    /// The scenario with the largest cost ratio (`None` for an empty
    /// sweep). Ties resolve to the lowest index, keeping the answer
    /// independent of worker count.
    pub fn worst(&self) -> Option<&ScenarioOutcome> {
        self.scenarios.iter().reduce(|worst, s| {
            if s.cost_ratio > worst.cost_ratio {
                s
            } else {
                worst
            }
        })
    }

    /// The `q`-quantile (`0 <= q <= 1`) of the cost ratios across
    /// scenarios, by the nearest-rank method; `None` for an empty sweep.
    /// `q = 0` returns the minimum, `q = 1` the maximum, and a
    /// single-scenario sweep returns its only element for every `q`.
    pub fn cost_ratio_quantile(&self, q: f64) -> Option<f64> {
        if self.scenarios.is_empty() {
            return None;
        }
        let mut ratios: Vec<f64> = self.scenarios.iter().map(|s| s.cost_ratio).collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("cost ratios are finite"));
        let n = ratios.len();
        // Nearest rank is ⌈q·n⌉, but the product must be snapped to the
        // grid first: 0.95 · 20 evaluates to 19.000000000000004 in f64,
        // whose raw ceil lands on rank 20 instead of 19.
        let pos = q * n as f64;
        let rank = if pos <= pos.floor() + 1e-9 {
            pos.floor()
        } else {
            pos.ceil()
        } as usize;
        Some(ratios[rank.clamp(1, n) - 1])
    }

    /// Fraction of faulty scenarios the loop *survived* (verdict other
    /// than [`Diverged`](StabilityVerdict::Diverged)); `None` when the
    /// sweep injected no faults.
    pub fn survivable_fraction(&self) -> Option<f64> {
        if self.degradations.is_empty() {
            return None;
        }
        let survived = self
            .degradations
            .iter()
            .filter(|d| d.verdict != StabilityVerdict::Diverged)
            .count();
        Some(survived as f64 / self.degradations.len() as f64)
    }

    /// Renders the sweep as a Markdown section (deterministic bytes, no
    /// timestamps).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("## Scenario sweep\n\n");
        s.push_str(&format!(
            "{} scenarios, robustness margin {:.4} (cost ratio bound {:.3}), \
             schedule cache {} hits / {} misses.\n\n",
            self.scenarios.len(),
            self.robustness_margin(),
            self.cost_bound_ratio,
            self.cache_hits,
            self.cache_misses
        ));
        if let Some(w) = self.worst() {
            s.push_str(&format!(
                "Worst scenario: #{} ({}), cost ratio {:.6}.\n",
                w.index, w.label, w.cost_ratio
            ));
        }
        for (name, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
            if let Some(v) = self.cost_ratio_quantile(q) {
                s.push_str(&format!("Cost ratio {name}: {v:.6}\n"));
            }
        }
        s.push_str(
            "\n| # | seed | scenario | cost | vs ideal | makespan ns | worst La ns | overruns |\n\
             |---|---|---|---|---|---|---|---|\n",
        );
        for sc in &self.scenarios {
            s.push_str(&format!(
                "| {} | {:#018x} | {} | {:.6} | {:.6} | {} | {} | {} |\n",
                sc.index,
                sc.seed,
                sc.label,
                sc.cost,
                sc.cost_ratio,
                sc.makespan_ns,
                sc.worst_actuation_ns,
                sc.overruns
            ));
        }
        if !self.degradations.is_empty() {
            s.push_str("\n### Fault degradation\n\n");
            s.push_str(&format!(
                "{} faulty scenarios, survivable fraction {:.4}.\n\n",
                self.degradations.len(),
                self.survivable_fraction().unwrap_or(0.0)
            ));
            s.push_str(
                "| # | periods | skipped I | skipped O | overruns | Ls infl ns | \
                 La infl ns | cost ratio | verdict | injected |\n\
                 |---|---|---|---|---|---|---|---|---|---|\n",
            );
            for d in &self.degradations {
                s.push_str(&format!(
                    "| {} | {} | {} | {} | {} | {} | {} | {:.6} | {} | {} |\n",
                    d.index,
                    d.periods,
                    d.skipped_samples,
                    d.skipped_actuations,
                    d.overruns,
                    d.ls_inflation_ns,
                    d.la_inflation_ns,
                    d.cost_ratio,
                    d.verdict.as_str(),
                    d.injected.render()
                ));
            }
        }
        if let Some(v) = &self.validation {
            s.push_str("\n### Executive cross-validation\n\n");
            s.push_str(&format!(
                "{} runs validated against the graph of delays: {} exact, \
                 max divergence {} ns.\n",
                v.validated, v.exact, v.max_divergence_ns
            ));
        }
        if let Some(v) = &self.verification {
            s.push_str("\n### Static verification\n\n");
            s.push_str(&format!(
                "{} schedules verified: {} error(s), {} warning(s), worst \
                 bound margin {} ns.\n",
                v.verified, v.errors, v.warnings, v.worst_margin_ns
            ));
        }
        if let Some(p) = &self.prune {
            s.push_str("\n### Static pruning\n\n");
            s.push_str(&format!(
                "{} envelopes evaluated: {} pruned safe, {} pruned unsafe, \
                 {} co-simulated.\n",
                p.evaluated, p.pruned_safe, p.pruned_unsafe, p.simulated
            ));
        }
        s
    }

    /// Renders the sweep as a JSON document (deterministic bytes, no
    /// timestamps; hand-rolled so the offline serde shim is not needed).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"scenario_count\": {},\n  \"cost_bound_ratio\": {:.6},\n  \
             \"robustness_margin\": {:.6},\n  \"cache_hits\": {},\n  \
             \"cache_misses\": {},\n  \"scenarios\": [\n",
            self.scenarios.len(),
            self.cost_bound_ratio,
            self.robustness_margin(),
            self.cache_hits,
            self.cache_misses
        ));
        for (i, sc) in self.scenarios.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"index\": {}, \"seed\": {}, \"label\": \"{}\", \
                 \"cost\": {:.9}, \"cost_ratio\": {:.9}, \"makespan_ns\": {}, \
                 \"worst_actuation_ns\": {}, \"overruns\": {}}}{}\n",
                sc.index,
                sc.seed,
                sc.label,
                sc.cost,
                sc.cost_ratio,
                sc.makespan_ns,
                sc.worst_actuation_ns,
                sc.overruns,
                if i + 1 == self.scenarios.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        if self.degradations.is_empty() {
            s.push_str("  ]");
        } else {
            s.push_str(&format!(
                "  ],\n  \"survivable_fraction\": {:.6},\n  \"degradations\": [\n",
                self.survivable_fraction().unwrap_or(0.0)
            ));
            for (i, d) in self.degradations.iter().enumerate() {
                s.push_str(&format!(
                    "    {{\"index\": {}, \"periods\": {}, \"skipped_samples\": {}, \
                     \"skipped_actuations\": {}, \"overruns\": {}, \
                     \"ls_inflation_ns\": {}, \"la_inflation_ns\": {}, \
                     \"cost_ratio\": {:.9}, \"verdict\": \"{}\", \
                     \"injected\": \"{}\"}}{}\n",
                    d.index,
                    d.periods,
                    d.skipped_samples,
                    d.skipped_actuations,
                    d.overruns,
                    d.ls_inflation_ns,
                    d.la_inflation_ns,
                    d.cost_ratio,
                    d.verdict.as_str(),
                    d.injected.render(),
                    if i + 1 == self.degradations.len() {
                        ""
                    } else {
                        ","
                    }
                ));
            }
            s.push_str("  ]");
        }
        if let Some(v) = &self.validation {
            s.push_str(&format!(
                ",\n  \"validation\": {{\"validated\": {}, \"exact\": {}, \
                 \"max_divergence_ns\": {}}}",
                v.validated, v.exact, v.max_divergence_ns
            ));
        }
        if let Some(v) = &self.verification {
            s.push_str(&format!(
                ",\n  \"verification\": {{\"verified\": {}, \"errors\": {}, \
                 \"warnings\": {}, \"worst_margin_ns\": {}}}",
                v.verified, v.errors, v.warnings, v.worst_margin_ns
            ));
        }
        if let Some(p) = &self.prune {
            s.push_str(&format!(
                ",\n  \"prune\": {{\"evaluated\": {}, \"pruned_safe\": {}, \
                 \"pruned_unsafe\": {}, \"simulated\": {}}}",
                p.evaluated, p.pruned_safe, p.pruned_unsafe, p.simulated
            ));
        }
        s.push_str("\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosim::{self, DisturbanceKind, LoopSpec};
    use crate::lifecycle::{self, LifecycleInputs};
    use crate::translate::{uniform_timing, ControlLawSpec};
    use ecl_aaa::{AdequationOptions, ArchitectureGraph, TimeNs};
    use ecl_control::{c2d_zoh, dlqr, plants};
    use ecl_linalg::Mat;

    fn quick_report() -> (LifecycleReport, AlgorithmGraph, ArchitectureGraph) {
        let plant = plants::dc_motor();
        let law = ControlLawSpec::monolithic("lqr", 2, 1);
        let (alg, io) = law.to_algorithm().unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("ecu0", "arm");
        let p1 = arch.add_processor("ecu1", "arm");
        arch.add_bus(
            "can",
            &[p0, p1],
            TimeNs::from_millis(2),
            TimeNs::from_micros(10),
        )
        .unwrap();
        let mut db = uniform_timing(&alg, &io, TimeNs::from_micros(100), TimeNs::from_millis(5));
        for &s in io.sensors.iter().chain(&io.actuators) {
            db.forbid(s, p1);
        }
        db.forbid(io.stages[0], p0);
        let inputs = LifecycleInputs {
            plant: plant.sys,
            n_controls: 1,
            x0: vec![1.0, 0.0],
            ts: plant.ts,
            horizon: 0.6,
            lqr_q: Mat::identity(2),
            lqr_r: Mat::diag(&[0.1]),
            q_weight: 1.0,
            r_weight: 0.1,
            law,
            arch: arch.clone(),
            db,
            adequation: AdequationOptions::default(),
            disturbance: DisturbanceKind::None,
        };
        (lifecycle::run(&inputs).unwrap(), alg, arch)
    }

    #[test]
    fn markdown_contains_all_sections() {
        let (rep, alg, arch) = quick_report();
        let md = to_markdown(&rep, &alg, &arch);
        for heading in [
            "# Design-lifecycle report",
            "## Control performance",
            "## Latencies",
            "## Observability",
            "## Static schedule",
            "## Generated executives",
        ] {
            assert!(md.contains(heading), "missing {heading}");
        }
        assert!(md.contains("deadlock-free: true"));
        // Observability section: latency percentile rows for every I/O,
        // busiest blocks, engine counters, and the schedule Gantt.
        for needle in [
            "| Ls[0] |",
            "| Ls[1] |",
            "| La[0] |",
            "Busiest blocks",
            "Engine counters:",
            "gantt over",
        ] {
            assert!(md.contains(needle), "missing {needle}");
        }
        // The delay-graph synchronization blocks dominate event traffic.
        assert!(md.contains("| sync_"), "busiest-block table empty");
    }

    fn sample_sweep() -> SweepSummary {
        let mk = |index: usize, cost_ratio: f64| ScenarioOutcome {
            index,
            seed: 0x1000 + index as u64,
            label: format!("jitter {index}"),
            cost: cost_ratio * 2.0,
            cost_ratio,
            makespan_ns: 5_000_000 + index as i64,
            worst_actuation_ns: 7_000_000,
            overruns: index % 2,
        };
        SweepSummary {
            scenarios: vec![mk(0, 1.01), mk(1, 1.40), mk(2, 1.05), mk(3, 1.02)],
            cost_bound_ratio: 1.10,
            cache_hits: 3,
            cache_misses: 1,
            degradations: vec![],
            validation: None,
            verification: None,
            prune: None,
        }
    }

    #[test]
    fn sweep_summary_statistics() {
        let sweep = sample_sweep();
        assert!((sweep.robustness_margin() - 0.75).abs() < 1e-12);
        assert_eq!(sweep.worst().unwrap().index, 1);
        assert_eq!(sweep.cost_ratio_quantile(0.5), Some(1.02));
        assert_eq!(sweep.cost_ratio_quantile(1.0), Some(1.40));
        let empty = SweepSummary {
            scenarios: vec![],
            cost_bound_ratio: 1.0,
            cache_hits: 0,
            cache_misses: 0,
            degradations: vec![],
            validation: None,
            verification: None,
            prune: None,
        };
        assert_eq!(empty.robustness_margin(), 0.0);
        assert!(empty.worst().is_none());
        assert!(empty.cost_ratio_quantile(0.5).is_none());
        assert!(empty.survivable_fraction().is_none());
    }

    fn sweep_with_ratios(ratios: &[f64]) -> SweepSummary {
        SweepSummary {
            scenarios: ratios
                .iter()
                .enumerate()
                .map(|(index, &cost_ratio)| ScenarioOutcome {
                    index,
                    seed: index as u64,
                    label: String::new(),
                    cost: cost_ratio,
                    cost_ratio,
                    makespan_ns: 0,
                    worst_actuation_ns: 0,
                    overruns: 0,
                })
                .collect(),
            cost_bound_ratio: 1.10,
            cache_hits: 0,
            cache_misses: 0,
            degradations: vec![],
            validation: None,
            verification: None,
            prune: None,
        }
    }

    #[test]
    fn quantile_boundaries_return_min_max_and_only_element() {
        let sweep = sweep_with_ratios(&[1.40, 1.01, 1.05, 1.02]);
        // q = 0 clamps to rank 1 (minimum); q = 1 is rank n (maximum).
        assert_eq!(sweep.cost_ratio_quantile(0.0), Some(1.01));
        assert_eq!(sweep.cost_ratio_quantile(1.0), Some(1.40));
        let single = sweep_with_ratios(&[1.23]);
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            assert_eq!(single.cost_ratio_quantile(q), Some(1.23), "q={q}");
        }
    }

    #[test]
    fn quantile_nearest_rank_survives_float_dust() {
        // 0.95 · 20 = 19.000000000000004 in f64; a raw ceil picks rank 20
        // (the maximum) instead of the correct rank 19.
        let ratios: Vec<f64> = (1..=20).map(|i| 1.0 + i as f64 / 100.0).collect();
        let sweep = sweep_with_ratios(&ratios);
        assert_eq!(sweep.cost_ratio_quantile(0.95), Some(1.19));
        // Exact products keep the usual nearest-rank answers.
        assert_eq!(sweep.cost_ratio_quantile(0.50), Some(1.10));
        assert_eq!(sweep.cost_ratio_quantile(0.05), Some(1.01));
        // A genuinely fractional product still rounds up: 0.51·20 = 10.2.
        assert_eq!(sweep.cost_ratio_quantile(0.51), Some(1.11));
    }

    #[test]
    fn degradation_section_renders_only_when_present() {
        let plain = sample_sweep();
        assert!(!plain.render().contains("Fault degradation"));
        assert!(!plain.to_json().contains("degradations"));
        let mut faulty = sample_sweep();
        let mut injected = Counts::new();
        injected.add("frames_lost", 3);
        injected.add("retransmissions", 2);
        faulty.degradations.push(DegradationSummary {
            index: 1,
            periods: 120,
            injected,
            skipped_samples: 2,
            skipped_actuations: 1,
            overruns: 4,
            ls_inflation_ns: 150_000,
            la_inflation_ns: 480_000,
            cost_ratio: 1.21,
            verdict: StabilityVerdict::Degraded,
        });
        assert_eq!(faulty.survivable_fraction(), Some(1.0));
        let md = faulty.render();
        assert!(md.contains("### Fault degradation"));
        assert!(md.contains("1 faulty scenarios, survivable fraction 1.0000"));
        assert!(md.contains("frames_lost=3 retransmissions=2"));
        assert!(md.contains("| degraded |"));
        // The extra section is purely additive: the fault-free rendering
        // is a byte-exact prefix, preserving old artifacts.
        assert!(md.starts_with(&plain.render()));
        let json = faulty.to_json();
        assert!(json.contains("\"survivable_fraction\": 1.000000"));
        assert!(json.contains("\"verdict\": \"degraded\""));
        assert!(json.ends_with("  ]\n}\n"));
    }

    #[test]
    fn validation_section_renders_only_when_present() {
        let plain = sample_sweep();
        assert!(!plain.render().contains("Executive cross-validation"));
        assert!(!plain.to_json().contains("\"validation\""));
        let mut validated = sample_sweep();
        validated.validation = Some(ValidationSummary {
            validated: 8,
            exact: 8,
            max_divergence_ns: 0,
        });
        let md = validated.render();
        assert!(md.contains("### Executive cross-validation"));
        assert!(md.contains("8 runs validated against the graph of delays: 8 exact"));
        // Purely additive: the unvalidated rendering is a byte-exact
        // prefix, preserving old artifacts.
        assert!(md.starts_with(&plain.render()));
        let json = validated.to_json();
        assert!(json.contains(
            "\"validation\": {\"validated\": 8, \"exact\": 8, \"max_divergence_ns\": 0}"
        ));
        assert!(json.ends_with("}\n}\n"));
        assert!(json.starts_with(json_common_prefix(&plain.to_json())));
        // ...and it composes with the degradation section: validation
        // follows the degradations array.
        let mut both = validated.clone();
        let mut injected = Counts::new();
        injected.add("frames_lost", 1);
        both.degradations.push(DegradationSummary {
            index: 0,
            periods: 10,
            injected,
            skipped_samples: 0,
            skipped_actuations: 0,
            overruns: 0,
            ls_inflation_ns: 0,
            la_inflation_ns: 0,
            cost_ratio: 1.0,
            verdict: StabilityVerdict::Stable,
        });
        let md = both.render();
        assert!(
            md.find("Fault degradation").unwrap() < md.find("Executive cross-validation").unwrap()
        );
        assert!(both.to_json().ends_with("}\n}\n"));
    }

    /// The fault-free JSON minus its closing `\n}\n`, i.e. the prefix an
    /// additive section must preserve.
    fn json_common_prefix(json: &str) -> &str {
        json.strip_suffix("\n}\n").unwrap()
    }

    #[test]
    fn verification_section_renders_only_when_present() {
        let plain = sample_sweep();
        assert!(!plain.render().contains("Static verification"));
        assert!(!plain.to_json().contains("\"verification\""));
        let mut verified = sample_sweep();
        verified.verification = Some(VerificationSummary {
            verified: 8,
            errors: 0,
            warnings: 3,
            worst_margin_ns: 120_500,
        });
        let md = verified.render();
        assert!(md.contains("### Static verification"));
        assert!(md.contains("8 schedules verified: 0 error(s), 3 warning(s)"));
        assert!(md.contains("worst bound margin 120500 ns"));
        // Purely additive: the unverified rendering is a byte-exact
        // prefix, preserving old artifacts.
        assert!(md.starts_with(&plain.render()));
        let json = verified.to_json();
        assert!(json.contains(
            "\"verification\": {\"verified\": 8, \"errors\": 0, \"warnings\": 3, \
             \"worst_margin_ns\": 120500}"
        ));
        assert!(json.starts_with(json_common_prefix(&plain.to_json())));
        assert!(json.ends_with("}\n}\n"));
        // ...and it composes: verification renders after validation.
        let mut both = verified.clone();
        both.validation = Some(ValidationSummary {
            validated: 8,
            exact: 8,
            max_divergence_ns: 0,
        });
        let md = both.render();
        assert!(
            md.find("Executive cross-validation").unwrap()
                < md.find("Static verification").unwrap()
        );
        let json = both.to_json();
        assert!(json.find("\"validation\"").unwrap() < json.find("\"verification\"").unwrap());
        assert!(json.ends_with("}\n}\n"));
    }

    #[test]
    fn prune_section_renders_only_when_present() {
        let plain = sample_sweep();
        assert!(!plain.render().contains("Static pruning"));
        assert!(!plain.to_json().contains("\"prune\""));
        let mut pruned = sample_sweep();
        pruned.prune = Some(PruneSummary {
            evaluated: 8,
            pruned_safe: 3,
            pruned_unsafe: 1,
            simulated: 4,
        });
        let md = pruned.render();
        assert!(md.contains("### Static pruning"));
        assert!(
            md.contains("8 envelopes evaluated: 3 pruned safe, 1 pruned unsafe, 4 co-simulated")
        );
        // Purely additive: the unpruned rendering is a byte-exact prefix.
        assert!(md.starts_with(&plain.render()));
        let json = pruned.to_json();
        assert!(json.contains(
            "\"prune\": {\"evaluated\": 8, \"pruned_safe\": 3, \
             \"pruned_unsafe\": 1, \"simulated\": 4}"
        ));
        assert!(json.starts_with(json_common_prefix(&plain.to_json())));
        assert!(json.ends_with("}\n}\n"));
        // ...and it composes: pruning renders after verification.
        let mut both = pruned.clone();
        both.verification = Some(VerificationSummary {
            verified: 4,
            errors: 0,
            warnings: 0,
            worst_margin_ns: 10,
        });
        let md = both.render();
        assert!(md.find("Static verification").unwrap() < md.find("Static pruning").unwrap());
        let json = both.to_json();
        assert!(json.find("\"verification\"").unwrap() < json.find("\"prune\"").unwrap());
    }

    #[test]
    fn sweep_rendering_is_deterministic_and_complete() {
        let sweep = sample_sweep();
        let md = sweep.render();
        assert_eq!(md, sweep.render());
        assert!(md.contains("## Scenario sweep"));
        assert!(md.contains("4 scenarios, robustness margin 0.7500"));
        assert!(md.contains("Worst scenario: #1 (jitter 1)"));
        assert!(md.contains("3 hits / 1 misses"));
        assert_eq!(md.matches("| 0x").count(), 4, "one row per scenario");
        let json = sweep.to_json();
        assert_eq!(json, sweep.to_json());
        assert!(json.contains("\"scenario_count\": 4"));
        assert!(json.contains("\"robustness_margin\": 0.750000"));
        assert!(json.ends_with("]\n}\n"));
    }

    #[test]
    fn costs_csv_three_rows() {
        let (rep, _, _) = quick_report();
        let csv = costs_csv(&rep);
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.starts_with("run,cost,relative_to_ideal"));
        // ideal row has relative exactly 1.
        let ideal_row = csv.lines().nth(1).unwrap();
        assert!(ideal_row.ends_with("1.000000"));
    }

    #[test]
    fn traces_csv_grid_and_headers() {
        let plant = plants::dc_motor();
        let dss = c2d_zoh(&plant.sys, plant.ts).unwrap();
        let lqr = dlqr(&dss, &Mat::identity(2), &Mat::diag(&[0.1])).unwrap();
        let spec = LoopSpec {
            plant: plant.sys,
            n_controls: 1,
            x0: vec![1.0, 0.0],
            feedback: lqr.k,
            input_memory: None,
            ts: plant.ts,
            horizon: 0.2,
            q_weight: 1.0,
            r_weight: 0.1,
            disturbance: DisturbanceKind::None,
        };
        let run = cosim::run_ideal(&spec).unwrap();
        let csv = traces_csv(&run, &["x0", "u0"], 0.05).unwrap();
        assert!(csv.starts_with("t,x0,u0\n"));
        // 0.0, 0.05, 0.1, 0.15, 0.2 -> 5 data rows.
        assert_eq!(csv.lines().count(), 6);
        assert!(traces_csv(&run, &["ghost"], 0.05).is_err());
        assert!(traces_csv(&run, &["x0"], 0.0).is_err());
    }
}
