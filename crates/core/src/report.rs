//! Rendering lifecycle results as Markdown and CSV artifacts.
//!
//! A methodology that shortens the design cycle lives or dies by what it
//! hands back to the designer; this module turns a
//! [`LifecycleReport`] into a
//! human-readable Markdown summary and machine-readable CSV traces.

use ecl_aaa::{AlgorithmGraph, ArchitectureGraph};

use crate::cosim::LoopResult;
use crate::lifecycle::LifecycleReport;
use crate::CoreError;

/// Renders the lifecycle report as a self-contained Markdown document.
pub fn to_markdown(
    report: &LifecycleReport,
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
) -> String {
    let mut s = String::new();
    s.push_str("# Design-lifecycle report\n\n");
    s.push_str("## Control performance\n\n");
    s.push_str("| run | quadratic cost | vs ideal |\n|---|---|---|\n");
    let base = report.ideal.cost;
    for (name, run) in [
        ("ideal (stroboscopic)", &report.ideal),
        ("implemented (co-simulated)", &report.implemented),
        ("calibrated (delay-aware redesign)", &report.calibrated),
    ] {
        s.push_str(&format!(
            "| {name} | {:.6} | {:+.2}% |\n",
            run.cost,
            (run.cost / base - 1.0) * 100.0
        ));
    }
    s.push_str(&format!(
        "\nDegradation {:+.2}%, calibration recovers {:.0}% of it.\n",
        report.degradation() * 100.0,
        report.calibration_recovery() * 100.0
    ));

    s.push_str("\n## Latencies (paper eq. 1–2)\n\n```text\n");
    s.push_str(&report.latency.render());
    s.push_str("```\n");

    s.push_str("\n## Observability\n\n");
    s.push_str("Latency percentiles of the implemented run (streaming histograms, ns):\n\n");
    s.push_str("| series | count | min | p50 | p95 | p99 | max | mean |\n");
    s.push_str("|---|---|---|---|---|---|---|---|\n");
    let mut hist_row = |label: String, h: &ecl_telemetry::Histogram| {
        let sm = h.summary();
        s.push_str(&format!(
            "| {label} | {} | {} | {} | {} | {} | {} | {:.1} |\n",
            sm.count, sm.min_ns, sm.p50_ns, sm.p95_ns, sm.p99_ns, sm.max_ns, sm.mean_ns
        ));
    };
    for (j, h) in report.implemented.sampling_hist.iter().enumerate() {
        hist_row(format!("Ls[{j}]"), h);
    }
    for (j, h) in report.implemented.actuation_hist.iter().enumerate() {
        hist_row(format!("La[{j}]"), h);
    }

    s.push_str("\nBusiest blocks of the implemented co-simulation (event deliveries):\n\n");
    s.push_str("| block | activations |\n|---|---|\n");
    for (name, count) in report.implemented.activity.iter().take(5) {
        s.push_str(&format!("| {name} | {count} |\n"));
    }
    let es = &report.implemented.stats;
    s.push_str(&format!(
        "\nEngine counters: {} event instants, {} deliveries, calendar peak {}, \
         {} ODE steps ({} rejected), {} RHS evaluations.\n",
        es.event_instants,
        es.events_delivered,
        es.calendar_peak,
        es.ode.steps_accepted,
        es.ode.steps_rejected,
        es.ode.rhs_evals
    ));

    s.push_str("\n## Static schedule\n\n```text\n");
    s.push_str(&report.schedule.render(alg, arch));
    s.push_str("```\n\n```text\n");
    s.push_str(&ecl_aaa::timeline::gantt_text(&report.schedule, alg, arch));
    s.push_str("```\n");

    s.push_str(&format!(
        "\n## Generated executives (deadlock-free: {})\n\n```text\n{}\n```\n",
        report.deadlock_free, report.executives
    ));
    s
}

/// The cost table of the report as CSV (`run,cost,relative`).
pub fn costs_csv(report: &LifecycleReport) -> String {
    let base = report.ideal.cost;
    let mut s = String::from("run,cost,relative_to_ideal\n");
    for (name, run) in [
        ("ideal", &report.ideal),
        ("implemented", &report.implemented),
        ("calibrated", &report.calibrated),
    ] {
        s.push_str(&format!("{name},{:.9},{:.6}\n", run.cost, run.cost / base));
    }
    s
}

/// Exports chosen probe signals of a run as a merged CSV, linearly
/// resampled on a uniform grid of step `dt` seconds.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] if `dt` is non-positive, a name is
/// unknown, or the run recorded nothing.
pub fn traces_csv(run: &LoopResult, names: &[&str], dt: f64) -> Result<String, CoreError> {
    if !(dt > 0.0) {
        return Err(CoreError::InvalidInput {
            reason: format!("resampling step must be positive, got {dt}"),
        });
    }
    let signals: Result<Vec<_>, CoreError> = names
        .iter()
        .map(|&n| {
            run.result.signal(n).ok_or_else(|| CoreError::InvalidInput {
                reason: format!("unknown probe '{n}'"),
            })
        })
        .collect();
    let signals = signals?;
    let t_end = signals
        .iter()
        .filter_map(|s| s.last().map(|(t, _)| t))
        .fold(0.0f64, f64::max);
    if t_end <= 0.0 {
        return Err(CoreError::InvalidInput {
            reason: "run recorded no samples".into(),
        });
    }
    let mut s = String::from("t");
    for n in names {
        s.push(',');
        s.push_str(n);
    }
    s.push('\n');
    let steps = (t_end / dt).floor() as usize;
    for k in 0..=steps {
        let t = k as f64 * dt;
        s.push_str(&format!("{t:.9}"));
        for sig in &signals {
            s.push_str(&format!(",{:.9}", sig.sample(t).unwrap_or(0.0)));
        }
        s.push('\n');
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosim::{self, DisturbanceKind, LoopSpec};
    use crate::lifecycle::{self, LifecycleInputs};
    use crate::translate::{uniform_timing, ControlLawSpec};
    use ecl_aaa::{AdequationOptions, ArchitectureGraph, TimeNs};
    use ecl_control::{c2d_zoh, dlqr, plants};
    use ecl_linalg::Mat;

    fn quick_report() -> (LifecycleReport, AlgorithmGraph, ArchitectureGraph) {
        let plant = plants::dc_motor();
        let law = ControlLawSpec::monolithic("lqr", 2, 1);
        let (alg, io) = law.to_algorithm().unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("ecu0", "arm");
        let p1 = arch.add_processor("ecu1", "arm");
        arch.add_bus(
            "can",
            &[p0, p1],
            TimeNs::from_millis(2),
            TimeNs::from_micros(10),
        )
        .unwrap();
        let mut db = uniform_timing(&alg, &io, TimeNs::from_micros(100), TimeNs::from_millis(5));
        for &s in io.sensors.iter().chain(&io.actuators) {
            db.forbid(s, p1);
        }
        db.forbid(io.stages[0], p0);
        let inputs = LifecycleInputs {
            plant: plant.sys,
            n_controls: 1,
            x0: vec![1.0, 0.0],
            ts: plant.ts,
            horizon: 0.6,
            lqr_q: Mat::identity(2),
            lqr_r: Mat::diag(&[0.1]),
            q_weight: 1.0,
            r_weight: 0.1,
            law,
            arch: arch.clone(),
            db,
            adequation: AdequationOptions::default(),
            disturbance: DisturbanceKind::None,
        };
        (lifecycle::run(&inputs).unwrap(), alg, arch)
    }

    #[test]
    fn markdown_contains_all_sections() {
        let (rep, alg, arch) = quick_report();
        let md = to_markdown(&rep, &alg, &arch);
        for heading in [
            "# Design-lifecycle report",
            "## Control performance",
            "## Latencies",
            "## Observability",
            "## Static schedule",
            "## Generated executives",
        ] {
            assert!(md.contains(heading), "missing {heading}");
        }
        assert!(md.contains("deadlock-free: true"));
        // Observability section: latency percentile rows for every I/O,
        // busiest blocks, engine counters, and the schedule Gantt.
        for needle in [
            "| Ls[0] |",
            "| Ls[1] |",
            "| La[0] |",
            "Busiest blocks",
            "Engine counters:",
            "gantt over",
        ] {
            assert!(md.contains(needle), "missing {needle}");
        }
        // The delay-graph synchronization blocks dominate event traffic.
        assert!(md.contains("| sync_"), "busiest-block table empty");
    }

    #[test]
    fn costs_csv_three_rows() {
        let (rep, _, _) = quick_report();
        let csv = costs_csv(&rep);
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.starts_with("run,cost,relative_to_ideal"));
        // ideal row has relative exactly 1.
        let ideal_row = csv.lines().nth(1).unwrap();
        assert!(ideal_row.ends_with("1.000000"));
    }

    #[test]
    fn traces_csv_grid_and_headers() {
        let plant = plants::dc_motor();
        let dss = c2d_zoh(&plant.sys, plant.ts).unwrap();
        let lqr = dlqr(&dss, &Mat::identity(2), &Mat::diag(&[0.1])).unwrap();
        let spec = LoopSpec {
            plant: plant.sys,
            n_controls: 1,
            x0: vec![1.0, 0.0],
            feedback: lqr.k,
            input_memory: None,
            ts: plant.ts,
            horizon: 0.2,
            q_weight: 1.0,
            r_weight: 0.1,
            disturbance: DisturbanceKind::None,
        };
        let run = cosim::run_ideal(&spec).unwrap();
        let csv = traces_csv(&run, &["x0", "u0"], 0.05).unwrap();
        assert!(csv.starts_with("t,x0,u0\n"));
        // 0.0, 0.05, 0.1, 0.15, 0.2 -> 5 data rows.
        assert_eq!(csv.lines().count(), 6);
        assert!(traces_csv(&run, &["ghost"], 0.05).is_err());
        assert!(traces_csv(&run, &["x0"], 0.0).is_err());
    }
}
