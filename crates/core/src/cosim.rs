//! Closed-loop co-simulation drivers.
//!
//! [`run_ideal`] simulates the loop under the *stroboscopic model* (paper
//! Fig. 2): one activation clock samples every input, runs the controller,
//! and applies every output at the same instant — the assumption control
//! engineers design under. [`run_scheduled`] simulates the same loop with
//! the **graph of delays** (paper Fig. 3) synthesized from a SynDEx
//! schedule: sampling, computation and actuation are re-activated at the
//! instants of the distributed implementation, exposing its impact on
//! control performance *before any code runs on a target*.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use ecl_aaa::{timeline, AlgorithmGraph, ArchitectureGraph, Fnv1a, Schedule, TimeNs};
use ecl_blocks::{add_clock, Constant, DiscreteStateSpace, SampleHold, SampledNoise, StateSpaceCt};
use ecl_control::metrics;
use ecl_control::StateSpace;
use ecl_linalg::Mat;
use ecl_sim::{BlockId, EngineStats, Model, SimOptions, SimResult, Simulator};
use ecl_telemetry::bytes::{ByteReader, ByteWriter, CodecError};
use ecl_telemetry::{Collector, Event, Histogram, Sink};

use crate::delays::{self, DelayGraphConfig};
use crate::faults::FaultPlan;
use crate::latency::{latencies, latencies_strict, LatencyReport};
use crate::translate::IoMap;
use crate::CoreError;

/// Disturbance applied to the plant's non-control inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DisturbanceKind {
    /// Disturbance inputs held at zero.
    None,
    /// Zero-order-hold Gaussian noise redrawn each period (road profile,
    /// load torque, ...), deterministically seeded.
    Noise {
        /// Standard deviation.
        std_dev: f64,
        /// PRNG seed.
        seed: u64,
    },
}

/// Description of a sampled-data regulation loop.
///
/// The plant's first `n_controls` inputs are driven by the controller; any
/// remaining inputs are disturbances. The controller samples the full
/// plant state and applies the static law `u = −K·x` (or the
/// delay-compensated law `u_k = −Kx·x_k − Ku·u_{k-1}` when `input_memory`
/// is set — the output of the calibration phase).
#[derive(Debug, Clone)]
pub struct LoopSpec {
    /// Continuous plant.
    pub plant: StateSpace,
    /// Number of control inputs (prefix of the plant inputs).
    pub n_controls: usize,
    /// Initial plant state (the regulation experiment's perturbation).
    pub x0: Vec<f64>,
    /// State-feedback gain `K` (`n_controls × n_states`).
    pub feedback: Mat,
    /// Optional previous-input gain `Ku` (`n_controls × n_controls`) for
    /// the delay-compensated law.
    pub input_memory: Option<Mat>,
    /// Sampling period (seconds).
    pub ts: f64,
    /// Simulation horizon (seconds).
    pub horizon: f64,
    /// State weight of the quadratic evaluation cost.
    pub q_weight: f64,
    /// Control weight of the quadratic evaluation cost.
    pub r_weight: f64,
    /// Disturbance on the non-control plant inputs.
    pub disturbance: DisturbanceKind,
}

impl LoopSpec {
    fn validate(&self) -> Result<(), CoreError> {
        let n = self.plant.state_dim();
        let bad = |reason: String| Err(CoreError::InvalidInput { reason });
        if self.n_controls == 0 || self.n_controls > self.plant.input_dim() {
            return bad(format!(
                "n_controls = {} out of range for a plant with {} inputs",
                self.n_controls,
                self.plant.input_dim()
            ));
        }
        if self.x0.len() != n {
            return bad(format!(
                "x0 has {} entries, plant has {n} states",
                self.x0.len()
            ));
        }
        if self.feedback.shape() != (self.n_controls, n) {
            return bad(format!(
                "feedback gain must be {}x{n}, got {}x{}",
                self.n_controls,
                self.feedback.rows(),
                self.feedback.cols()
            ));
        }
        if let Some(ku) = &self.input_memory {
            if ku.shape() != (self.n_controls, self.n_controls) {
                return bad(format!(
                    "input-memory gain must be {0}x{0}, got {1}x{2}",
                    self.n_controls,
                    ku.rows(),
                    ku.cols()
                ));
            }
        }
        if !(self.ts > 0.0) || !(self.horizon > 0.0) {
            return bad("ts and horizon must be positive".into());
        }
        Ok(())
    }

    /// Builds the controller block implementing the law.
    fn controller(&self) -> Result<DiscreteStateSpace, CoreError> {
        let n = self.plant.state_dim();
        let m = self.n_controls;
        let neg_k: Vec<f64> = self.feedback.as_slice().iter().map(|v| -v).collect();
        let blk = match &self.input_memory {
            None => DiscreteStateSpace::static_gain(m, n, neg_k)?,
            Some(ku) => {
                // State x_c = u_{k-1}: u_k = −Ku·x_c − Kx·x_k, latched
                // pre-update; x_c⁺ = u_k.
                let neg_ku: Vec<f64> = ku.as_slice().iter().map(|v| -v).collect();
                DiscreteStateSpace::new(
                    m,
                    n,
                    m,
                    neg_ku.clone(),
                    neg_k.clone(),
                    neg_ku,
                    neg_k,
                    vec![0.0; m],
                )?
            }
        };
        Ok(blk)
    }
}

/// Result of a closed-loop run.
#[derive(Debug, Clone)]
pub struct LoopResult {
    /// The raw simulation output (probes `x0..`, `u0..`).
    pub result: SimResult,
    /// Quadratic cost `q·Σᵢ∫xᵢ² + r·Σⱼ∫uⱼ²`.
    pub cost: f64,
    /// Sampling instants `I_j(k)` per controller input.
    pub sample_instants: Vec<Vec<TimeNs>>,
    /// Actuation instants `O_j(k)` per controller output.
    pub actuation_instants: Vec<Vec<TimeNs>>,
    /// Sampling period used (seconds).
    pub ts: f64,
    /// Hot-loop counters of the underlying simulation (block activations,
    /// ODE steps, event-calendar peak depth).
    pub stats: EngineStats,
    /// Streaming histogram of `Ls_j(k)` per controller input, bucketed on
    /// `[0, Ts)` — fed one observation per period during the run.
    pub sampling_hist: Vec<Histogram>,
    /// Streaming histogram of `La_j(k)` per controller output.
    pub actuation_hist: Vec<Histogram>,
    /// Event deliveries per block as `(block name, count)`, busiest
    /// first (count descending, then name), zero-activity blocks omitted.
    pub activity: Vec<(String, u64)>,
}

impl LoopResult {
    /// The latency report (paper eq. 1–2) of this run.
    ///
    /// Sampling series are checked strictly (one sample per period, so
    /// `Ls_j(k) < Ts` must hold); actuation series accept cross-period
    /// completions (`La_j(k) >= Ts` under heavy communication load) and
    /// report them via [`LatencyReport::total_overruns`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if a *sampling* activation
    /// misses its period (the schedule does not sustain `Ts` on the
    /// input side), or any series is unsorted or causally impossible
    /// (negative latency).
    pub fn latency_report(&self) -> Result<LatencyReport, CoreError> {
        let period = TimeNs::from_secs_f64(self.ts);
        let mut rep = LatencyReport::default();
        for s in &self.sample_instants {
            rep.sampling.push(latencies_strict(s, period)?);
        }
        for a in &self.actuation_instants {
            rep.actuation.push(latencies(a, period)?);
        }
        Ok(rep)
    }

    /// Like [`latency_report`](Self::latency_report), but lenient on the
    /// sampling side too: a degraded (fault-injected) run legitimately
    /// samples at or past the period boundary when a rendezvous is forced
    /// by its timeout arm, so the strict `Ls_j(k) < Ts` invariant no
    /// longer holds. Cross-period activations are counted by
    /// [`LatencyReport::total_overruns`] instead of erroring.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] only for unsorted or causally
    /// impossible series (negative latency), or a period-origin overflow.
    pub fn latency_report_lenient(&self) -> Result<LatencyReport, CoreError> {
        let period = TimeNs::from_secs_f64(self.ts);
        let mut rep = LatencyReport::default();
        for s in &self.sample_instants {
            rep.sampling.push(latencies(s, period)?);
        }
        for a in &self.actuation_instants {
            rep.actuation.push(latencies(a, period)?);
        }
        Ok(rep)
    }

    /// The run's hot-loop counters as telemetry [`Event::Counter`]s at
    /// simulated instant `at_ns` (typically the horizon): one `stats:*`
    /// track per [`EngineStats`] counter plus one `activity:*` track per
    /// active block. Every value is sim-derived and deterministic, so the
    /// events are safe to mix into byte-compared trace artifacts.
    pub fn stats_events(&self, at_ns: i64) -> Vec<Event> {
        let counter = |track: &str, value: u64| Event::Counter {
            track: format!("stats:{track}"),
            name: track.to_string(),
            at_ns,
            value_ns: value as i64,
        };
        let mut events = vec![
            counter("events_delivered", self.stats.events_delivered),
            counter("event_instants", self.stats.event_instants),
            counter("calendar_peak", self.stats.calendar_peak as u64),
            counter("max_cascade", self.stats.max_cascade as u64),
            counter("integration_spans", self.stats.integration_spans),
            counter("ode_steps_accepted", self.stats.ode.steps_accepted),
            counter("ode_steps_rejected", self.stats.ode.steps_rejected),
            counter("ode_rhs_evals", self.stats.ode.rhs_evals),
        ];
        for (block, count) in &self.activity {
            events.push(Event::Counter {
                track: format!("activity:{block}"),
                name: block.clone(),
                at_ns,
                value_ns: *count as i64,
            });
        }
        events
    }

    /// Serializes the run's *metrics-grade* state for the on-disk memo
    /// cache (`results/cache/{ideal,scheduled}/`): cost, period, the
    /// sampling/actuation instants, hot-loop counters, latency histograms
    /// and block activity — everything the untraced fleet metrics path
    /// (latency reports, degradation twins, verification margins) reads.
    /// The raw simulation trace (`result`) and the per-`BlockId`
    /// activation vector are deliberately **not** persisted: only traced
    /// scenarios read them, and traced scenarios bypass the memo caches
    /// entirely.
    pub fn to_metric_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(256);
        w.put_raw(LOOP_RESULT_MAGIC);
        w.put_u32(LOOP_RESULT_VERSION);
        w.put_f64(self.cost);
        w.put_f64(self.ts);
        let put_instants = |w: &mut ByteWriter, series: &[Vec<TimeNs>]| {
            w.put_seq_len(series.len());
            for s in series {
                w.put_seq_len(s.len());
                for &t in s {
                    w.put_i64(t.as_nanos());
                }
            }
        };
        put_instants(&mut w, &self.sample_instants);
        put_instants(&mut w, &self.actuation_instants);
        w.put_u64(self.stats.events_delivered);
        w.put_u64(self.stats.event_instants);
        w.put_usize(self.stats.calendar_peak);
        w.put_usize(self.stats.max_cascade);
        w.put_u64(self.stats.integration_spans);
        w.put_u64(self.stats.hot_allocs);
        w.put_u64(self.stats.ode.steps_accepted);
        w.put_u64(self.stats.ode.steps_rejected);
        w.put_u64(self.stats.ode.rhs_evals);
        let put_hists = |w: &mut ByteWriter, hists: &[Histogram]| {
            w.put_seq_len(hists.len());
            for h in hists {
                h.encode_into(w);
            }
        };
        put_hists(&mut w, &self.sampling_hist);
        put_hists(&mut w, &self.actuation_hist);
        w.put_seq_len(self.activity.len());
        for (name, count) in &self.activity {
            w.put_str(name);
            w.put_u64(*count);
        }
        w.into_bytes()
    }

    /// Reconstructs a run serialized by [`to_metric_bytes`]. The raw
    /// trace rehydrates as the empty [`SimResult`] and the per-`BlockId`
    /// activation vector as empty — callers that need either (traced
    /// scenarios) must re-simulate instead of decoding. Corruption
    /// decodes to a typed [`CodecError`], never a panic.
    ///
    /// [`to_metric_bytes`]: LoopResult::to_metric_bytes
    ///
    /// # Errors
    ///
    /// Returns the structural [`CodecError`] describing the corruption.
    pub fn from_metric_bytes(bytes: &[u8]) -> Result<LoopResult, CoreError> {
        LoopResult::decode_metric(bytes).map_err(|e| CoreError::InvalidInput {
            reason: format!("loop-result cache payload: {e}"),
        })
    }

    // `EngineStats` keeps its per-block activation vector private, so the
    // counters are necessarily rebuilt field-by-field on a `default()`.
    #[allow(clippy::field_reassign_with_default)]
    fn decode_metric(bytes: &[u8]) -> Result<LoopResult, CodecError> {
        let mut r = ByteReader::new(bytes);
        r.expect_magic(LOOP_RESULT_MAGIC)?;
        let version = r.get_u32()?;
        if version != LOOP_RESULT_VERSION {
            return Err(CodecError::BadMagic {
                expected: format!("loop-result v{LOOP_RESULT_VERSION}"),
                found: format!("loop-result v{version}"),
            });
        }
        let cost = r.get_f64()?;
        let ts = r.get_f64()?;
        let get_instants = |r: &mut ByteReader<'_>| -> Result<Vec<Vec<TimeNs>>, CodecError> {
            let n = r.get_seq_len()?;
            let mut series = Vec::with_capacity(n);
            for _ in 0..n {
                let len = r.get_seq_len()?;
                let mut s = Vec::with_capacity(len);
                for _ in 0..len {
                    s.push(TimeNs::from_nanos(r.get_i64()?));
                }
                series.push(s);
            }
            Ok(series)
        };
        let sample_instants = get_instants(&mut r)?;
        let actuation_instants = get_instants(&mut r)?;
        let mut stats = EngineStats::default();
        stats.events_delivered = r.get_u64()?;
        stats.event_instants = r.get_u64()?;
        stats.calendar_peak = r.get_usize()?;
        stats.max_cascade = r.get_usize()?;
        stats.integration_spans = r.get_u64()?;
        stats.hot_allocs = r.get_u64()?;
        stats.ode.steps_accepted = r.get_u64()?;
        stats.ode.steps_rejected = r.get_u64()?;
        stats.ode.rhs_evals = r.get_u64()?;
        let get_hists = |r: &mut ByteReader<'_>| -> Result<Vec<Histogram>, CodecError> {
            let n = r.get_seq_len()?;
            let mut hists = Vec::with_capacity(n);
            for _ in 0..n {
                hists.push(Histogram::decode_from(r)?);
            }
            Ok(hists)
        };
        let sampling_hist = get_hists(&mut r)?;
        let actuation_hist = get_hists(&mut r)?;
        let n = r.get_seq_len()?;
        let mut activity = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.get_str()?;
            let count = r.get_u64()?;
            activity.push((name, count));
        }
        r.finish()?;
        Ok(LoopResult {
            result: SimResult::default(),
            cost,
            sample_instants,
            actuation_instants,
            ts,
            stats,
            sampling_hist,
            actuation_hist,
            activity,
        })
    }
}

/// Magic tag of the [`LoopResult::to_metric_bytes`] layout.
const LOOP_RESULT_MAGIC: &[u8] = b"ECLR";
/// Version of the [`LoopResult::to_metric_bytes`] layout; bump on change.
const LOOP_RESULT_VERSION: u32 = 1;

/// Wall-clock split of one scheduled run, measured by
/// [`run_scheduled_phased`]: model assembly + graph-of-delays synthesis
/// versus the simulation itself. Profiler sidecar data — never part of a
/// deterministic artifact.
#[derive(Debug, Clone, Copy, Default)]
pub struct CosimPhases {
    /// Wall time of [`wire_scheduled`]: assembly + delay-graph synthesis.
    pub synthesis_wall_ns: u64,
    /// Wall time of the simulation (including latency extraction).
    pub simulation_wall_ns: u64,
}

/// The blocks shared by the ideal and scheduled assemblies.
pub(crate) struct LoopModel {
    model: Model,
    sample_sh: Vec<BlockId>,
    controller: BlockId,
    act_sh: Vec<BlockId>,
    /// Clock driving the disturbance sources (and the stroboscopic loop).
    base_clock: BlockId,
}

/// Builds plant + S/H + controller and the probes; activation wiring is
/// left to the caller.
fn assemble(spec: &LoopSpec) -> Result<LoopModel, CoreError> {
    spec.validate()?;
    let n = spec.plant.state_dim();
    let m_total = spec.plant.input_dim();
    let mc = spec.n_controls;
    let mut model = Model::new();
    let period = TimeNs::from_secs_f64(spec.ts);
    let base_clock = add_clock(&mut model, "base_clock", period, TimeNs::ZERO)?;

    // Plant with full-state output (C = I, D = 0) so the controller can
    // sample the state; evaluation metrics read the same probes.
    let plant = model.add_block(
        "plant",
        StateSpaceCt::new(
            n,
            m_total,
            n,
            spec.plant.a().as_slice().to_vec(),
            spec.plant.b().as_slice().to_vec(),
            Mat::identity(n).into_vec(),
            vec![0.0; n * m_total],
            spec.x0.clone(),
        )?,
    );

    // Input samplers: one S/H per plant state.
    let mut sample_sh = Vec::with_capacity(n);
    for j in 0..n {
        let sh = model.add_block(format!("sample_x{j}"), SampleHold::new(spec.x0[j]));
        model.connect(plant, j, sh, 0)?;
        sample_sh.push(sh);
    }

    // Controller.
    let controller = model.add_block("controller", spec.controller()?);
    for (j, &sh) in sample_sh.iter().enumerate() {
        model.connect(sh, 0, controller, j)?;
    }

    // Output holds: one per control, feeding the plant.
    let mut act_sh = Vec::with_capacity(mc);
    for j in 0..mc {
        let sh = model.add_block(format!("hold_u{j}"), SampleHold::new(0.0));
        model.connect(controller, j, sh, 0)?;
        model.connect(sh, 0, plant, j)?;
        act_sh.push(sh);
    }

    // Disturbance inputs.
    for j in mc..m_total {
        match spec.disturbance {
            DisturbanceKind::None => {
                let z = model.add_block(format!("dist{j}"), Constant::new(0.0));
                model.connect(z, 0, plant, j)?;
            }
            DisturbanceKind::Noise { std_dev, seed } => {
                let nz = model.add_block(
                    format!("dist{j}"),
                    SampledNoise::new(0.0, std_dev, seed.wrapping_add(j as u64)),
                );
                model.connect(nz, 0, plant, j)?;
                model.connect_event(base_clock, 0, nz, 0)?;
            }
        }
    }

    // Probes.
    for j in 0..n {
        model.probe(format!("x{j}"), plant, j)?;
    }
    for (j, &sh) in act_sh.iter().enumerate() {
        model.probe(format!("u{j}"), sh, 0)?;
    }

    Ok(LoopModel {
        model,
        sample_sh,
        controller,
        act_sh,
        base_clock,
    })
}

/// The shape parameters `finish_traced` needs from either spec flavour.
struct CostSpec {
    /// Probes `x0..x{n_outputs}` weighted by `q_weight` in the cost.
    n_outputs: usize,
    n_controls: usize,
    q_weight: f64,
    r_weight: f64,
    ts: f64,
    horizon: f64,
}

impl CostSpec {
    fn of(spec: &LoopSpec) -> Self {
        CostSpec {
            n_outputs: spec.plant.state_dim(),
            n_controls: spec.n_controls,
            q_weight: spec.q_weight,
            r_weight: spec.r_weight,
            ts: spec.ts,
            horizon: spec.horizon,
        }
    }

    fn of_output(spec: &OutputLoopSpec) -> Self {
        CostSpec {
            n_outputs: spec.plant.output_dim(),
            n_controls: spec.n_controls,
            q_weight: spec.q_weight,
            r_weight: spec.r_weight,
            ts: spec.ts,
            horizon: spec.horizon,
        }
    }
}

/// Number of fixed-width buckets of each latency histogram (over
/// `[0, Ts)`).
const LATENCY_BUCKETS: usize = 64;

/// Runs the assembled loop and extracts cost, instants, hot-loop
/// counters and latency histograms. One latency observation per period
/// is streamed into the histograms and, when the collector is enabled,
/// emitted as an [`Event::Counter`] (simulated time — deterministic).
///
/// `track_prefix` namespaces the counter tracks (`{prefix}Ls[j]` /
/// `{prefix}La[j]`): every simulation restarts at simulated time 0, so
/// when several runs share one collector (the lifecycle's ideal /
/// implemented / calibrated runs) distinct prefixes keep per-track
/// timestamps monotone in the exported Chrome trace.
fn finish_traced<S: Sink>(
    cs: &CostSpec,
    lm: LoopModel,
    track_prefix: &str,
    tel: &mut Collector<S>,
) -> Result<LoopResult, CoreError> {
    let mut sim = Simulator::new(lm.model, SimOptions::default())?;
    sim.run(TimeNs::from_secs_f64(cs.horizon))?;
    let stats = sim.stats().clone();
    // Borrow the trace for the metric passes; ownership is taken at the
    // very end (`into_result`) without copying it.
    let result = sim.result();

    let mut cost = 0.0;
    for j in 0..cs.n_outputs {
        let sig = result
            .signal(&format!("x{j}"))
            .expect("probe registered in assemble");
        cost += cs.q_weight * metrics::ise(sig.times(), sig.values(), 0.0);
    }
    for j in 0..cs.n_controls {
        let sig = result
            .signal(&format!("u{j}"))
            .expect("probe registered in assemble");
        cost += cs.r_weight * metrics::ise(sig.times(), sig.values(), 0.0);
    }

    let sample_instants: Vec<Vec<TimeNs>> = lm
        .sample_sh
        .iter()
        .map(|&sh| result.activation_times(sh, Some(0)))
        .collect();
    let actuation_instants: Vec<Vec<TimeNs>> = lm
        .act_sh
        .iter()
        .map(|&sh| result.activation_times(sh, Some(0)))
        .collect();

    let period = TimeNs::from_secs_f64(cs.ts);
    let bound = period.as_nanos().max(1);
    let feed = |label: &'static str,
                instants: &[Vec<TimeNs>],
                tel: &mut Collector<S>|
     -> Result<Vec<Histogram>, CoreError> {
        instants
            .iter()
            .enumerate()
            .map(|(j, series)| {
                let mut h = Histogram::new(bound, LATENCY_BUCKETS);
                for (k, &t) in series.iter().enumerate() {
                    // Same guarded arithmetic as `latencies`: the period
                    // origin k·Ts must not silently wrap in release at
                    // huge horizons.
                    let origin =
                        period
                            .checked_mul(k as i64)
                            .ok_or_else(|| CoreError::InvalidInput {
                                reason: format!(
                                    "period origin {k}·{period} overflows the i64 nanosecond range"
                                ),
                            })?;
                    let lat = (t - origin).as_nanos();
                    h.record(lat);
                    tel.emit(|| Event::Counter {
                        track: format!("{track_prefix}{label}[{j}]"),
                        name: label.to_string(),
                        at_ns: t.as_nanos(),
                        value_ns: lat,
                    });
                }
                Ok(h)
            })
            .collect()
    };
    let sampling_hist = feed("Ls", &sample_instants, tel)?;
    let actuation_hist = feed("La", &actuation_instants, tel)?;

    let mut activity: Vec<(String, u64)> = stats
        .activation_counts()
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(i, &c)| {
            let name = sim
                .model()
                .name(BlockId::from_index(i))
                .unwrap_or("?")
                .to_string();
            (name, c)
        })
        .collect();
    activity.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    Ok(LoopResult {
        result: sim.into_result(),
        cost,
        sample_instants,
        actuation_instants,
        ts: cs.ts,
        stats,
        sampling_hist,
        actuation_hist,
        activity,
    })
}

fn finish(spec: &LoopSpec, lm: LoopModel) -> Result<LoopResult, CoreError> {
    finish_traced(&CostSpec::of(spec), lm, "", &mut Collector::noop())
}

/// Description of a sampled-data loop closed through *measured outputs*
/// (output feedback): the controller is an arbitrary discrete compensator
/// mapping the plant's `p` outputs to its `m` controls — typically the
/// LQG compensator from [`ecl_control::lqg::compensator`].
#[derive(Debug, Clone)]
pub struct OutputLoopSpec {
    /// Continuous plant; its real `C`/`D` define what is measured.
    pub plant: StateSpace,
    /// Number of control inputs (prefix of the plant inputs).
    pub n_controls: usize,
    /// Initial plant state.
    pub x0: Vec<f64>,
    /// The discrete compensator (`p` measurement inputs → `m` control
    /// outputs); its sampling period must equal `ts`.
    pub compensator: ecl_control::DiscreteSs,
    /// Sampling period (seconds).
    pub ts: f64,
    /// Simulation horizon (seconds).
    pub horizon: f64,
    /// Output weight of the quadratic evaluation cost.
    pub q_weight: f64,
    /// Control weight of the quadratic evaluation cost.
    pub r_weight: f64,
    /// Disturbance on the non-control plant inputs.
    pub disturbance: DisturbanceKind,
}

impl OutputLoopSpec {
    fn validate(&self) -> Result<(), CoreError> {
        let bad = |reason: String| Err(CoreError::InvalidInput { reason });
        if self.n_controls == 0 || self.n_controls > self.plant.input_dim() {
            return bad(format!(
                "n_controls = {} out of range for a plant with {} inputs",
                self.n_controls,
                self.plant.input_dim()
            ));
        }
        if self.x0.len() != self.plant.state_dim() {
            return bad(format!(
                "x0 has {} entries, plant has {} states",
                self.x0.len(),
                self.plant.state_dim()
            ));
        }
        if self.compensator.input_dim() != self.plant.output_dim() {
            return bad(format!(
                "compensator consumes {} measurements, plant produces {}",
                self.compensator.input_dim(),
                self.plant.output_dim()
            ));
        }
        if self.compensator.output_dim() != self.n_controls {
            return bad(format!(
                "compensator produces {} controls, loop needs {}",
                self.compensator.output_dim(),
                self.n_controls
            ));
        }
        if !(self.ts > 0.0) || !(self.horizon > 0.0) {
            return bad("ts and horizon must be positive".into());
        }
        if (self.compensator.ts() - self.ts).abs() > 1e-12 {
            return bad(format!(
                "compensator period {} disagrees with loop period {}",
                self.compensator.ts(),
                self.ts
            ));
        }
        Ok(())
    }
}

/// Builds plant (real outputs) + measurement S/H + compensator + holds.
fn assemble_output(spec: &OutputLoopSpec) -> Result<LoopModel, CoreError> {
    spec.validate()?;
    let n = spec.plant.state_dim();
    let p = spec.plant.output_dim();
    let m_total = spec.plant.input_dim();
    let mc = spec.n_controls;
    let mut model = Model::new();
    let period = TimeNs::from_secs_f64(spec.ts);
    let base_clock = add_clock(&mut model, "base_clock", period, TimeNs::ZERO)?;

    let plant = model.add_block(
        "plant",
        StateSpaceCt::new(
            n,
            m_total,
            p,
            spec.plant.a().as_slice().to_vec(),
            spec.plant.b().as_slice().to_vec(),
            spec.plant.c().as_slice().to_vec(),
            spec.plant.d().as_slice().to_vec(),
            spec.x0.clone(),
        )?,
    );

    let mut sample_sh = Vec::with_capacity(p);
    for j in 0..p {
        let sh = model.add_block(format!("sample_y{j}"), SampleHold::new(0.0));
        model.connect(plant, j, sh, 0)?;
        sample_sh.push(sh);
    }

    let comp = &spec.compensator;
    let controller = model.add_block(
        "compensator",
        DiscreteStateSpace::new(
            comp.state_dim(),
            p,
            mc,
            comp.a().as_slice().to_vec(),
            comp.b().as_slice().to_vec(),
            comp.c().as_slice().to_vec(),
            comp.d().as_slice().to_vec(),
            vec![0.0; comp.state_dim()],
        )?,
    );
    for (j, &sh) in sample_sh.iter().enumerate() {
        model.connect(sh, 0, controller, j)?;
    }

    let mut act_sh = Vec::with_capacity(mc);
    for j in 0..mc {
        let sh = model.add_block(format!("hold_u{j}"), SampleHold::new(0.0));
        model.connect(controller, j, sh, 0)?;
        model.connect(sh, 0, plant, j)?;
        act_sh.push(sh);
    }

    for j in mc..m_total {
        match spec.disturbance {
            DisturbanceKind::None => {
                let z = model.add_block(format!("dist{j}"), Constant::new(0.0));
                model.connect(z, 0, plant, j)?;
            }
            DisturbanceKind::Noise { std_dev, seed } => {
                let nz = model.add_block(
                    format!("dist{j}"),
                    SampledNoise::new(0.0, std_dev, seed.wrapping_add(j as u64)),
                );
                model.connect(nz, 0, plant, j)?;
                model.connect_event(base_clock, 0, nz, 0)?;
            }
        }
    }

    // Probe the measured outputs (as `x{j}` so `finish` computes the cost
    // over them uniformly) and the controls.
    for j in 0..p {
        model.probe(format!("x{j}"), plant, j)?;
    }
    for (j, &sh) in act_sh.iter().enumerate() {
        model.probe(format!("u{j}"), sh, 0)?;
    }

    Ok(LoopModel {
        model,
        sample_sh,
        controller,
        act_sh,
        base_clock,
    })
}

fn finish_output(spec: &OutputLoopSpec, lm: LoopModel) -> Result<LoopResult, CoreError> {
    finish_traced(&CostSpec::of_output(spec), lm, "", &mut Collector::noop())
}

/// Simulates an output-feedback loop under the stroboscopic model.
///
/// # Errors
///
/// Propagates specification-validation and simulation errors.
pub fn run_output_ideal(spec: &OutputLoopSpec) -> Result<LoopResult, CoreError> {
    let mut lm = assemble_output(spec)?;
    for &sh in &lm.sample_sh.clone() {
        lm.model.connect_event(lm.base_clock, 0, sh, 0)?;
    }
    lm.model.connect_event(lm.base_clock, 0, lm.controller, 0)?;
    for &sh in &lm.act_sh.clone() {
        lm.model.connect_event(lm.base_clock, 0, sh, 0)?;
    }
    finish_output(spec, lm)
}

/// Simulates an output-feedback loop re-activated by the graph of delays
/// synthesized from `schedule`. There must be one sensor operation per
/// plant output and one actuator per control.
///
/// # Errors
///
/// Same as [`run_scheduled`].
pub fn run_output_scheduled(
    spec: &OutputLoopSpec,
    alg: &AlgorithmGraph,
    io: &IoMap,
    schedule: &Schedule,
    arch: &ArchitectureGraph,
) -> Result<LoopResult, CoreError> {
    let p = spec.plant.output_dim();
    if io.sensors.len() != p {
        return Err(CoreError::InvalidInput {
            reason: format!(
                "law has {} sensors but the plant has {p} measured outputs",
                io.sensors.len()
            ),
        });
    }
    if io.actuators.len() != spec.n_controls {
        return Err(CoreError::InvalidInput {
            reason: format!(
                "law has {} actuators but the loop has {} controls",
                io.actuators.len(),
                spec.n_controls
            ),
        });
    }
    let mut lm = assemble_output(spec)?;
    let period = TimeNs::from_secs_f64(spec.ts);
    let dg = delays::build(
        &mut lm.model,
        alg,
        arch,
        schedule,
        period,
        DelayGraphConfig::default(),
    )?;
    for (j, &op) in io.sensors.iter().enumerate() {
        dg.activate_on_completion(&mut lm.model, op, lm.sample_sh[j], 0)?;
    }
    let compute = *io.stages.last().ok_or_else(|| CoreError::InvalidInput {
        reason: "law has no computation stage".into(),
    })?;
    dg.activate_on_completion(&mut lm.model, compute, lm.controller, 0)?;
    for (j, &op) in io.actuators.iter().enumerate() {
        dg.activate_on_completion(&mut lm.model, op, lm.act_sh[j], 0)?;
    }
    finish_output(spec, lm)
}

/// Simulates the loop under the stroboscopic model (paper Fig. 2): one
/// clock activates sampling, control and actuation simultaneously.
///
/// # Errors
///
/// Propagates specification-validation and simulation errors.
pub fn run_ideal(spec: &LoopSpec) -> Result<LoopResult, CoreError> {
    let mut lm = assemble(spec)?;
    // Activation order at each tick: sample all inputs, run the
    // controller, apply all outputs — deliveries happen in wiring order.
    for &sh in &lm.sample_sh.clone() {
        lm.model.connect_event(lm.base_clock, 0, sh, 0)?;
    }
    lm.model.connect_event(lm.base_clock, 0, lm.controller, 0)?;
    for &sh in &lm.act_sh.clone() {
        lm.model.connect_event(lm.base_clock, 0, sh, 0)?;
    }
    finish(spec, lm)
}

/// Content digest of every input [`run_ideal`] reads: all [`LoopSpec`]
/// fields, floats hashed by exact bit pattern.
///
/// [`run_ideal`] is a deterministic pure function of its spec — the
/// model is assembled from the spec alone, `SimOptions::default()` is
/// fixed, and the engine schedules all discrete activity on the
/// integer-nanosecond calendar — so two specs with equal digests produce
/// byte-identical [`LoopResult`]s. A fleet sweep perturbs only the
/// sampling period of its ideal reference (period scale × makespan
/// stretch); every other field is shared, so the digest space collapses
/// to a handful of keys and the memo table actually hits.
pub fn loop_spec_digest(spec: &LoopSpec) -> u64 {
    let mut h = Fnv1a::new();
    let mat = |h: &mut Fnv1a, m: &Mat| {
        h.write_u64(m.rows() as u64);
        h.write_u64(m.cols() as u64);
        for &v in m.as_slice() {
            h.write_f64(v);
        }
    };
    mat(&mut h, spec.plant.a());
    mat(&mut h, spec.plant.b());
    mat(&mut h, spec.plant.c());
    mat(&mut h, spec.plant.d());
    h.write_u64(spec.n_controls as u64);
    h.write_u64(spec.x0.len() as u64);
    for &v in &spec.x0 {
        h.write_f64(v);
    }
    mat(&mut h, &spec.feedback);
    match &spec.input_memory {
        None => h.write_u64(0),
        Some(ku) => {
            h.write_u64(1);
            mat(&mut h, ku);
        }
    }
    h.write_f64(spec.ts);
    h.write_f64(spec.horizon);
    h.write_f64(spec.q_weight);
    h.write_f64(spec.r_weight);
    match spec.disturbance {
        DisturbanceKind::None => h.write_u64(0),
        DisturbanceKind::Noise { std_dev, seed } => {
            h.write_u64(1);
            h.write_f64(std_dev);
            h.write_u64(seed);
        }
    }
    h.finish()
}

/// A cached ideal run plus the number of times it was looked up.
#[derive(Debug)]
struct IdealSlot {
    result: Arc<LoopResult>,
    lookups: u64,
}

/// Memo map plus the count of lookups that *observed* a local miss and
/// therefore simulated. Beyond one per distinct digest, those are racing
/// double-computes whose losing results were discarded — wasted work,
/// scheduling-dependent, sidecar-only (see
/// [`IdealRunCache::races`]/[`ScheduledRunCache::races`]).
#[derive(Debug)]
struct MemoState<S> {
    map: HashMap<u64, S>,
    local_misses: u64,
}

impl<S> Default for MemoState<S> {
    fn default() -> Self {
        MemoState {
            map: HashMap::new(),
            local_misses: 0,
        }
    }
}

/// A thread-safe memo table from [`loop_spec_digest`] keys to
/// [`run_ideal`] results.
///
/// A scenario sweep re-simulates the stroboscopic reference once per
/// scenario, but the reference depends only on the loop spec — and the
/// sweep varies that spec along a single axis (the sampling period). A
/// 10⁵-scenario sweep therefore needs only as many ideal runs as it has
/// distinct periods; this table, shared by the sweep workers beside the
/// [`ecl_aaa::ScheduleCache`], answers the rest from memory.
///
/// Same discipline as the schedule cache: the lock is held only around
/// the map lookup/insert, never across the simulation, so a miss on one
/// worker does not serialize the others (two workers racing on one key
/// both compute the identical deterministic result; the second insert is
/// a no-op). The [`hits`](IdealRunCache::hits)/
/// [`misses`](IdealRunCache::misses) counters are derived from
/// per-digest lookup counts, so they depend only on the multiset of
/// digests looked up — identical for any worker count and claim order.
/// They still must never enter a byte-compared sweep report that predates
/// the memo; experiment sidecars are their place.
///
/// # Examples
///
/// ```
/// use ecl_core::cosim::{run_ideal, IdealRunCache, LoopSpec, DisturbanceKind};
/// use ecl_control::StateSpace;
/// use ecl_linalg::Mat;
/// # fn main() -> Result<(), ecl_core::CoreError> {
/// let plant = StateSpace::new(
///     Mat::from_rows(&[&[-1.0]]).unwrap(),
///     Mat::from_rows(&[&[1.0]]).unwrap(),
///     Mat::identity(1),
///     Mat::zeros(1, 1),
/// )?;
/// let spec = LoopSpec {
///     plant,
///     n_controls: 1,
///     x0: vec![1.0],
///     feedback: Mat::from_rows(&[&[0.5]]).unwrap(),
///     input_memory: None,
///     ts: 0.01,
///     horizon: 0.1,
///     q_weight: 1.0,
///     r_weight: 1e-3,
///     disturbance: DisturbanceKind::None,
/// };
/// let cache = IdealRunCache::new();
/// let a = cache.get_or_run(&spec)?;
/// let b = cache.get_or_run(&spec)?;
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// assert_eq!(a.cost.to_bits(), b.cost.to_bits());
/// assert_eq!(a.cost.to_bits(), run_ideal(&spec)?.cost.to_bits());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct IdealRunCache {
    state: Mutex<MemoState<IdealSlot>>,
}

impl IdealRunCache {
    /// An empty memo table.
    pub fn new() -> Self {
        IdealRunCache::default()
    }

    /// The ideal run for `spec`, simulating only on a cache miss.
    ///
    /// # Errors
    ///
    /// Propagates [`run_ideal`] errors; failures are not cached.
    pub fn get_or_run(&self, spec: &LoopSpec) -> Result<Arc<LoopResult>, CoreError> {
        self.get_or_run_traced(spec).map(|(result, _, _)| result)
    }

    /// Like [`get_or_run`](IdealRunCache::get_or_run), also returning the
    /// [`loop_spec_digest`] key and whether *this* lookup was answered
    /// from the cache.
    ///
    /// The hit flag is the caller's local observation (racing workers
    /// both observe a miss), so it may only feed wall-clock sidecars;
    /// deterministic artifacts use the order-invariant
    /// [`hits`](IdealRunCache::hits)/[`misses`](IdealRunCache::misses).
    ///
    /// # Errors
    ///
    /// Propagates [`run_ideal`] errors; failures are not cached.
    pub fn get_or_run_traced(
        &self,
        spec: &LoopSpec,
    ) -> Result<(Arc<LoopResult>, u64, bool), CoreError> {
        let key = loop_spec_digest(spec);
        if let Some(slot) = self
            .state
            .lock()
            .expect("ideal memo lock")
            .map
            .get_mut(&key)
        {
            slot.lookups += 1;
            return Ok((Arc::clone(&slot.result), key, true));
        }
        // Simulated outside the lock: the ideal run is a full
        // co-simulation and must not serialize the pool.
        let result = Arc::new(run_ideal(spec)?);
        let mut state = self.state.lock().expect("ideal memo lock");
        state.local_misses += 1;
        let slot = state
            .map
            .entry(key)
            .or_insert_with(|| IdealSlot { result, lookups: 0 });
        slot.lookups += 1;
        Ok((Arc::clone(&slot.result), key, false))
    }

    /// Lookups beyond the first of their digest — what a serial run would
    /// have answered from the cache. Derived from per-digest lookup
    /// counts, so identical for any worker count.
    pub fn hits(&self) -> u64 {
        self.state
            .lock()
            .expect("ideal memo lock")
            .map
            .values()
            .map(|slot| slot.lookups.saturating_sub(1))
            .sum()
    }

    /// Distinct digests ever looked up — the ideal runs a serial sweep
    /// would actually have simulated. Derived, order-invariant.
    pub fn misses(&self) -> u64 {
        self.len() as u64
    }

    /// Total lookups across all digests (`hits + misses`).
    pub fn lookups(&self) -> u64 {
        self.state
            .lock()
            .expect("ideal memo lock")
            .map
            .values()
            .map(|slot| slot.lookups)
            .sum()
    }

    /// Racing double-computes: lookups that observed a local miss (and
    /// simulated) beyond the first of their digest. The losers' results
    /// were discarded — pure wasted work. Thread-interleaving-dependent,
    /// so report it only in wall-clock sidecars, never in deterministic
    /// artifacts.
    pub fn races(&self) -> u64 {
        let state = self.state.lock().expect("ideal memo lock");
        state.local_misses.saturating_sub(state.map.len() as u64)
    }

    /// Lookups that actually simulated in *this* process — unlike
    /// [`misses`](IdealRunCache::misses) it excludes entries answered
    /// from a [`seed`](IdealRunCache::seed)ed (on-disk) result, so a
    /// warm-started daemon can assert it re-simulated nothing. Includes
    /// racing double-computes — sidecar-only.
    pub fn computes(&self) -> u64 {
        self.state.lock().expect("ideal memo lock").local_misses
    }

    /// Inserts a run computed by an earlier process under its
    /// [`loop_spec_digest`] key — the warm-start path of the on-disk
    /// cache layer (typically a metrics-grade
    /// [`LoopResult::from_metric_bytes`] decode). Returns `false` and
    /// keeps the resident entry when the digest is already cached.
    /// Seeding is not a lookup and not a compute.
    pub fn seed(&self, digest: u64, result: LoopResult) -> bool {
        let mut state = self.state.lock().expect("ideal memo lock");
        match state.map.entry(digest) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(IdealSlot {
                    result: Arc::new(result),
                    lookups: 0,
                });
                true
            }
        }
    }

    /// Every cached `(digest, run)` pair, sorted by digest — the
    /// write-back path of the on-disk cache layer.
    pub fn snapshot(&self) -> Vec<(u64, Arc<LoopResult>)> {
        let state = self.state.lock().expect("ideal memo lock");
        let mut out: Vec<_> = state
            .map
            .iter()
            .map(|(&digest, slot)| (digest, Arc::clone(&slot.result)))
            .collect();
        out.sort_by_key(|&(digest, _)| digest);
        out
    }

    /// Number of distinct ideal runs currently cached.
    pub fn len(&self) -> usize {
        self.state.lock().expect("ideal memo lock").map.len()
    }

    /// `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A cached scheduled run plus the number of times it was looked up.
#[derive(Debug)]
struct ScheduledSlot {
    result: Arc<LoopResult>,
    lookups: u64,
}

/// Content digest of one scheduled (possibly faulty) co-simulation:
/// the [`loop_spec_digest`] (plant, gains, scaled period, horizon,
/// disturbance — the period *scale* axis lives here), the adequation
/// `schedule_digest` from [`ecl_aaa::schedule_digest`] (algorithm graph,
/// architecture tariffs, WCET table, policy — everything delay-graph
/// synthesis reads beyond the spec), and the [`FaultPlan::digest`] with
/// a presence marker (a nominal run can never alias a faulty one).
///
/// `schedule_digest` must be the digest of the exact inputs that
/// produced `schedule` — the fleet already holds it from
/// [`ecl_aaa::ScheduleCache::get_or_compute_traced`].
pub fn scheduled_run_digest(
    spec: &LoopSpec,
    schedule_digest: u64,
    plan: Option<&FaultPlan>,
) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(loop_spec_digest(spec));
    h.write_u64(schedule_digest);
    match plan {
        None => h.write_u64(0),
        Some(p) => {
            h.write_u64(1);
            h.write_u64(p.digest());
        }
    }
    h.finish()
}

/// A thread-safe memo table from [`scheduled_run_digest`] keys to
/// [`run_scheduled`]/[`run_scheduled_faulty`] results.
///
/// The exp16 profiler attributes ~93% of sweep time to scheduled
/// co-simulation, and a fault-axis sweep pigeonholes heavily on
/// (loop, schedule, fault-plan) triples: quantized WCET tables bound the
/// schedule digests, the period-scale axis bounds the loop digests, and
/// zero-rate fault axes collapse onto the nominal plan. Most of that 93%
/// is therefore recomputation of byte-identical [`LoopResult`]s — this
/// table, shared by the sweep workers beside [`IdealRunCache`] and
/// [`ecl_aaa::ScheduleCache`], answers them from memory.
///
/// Same discipline as its two siblings: the lock is held only around the
/// map lookup/insert, never across the co-simulation (racing workers
/// both compute the identical deterministic result; the second insert is
/// a no-op), and [`hits`](ScheduledRunCache::hits)/
/// [`misses`](ScheduledRunCache::misses) are derived from per-digest
/// lookup counts, so they are identical for any worker count and claim
/// order. They still belong beside — never inside — byte-compared sweep
/// artifacts.
#[derive(Debug, Default)]
pub struct ScheduledRunCache {
    state: Mutex<MemoState<ScheduledSlot>>,
}

impl ScheduledRunCache {
    /// An empty memo table.
    pub fn new() -> Self {
        ScheduledRunCache::default()
    }

    /// The scheduled run for the given inputs, co-simulating only on a
    /// cache miss. `plan: None` is the nominal [`run_scheduled`];
    /// `Some(plan)` is [`run_scheduled_faulty`] (the plan is cloned only
    /// when a simulation actually runs). `schedule_digest` must be the
    /// adequation digest of the inputs that produced `schedule`.
    ///
    /// # Errors
    ///
    /// Propagates [`run_scheduled`] errors; failures are not cached.
    #[allow(clippy::too_many_arguments)]
    pub fn get_or_run(
        &self,
        spec: &LoopSpec,
        alg: &AlgorithmGraph,
        io: &IoMap,
        schedule: &Schedule,
        arch: &ArchitectureGraph,
        schedule_digest: u64,
        plan: Option<&FaultPlan>,
    ) -> Result<Arc<LoopResult>, CoreError> {
        self.get_or_run_phased(spec, alg, io, schedule, arch, schedule_digest, plan)
            .map(|(result, _, _, _)| result)
    }

    /// Like [`get_or_run`](ScheduledRunCache::get_or_run), also returning
    /// the [`scheduled_run_digest`] key, whether *this* lookup was
    /// answered from the cache, and the synthesis/simulation wall-clock
    /// split of the run (zero on a hit — nothing was simulated).
    ///
    /// The hit flag and the phase split are this caller's wall-clock
    /// observations (racing workers both observe a miss), so they may
    /// only feed profiler sidecars; deterministic artifacts use the
    /// order-invariant [`hits`](ScheduledRunCache::hits)/
    /// [`misses`](ScheduledRunCache::misses).
    ///
    /// # Errors
    ///
    /// Propagates [`run_scheduled`] errors; failures are not cached.
    #[allow(clippy::too_many_arguments)]
    pub fn get_or_run_phased(
        &self,
        spec: &LoopSpec,
        alg: &AlgorithmGraph,
        io: &IoMap,
        schedule: &Schedule,
        arch: &ArchitectureGraph,
        schedule_digest: u64,
        plan: Option<&FaultPlan>,
    ) -> Result<(Arc<LoopResult>, u64, bool, CosimPhases), CoreError> {
        let key = scheduled_run_digest(spec, schedule_digest, plan);
        if let Some(slot) = self
            .state
            .lock()
            .expect("scheduled memo lock")
            .map
            .get_mut(&key)
        {
            slot.lookups += 1;
            return Ok((Arc::clone(&slot.result), key, true, CosimPhases::default()));
        }
        // Co-simulated outside the lock: this is the sweep's dominant
        // phase and must not serialize the pool.
        let (result, phases) = run_scheduled_phased(spec, alg, io, schedule, arch, plan.cloned())?;
        let result = Arc::new(result);
        let mut state = self.state.lock().expect("scheduled memo lock");
        state.local_misses += 1;
        let slot = state
            .map
            .entry(key)
            .or_insert_with(|| ScheduledSlot { result, lookups: 0 });
        slot.lookups += 1;
        Ok((Arc::clone(&slot.result), key, false, phases))
    }

    /// Lookups beyond the first of their digest — what a serial run would
    /// have answered from the cache. Derived from per-digest lookup
    /// counts, so identical for any worker count.
    pub fn hits(&self) -> u64 {
        self.state
            .lock()
            .expect("scheduled memo lock")
            .map
            .values()
            .map(|slot| slot.lookups.saturating_sub(1))
            .sum()
    }

    /// Distinct digests ever looked up — the scheduled runs a serial
    /// sweep would actually have co-simulated. Derived, order-invariant.
    pub fn misses(&self) -> u64 {
        self.len() as u64
    }

    /// Total lookups across all digests (`hits + misses`).
    pub fn lookups(&self) -> u64 {
        self.state
            .lock()
            .expect("scheduled memo lock")
            .map
            .values()
            .map(|slot| slot.lookups)
            .sum()
    }

    /// Racing double-computes: local-miss observations beyond the first
    /// of their digest. Thread-interleaving-dependent — sidecar-only.
    pub fn races(&self) -> u64 {
        let state = self.state.lock().expect("scheduled memo lock");
        state.local_misses.saturating_sub(state.map.len() as u64)
    }

    /// Lookups that actually co-simulated in *this* process — unlike
    /// [`misses`](ScheduledRunCache::misses) it excludes entries answered
    /// from a [`seed`](ScheduledRunCache::seed)ed (on-disk) result, so a
    /// warm-started daemon can assert it re-simulated nothing. Includes
    /// racing double-computes — sidecar-only.
    pub fn computes(&self) -> u64 {
        self.state.lock().expect("scheduled memo lock").local_misses
    }

    /// Inserts a run computed by an earlier process under its
    /// [`scheduled_run_digest`] key — the warm-start path of the on-disk
    /// cache layer (typically a metrics-grade
    /// [`LoopResult::from_metric_bytes`] decode). Returns `false` and
    /// keeps the resident entry when the digest is already cached.
    /// Seeding is not a lookup and not a compute.
    pub fn seed(&self, digest: u64, result: LoopResult) -> bool {
        let mut state = self.state.lock().expect("scheduled memo lock");
        match state.map.entry(digest) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(ScheduledSlot {
                    result: Arc::new(result),
                    lookups: 0,
                });
                true
            }
        }
    }

    /// Every cached `(digest, run)` pair, sorted by digest — the
    /// write-back path of the on-disk cache layer.
    pub fn snapshot(&self) -> Vec<(u64, Arc<LoopResult>)> {
        let state = self.state.lock().expect("scheduled memo lock");
        let mut out: Vec<_> = state
            .map
            .iter()
            .map(|(&digest, slot)| (digest, Arc::clone(&slot.result)))
            .collect();
        out.sort_by_key(|&(digest, _)| digest);
        out
    }

    /// Number of distinct scheduled runs currently cached.
    pub fn len(&self) -> usize {
        self.state.lock().expect("scheduled memo lock").map.len()
    }

    /// `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Simulates the loop with the graph of delays synthesized from
/// `schedule` (paper Fig. 3): each Sample/Hold and the controller are
/// re-activated at the distributed implementation's instants.
///
/// `io` maps the translated algorithm graph's sensors/actuators to the
/// loop's inputs/outputs: there must be one sensor per plant state and one
/// actuator per control.
///
/// # Errors
///
/// * [`CoreError::InvalidInput`] if `io` does not match the loop shape or
///   the schedule overruns the period.
/// * Propagated wiring/simulation errors.
pub fn run_scheduled(
    spec: &LoopSpec,
    alg: &AlgorithmGraph,
    io: &IoMap,
    schedule: &Schedule,
    arch: &ArchitectureGraph,
) -> Result<LoopResult, CoreError> {
    run_scheduled_with(spec, alg, io, schedule, arch, |_| {
        Ok(DelayGraphConfig::default())
    })
}

/// Like [`run_scheduled`], but replays the schedule under a
/// [`FaultPlan`]: lost frames stretch or drop communication slots, dead
/// processors silence their operations, and every synchronization gains a
/// timeout arm so the loop degrades (Sample/Holds keep stale values, the
/// existing overrun accounting counts the damage) instead of
/// deadlocking.
///
/// A [trivial](FaultPlan::is_trivial) plan takes the exact
/// [`run_scheduled`] code path — same blocks, same wiring, bit-identical
/// results — so a zero-rate fault sweep is guaranteed to reproduce the
/// fault-free baseline.
///
/// Use [`LoopResult::latency_report_lenient`] on the result: forced
/// rendezvous can push sampling past the period boundary, which the
/// strict report rejects.
///
/// # Errors
///
/// Same as [`run_scheduled`].
pub fn run_scheduled_faulty(
    spec: &LoopSpec,
    alg: &AlgorithmGraph,
    io: &IoMap,
    schedule: &Schedule,
    arch: &ArchitectureGraph,
    plan: FaultPlan,
) -> Result<LoopResult, CoreError> {
    run_scheduled_with(spec, alg, io, schedule, arch, move |_| {
        Ok(DelayGraphConfig {
            faults: Some(plan),
            ..DelayGraphConfig::default()
        })
    })
}

/// Like [`run_scheduled`], but lets the caller extend the model (e.g. add
/// the block producing a condition variable's value) and supply the
/// [`DelayGraphConfig`] — required when the algorithm graph contains
/// conditioned operations (paper §3.2.2).
///
/// # Errors
///
/// Same as [`run_scheduled`], plus whatever `configure` returns.
pub fn run_scheduled_with(
    spec: &LoopSpec,
    alg: &AlgorithmGraph,
    io: &IoMap,
    schedule: &Schedule,
    arch: &ArchitectureGraph,
    configure: impl FnOnce(&mut Model) -> Result<DelayGraphConfig, CoreError>,
) -> Result<LoopResult, CoreError> {
    let lm = wire_scheduled(spec, alg, io, schedule, arch, configure)?;
    finish(spec, lm)
}

/// Like [`run_scheduled`] / [`run_scheduled_faulty`] (chosen by whether
/// `faults` is given), additionally measuring the wall-clock split
/// between delay-graph synthesis and the simulation itself for the fleet
/// profiler. The returned [`LoopResult`] is byte-identical to the
/// unphased drivers' — the measurement only reads the monotonic clock
/// around the two stages.
///
/// # Errors
///
/// Same as [`run_scheduled`].
pub fn run_scheduled_phased(
    spec: &LoopSpec,
    alg: &AlgorithmGraph,
    io: &IoMap,
    schedule: &Schedule,
    arch: &ArchitectureGraph,
    faults: Option<FaultPlan>,
) -> Result<(LoopResult, CosimPhases), CoreError> {
    let t0 = std::time::Instant::now();
    let lm = wire_scheduled(spec, alg, io, schedule, arch, move |_| {
        Ok(DelayGraphConfig {
            faults,
            ..DelayGraphConfig::default()
        })
    })?;
    let synthesis_wall_ns = t0.elapsed().as_nanos() as u64;
    let t1 = std::time::Instant::now();
    let result = finish(spec, lm)?;
    let simulation_wall_ns = t1.elapsed().as_nanos() as u64;
    Ok((
        result,
        CosimPhases {
            synthesis_wall_ns,
            simulation_wall_ns,
        },
    ))
}

/// Assembles the loop model and synthesizes the graph of delays from the
/// schedule — everything up to (but excluding) the simulation itself, so
/// the lifecycle can time delay-graph synthesis and co-simulation as
/// separate phases.
pub(crate) fn wire_scheduled(
    spec: &LoopSpec,
    alg: &AlgorithmGraph,
    io: &IoMap,
    schedule: &Schedule,
    arch: &ArchitectureGraph,
    configure: impl FnOnce(&mut Model) -> Result<DelayGraphConfig, CoreError>,
) -> Result<LoopModel, CoreError> {
    let n = spec.plant.state_dim();
    if io.sensors.len() != n {
        return Err(CoreError::InvalidInput {
            reason: format!(
                "law has {} sensors but the plant has {n} sampled states",
                io.sensors.len()
            ),
        });
    }
    if io.actuators.len() != spec.n_controls {
        return Err(CoreError::InvalidInput {
            reason: format!(
                "law has {} actuators but the loop has {} controls",
                io.actuators.len(),
                spec.n_controls
            ),
        });
    }
    let mut lm = assemble(spec)?;
    let period = TimeNs::from_secs_f64(spec.ts);
    let config = configure(&mut lm.model)?;
    let dg = delays::build(&mut lm.model, alg, arch, schedule, period, config)?;
    for (j, &op) in io.sensors.iter().enumerate() {
        dg.activate_on_completion(&mut lm.model, op, lm.sample_sh[j], 0)?;
    }
    let compute = *io.stages.last().ok_or_else(|| CoreError::InvalidInput {
        reason: "law has no computation stage".into(),
    })?;
    dg.activate_on_completion(&mut lm.model, compute, lm.controller, 0)?;
    for (j, &op) in io.actuators.iter().enumerate() {
        dg.activate_on_completion(&mut lm.model, op, lm.act_sh[j], 0)?;
    }
    Ok(lm)
}

/// Finishes a wired loop with telemetry (used by the lifecycle to wrap
/// the simulation in its own span). `track_prefix` namespaces the latency
/// counter tracks when several runs share one collector.
pub(crate) fn finish_loop<S: Sink>(
    spec: &LoopSpec,
    lm: LoopModel,
    track_prefix: &str,
    tel: &mut Collector<S>,
) -> Result<LoopResult, CoreError> {
    finish_traced(&CostSpec::of(spec), lm, track_prefix, tel)
}

/// Emits the schedule's per-period timeline ([`Event::Slice`] per
/// operation and communication, one replica per period over `horizon`)
/// into the collector. A no-op for a disabled collector.
pub(crate) fn emit_schedule_timeline<S: Sink>(
    tel: &mut Collector<S>,
    schedule: &Schedule,
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
    ts: f64,
    horizon: f64,
) {
    if !tel.enabled() {
        return;
    }
    let periods = (horizon / ts).floor() as u32;
    let period = TimeNs::from_secs_f64(ts);
    for ev in timeline::trace_events(schedule, alg, arch, period, periods) {
        tel.emit(|| ev);
    }
}

/// Like [`run_ideal`], but streams telemetry into `tel`: one latency
/// [`Event::Counter`] per I/O per period (simulated time), on
/// `ideal:Ls[j]` / `ideal:La[j]` tracks so an ideal run can share a
/// collector with a scheduled run without mixing tracks. With a
/// [`ecl_telemetry::NoopSink`] collector this is exactly [`run_ideal`].
///
/// # Errors
///
/// Same as [`run_ideal`].
pub fn run_ideal_traced<S: Sink>(
    spec: &LoopSpec,
    tel: &mut Collector<S>,
) -> Result<LoopResult, CoreError> {
    let mut lm = assemble(spec)?;
    for &sh in &lm.sample_sh.clone() {
        lm.model.connect_event(lm.base_clock, 0, sh, 0)?;
    }
    lm.model.connect_event(lm.base_clock, 0, lm.controller, 0)?;
    for &sh in &lm.act_sh.clone() {
        lm.model.connect_event(lm.base_clock, 0, sh, 0)?;
    }
    finish_traced(&CostSpec::of(spec), lm, "ideal:", tel)
}

/// Like [`run_scheduled`], but streams telemetry into `tel`: the
/// schedule's per-period timeline as [`Event::Slice`]s on `proc:*` /
/// `bus:*` tracks, then one latency [`Event::Counter`] per I/O per
/// period. All events carry simulated time, so two identical runs record
/// byte-identical streams.
///
/// # Errors
///
/// Same as [`run_scheduled`].
pub fn run_scheduled_traced<S: Sink>(
    spec: &LoopSpec,
    alg: &AlgorithmGraph,
    io: &IoMap,
    schedule: &Schedule,
    arch: &ArchitectureGraph,
    tel: &mut Collector<S>,
) -> Result<LoopResult, CoreError> {
    let lm = wire_scheduled(spec, alg, io, schedule, arch, |_| {
        Ok(DelayGraphConfig::default())
    })?;
    emit_schedule_timeline(tel, schedule, alg, arch, spec.ts, spec.horizon);
    finish_traced(&CostSpec::of(spec), lm, "", tel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_aaa::{adequation, AdequationOptions};
    use ecl_control::{c2d_zoh, dlqr, plants};

    use crate::translate::{uniform_timing, ControlLawSpec};

    /// The sweep pool moves loop descriptions and results across worker
    /// threads; this fails to compile if a non-`Send` member sneaks in.
    #[test]
    fn loop_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<LoopSpec>();
        assert_send::<LoopResult>();
    }

    fn us(v: i64) -> TimeNs {
        TimeNs::from_micros(v)
    }

    fn dc_motor_spec() -> LoopSpec {
        let plant = plants::dc_motor();
        let dss = c2d_zoh(&plant.sys, plant.ts).unwrap();
        let lqr = dlqr(&dss, &Mat::identity(2), &Mat::diag(&[0.1])).unwrap();
        LoopSpec {
            plant: plant.sys,
            n_controls: 1,
            x0: vec![1.0, 0.0],
            feedback: lqr.k,
            input_memory: None,
            ts: plant.ts,
            horizon: 2.0,
            q_weight: 1.0,
            r_weight: 0.1,
            disturbance: DisturbanceKind::None,
        }
    }

    /// The metrics-grade byte codec preserves every field the untraced
    /// fleet path reads (bit-exact cost/period, instants, counters,
    /// histograms, activity) while dropping the raw trace, and a memo
    /// cache seeded from the bytes serves lookups with zero computes.
    #[test]
    fn metric_codec_round_trips_and_seeds_caches() {
        let spec = dc_motor_spec();
        let fresh = run_ideal(&spec).unwrap();
        let bytes = fresh.to_metric_bytes();
        let back = LoopResult::from_metric_bytes(&bytes).unwrap();
        assert_eq!(back.cost.to_bits(), fresh.cost.to_bits());
        assert_eq!(back.ts.to_bits(), fresh.ts.to_bits());
        assert_eq!(back.sample_instants, fresh.sample_instants);
        assert_eq!(back.actuation_instants, fresh.actuation_instants);
        assert_eq!(back.sampling_hist, fresh.sampling_hist);
        assert_eq!(back.actuation_hist, fresh.actuation_hist);
        assert_eq!(back.activity, fresh.activity);
        assert_eq!(back.stats.events_delivered, fresh.stats.events_delivered);
        assert_eq!(back.stats.ode, fresh.stats.ode);
        // Derived metrics are byte-identical too.
        assert_eq!(
            format!("{:?}", back.latency_report().unwrap()),
            format!("{:?}", fresh.latency_report().unwrap())
        );
        // Canonical: re-encoding the decode reproduces the bytes.
        assert_eq!(back.to_metric_bytes(), bytes);
        // The raw trace is intentionally not persisted.
        assert!(back.result.signal("x0").is_none());

        // Corruption decodes to a typed error at every truncation point.
        for cut in [0, 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                LoopResult::from_metric_bytes(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }

        // A cache seeded from the bytes answers without simulating.
        let digest = loop_spec_digest(&spec);
        let cache = IdealRunCache::new();
        assert!(cache.seed(digest, LoopResult::from_metric_bytes(&bytes).unwrap()));
        assert!(!cache.seed(digest, LoopResult::from_metric_bytes(&bytes).unwrap()));
        let (served, key, hit) = cache.get_or_run_traced(&spec).unwrap();
        assert!(hit);
        assert_eq!(key, digest);
        assert_eq!(cache.computes(), 0);
        assert_eq!(served.cost.to_bits(), fresh.cost.to_bits());
        // The snapshot reproduces the seeded entry, sorted by digest.
        let snap = cache.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, digest);
        assert_eq!(snap[0].1.to_metric_bytes(), bytes);
    }

    #[test]
    fn ideal_loop_regulates_to_zero() {
        let spec = dc_motor_spec();
        let r = run_ideal(&spec).unwrap();
        let x0 = r.result.signal("x0").unwrap();
        assert!(x0.values()[0] > 0.9, "starts at x0");
        assert!(
            x0.last().unwrap().1.abs() < 0.02,
            "regulated, got {}",
            x0.last().unwrap().1
        );
        assert!(r.cost > 0.0 && r.cost.is_finite());
        // One sampling instant per period, zero latency.
        let rep = r.latency_report().unwrap();
        assert_eq!(rep.mean_actuation(), TimeNs::ZERO);
        assert_eq!(rep.worst_jitter(), TimeNs::ZERO);
    }

    /// Flipping any single [`LoopSpec`] field [`run_ideal`] reads must
    /// change [`loop_spec_digest`], and no two flips may alias.
    #[test]
    fn loop_spec_digest_flips_on_every_field() {
        let base = dc_motor_spec();
        let mut digests = vec![("baseline", loop_spec_digest(&base))];
        let mut check = |label: &'static str, spec: &LoopSpec| {
            let d = loop_spec_digest(spec);
            for (prev, pd) in &digests {
                assert_ne!(*pd, d, "digest of '{label}' collides with '{prev}'");
            }
            digests.push((label, d));
        };

        let mut s = dc_motor_spec();
        s.plant = {
            let mut a = s.plant.a().clone();
            a[(0, 0)] += 1e-9;
            StateSpace::new(
                a,
                s.plant.b().clone(),
                s.plant.c().clone(),
                s.plant.d().clone(),
            )
            .unwrap()
        };
        check("plant A entry", &s);

        let mut s = dc_motor_spec();
        s.x0[1] = 1e-12;
        check("x0 entry", &s);

        let mut s = dc_motor_spec();
        s.feedback[(0, 0)] += 1e-9;
        check("feedback entry", &s);

        let mut s = dc_motor_spec();
        s.input_memory = Some(Mat::diag(&[0.0]));
        check("input-memory presence", &s);

        let mut s = dc_motor_spec();
        s.input_memory = Some(Mat::diag(&[0.25]));
        check("input-memory entry", &s);

        let mut s = dc_motor_spec();
        s.ts *= 1.25;
        check("ts", &s);

        let mut s = dc_motor_spec();
        s.horizon += 0.5;
        check("horizon", &s);

        let mut s = dc_motor_spec();
        s.q_weight = 2.0;
        check("q_weight", &s);

        let mut s = dc_motor_spec();
        s.r_weight = 0.2;
        check("r_weight", &s);

        let mut s = dc_motor_spec();
        s.disturbance = DisturbanceKind::Noise {
            std_dev: 0.0,
            seed: 0,
        };
        check("disturbance kind", &s);

        let mut s = dc_motor_spec();
        s.disturbance = DisturbanceKind::Noise {
            std_dev: 0.1,
            seed: 0,
        };
        check("disturbance std_dev", &s);

        let mut s = dc_motor_spec();
        s.disturbance = DisturbanceKind::Noise {
            std_dev: 0.1,
            seed: 1,
        };
        check("disturbance seed", &s);
    }

    /// A memoized ideal run is bit-identical to a fresh [`run_ideal`]:
    /// same cost bits, same instants, same engine counters, same trace.
    #[test]
    fn ideal_memo_equals_fresh_run() {
        let mut spec = dc_motor_spec();
        spec.horizon = 0.5;
        let cache = IdealRunCache::new();
        assert!(cache.is_empty());
        let memo = cache.get_or_run(&spec).unwrap();
        let again = cache.get_or_run(&spec).unwrap();
        assert!(Arc::ptr_eq(&memo, &again));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.lookups(), 2);

        let fresh = run_ideal(&spec).unwrap();
        assert_eq!(memo.cost.to_bits(), fresh.cost.to_bits());
        assert_eq!(memo.sample_instants, fresh.sample_instants);
        assert_eq!(memo.actuation_instants, fresh.actuation_instants);
        assert_eq!(memo.stats, fresh.stats);
        assert_eq!(memo.activity, fresh.activity);
        assert_eq!(
            memo.result.event_log().len(),
            fresh.result.event_log().len()
        );

        // A different period is a distinct entry, not a stale hit.
        let mut scaled = spec.clone();
        scaled.ts *= 1.5;
        let other = cache.get_or_run(&scaled).unwrap();
        assert_ne!(other.cost.to_bits(), memo.cost.to_bits());
        assert_eq!(cache.len(), 2);
    }

    /// Digest-derived memo counters are exact under racing lookups,
    /// mirroring the `ScheduleCache` guarantee the sweep relies on.
    #[test]
    fn ideal_memo_counters_are_thread_exact() {
        let mut spec = dc_motor_spec();
        spec.horizon = 0.25;
        let cache = Arc::new(IdealRunCache::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let spec = &spec;
                scope.spawn(move || {
                    for _ in 0..4 {
                        cache.get_or_run(spec).unwrap();
                    }
                });
            }
        });
        assert_eq!((cache.hits(), cache.misses()), (15, 1));
        assert_eq!(cache.lookups(), 16);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn scheduled_loop_shows_latency_and_costs_more() {
        // Aggressive LQR (cheap control) on the DC motor: the tighter the
        // loop, the more implementation latency hurts (Cervin et al. 2003).
        let plant = plants::dc_motor();
        let dss = c2d_zoh(&plant.sys, plant.ts).unwrap();
        let lqr = dlqr(&dss, &Mat::diag(&[10.0, 1.0]), &Mat::diag(&[1e-3])).unwrap();
        let spec = LoopSpec {
            plant: plant.sys,
            n_controls: 1,
            x0: vec![1.0, 0.0],
            feedback: lqr.k,
            input_memory: None,
            ts: plant.ts,
            horizon: 1.0,
            q_weight: 1.0,
            r_weight: 1e-3,
            disturbance: DisturbanceKind::None,
        };
        let ideal = run_ideal(&spec).unwrap();

        // Distribute over two ECUs with a slow bus: sensor+actuator pinned
        // on ecu0, control on ecu1 — actuation latency near the full
        // period (Ts = 50 ms).
        let law = ControlLawSpec::monolithic("lqr", 2, 1);
        let (alg, io) = law.to_algorithm().unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("ecu0", "arm");
        let p1 = arch.add_processor("ecu1", "arm");
        arch.add_bus("can", &[p0, p1], TimeNs::from_millis(8), us(10))
            .unwrap();
        let mut db = uniform_timing(&alg, &io, us(200), TimeNs::from_millis(18));
        // Pin I/O on ecu0, compute on ecu1.
        for &s in io.sensors.iter().chain(&io.actuators) {
            db.forbid(s, p1);
        }
        db.forbid(io.stages[0], p0);
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        schedule.validate(&alg, &arch).unwrap();
        assert!(schedule.makespan() <= TimeNs::from_millis(50));

        let implemented = run_scheduled(&spec, &alg, &io, &schedule, &arch).unwrap();
        let rep = implemented.latency_report().unwrap();
        // Actuation waits for two bus crossings + compute: >> 20 ms.
        assert!(
            rep.mean_actuation() > TimeNs::from_millis(20),
            "mean actuation latency {}",
            rep.mean_actuation()
        );
        // Implementation latency degrades the quadratic cost.
        assert!(
            implemented.cost > ideal.cost * 1.05,
            "ideal {} vs implemented {}",
            ideal.cost,
            implemented.cost
        );
    }

    /// The 2-ECU split LQR fixture of
    /// `scheduled_loop_shows_latency_and_costs_more`.
    fn split_fixture() -> (LoopSpec, AlgorithmGraph, IoMap, Schedule, ArchitectureGraph) {
        let plant = plants::dc_motor();
        let dss = c2d_zoh(&plant.sys, plant.ts).unwrap();
        let lqr = dlqr(&dss, &Mat::diag(&[10.0, 1.0]), &Mat::diag(&[1e-3])).unwrap();
        let spec = LoopSpec {
            plant: plant.sys,
            n_controls: 1,
            x0: vec![1.0, 0.0],
            feedback: lqr.k,
            input_memory: None,
            ts: plant.ts,
            horizon: 1.0,
            q_weight: 1.0,
            r_weight: 1e-3,
            disturbance: DisturbanceKind::None,
        };
        let law = ControlLawSpec::monolithic("lqr", 2, 1);
        let (alg, io) = law.to_algorithm().unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("ecu0", "arm");
        let p1 = arch.add_processor("ecu1", "arm");
        arch.add_bus("can", &[p0, p1], TimeNs::from_millis(2), us(10))
            .unwrap();
        let mut db = uniform_timing(&alg, &io, us(200), TimeNs::from_millis(5));
        for &s in io.sensors.iter().chain(&io.actuators) {
            db.forbid(s, p1);
        }
        db.forbid(io.stages[0], p0);
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        (spec, alg, io, schedule, arch)
    }

    #[test]
    fn faulty_run_with_trivial_plan_matches_run_scheduled_exactly() {
        use crate::faults::{FaultConfig, FaultPlan};
        let (spec, alg, io, schedule, arch) = split_fixture();
        let baseline = run_scheduled(&spec, &alg, &io, &schedule, &arch).unwrap();
        let periods = (spec.horizon / spec.ts).floor() as u32;
        let plan = FaultPlan::generate(
            &FaultConfig {
                seed: 123,
                ..FaultConfig::default()
            },
            &schedule,
            &arch,
            periods,
        )
        .unwrap();
        assert!(plan.is_trivial());
        let faulty = run_scheduled_faulty(&spec, &alg, &io, &schedule, &arch, plan).unwrap();
        // Bit-identical: same instants, same cost, same engine counters.
        assert_eq!(baseline.sample_instants, faulty.sample_instants);
        assert_eq!(baseline.actuation_instants, faulty.actuation_instants);
        assert!(baseline.cost == faulty.cost, "costs must be bit-identical");
        assert_eq!(baseline.stats, faulty.stats);
    }

    #[test]
    fn faulty_run_degrades_but_keeps_actuating() {
        use crate::faults::{FaultConfig, FaultPlan};
        let (spec, alg, io, schedule, arch) = split_fixture();
        let baseline = run_scheduled(&spec, &alg, &io, &schedule, &arch).unwrap();
        let periods = (spec.horizon / spec.ts).floor() as u32;
        // Every frame is dropped: the controller-side rendezvous is
        // forced at the end of each period, the holds keep stale values.
        let plan = FaultPlan::generate(
            &FaultConfig {
                frame_loss_rate: 1.0,
                max_retries: 1,
                ..FaultConfig::default()
            },
            &schedule,
            &arch,
            periods,
        )
        .unwrap();
        assert!(!plan.is_trivial());
        let faulty = run_scheduled_faulty(&spec, &alg, &io, &schedule, &arch, plan).unwrap();
        // The loop still actuates once per period — forced fires land a
        // period late, so the last one completes past the horizon.
        let baseline_n = baseline.actuation_instants[0].len();
        let faulty_n = faulty.actuation_instants[0].len();
        assert!(
            faulty_n >= baseline_n - 1 && faulty_n > 1,
            "degraded loop stopped actuating: {faulty_n} vs {baseline_n}"
        );
        // The strict report rejects the forced cross-period sampling; the
        // lenient one counts overruns instead.
        let rep = faulty.latency_report_lenient().unwrap();
        assert!(rep.total_overruns() > 0, "forced fires must overrun");
        // Acting on stale state costs control performance.
        assert!(
            faulty.cost > baseline.cost,
            "faulty {} vs baseline {}",
            faulty.cost,
            baseline.cost
        );
    }

    /// A memoized scheduled run is bit-identical to a fresh
    /// [`run_scheduled`], and the faulty variant to a fresh
    /// [`run_scheduled_faulty`]; nominal and faulty runs of the same
    /// deployment occupy distinct slots.
    #[test]
    fn scheduled_memo_equals_fresh_run_nominal_and_faulty() {
        use crate::faults::{FaultConfig, FaultPlan};
        let (spec, alg, io, schedule, arch) = split_fixture();
        let sched_digest = 0xdead_beef; // opaque to the memo; any stable tag
        let cache = ScheduledRunCache::new();
        assert!(cache.is_empty());

        let memo = cache
            .get_or_run(&spec, &alg, &io, &schedule, &arch, sched_digest, None)
            .unwrap();
        let again = cache
            .get_or_run(&spec, &alg, &io, &schedule, &arch, sched_digest, None)
            .unwrap();
        assert!(Arc::ptr_eq(&memo, &again));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        let fresh = run_scheduled(&spec, &alg, &io, &schedule, &arch).unwrap();
        assert_eq!(memo.cost.to_bits(), fresh.cost.to_bits());
        assert_eq!(memo.sample_instants, fresh.sample_instants);
        assert_eq!(memo.actuation_instants, fresh.actuation_instants);
        assert_eq!(memo.stats, fresh.stats);
        assert_eq!(memo.activity, fresh.activity);

        // A faulty run of the same deployment is a distinct slot and
        // bit-equals its own fresh run.
        let periods = (spec.horizon / spec.ts).floor() as u32;
        let plan = FaultPlan::generate(
            &FaultConfig {
                seed: 9,
                frame_loss_rate: 0.5,
                max_retries: 2,
                ..FaultConfig::default()
            },
            &schedule,
            &arch,
            periods,
        )
        .unwrap();
        assert!(!plan.is_trivial());
        let faulty_memo = cache
            .get_or_run(
                &spec,
                &alg,
                &io,
                &schedule,
                &arch,
                sched_digest,
                Some(&plan),
            )
            .unwrap();
        assert_eq!(cache.len(), 2);
        let faulty_fresh =
            run_scheduled_faulty(&spec, &alg, &io, &schedule, &arch, plan.clone()).unwrap();
        assert_eq!(faulty_memo.cost.to_bits(), faulty_fresh.cost.to_bits());
        assert_eq!(faulty_memo.sample_instants, faulty_fresh.sample_instants);
        assert_eq!(
            faulty_memo.actuation_instants,
            faulty_fresh.actuation_instants
        );
        assert_eq!(faulty_memo.stats, faulty_fresh.stats);

        // A different schedule digest must not alias, even with an
        // identical spec and plan.
        cache
            .get_or_run(&spec, &alg, &io, &schedule, &arch, sched_digest + 1, None)
            .unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.races(), 0, "serial lookups cannot double-compute");
    }

    /// The memo key separates nominal from faulty even when the plan is
    /// trivial: `run_scheduled_faulty` with a trivial plan is
    /// bit-identical to `run_scheduled`, but the key space must not rely
    /// on that — a presence marker keeps the mapping injective.
    #[test]
    fn scheduled_run_digest_marks_fault_plan_presence() {
        let spec = dc_motor_spec();
        let trivial = FaultPlan::trivial(10);
        let nominal = scheduled_run_digest(&spec, 1, None);
        let faulty = scheduled_run_digest(&spec, 1, Some(&trivial));
        assert_ne!(nominal, faulty);
        // And the key tracks each component.
        assert_ne!(nominal, scheduled_run_digest(&spec, 2, None));
        let mut scaled = spec.clone();
        scaled.ts *= 1.25;
        assert_ne!(nominal, scheduled_run_digest(&scaled, 1, None));
        let other_plan = FaultPlan::trivial(11);
        assert_ne!(
            faulty,
            scheduled_run_digest(&spec, 1, Some(&other_plan)),
            "plans with different digests must key differently"
        );
    }

    /// Digest-derived memo counters are exact under racing lookups,
    /// mirroring the `ScheduleCache`/`IdealRunCache` guarantee.
    #[test]
    fn scheduled_memo_counters_are_thread_exact() {
        let (mut spec, alg, io, schedule, arch) = split_fixture();
        spec.horizon = 0.25;
        let cache = Arc::new(ScheduledRunCache::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let (spec, alg, io, schedule, arch) = (&spec, &alg, &io, &schedule, &arch);
                scope.spawn(move || {
                    for _ in 0..4 {
                        cache
                            .get_or_run(spec, alg, io, schedule, arch, 7, None)
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!((cache.hits(), cache.misses()), (15, 1));
        assert_eq!(cache.lookups(), 16);
        assert_eq!(cache.len(), 1);
        // Races are bounded by the losing local misses: at most one per
        // thread beyond the winner.
        assert!(cache.races() <= 3);
    }

    #[test]
    fn traced_scheduled_run_streams_deterministic_telemetry() {
        use ecl_telemetry::RecordingSink;
        let spec = dc_motor_spec();
        let law = ControlLawSpec::monolithic("lqr", 2, 1);
        let (alg, io) = law.to_algorithm().unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("ecu0", "arm");
        let p1 = arch.add_processor("ecu1", "arm");
        arch.add_bus("can", &[p0, p1], TimeNs::from_millis(2), us(10))
            .unwrap();
        let mut db = uniform_timing(&alg, &io, us(200), TimeNs::from_millis(5));
        for &s in io.sensors.iter().chain(&io.actuators) {
            db.forbid(s, p1);
        }
        db.forbid(io.stages[0], p0);
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();

        let run_once = || {
            let mut tel = Collector::new(RecordingSink::default());
            let r = run_scheduled_traced(&spec, &alg, &io, &schedule, &arch, &mut tel).unwrap();
            (r, tel.into_sink())
        };
        let (r, sink) = run_once();

        // Timeline slices cover every op and comm of every period.
        let periods = (spec.horizon / spec.ts).floor() as usize;
        let n_slices = sink
            .events()
            .iter()
            .filter(|e| matches!(e, ecl_telemetry::Event::Slice { .. }))
            .count();
        assert_eq!(
            n_slices,
            periods * (schedule.ops().len() + schedule.comms().len())
        );
        // One latency counter per I/O per recorded period.
        let n_counters = sink
            .events()
            .iter()
            .filter(|e| matches!(e, ecl_telemetry::Event::Counter { .. }))
            .count();
        let n_observations: usize = r
            .sample_instants
            .iter()
            .chain(&r.actuation_instants)
            .map(Vec::len)
            .sum();
        assert_eq!(n_counters, n_observations);
        // No wall-clock events: the stream is fully sim-derived.
        assert!(!sink.events().iter().any(|e| matches!(
            e,
            ecl_telemetry::Event::SpanBegin { .. } | ecl_telemetry::Event::SpanEnd { .. }
        )));

        // Histograms agree with the exact latency statistics.
        let rep = r.latency_report().unwrap();
        for (series, hist) in rep
            .sampling
            .iter()
            .zip(&r.sampling_hist)
            .chain(rep.actuation.iter().zip(&r.actuation_hist))
        {
            let st = series.stats().unwrap();
            assert_eq!(hist.count(), series.len() as u64);
            assert_eq!(hist.min(), Some(st.min.as_nanos()));
            assert_eq!(hist.max(), Some(st.max.as_nanos()));
            let sm = hist.summary();
            assert!((sm.mean_ns - st.mean.as_nanos() as f64).abs() <= 1.0);
            assert!(sm.min_ns <= sm.p50_ns && sm.p50_ns <= sm.p95_ns);
            assert!(sm.p95_ns <= sm.p99_ns && sm.p99_ns <= sm.max_ns);
        }

        // Hot-loop counters and activity are populated.
        assert!(r.stats.events_delivered > 0);
        assert!(r.stats.ode.steps_accepted > 0);
        assert!(!r.activity.is_empty());
        assert!(r.activity.windows(2).all(|w| w[0].1 >= w[1].1));

        // Byte-identical across identical runs.
        let (r2, sink2) = run_once();
        assert_eq!(sink.render(), sink2.render());
        assert_eq!(r.stats, r2.stats);
    }

    #[test]
    fn spec_validation_catches_shape_errors() {
        let mut spec = dc_motor_spec();
        spec.x0 = vec![1.0];
        assert!(run_ideal(&spec).is_err());
        let mut spec = dc_motor_spec();
        spec.feedback = Mat::zeros(2, 2);
        assert!(run_ideal(&spec).is_err());
        let mut spec = dc_motor_spec();
        spec.n_controls = 5;
        assert!(run_ideal(&spec).is_err());
        let mut spec = dc_motor_spec();
        spec.ts = 0.0;
        assert!(run_ideal(&spec).is_err());
        let mut spec = dc_motor_spec();
        spec.input_memory = Some(Mat::zeros(2, 2));
        assert!(run_ideal(&spec).is_err());
    }

    #[test]
    fn io_shape_mismatch_rejected() {
        let spec = dc_motor_spec();
        let law = ControlLawSpec::monolithic("lqr", 1, 1); // 1 sensor != 2 states
        let (alg, io) = law.to_algorithm().unwrap();
        let mut arch = ArchitectureGraph::new();
        arch.add_processor("ecu0", "arm");
        let db = uniform_timing(&alg, &io, us(10), us(10));
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        assert!(run_scheduled(&spec, &alg, &io, &schedule, &arch).is_err());
    }

    #[test]
    fn noise_disturbance_excites_quarter_car() {
        let plant = plants::quarter_car();
        let dss = c2d_zoh(&plant.sys, plant.ts).unwrap();
        let lqr = dlqr(
            &dss,
            &Mat::identity(4),
            &Mat::from_rows(&[&[1e-4, 0.0], &[0.0, 1e-4]]).unwrap(),
        )
        .unwrap();
        let spec = LoopSpec {
            plant: plant.sys,
            n_controls: 1,
            x0: vec![0.0; 4],
            feedback: lqr.k.block(0, 0, 1, 4).unwrap(),
            input_memory: None,
            ts: plant.ts,
            horizon: 0.5,
            q_weight: 1.0,
            r_weight: 1e-6,
            disturbance: DisturbanceKind::Noise {
                std_dev: 0.5,
                seed: 9,
            },
        };
        let r = run_ideal(&spec).unwrap();
        // Road noise produces non-zero motion from a zero initial state.
        assert!(r.cost > 0.0, "cost {}", r.cost);
    }

    #[test]
    fn input_memory_controller_shape() {
        let mut spec = dc_motor_spec();
        spec.input_memory = Some(Mat::diag(&[0.1]));
        let r = run_ideal(&spec).unwrap();
        assert!(r.cost.is_finite());
    }

    fn lqg_spec() -> OutputLoopSpec {
        use ecl_control::{kalman, lqg};
        let plant = plants::dc_motor();
        let dss = c2d_zoh(&plant.sys, plant.ts).unwrap();
        let gain = dlqr(&dss, &Mat::diag(&[10.0, 1.0]), &Mat::diag(&[1e-2])).unwrap();
        let kf = kalman::design(&dss, &Mat::identity(2).scaled(1e-4), &Mat::diag(&[1e-4])).unwrap();
        let comp = lqg::compensator(&dss, &gain, &kf).unwrap();
        OutputLoopSpec {
            plant: plant.sys,
            n_controls: 1,
            x0: vec![1.0, 0.0],
            compensator: comp,
            ts: plant.ts,
            horizon: 2.0,
            q_weight: 1.0,
            r_weight: 1e-2,
            disturbance: DisturbanceKind::None,
        }
    }

    #[test]
    fn lqg_output_feedback_regulates() {
        let spec = lqg_spec();
        let r = run_output_ideal(&spec).unwrap();
        let y = r.result.signal("x0").unwrap();
        assert!(y.values()[0] > 0.9);
        assert!(
            y.last().unwrap().1.abs() < 0.05,
            "output did not regulate: {}",
            y.last().unwrap().1
        );
        // One sampling per period per measured output (only 1 here).
        assert_eq!(r.sample_instants.len(), 1);
        let rep = r.latency_report().unwrap();
        assert_eq!(rep.mean_actuation(), TimeNs::ZERO);
    }

    #[test]
    fn lqg_scheduled_shows_latency_degradation() {
        let spec = lqg_spec();
        let ideal = run_output_ideal(&spec).unwrap();
        // One sensor (the measured speed), one actuator, over the split
        // 2-ECU target with heavy latency.
        let law = ControlLawSpec::monolithic("lqg", 1, 1);
        let (alg, io) = law.to_algorithm().unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("ecu0", "arm");
        let p1 = arch.add_processor("ecu1", "arm");
        arch.add_bus("can", &[p0, p1], TimeNs::from_millis(8), us(10))
            .unwrap();
        let mut db = uniform_timing(&alg, &io, us(200), TimeNs::from_millis(18));
        for &s in io.sensors.iter().chain(&io.actuators) {
            db.forbid(s, p1);
        }
        db.forbid(io.stages[0], p0);
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        let run = run_output_scheduled(&spec, &alg, &io, &schedule, &arch).unwrap();
        assert!(
            run.cost > ideal.cost,
            "ideal {} vs implemented {}",
            ideal.cost,
            run.cost
        );
        let rep = run.latency_report().unwrap();
        assert!(rep.mean_actuation() > TimeNs::from_millis(20));
    }

    #[test]
    fn output_spec_validation() {
        let good = lqg_spec();
        let mut bad = good.clone();
        bad.n_controls = 2;
        assert!(run_output_ideal(&bad).is_err());
        let mut bad = good.clone();
        bad.x0 = vec![0.0];
        assert!(run_output_ideal(&bad).is_err());
        let mut bad = good.clone();
        bad.ts = good.ts * 2.0; // disagrees with the compensator period
        assert!(run_output_ideal(&bad).is_err());
        // Sensor-count mismatch in the scheduled variant.
        let law = ControlLawSpec::monolithic("lqg", 2, 1); // 2 sensors != 1 output
        let (alg, io) = law.to_algorithm().unwrap();
        let mut arch = ArchitectureGraph::new();
        arch.add_processor("ecu0", "arm");
        let db = uniform_timing(&alg, &io, us(10), us(10));
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        assert!(run_output_scheduled(&good, &alg, &io, &schedule, &arch).is_err());
    }
}
