use std::error::Error;
use std::fmt;

use ecl_aaa::AaaError;
use ecl_blocks::BlockError;
use ecl_control::ControlError;
use ecl_linalg::LinalgError;
use ecl_sim::SimError;

/// Errors produced by the methodology layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A simulation-model construction or execution failure.
    Sim(SimError),
    /// An AAA (algorithm/architecture/adequation) failure.
    Aaa(AaaError),
    /// A control-synthesis failure.
    Control(ControlError),
    /// A block-construction failure.
    Block(BlockError),
    /// A linear-algebra failure.
    Linalg(LinalgError),
    /// The methodology inputs were inconsistent (schedule longer than the
    /// period, missing condition source, ...).
    InvalidInput {
        /// Explanation of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
            CoreError::Aaa(e) => write!(f, "adequation error: {e}"),
            CoreError::Control(e) => write!(f, "control synthesis error: {e}"),
            CoreError::Block(e) => write!(f, "block error: {e}"),
            CoreError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            CoreError::InvalidInput { reason } => write!(f, "invalid methodology input: {reason}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            CoreError::Aaa(e) => Some(e),
            CoreError::Control(e) => Some(e),
            CoreError::Block(e) => Some(e),
            CoreError::Linalg(e) => Some(e),
            CoreError::InvalidInput { .. } => None,
        }
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}
impl From<AaaError> for CoreError {
    fn from(e: AaaError) -> Self {
        CoreError::Aaa(e)
    }
}
impl From<ControlError> for CoreError {
    fn from(e: ControlError) -> Self {
        CoreError::Control(e)
    }
}
impl From<BlockError> for CoreError {
    fn from(e: BlockError) -> Self {
        CoreError::Block(e)
    }
}
impl From<LinalgError> for CoreError {
    fn from(e: LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = SimError::UnknownBlock { index: 0 }.into();
        assert!(e.to_string().contains("simulation"));
        assert!(Error::source(&e).is_some());
        let e: CoreError = AaaError::UnknownOp { index: 0 }.into();
        assert!(e.to_string().contains("adequation"));
        let e: CoreError = LinalgError::Singular { pivot: 0 }.into();
        assert!(e.to_string().contains("linear algebra"));
        let e = CoreError::InvalidInput { reason: "x".into() };
        assert!(Error::source(&e).is_none());
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
