//! Closed time intervals `[lo, hi]` — the abstract domain of the
//! fault-envelope analysis (DESIGN.md §15).
//!
//! An interval abstracts the set of instants an event can occur at under
//! *any* fault plan drawn from a [`FaultFamily`](crate::faults::FaultFamily):
//! the concrete instant of every family member must lie inside it. The
//! operations mirror what the abstract interpreter needs — shifting by a
//! slot duration, widening the upper bound by a retry stretch, and the
//! pointwise join/meet used at synchronization barriers — and each one
//! preserves the `lo <= hi` invariant by construction.

use std::fmt;

use ecl_aaa::TimeNs;

/// A closed interval `[lo, hi]` of instants, `lo <= hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeInterval {
    lo: TimeNs,
    hi: TimeNs,
}

impl TimeInterval {
    /// The interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` — an inverted interval is always a logic error
    /// in the caller, never a recoverable condition.
    pub fn new(lo: TimeNs, hi: TimeNs) -> TimeInterval {
        assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        TimeInterval { lo, hi }
    }

    /// The degenerate interval `[t, t]` — an exactly-known instant.
    pub fn point(t: TimeNs) -> TimeInterval {
        TimeInterval { lo: t, hi: t }
    }

    /// Lower bound.
    pub fn lo(&self) -> TimeNs {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> TimeNs {
        self.hi
    }

    /// Width `hi - lo` — zero iff the instant is exactly known.
    pub fn width(&self) -> TimeNs {
        self.hi - self.lo
    }

    /// `true` iff `t` lies inside the interval.
    pub fn contains(&self, t: TimeNs) -> bool {
        self.lo <= t && t <= self.hi
    }

    /// Both bounds shifted by `d` (a slot or transfer duration).
    pub fn shift(&self, d: TimeNs) -> TimeInterval {
        TimeInterval {
            lo: self.lo + d,
            hi: self.hi + d,
        }
    }

    /// The upper bound widened by `d >= 0` (a worst-case retry stretch);
    /// the lower bound is untouched.
    pub fn stretch_hi(&self, d: TimeNs) -> TimeInterval {
        TimeInterval {
            lo: self.lo,
            hi: self.hi + d,
        }
    }

    /// The convex hull of two intervals — the join of the domain.
    pub fn hull(&self, other: &TimeInterval) -> TimeInterval {
        TimeInterval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: i64) -> TimeNs {
        TimeNs::from_nanos(v)
    }

    #[test]
    fn construction_and_accessors() {
        let iv = TimeInterval::new(ns(3), ns(9));
        assert_eq!(iv.lo(), ns(3));
        assert_eq!(iv.hi(), ns(9));
        assert_eq!(iv.width(), ns(6));
        let p = TimeInterval::point(ns(5));
        assert_eq!(p.width(), TimeNs::ZERO);
        assert!(p.contains(ns(5)));
        assert!(!p.contains(ns(6)));
    }

    #[test]
    #[should_panic(expected = "inverted interval")]
    fn inverted_interval_panics() {
        let _ = TimeInterval::new(ns(2), ns(1));
    }

    #[test]
    fn shift_and_stretch_preserve_invariants() {
        let iv = TimeInterval::new(ns(10), ns(20)).shift(ns(5));
        assert_eq!(iv, TimeInterval::new(ns(15), ns(25)));
        let wide = iv.stretch_hi(ns(7));
        assert_eq!(wide.lo(), ns(15));
        assert_eq!(wide.hi(), ns(32));
    }

    #[test]
    fn hull_is_the_convex_join() {
        let a = TimeInterval::new(ns(1), ns(4));
        let b = TimeInterval::new(ns(3), ns(9));
        let h = a.hull(&b);
        assert_eq!(h, TimeInterval::new(ns(1), ns(9)));
        // Hull with a disjoint interval spans the gap.
        let c = TimeInterval::new(ns(20), ns(21));
        assert_eq!(a.hull(&c), TimeInterval::new(ns(1), ns(21)));
        // Commutative.
        assert_eq!(a.hull(&b), b.hull(&a));
    }

    #[test]
    fn display_renders_both_bounds() {
        let iv = TimeInterval::new(ns(1), ns(2));
        assert_eq!(format!("{iv}"), "[1ns, 2ns]");
    }
}
