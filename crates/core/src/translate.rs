//! Automatic translation of a discrete control law into a SynDEx algorithm
//! graph (the ECLIPSE Scicos→SynDEx translator).
//!
//! The control engineer's discrete sub-diagram — `p` sampled inputs, a set
//! of computation stages, `m` actuated outputs — maps structurally onto an
//! [`AlgorithmGraph`]: one *sensor* operation per controller input, one
//! *function* operation per computation stage, one *actuator* operation per
//! controller output. The returned [`IoMap`] remembers which operation
//! plays which role so the graph-of-delays synthesis can re-activate the
//! right Sample/Hold blocks.

use ecl_aaa::{AlgorithmGraph, OpId, TimeNs, TimingDb};

use crate::CoreError;

/// Correspondence between the control law's I/O and the operations of the
/// translated algorithm graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoMap {
    /// One sensor operation per controller input, in input order
    /// (`j = 0..p` of the paper's `Ls_j`).
    pub sensors: Vec<OpId>,
    /// The computation stages, in declaration order.
    pub stages: Vec<OpId>,
    /// One actuator operation per controller output, in output order
    /// (`j = 0..m` of the paper's `La_j`).
    pub actuators: Vec<OpId>,
}

/// Declarative description of a control law's computational structure.
///
/// The simplest law is [`ControlLawSpec::monolithic`]: every input feeds
/// one computation which feeds every output. Multi-stage laws add named
/// stages with explicit dependencies (e.g. a filter stage per input before
/// the control stage), which gives the adequation parallelism to exploit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlLawSpec {
    name: String,
    inputs: Vec<String>,
    outputs: Vec<String>,
    /// `(name, input dependencies, stage dependencies)`.
    stages: Vec<(String, Vec<usize>, Vec<usize>)>,
    /// For each output: the stage producing it.
    output_sources: Vec<usize>,
    /// Data units carried by every edge.
    data_units: u32,
}

impl ControlLawSpec {
    /// A single-stage law: `p` inputs → one computation → `m` outputs.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` or `m == 0` — a control law must sample and
    /// actuate something.
    pub fn monolithic(name: impl Into<String>, p: usize, m: usize) -> Self {
        assert!(p > 0 && m > 0, "control law needs inputs and outputs");
        let name = name.into();
        ControlLawSpec {
            inputs: (0..p).map(|j| format!("{name}_in{j}")).collect(),
            outputs: (0..m).map(|j| format!("{name}_out{j}")).collect(),
            stages: vec![(format!("{name}_step"), (0..p).collect(), vec![])],
            output_sources: vec![0; m],
            data_units: 4,
            name,
        }
    }

    /// A pipelined law: one pre-filter stage per input, all feeding the
    /// control stage — the shape that benefits from a distributed
    /// implementation.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` or `m == 0`.
    pub fn filtered(name: impl Into<String>, p: usize, m: usize) -> Self {
        assert!(p > 0 && m > 0, "control law needs inputs and outputs");
        let name = name.into();
        let mut stages: Vec<(String, Vec<usize>, Vec<usize>)> = (0..p)
            .map(|j| (format!("{name}_filter{j}"), vec![j], vec![]))
            .collect();
        stages.push((format!("{name}_step"), vec![], (0..p).collect()));
        ControlLawSpec {
            inputs: (0..p).map(|j| format!("{name}_in{j}")).collect(),
            outputs: (0..m).map(|j| format!("{name}_out{j}")).collect(),
            output_sources: vec![p; m],
            stages,
            data_units: 4,
            name,
        }
    }

    /// Sets the data volume (in media units) carried by every edge,
    /// builder-style.
    pub fn with_data_units(mut self, units: u32) -> Self {
        self.data_units = units;
        self
    }

    /// The law's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of sampled inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of actuated outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Translates the law into an algorithm graph plus its [`IoMap`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if a stage or output references
    /// a non-existent dependency (only possible with hand-built specs).
    pub fn to_algorithm(&self) -> Result<(AlgorithmGraph, IoMap), CoreError> {
        let mut alg = AlgorithmGraph::new();
        let mut io = IoMap::default();
        for name in &self.inputs {
            io.sensors.push(alg.add_sensor(name.clone()));
        }
        for (name, input_deps, stage_deps) in &self.stages {
            let op = alg.add_function(name.clone());
            for &j in input_deps {
                let s = *self.lookup(&io.sensors, j, "input")?;
                alg.add_edge(s, op, self.data_units)?;
            }
            for &k in stage_deps {
                let s = *self.lookup(&io.stages, k, "stage")?;
                alg.add_edge(s, op, self.data_units)?;
            }
            io.stages.push(op);
        }
        for (j, name) in self.outputs.iter().enumerate() {
            let op = alg.add_actuator(name.clone());
            let src = *self.lookup(&io.stages, self.output_sources[j], "output source")?;
            alg.add_edge(src, op, self.data_units)?;
            io.actuators.push(op);
        }
        Ok((alg, io))
    }

    fn lookup<'a>(&self, v: &'a [OpId], idx: usize, what: &str) -> Result<&'a OpId, CoreError> {
        v.get(idx).ok_or_else(|| CoreError::InvalidInput {
            reason: format!("{what} index {idx} out of range in law '{}'", self.name),
        })
    }
}

/// Convenience: builds a uniform WCET table for a translated law — sensors
/// and actuators cost `io_wcet` (driver + conversion), each computation
/// stage costs `compute_wcet`.
pub fn uniform_timing(
    alg: &AlgorithmGraph,
    io: &IoMap,
    io_wcet: TimeNs,
    compute_wcet: TimeNs,
) -> TimingDb {
    let mut db = TimingDb::new();
    for &s in io.sensors.iter().chain(&io.actuators) {
        db.set_default(s, io_wcet);
    }
    for &f in &io.stages {
        db.set_default(f, compute_wcet);
    }
    let _ = alg;
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_aaa::OpKind;

    #[test]
    fn monolithic_structure() {
        let spec = ControlLawSpec::monolithic("pid", 2, 1);
        let (alg, io) = spec.to_algorithm().unwrap();
        assert_eq!(io.sensors.len(), 2);
        assert_eq!(io.stages.len(), 1);
        assert_eq!(io.actuators.len(), 1);
        assert_eq!(alg.len(), 4);
        // sensors -> stage -> actuator
        assert_eq!(alg.preds(io.stages[0]).len(), 2);
        assert_eq!(alg.preds(io.actuators[0]), vec![io.stages[0]]);
        assert_eq!(alg.kind(io.sensors[0]), OpKind::Sensor);
        assert_eq!(alg.kind(io.actuators[0]), OpKind::Actuator);
        assert!(alg.topo_order().is_ok());
        assert_eq!(spec.num_inputs(), 2);
        assert_eq!(spec.num_outputs(), 1);
        assert_eq!(spec.name(), "pid");
    }

    #[test]
    fn filtered_structure_has_parallel_prefilters() {
        let spec = ControlLawSpec::filtered("lqr", 3, 2);
        let (alg, io) = spec.to_algorithm().unwrap();
        assert_eq!(io.stages.len(), 4); // 3 filters + 1 step
        let step = io.stages[3];
        assert_eq!(alg.preds(step).len(), 3);
        // Each filter depends on exactly one sensor: they can run in
        // parallel on different processors.
        for k in 0..3 {
            assert_eq!(alg.preds(io.stages[k]), vec![io.sensors[k]]);
        }
        // Both actuators read from the final stage.
        for &a in &io.actuators {
            assert_eq!(alg.preds(a), vec![step]);
        }
    }

    #[test]
    fn data_units_applied_to_edges() {
        let spec = ControlLawSpec::monolithic("c", 1, 1).with_data_units(16);
        let (alg, _) = spec.to_algorithm().unwrap();
        assert!(alg.edges().iter().all(|e| e.data_units == 16));
    }

    #[test]
    fn uniform_timing_covers_all_ops() {
        let spec = ControlLawSpec::monolithic("c", 2, 1);
        let (alg, io) = spec.to_algorithm().unwrap();
        let db = uniform_timing(&alg, &io, TimeNs::from_micros(20), TimeNs::from_micros(300));
        // Every op has a WCET on an arbitrary processor id.
        let mut arch = ecl_aaa::ArchitectureGraph::new();
        let p = arch.add_processor("p", "arm");
        for op in alg.ops() {
            assert!(db.wcet(op, p).is_some(), "missing wcet for {op}");
        }
        assert_eq!(db.wcet(io.stages[0], p), Some(TimeNs::from_micros(300)));
    }

    #[test]
    #[should_panic(expected = "needs inputs")]
    fn zero_inputs_panic() {
        let _ = ControlLawSpec::monolithic("x", 0, 1);
    }
}
