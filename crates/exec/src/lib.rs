//! Concurrent virtual distributed executive.
//!
//! The AAA pipeline generates, per processor, a synchronized instruction
//! sequence ([`ecl_aaa::codegen::Executive`]) and, per medium, a total
//! order of transfers ([`ecl_aaa::codegen::MediumSequence`]). The graph
//! of delays (`ecl_core::delays`) *predicts* when each operation of that
//! code would complete; this crate *measures* it by actually running the
//! generated code: [`run`] launches one OS thread per processor and one
//! per medium, synchronized through rendezvous boards keyed on
//! `(period, producer, sender, medium)`.
//!
//! # The virtual-clock protocol
//!
//! No thread ever reads a wall clock. Each processor thread carries a
//! *local virtual clock* that restarts at `k·P` each period `k`,
//! advances by the WCET on every `Compute`, and max-merges with the
//! transfer's arrival instant on every `Recv`; a `Send` posts the
//! producer's data stamped with the local clock (posting is
//! non-blocking, as in the generated code). Each medium thread replays
//! its communication sequence in order: a transfer starts at
//! `max(data ready, medium free)` and arrives after the medium's
//! latency-plus-rate time. Every timestamp is therefore a pure max/plus
//! fold over the executives, the architecture timing and the fault
//! plan — the OS scheduler decides only *when* the folds happen, never
//! their *values*, so runs are byte-deterministic and wall-clock-free
//! at any level of genuine hardware parallelism.
//!
//! # Fault semantics
//!
//! An optional [`FaultPlan`](ecl_core::faults::FaultPlan) — the same
//! plan that drives the graph of delays' `FaultyDelay` blocks — drives
//! the boards: a dropped transfer posts no arrival (its consumers and
//! the medium's next slot are *forced* at the period's deadline
//! `k·P + P − 1ns`, mirroring the graph's `Synchronization` timeout
//! arms), a retried transfer stretches by `retries · retry cost`, and a
//! dead processor executes nothing from its failure period on. Because
//! every fate is precomputed from the shared plan, a receive knows
//! *before blocking* whether its arrival will ever be posted — the VM
//! cannot hang on an injected fault.
//!
//! Divergence boundaries (where the VM is *not* expected to mirror the
//! graph of delays) are documented in `DESIGN.md` §9: completions
//! crossing a period's deadline pollute the graph's synchronization
//! flags for the next window, while the VM scopes every rendezvous to
//! its own period.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::sync::{Condvar, Mutex};

use ecl_aaa::codegen::{check_deadlock_free, Executive, Generated, Instr, MediumSequence};
use ecl_aaa::{AlgorithmGraph, ArchitectureGraph, MediumId, OpId, ProcId, Schedule, TimeNs};
use ecl_core::faults::{CommFault, FaultPlan};
use ecl_core::xval::OpTimeline;
use ecl_telemetry::Event;

/// How to drive a [`run`].
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions<'a> {
    /// The sampling period `P` the infinite loop is re-entered at.
    pub period: TimeNs,
    /// How many periods to execute.
    pub periods: u32,
    /// Optional fault plan; a trivial (or absent) plan runs nominally.
    pub faults: Option<&'a FaultPlan>,
}

/// Why a [`run`] refused to launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The executives fail the pre-launch deadlock check; the message
    /// names the blocked receives and the wait cycle.
    Deadlock(String),
    /// The executives, communication sequences and schedule are
    /// mutually inconsistent (a receive with no matching transfer, a
    /// transfer with no matching send, sequences that do not match the
    /// schedule's medium orders, a non-positive period).
    InvalidInput(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Deadlock(d) => write!(f, "executives would hang: {d}"),
            ExecError::InvalidInput(r) => write!(f, "invalid executive input: {r}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// One measured computation: operation `op` ran on `proc` in period
/// `period` over `[start, end)` of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// The operation computed.
    pub op: OpId,
    /// The hosting processor.
    pub proc: ProcId,
    /// The period index `k`.
    pub period: u32,
    /// Virtual start instant.
    pub start: TimeNs,
    /// Virtual completion instant (`start + wcet`).
    pub end: TimeNs,
    /// `true` if an input never arrived (or arrived past the deadline)
    /// and the computation was forced at `k·P + P − 1ns` on stale data.
    pub forced: bool,
}

/// One measured transfer over a medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommRecord {
    /// Producer whose data moved.
    pub src_op: OpId,
    /// The carrying medium.
    pub medium: MediumId,
    /// Sending processor.
    pub from: ProcId,
    /// Scheduled receiving processor.
    pub to: ProcId,
    /// The period index `k`.
    pub period: u32,
    /// Virtual activation instant of the transfer.
    pub start: TimeNs,
    /// Virtual arrival instant (including retransmissions).
    pub end: TimeNs,
}

/// Everything a [`run`] measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecRun {
    /// The period the run was driven at.
    pub period: TimeNs,
    /// Number of periods executed.
    pub periods: u32,
    /// Every computation, grouped by processor (in processor order),
    /// each group in execution order.
    pub ops: Vec<OpRecord>,
    /// Every completed (non-dropped) transfer, grouped by medium (in
    /// medium order), each group in sequence order.
    pub comms: Vec<CommRecord>,
}

impl ExecRun {
    /// The run horizon `periods · period`.
    pub fn horizon(&self) -> TimeNs {
        self.period * i64::from(self.periods)
    }

    /// Completion instants of `op`, ascending, truncated to the horizon.
    pub fn op_completions(&self, op: OpId) -> Vec<TimeNs> {
        let horizon = self.horizon();
        let mut v: Vec<TimeNs> = self
            .ops
            .iter()
            .filter(|r| r.op == op && r.end < horizon)
            .map(|r| r.end)
            .collect();
        v.sort();
        v
    }

    /// The measured per-operation completion timeline, in the shape the
    /// cross-validation ([`ecl_core::xval::validate_schedule`]) compares
    /// against the graph-of-delays prediction.
    pub fn timeline(&self) -> OpTimeline {
        let horizon = self.horizon();
        let mut series: Vec<(OpId, Vec<TimeNs>)> = Vec::new();
        for r in &self.ops {
            if r.end >= horizon {
                continue;
            }
            match series.iter_mut().find(|(op, _)| *op == r.op) {
                Some((_, s)) => s.push(r.end),
                None => series.push((r.op, vec![r.end])),
            }
        }
        for (_, s) in &mut series {
            s.sort();
        }
        series.sort_by_key(|(op, _)| op.index());
        OpTimeline {
            period: self.period,
            periods: self.periods,
            series,
        }
    }

    /// Exports the run as telemetry slices (virtual-time spans): one
    /// `vm:proc:<name>` track per processor, one `vm:bus:<name>` track
    /// per medium — the measured counterpart of `ecl_aaa::timeline`.
    pub fn trace_events(&self, alg: &AlgorithmGraph, arch: &ArchitectureGraph) -> Vec<Event> {
        let mut events = Vec::with_capacity(self.ops.len() + self.comms.len());
        for r in &self.ops {
            events.push(Event::Slice {
                track: format!("vm:proc:{}", arch.proc_name(r.proc)),
                name: alg.name(r.op).to_string(),
                start_ns: r.start.as_nanos(),
                end_ns: r.end.as_nanos(),
            });
        }
        for c in &self.comms {
            events.push(Event::Slice {
                track: format!("vm:bus:{}", arch.medium_name(c.medium)),
                name: format!(
                    "{}:{}->{}",
                    alg.name(c.src_op),
                    arch.proc_name(c.from),
                    arch.proc_name(c.to)
                ),
                start_ns: c.start.as_nanos(),
                end_ns: c.end.as_nanos(),
            });
        }
        events
    }
}

/// A rendezvous board: the first post for a key wins (matching the
/// replay's `or_insert` semantics), waiters block on the condvar until
/// their key appears.
#[derive(Default)]
struct Board {
    map: Mutex<HashMap<(u32, OpId, ProcId, MediumId), TimeNs>>,
    cv: Condvar,
}

impl Board {
    fn post(&self, key: (u32, OpId, ProcId, MediumId), t: TimeNs) {
        let mut map = self.map.lock().expect("board poisoned");
        map.entry(key).or_insert(t);
        self.cv.notify_all();
    }

    fn wait(&self, key: (u32, OpId, ProcId, MediumId)) -> TimeNs {
        let mut map = self.map.lock().expect("board poisoned");
        loop {
            if let Some(&t) = map.get(&key) {
                return t;
            }
            map = self.cv.wait(map).expect("board poisoned");
        }
    }
}

/// Executes the generated code concurrently for `opts.periods` periods
/// and returns every measured computation and transfer.
///
/// `schedule` must be the schedule the executives were generated from:
/// it carries the per-medium transfer order and slot durations that the
/// fault plan's fates are indexed by (the same indexing the graph of
/// delays uses, so a shared plan drives both models identically).
///
/// # Errors
///
/// * [`ExecError::Deadlock`] if the pre-launch [`check_deadlock_free`]
///   finds a cyclic or orphan wait — nothing is spawned;
/// * [`ExecError::InvalidInput`] if the executives, sequences and
///   schedule are mutually inconsistent (which could otherwise hang a
///   board wait forever).
pub fn run(
    generated: &Generated,
    arch: &ArchitectureGraph,
    schedule: &Schedule,
    opts: &ExecOptions<'_>,
) -> Result<ExecRun, ExecError> {
    if opts.period <= TimeNs::ZERO {
        return Err(ExecError::InvalidInput(format!(
            "period {} is not positive",
            opts.period
        )));
    }
    let check = check_deadlock_free(&generated.executives);
    if !check.is_free() {
        return Err(ExecError::Deadlock(check.to_string()));
    }
    let slot_index = map_slots_to_schedule(generated, schedule)?;
    // Transfers delivering each (producer, sender, medium) key, as
    // global communication indices — the fate lookup for receives.
    let mut delivering: HashMap<(OpId, ProcId, MediumId), Vec<usize>> = HashMap::new();
    for (si, seq) in generated.comm_sequences.iter().enumerate() {
        for (pos, t) in seq.transfers.iter().enumerate() {
            delivering
                .entry((t.src_op, t.from, seq.medium))
                .or_default()
                .push(slot_index[si][pos]);
        }
    }
    for e in &generated.executives {
        for ins in &e.instrs {
            if let Instr::Recv {
                src_op,
                medium,
                from,
            } = *ins
            {
                if !delivering.contains_key(&(src_op, from, medium)) {
                    return Err(ExecError::InvalidInput(format!(
                        "{} receives {} from {} on {} but no transfer delivers it",
                        e.proc, src_op, from, medium
                    )));
                }
            }
        }
    }
    for seq in &generated.comm_sequences {
        for t in &seq.transfers {
            let sent = generated.executives.iter().any(|e| {
                e.proc == t.from
                    && e.instrs.iter().any(|i| {
                        matches!(i, Instr::Send { src_op, medium, .. }
                            if *src_op == t.src_op && *medium == seq.medium)
                    })
            });
            if !sent {
                return Err(ExecError::InvalidInput(format!(
                    "transfer of {} from {} on {} has no matching send",
                    t.src_op, t.from, seq.medium
                )));
            }
        }
    }

    let plan: Option<&FaultPlan> = opts.faults.filter(|p| !p.is_trivial());
    let posted = Board::default();
    let arrived = Board::default();
    let (period, periods) = (opts.period, opts.periods);

    let (ops, comms) = std::thread::scope(|scope| {
        let proc_handles: Vec<_> = generated
            .executives
            .iter()
            .map(|e| {
                let (posted, arrived, delivering) = (&posted, &arrived, &delivering);
                scope.spawn(move || {
                    run_processor(e, plan, delivering, posted, arrived, period, periods)
                })
            })
            .collect();
        let comm_handles: Vec<_> = generated
            .comm_sequences
            .iter()
            .zip(&slot_index)
            .map(|(seq, slots)| {
                let (posted, arrived) = (&posted, &arrived);
                scope.spawn(move || {
                    run_medium(
                        seq, slots, schedule, arch, plan, posted, arrived, period, periods,
                    )
                })
            })
            .collect();
        // Joining in spawn order makes the record concatenation (and so
        // the whole `ExecRun`) independent of thread scheduling.
        let ops = proc_handles
            .into_iter()
            .flat_map(|h| h.join().expect("processor thread panicked"))
            .collect();
        let comms = comm_handles
            .into_iter()
            .flat_map(|h| h.join().expect("medium thread panicked"))
            .collect();
        (ops, comms)
    });
    Ok(ExecRun {
        period,
        periods,
        ops,
        comms,
    })
}

/// Maps every medium-sequence slot to its global index in
/// `schedule.comms()` — the indexing fault fates use — and verifies the
/// sequences are exactly the schedule's per-medium orders.
fn map_slots_to_schedule(
    generated: &Generated,
    schedule: &Schedule,
) -> Result<Vec<Vec<usize>>, ExecError> {
    let mut slot_index = Vec::with_capacity(generated.comm_sequences.len());
    for seq in &generated.comm_sequences {
        let scheduled: Vec<usize> = schedule
            .comms()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.medium == seq.medium)
            .map(|(i, _)| i)
            .collect();
        if scheduled.len() != seq.transfers.len() {
            return Err(ExecError::InvalidInput(format!(
                "medium {} sequences {} transfers but the schedule has {}",
                seq.medium,
                seq.transfers.len(),
                scheduled.len()
            )));
        }
        for (&i, t) in scheduled.iter().zip(&seq.transfers) {
            let c = &schedule.comms()[i];
            if c.src_op != t.src_op || c.from != t.from || c.to != t.to {
                return Err(ExecError::InvalidInput(format!(
                    "transfer of {} from {} on {} does not match schedule slot {}",
                    t.src_op, t.from, seq.medium, i
                )));
            }
        }
        slot_index.push(scheduled);
    }
    Ok(slot_index)
}

fn run_processor(
    exec: &Executive,
    plan: Option<&FaultPlan>,
    delivering: &HashMap<(OpId, ProcId, MediumId), Vec<usize>>,
    posted: &Board,
    arrived: &Board,
    period: TimeNs,
    periods: u32,
) -> Vec<OpRecord> {
    let mut records = Vec::new();
    let dead_from = plan.and_then(|p| p.proc_dead_from(exec.proc.index()));
    for k in 0..periods {
        if dead_from.is_some_and(|d| k >= d) {
            continue; // dead: computes nothing, posts nothing
        }
        let origin = period * i64::from(k);
        let deadline = origin + period - TimeNs::from_nanos(1);
        let mut local = origin;
        let mut forced = false;
        for ins in &exec.instrs {
            match *ins {
                Instr::Recv {
                    src_op,
                    medium,
                    from,
                } => {
                    // The fate of every delivering transfer is known
                    // from the shared plan before blocking: if none
                    // arrives this period, don't wait for a post that
                    // will never come.
                    let fated = plan.is_none_or(|p| {
                        delivering[&(src_op, from, medium)]
                            .iter()
                            .any(|&i| p.comm_fault(i, k) != CommFault::Drop)
                    });
                    if !fated {
                        forced = true;
                    } else {
                        let t = arrived.wait((k, src_op, from, medium));
                        if plan.is_some() && t > deadline {
                            forced = true; // arrived past the deadline
                        } else {
                            local = local.max(t);
                        }
                    }
                }
                Instr::Compute { op, wcet } => {
                    let start = if forced { deadline } else { local };
                    let end = start + wcet;
                    records.push(OpRecord {
                        op,
                        proc: exec.proc,
                        period: k,
                        start,
                        end,
                        forced,
                    });
                    local = end;
                    forced = false;
                }
                Instr::Send { src_op, medium, .. } => {
                    posted.post((k, src_op, exec.proc, medium), local);
                }
            }
        }
    }
    records
}

#[allow(clippy::too_many_arguments)]
fn run_medium(
    seq: &MediumSequence,
    slots: &[usize],
    schedule: &Schedule,
    arch: &ArchitectureGraph,
    plan: Option<&FaultPlan>,
    posted: &Board,
    arrived: &Board,
    period: TimeNs,
    periods: u32,
) -> Vec<CommRecord> {
    let mut records = Vec::new();
    for k in 0..periods {
        let origin = period * i64::from(k);
        let deadline = origin + period - TimeNs::from_nanos(1);
        // Completion of the previous slot this period (the period clock
        // for the first); `None` after a dropped slot, whose missing
        // rendezvous arm forces the next slot at the deadline — exactly
        // the graph of delays' wiring.
        let mut prev: Option<TimeNs> = Some(origin);
        for (pos, t) in seq.transfers.iter().enumerate() {
            let i = slots[pos];
            let fate = plan.map_or(CommFault::Ok, |p| p.comm_fault(i, k));
            if fate == CommFault::Drop {
                prev = None;
                continue; // swallowed: no arrival is ever posted
            }
            let ready = posted.wait((k, t.src_op, t.from, seq.medium));
            let start = match prev {
                Some(p) if plan.is_none() => p.max(ready),
                Some(p) if ready <= deadline && p <= deadline => p.max(ready),
                _ => deadline,
            };
            let slot = &schedule.comms()[i];
            let mut end = start + (slot.end - slot.start);
            if let CommFault::Retry(r) = fate {
                let cost = schedule.comm_retry_cost(arch, i).unwrap_or(TimeNs::ZERO);
                end += cost * i64::from(r);
            }
            arrived.post((k, t.src_op, t.from, seq.medium), end);
            records.push(CommRecord {
                src_op: t.src_op,
                medium: seq.medium,
                from: t.from,
                to: t.to,
                period: k,
                start,
                end,
            });
            prev = Some(end);
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_aaa::codegen::{generate, DeadlockCheck};
    use ecl_aaa::{adequation, AdequationOptions, TimingDb};
    use ecl_core::faults::FaultConfig;
    use ecl_core::xval::{predict_op_completions, validate_schedule};

    fn us(v: i64) -> TimeNs {
        TimeNs::from_micros(v)
    }

    /// The delays-module fixture: sensor `s` on p0 (100us), function `f`
    /// on p1 (200us), one 2-unit transfer over a 10us+5us/unit bus —
    /// scheduled s 0..100, comm 100..120, f 120..320.
    fn fixture() -> (
        AlgorithmGraph,
        ArchitectureGraph,
        Schedule,
        Generated,
        OpId,
        OpId,
    ) {
        let mut alg = AlgorithmGraph::new();
        let s = alg.add_sensor("s");
        let f = alg.add_function("f");
        alg.add_edge(s, f, 2).unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("p0", "arm");
        let p1 = arch.add_processor("p1", "arm");
        arch.add_bus("bus", &[p0, p1], us(10), us(5)).unwrap();
        let mut db = TimingDb::new();
        db.set(s, p0, us(100));
        db.set(f, p1, us(200));
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        schedule.validate(&alg, &arch).unwrap();
        let generated = generate(&schedule, &alg, &arch).unwrap();
        assert_eq!(
            check_deadlock_free(&generated.executives),
            DeadlockCheck::Free
        );
        (alg, arch, schedule, generated, s, f)
    }

    fn nominal(periods: u32) -> ExecOptions<'static> {
        ExecOptions {
            period: TimeNs::from_millis(1),
            periods,
            faults: None,
        }
    }

    #[test]
    fn nominal_run_reproduces_schedule_instants() {
        let (_, arch, schedule, generated, s, f) = fixture();
        let run = run(&generated, &arch, &schedule, &nominal(3)).unwrap();
        assert_eq!(run.op_completions(s), vec![us(100), us(1100), us(2100)]);
        assert_eq!(run.op_completions(f), vec![us(320), us(1320), us(2320)]);
        // Transfers occupy [s done, s done + 20us) each period.
        assert_eq!(run.comms.len(), 3);
        assert_eq!(run.comms[0].start, us(100));
        assert_eq!(run.comms[0].end, us(120));
        assert!(run.ops.iter().all(|r| !r.forced));
    }

    #[test]
    fn nominal_run_matches_delay_graph_prediction() {
        let (alg, arch, schedule, generated, _, _) = fixture();
        let opts = nominal(3);
        let measured = run(&generated, &arch, &schedule, &opts).unwrap().timeline();
        let predicted =
            predict_op_completions(&alg, &arch, &schedule, opts.period, opts.periods, None)
                .unwrap();
        let rep = validate_schedule(&measured, &predicted, &alg).unwrap();
        assert!(rep.is_exact(), "{}", rep.render());
    }

    #[test]
    fn runs_are_deterministic_across_invocations() {
        let (_, arch, schedule, generated, _, _) = fixture();
        let a = run(&generated, &arch, &schedule, &nominal(5)).unwrap();
        let b = run(&generated, &arch, &schedule, &nominal(5)).unwrap();
        assert_eq!(a, b);
    }

    /// Scans seeds for a plan whose single comm slot has the wanted
    /// fates over the first periods.
    fn plan_where(
        schedule: &Schedule,
        arch: &ArchitectureGraph,
        config: &FaultConfig,
        periods: u32,
        want: impl Fn(&FaultPlan) -> bool,
    ) -> FaultPlan {
        for seed in 0..512 {
            let cfg = FaultConfig { seed, ..*config };
            let plan = FaultPlan::generate(&cfg, schedule, arch, periods).unwrap();
            if want(&plan) {
                return plan;
            }
        }
        panic!("no seed produced the wanted plan");
    }

    #[test]
    fn dropped_frame_forces_consumer_at_deadline() {
        let (alg, arch, schedule, generated, s, f) = fixture();
        // Certain frame loss: every attempt fails, every period drops.
        let config = FaultConfig {
            frame_loss_rate: 1.0,
            max_retries: 1,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::generate(&config, &schedule, &arch, 2).unwrap();
        assert_eq!(plan.comm_fault(0, 0), CommFault::Drop);
        let opts = ExecOptions {
            period: TimeNs::from_millis(1),
            periods: 2,
            faults: Some(&plan),
        };
        let run = run(&generated, &arch, &schedule, &opts).unwrap();
        // s is unaffected; f is forced at kP + P − 1ns, so only the
        // period-0 instance completes inside the horizon — the exact
        // instants the graph of delays pins in its own tests.
        assert_eq!(run.op_completions(s), vec![us(100), us(1100)]);
        assert_eq!(run.op_completions(f), vec![TimeNs::from_nanos(1_199_999)]);
        assert!(run.comms.is_empty());
        let predicted = predict_op_completions(
            &alg,
            &arch,
            &schedule,
            opts.period,
            opts.periods,
            Some(&plan),
        )
        .unwrap();
        let rep = validate_schedule(&run.timeline(), &predicted, &alg).unwrap();
        assert!(rep.is_exact(), "{}", rep.render());
    }

    #[test]
    fn retried_frame_stretches_arrival() {
        let (alg, arch, schedule, generated, _, f) = fixture();
        let config = FaultConfig {
            frame_loss_rate: 0.5,
            max_retries: 3,
            ..FaultConfig::default()
        };
        let plan = plan_where(&schedule, &arch, &config, 1, |p| {
            p.comm_fault(0, 0) == CommFault::Retry(1)
        });
        let opts = ExecOptions {
            period: TimeNs::from_millis(1),
            periods: 1,
            faults: Some(&plan),
        };
        let run = run(&generated, &arch, &schedule, &opts).unwrap();
        // One retransmission: arrival 120us + 20us, f done at 340us.
        assert_eq!(run.op_completions(f), vec![us(340)]);
        assert_eq!(run.comms[0].end, us(140));
        let predicted = predict_op_completions(
            &alg,
            &arch,
            &schedule,
            opts.period,
            opts.periods,
            Some(&plan),
        )
        .unwrap();
        let rep = validate_schedule(&run.timeline(), &predicted, &alg).unwrap();
        assert!(rep.is_exact(), "{}", rep.render());
    }

    #[test]
    fn dead_processor_degrades_consumer_every_period() {
        let (alg, arch, schedule, generated, s, f) = fixture();
        let config = FaultConfig {
            proc_dropout_rate: 0.5,
            ..FaultConfig::default()
        };
        let plan = plan_where(&schedule, &arch, &config, 3, |p| {
            p.proc_dead_from(0) == Some(0) && p.proc_dead_from(1).is_none()
        });
        let opts = ExecOptions {
            period: TimeNs::from_millis(1),
            periods: 3,
            faults: Some(&plan),
        };
        let run = run(&generated, &arch, &schedule, &opts).unwrap();
        // p0 is dead from period 0: s never runs, f is forced at every
        // deadline — completions at kP + (P − 1ns) + 200us, the last
        // falling outside the horizon.
        assert!(run.op_completions(s).is_empty());
        assert_eq!(
            run.op_completions(f),
            vec![TimeNs::from_nanos(1_199_999), TimeNs::from_nanos(2_199_999)]
        );
        let predicted = predict_op_completions(
            &alg,
            &arch,
            &schedule,
            opts.period,
            opts.periods,
            Some(&plan),
        )
        .unwrap();
        let rep = validate_schedule(&run.timeline(), &predicted, &alg).unwrap();
        assert!(rep.is_exact(), "{}", rep.render());
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let (_, arch, schedule, generated, _, _) = fixture();
        let config = FaultConfig {
            seed: 7,
            frame_loss_rate: 0.4,
            proc_dropout_rate: 0.1,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::generate(&config, &schedule, &arch, 8).unwrap();
        let opts = ExecOptions {
            period: TimeNs::from_millis(1),
            periods: 8,
            faults: Some(&plan),
        };
        let a = run(&generated, &arch, &schedule, &opts).unwrap();
        let b = run(&generated, &arch, &schedule, &opts).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn trivial_plan_is_byte_identical_to_nominal() {
        let (_, arch, schedule, generated, _, _) = fixture();
        let plan = FaultPlan::trivial(4);
        let opts = ExecOptions {
            period: TimeNs::from_millis(1),
            periods: 4,
            faults: Some(&plan),
        };
        let faulty = run(&generated, &arch, &schedule, &opts).unwrap();
        let plain = run(&generated, &arch, &schedule, &nominal(4)).unwrap();
        assert_eq!(faulty, plain);
    }

    #[test]
    fn trace_events_cover_every_record() {
        let (alg, arch, schedule, generated, _, _) = fixture();
        let run = run(&generated, &arch, &schedule, &nominal(2)).unwrap();
        let events = run.trace_events(&alg, &arch);
        assert_eq!(events.len(), run.ops.len() + run.comms.len());
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Slice { track, name, .. } if track == "vm:proc:p1" && name == "f"
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Slice { track, .. } if track == "vm:bus:bus"
        )));
    }

    #[test]
    fn deadlocked_executives_are_rejected_before_launch() {
        let (_, arch, schedule, _, s, f) = fixture();
        let procs: Vec<ProcId> = arch.processors().collect();
        let m = arch.media().next().unwrap();
        // Crossed receives: each processor first waits for data the
        // other only sends afterwards.
        let crossed = |own: OpId, own_proc: ProcId, want: OpId, want_from: ProcId| Executive {
            proc: own_proc,
            instrs: vec![
                Instr::Recv {
                    src_op: want,
                    medium: m,
                    from: want_from,
                },
                Instr::Send {
                    src_op: own,
                    medium: m,
                    to: want_from,
                },
            ],
        };
        let g = Generated {
            executives: vec![
                crossed(s, procs[0], f, procs[1]),
                crossed(f, procs[1], s, procs[0]),
            ],
            comm_sequences: vec![],
        };
        let err = run(&g, &arch, &schedule, &nominal(1)).unwrap_err();
        let ExecError::Deadlock(msg) = err else {
            panic!("expected deadlock, got {err:?}");
        };
        assert!(msg.contains("cycle"), "{msg}");
    }

    #[test]
    fn inconsistent_sequences_are_rejected() {
        let (_, arch, schedule, generated, _, _) = fixture();
        // Orphan transfer: sequence slot with no matching send. Drop
        // both endpoints (keeping the Recv would trip the deadlock
        // check first).
        let mut g = generated.clone();
        g.executives[0]
            .instrs
            .retain(|i| !matches!(i, Instr::Send { .. }));
        g.executives[1]
            .instrs
            .retain(|i| !matches!(i, Instr::Recv { .. }));
        assert!(matches!(
            run(&g, &arch, &schedule, &nominal(1)),
            Err(ExecError::InvalidInput(_))
        ));
        // Sequence/schedule mismatch: an extra fabricated transfer.
        let mut g = generated.clone();
        let slot = g.comm_sequences[0].transfers[0];
        g.comm_sequences[0].transfers.push(slot);
        // The duplicated transfer also needs a recv-side check to fail
        // first on the count mismatch.
        assert!(matches!(
            run(&g, &arch, &schedule, &nominal(1)),
            Err(ExecError::InvalidInput(_))
        ));
        // Non-positive period.
        assert!(matches!(
            run(
                &generated,
                &arch,
                &schedule,
                &ExecOptions {
                    period: TimeNs::ZERO,
                    periods: 1,
                    faults: None
                }
            ),
            Err(ExecError::InvalidInput(_))
        ));
    }
}
