use std::fmt;
use std::ops::{Index, IndexMut};

use crate::LinalgError;

/// A dense, row-major `f64` matrix.
///
/// `Mat` is the workhorse of the control-synthesis kernels. It is designed
/// for small matrices (plant orders 2–8) and keeps its storage in a plain
/// `Vec<f64>` so traversals are cache-friendly and allocation-free views are
/// unnecessary.
///
/// Arithmetic that can fail on shape grounds is exposed as fallible methods
/// ([`Mat::add`], [`Mat::sub`], [`Mat::matmul`], …) returning
/// [`LinalgError`]; indexing panics on out-of-bounds like slices do.
///
/// # Examples
///
/// ```
/// use ecl_linalg::Mat;
///
/// # fn main() -> Result<(), ecl_linalg::LinalgError> {
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Mat::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// use ecl_linalg::Mat;
    /// let z = Mat::zeros(2, 3);
    /// assert_eq!(z.shape(), (2, 3));
    /// assert_eq!(z[(1, 2)], 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// use ecl_linalg::Mat;
    /// let i = Mat::identity(3);
    /// assert_eq!(i[(0, 0)], 1.0);
    /// assert_eq!(i[(0, 1)], 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidData`] if the rows are ragged (unequal
    /// lengths) or the input is empty in one dimension but not the other.
    ///
    /// # Examples
    ///
    /// ```
    /// use ecl_linalg::Mat;
    /// # fn main() -> Result<(), ecl_linalg::LinalgError> {
    /// let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
    /// assert_eq!(m[(1, 0)], 3.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(LinalgError::InvalidData {
                    reason: format!("row {i} has {} entries, expected {ncols}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Mat {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidData`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidData {
                reason: format!(
                    "flat data has {} entries, expected {rows}x{cols} = {}",
                    data.len(),
                    rows * cols
                ),
            });
        }
        Ok(Mat { rows, cols, data })
    }

    /// Creates a column vector (`n x 1`) from a slice.
    ///
    /// # Examples
    ///
    /// ```
    /// use ecl_linalg::Mat;
    /// let v = Mat::col_vec(&[1.0, 2.0, 3.0]);
    /// assert_eq!(v.shape(), (3, 1));
    /// ```
    pub fn col_vec(entries: &[f64]) -> Self {
        Mat {
            rows: entries.len(),
            cols: 1,
            data: entries.to_vec(),
        }
    }

    /// Creates a row vector (`1 x n`) from a slice.
    pub fn row_vec(entries: &[f64]) -> Self {
        Mat {
            rows: 1,
            cols: entries.len(),
            data: entries.to_vec(),
        }
    }

    /// Creates a square diagonal matrix with the given diagonal entries.
    ///
    /// # Examples
    ///
    /// ```
    /// use ecl_linalg::Mat;
    /// let d = Mat::diag(&[1.0, 2.0]);
    /// assert_eq!(d[(1, 1)], 2.0);
    /// assert_eq!(d[(0, 1)], 0.0);
    /// ```
    pub fn diag(entries: &[f64]) -> Self {
        let n = entries.len();
        let mut m = Mat::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as a `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the flat row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the flat row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its flat row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns column `j` as an owned `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the entry at `(i, j)` or `None` if out of bounds.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i < self.rows && j < self.cols {
            Some(self.data[i * self.cols + j])
        } else {
            None
        }
    }

    /// Returns the transpose.
    ///
    /// # Examples
    ///
    /// ```
    /// use ecl_linalg::Mat;
    /// # fn main() -> Result<(), ecl_linalg::LinalgError> {
    /// let m = Mat::from_rows(&[&[1.0, 2.0, 3.0]])?;
    /// assert_eq!(m.transpose().shape(), (3, 1));
    /// # Ok(())
    /// # }
    /// ```
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Mat) -> Result<Mat, LinalgError> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Mat) -> Result<Mat, LinalgError> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    fn zip_with(
        &self,
        other: &Mat,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Mat, LinalgError> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `self` scaled by `k`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ecl_linalg::Mat;
    /// let m = Mat::identity(2).scaled(3.0);
    /// assert_eq!(m[(0, 0)], 3.0);
    /// ```
    pub fn scaled(&self, k: f64) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * k).collect(),
        }
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != other.rows()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ecl_linalg::Mat;
    /// # fn main() -> Result<(), ecl_linalg::LinalgError> {
    /// let a = Mat::from_rows(&[&[1.0, 2.0]])?;       // 1x2
    /// let b = Mat::col_vec(&[3.0, 4.0]);              // 2x1
    /// let c = a.matmul(&b)?;                          // 1x1
    /// assert_eq!(c[(0, 0)], 11.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul(&self, other: &Mat) -> Result<Mat, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * x` with `x` given as a slice.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let mut acc = 0.0;
            let row = self.row(i);
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            y[i] = acc;
        }
        Ok(y)
    }

    /// The infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|x| x.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// The Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// The trace (sum of diagonal entries).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Extracts the contiguous sub-matrix with rows `r0..r0+nr` and columns
    /// `c0..c0+nc`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidData`] if the block exceeds the bounds
    /// of `self`.
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Result<Mat, LinalgError> {
        if r0 + nr > self.rows || c0 + nc > self.cols {
            return Err(LinalgError::InvalidData {
                reason: format!(
                    "block [{r0}..{}, {c0}..{}] exceeds {}x{}",
                    r0 + nr,
                    c0 + nc,
                    self.rows,
                    self.cols
                ),
            });
        }
        let mut out = Mat::zeros(nr, nc);
        for i in 0..nr {
            for j in 0..nc {
                out[(i, j)] = self[(r0 + i, c0 + j)];
            }
        }
        Ok(out)
    }

    /// Writes `block` into `self` with its top-left corner at `(r0, c0)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidData`] if the block does not fit.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Mat) -> Result<(), LinalgError> {
        if r0 + block.rows > self.rows || c0 + block.cols > self.cols {
            return Err(LinalgError::InvalidData {
                reason: format!(
                    "block {}x{} at ({r0}, {c0}) exceeds {}x{}",
                    block.rows, block.cols, self.rows, self.cols
                ),
            });
        }
        for i in 0..block.rows {
            for j in 0..block.cols {
                self[(r0 + i, c0 + j)] = block[(i, j)];
            }
        }
        Ok(())
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the row counts differ.
    pub fn hcat(&self, other: &Mat) -> Result<Mat, LinalgError> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "hcat",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Mat::zeros(self.rows, self.cols + other.cols);
        out.set_block(0, 0, self).expect("fits by construction");
        out.set_block(0, self.cols, other)
            .expect("fits by construction");
        Ok(out)
    }

    /// Vertical concatenation `[self ; other]`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column counts differ.
    pub fn vcat(&self, other: &Mat) -> Result<Mat, LinalgError> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vcat",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Mat::zeros(self.rows + other.rows, self.cols);
        out.set_block(0, 0, self).expect("fits by construction");
        out.set_block(self.rows, 0, other)
            .expect("fits by construction");
        Ok(out)
    }

    /// `true` if every entry is finite (no NaN / infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// `true` if `self` and `other` agree entry-wise within `tol`
    /// (and have identical shapes).
    pub fn approx_eq(&self, other: &Mat, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Returns the symmetric part `(self + selfᵀ) / 2`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetrized(&self) -> Mat {
        assert!(self.is_square(), "symmetrized requires a square matrix");
        let t = self.transpose();
        let mut out = self.clone();
        for (o, t) in out.data.iter_mut().zip(t.data) {
            *o = 0.5 * (*o + t);
        }
        out
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:+.6e}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:12.6}", self[(i, j)])?;
            }
            if i + 1 < self.rows {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

impl Default for Mat {
    /// The empty `0 x 0` matrix.
    fn default() -> Self {
        Mat::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22() -> Mat {
        Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = Mat::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Mat::identity(3);
        assert_eq!(i.trace(), 3.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Mat::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidData { .. }));
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Mat::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Mat::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = m22();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = m22();
        let b = Mat::identity(2);
        let c = a.add(&b).unwrap().sub(&b).unwrap();
        assert!(c.approx_eq(&a, 1e-15));
    }

    #[test]
    fn add_shape_mismatch() {
        let a = m22();
        let b = Mat::zeros(3, 2);
        assert!(matches!(
            a.add(&b),
            Err(LinalgError::ShapeMismatch { op: "add", .. })
        ));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = m22();
        assert_eq!(a.matmul(&Mat::identity(2)).unwrap(), a);
        assert_eq!(Mat::identity(2).matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = m22();
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expect = Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = m22();
        let x = [5.0, 6.0];
        let y = a.matvec(&x).unwrap();
        let y2 = a.matmul(&Mat::col_vec(&x)).unwrap();
        assert_eq!(y[0], y2[(0, 0)]);
        assert_eq!(y[1], y2[(1, 0)]);
    }

    #[test]
    fn norms() {
        let a = Mat::from_rows(&[&[1.0, -2.0], &[-3.0, 4.0]]).unwrap();
        assert_eq!(a.norm_inf(), 7.0);
        assert!((a.norm_fro() - 30.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn block_and_set_block() {
        let mut m = Mat::zeros(3, 3);
        m.set_block(1, 1, &m22()).unwrap();
        assert_eq!(m[(1, 1)], 1.0);
        assert_eq!(m[(2, 2)], 4.0);
        let b = m.block(1, 1, 2, 2).unwrap();
        assert_eq!(b, m22());
        assert!(m.block(2, 2, 2, 2).is_err());
        assert!(m.clone().set_block(2, 2, &m22()).is_err());
    }

    #[test]
    fn hcat_vcat() {
        let a = m22();
        let h = a.hcat(&Mat::identity(2)).unwrap();
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h[(0, 2)], 1.0);
        let v = a.vcat(&Mat::identity(2)).unwrap();
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v[(2, 0)], 1.0);
        assert!(a.hcat(&Mat::zeros(3, 1)).is_err());
        assert!(a.vcat(&Mat::zeros(1, 3)).is_err());
    }

    #[test]
    fn symmetrized_is_symmetric() {
        let s = m22().symmetrized();
        assert_eq!(s[(0, 1)], s[(1, 0)]);
    }

    #[test]
    fn diag_and_col() {
        let d = Mat::diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.col(1), vec![0.0, 2.0, 0.0]);
    }

    #[test]
    fn get_bounds() {
        let m = m22();
        assert_eq!(m.get(1, 1), Some(4.0));
        assert_eq!(m.get(2, 0), None);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut m = m22();
        assert!(m.is_finite());
        m[(0, 0)] = f64::NAN;
        assert!(!m.is_finite());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = m22();
        let _ = m[(5, 0)];
    }
}
