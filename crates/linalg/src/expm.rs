//! Matrix exponential via scaling-and-squaring with a degree-13 Padé
//! approximant (Higham 2005).
//!
//! Zero-order-hold discretization of a continuous plant `ẋ = A·x + B·u`
//! computes `Ad = exp(A·Ts)` and `Bd = ∫₀^Ts exp(A·s) ds · B`; both are
//! obtained from one call to [`expm`] on an augmented block matrix (see
//! `ecl-control`). This module provides the [`expm`] kernel itself.

use crate::lu::Lu;
use crate::{LinalgError, Mat};

/// Padé-13 coefficients (Higham, *The scaling and squaring method for the
/// matrix exponential revisited*, SIAM J. Matrix Anal. 2005, Table A.1).
const PADE13: [f64; 14] = [
    64764752532480000.0,
    32382376266240000.0,
    7771770303897600.0,
    1187353796428800.0,
    129060195264000.0,
    10559470521600.0,
    670442572800.0,
    33522128640.0,
    1323241920.0,
    40840800.0,
    960960.0,
    16380.0,
    182.0,
    1.0,
];

/// θ₁₃ threshold from Higham 2005: ‖A‖₁ below this needs no scaling.
const THETA_13: f64 = 5.371920351148152;

fn norm_1(a: &Mat) -> f64 {
    (0..a.cols())
        .map(|j| (0..a.rows()).map(|i| a[(i, j)].abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Computes the matrix exponential `exp(A)`.
///
/// Uses scaling-and-squaring with the degree-13 Padé approximant; accurate
/// to near machine precision for the small, moderately scaled matrices that
/// arise in plant discretization.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] if `a` is rectangular.
/// * [`LinalgError::NonFinite`] if `a` contains NaN or infinity.
/// * [`LinalgError::Singular`] if the Padé denominator is singular (cannot
///   occur for finite input within the θ₁₃ bound, but is propagated for
///   robustness).
///
/// # Examples
///
/// ```
/// use ecl_linalg::{expm, Mat};
/// # fn main() -> Result<(), ecl_linalg::LinalgError> {
/// // exp(diag(a, b)) = diag(e^a, e^b)
/// let d = Mat::diag(&[0.0, 1.0]);
/// let e = expm(&d)?;
/// assert!((e[(1, 1)] - 1.0f64.exp()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn expm(a: &Mat) -> Result<Mat, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if !a.is_finite() {
        return Err(LinalgError::NonFinite { op: "expm" });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(Mat::zeros(0, 0));
    }

    // Scale A by 2^-s so that ||A/2^s||_1 <= theta_13.
    let norm = norm_1(a);
    let s = if norm > THETA_13 {
        (norm / THETA_13).log2().ceil() as u32
    } else {
        0
    };
    let a_scaled = a.scaled(0.5f64.powi(s as i32));

    // Padé-13: exp(A) ~ (V - U)^-1 (V + U) with
    //   U = A (b13 A6^2? ...) — standard Higham formulation below.
    let ident = Mat::identity(n);
    let a2 = a_scaled.matmul(&a_scaled)?;
    let a4 = a2.matmul(&a2)?;
    let a6 = a4.matmul(&a2)?;
    let b = &PADE13;

    // u_odd = A * (A6*(b13*A6 + b11*A4 + b9*A2) + b7*A6 + b5*A4 + b3*A2 + b1*I)
    let inner_u = a6
        .scaled(b[13])
        .add(&a4.scaled(b[11]))?
        .add(&a2.scaled(b[9]))?;
    let u_poly = a6
        .matmul(&inner_u)?
        .add(&a6.scaled(b[7]))?
        .add(&a4.scaled(b[5]))?
        .add(&a2.scaled(b[3]))?
        .add(&ident.scaled(b[1]))?;
    let u = a_scaled.matmul(&u_poly)?;

    // v_even = A6*(b12*A6 + b10*A4 + b8*A2) + b6*A6 + b4*A4 + b2*A2 + b0*I
    let inner_v = a6
        .scaled(b[12])
        .add(&a4.scaled(b[10]))?
        .add(&a2.scaled(b[8]))?;
    let v = a6
        .matmul(&inner_v)?
        .add(&a6.scaled(b[6]))?
        .add(&a4.scaled(b[4]))?
        .add(&a2.scaled(b[2]))?
        .add(&ident.scaled(b[0]))?;

    // Solve (V - U) X = (V + U).
    let denom = v.sub(&u)?;
    let numer = v.add(&u)?;
    let mut x = Lu::factor(&denom)?.solve_mat(&numer)?;

    // Undo the scaling: square s times.
    for _ in 0..s {
        x = x.matmul(&x)?;
    }
    if !x.is_finite() {
        return Err(LinalgError::NonFinite { op: "expm" });
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expm_zero_is_identity() {
        let z = Mat::zeros(3, 3);
        let e = expm(&z).unwrap();
        assert!(e.approx_eq(&Mat::identity(3), 1e-14));
    }

    #[test]
    fn expm_diagonal() {
        let d = Mat::diag(&[1.0, -2.0, 0.5]);
        let e = expm(&d).unwrap();
        for (i, &v) in [1.0f64, -2.0, 0.5].iter().enumerate() {
            assert!((e[(i, i)] - v.exp()).abs() < 1e-12 * v.exp().abs().max(1.0));
        }
        assert!(e[(0, 1)].abs() < 1e-14);
    }

    #[test]
    fn expm_nilpotent() {
        // N = [[0,1],[0,0]] => exp(N) = I + N exactly.
        let n = Mat::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).unwrap();
        let e = expm(&n).unwrap();
        let expect = Mat::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        assert!(e.approx_eq(&expect, 1e-14));
    }

    #[test]
    fn expm_rotation() {
        // exp([[0,-w],[w,0]] t) = rotation by w*t.
        let w = 2.0;
        let t = 0.7;
        let a = Mat::from_rows(&[&[0.0, -w], &[w, 0.0]]).unwrap().scaled(t);
        let e = expm(&a).unwrap();
        let (s, c) = (w * t).sin_cos();
        assert!((e[(0, 0)] - c).abs() < 1e-12);
        assert!((e[(0, 1)] + s).abs() < 1e-12);
        assert!((e[(1, 0)] - s).abs() < 1e-12);
        assert!((e[(1, 1)] - c).abs() < 1e-12);
    }

    #[test]
    fn expm_large_norm_triggers_scaling() {
        // 50 * rotation: still exact rotation after squaring.
        let a = Mat::from_rows(&[&[0.0, -50.0], &[50.0, 0.0]]).unwrap();
        let e = expm(&a).unwrap();
        let (s, c) = 50.0f64.sin_cos();
        assert!((e[(0, 0)] - c).abs() < 1e-9);
        assert!((e[(1, 0)] - s).abs() < 1e-9);
        // Rotation matrices have determinant 1.
        let det = e[(0, 0)] * e[(1, 1)] - e[(0, 1)] * e[(1, 0)];
        assert!((det - 1.0).abs() < 1e-9);
    }

    #[test]
    fn expm_semigroup_property() {
        // exp(A)·exp(A) = exp(2A) for any A.
        let a = Mat::from_rows(&[&[0.1, 0.3], &[-0.2, -0.5]]).unwrap();
        let e1 = expm(&a).unwrap();
        let e2 = expm(&a.scaled(2.0)).unwrap();
        assert!(e1.matmul(&e1).unwrap().approx_eq(&e2, 1e-12));
    }

    #[test]
    fn expm_inverse_is_exp_of_negative() {
        let a = Mat::from_rows(&[&[0.0, 1.0], &[-3.0, -0.4]]).unwrap();
        let e = expm(&a).unwrap();
        let einv = expm(&a.scaled(-1.0)).unwrap();
        assert!(e.matmul(&einv).unwrap().approx_eq(&Mat::identity(2), 1e-11));
    }

    #[test]
    fn expm_rejects_bad_input() {
        assert!(expm(&Mat::zeros(2, 3)).is_err());
        let mut a = Mat::identity(2);
        a[(0, 0)] = f64::INFINITY;
        assert!(expm(&a).is_err());
    }

    #[test]
    fn expm_empty() {
        let e = expm(&Mat::zeros(0, 0)).unwrap();
        assert_eq!(e.shape(), (0, 0));
    }
}
