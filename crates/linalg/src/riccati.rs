//! Discrete-time Lyapunov and Riccati equation solvers.
//!
//! These are the synthesis kernels behind LQR design in `ecl-control`:
//!
//! * [`solve_discrete_lyapunov`] — `X = A·X·Aᵀ + Q` by the doubling
//!   (squaring) iteration, valid when `A` is Schur-stable,
//! * [`solve_dare`] — the discrete algebraic Riccati equation by the
//!   structured fixed-point iteration
//!   `X⁺ = AᵀXA − AᵀXB (R + BᵀXB)⁻¹ BᵀXA + Q`.
//!
//! Control matrices are tiny and well-scaled, so the fixed-point iteration
//! converges quickly; [`DareOptions`] exposes the tolerance/iteration knobs.

use crate::lu::Lu;
use crate::{LinalgError, Mat};

/// Solves the discrete Lyapunov equation `X = A·X·Aᵀ + Q`.
///
/// Uses the doubling iteration `A ← A², Q ← A·Q·Aᵀ + Q`, which converges
/// quadratically when the spectral radius of `A` is below one.
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] / [`LinalgError::NotSquare`] for
///   inconsistent shapes.
/// * [`LinalgError::NoConvergence`] if `A` is not Schur-stable (the iterate
///   diverges or fails to settle within 200 doublings).
///
/// # Examples
///
/// ```
/// use ecl_linalg::{solve_discrete_lyapunov, Mat};
/// # fn main() -> Result<(), ecl_linalg::LinalgError> {
/// let a = Mat::diag(&[0.5, 0.2]);
/// let q = Mat::identity(2);
/// let x = solve_discrete_lyapunov(&a, &q)?;
/// // residual check: X - A X A^T - Q = 0
/// let res = x.sub(&a.matmul(&x)?.matmul(&a.transpose())?)?.sub(&q)?;
/// assert!(res.norm_inf() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn solve_discrete_lyapunov(a: &Mat, q: &Mat) -> Result<Mat, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if q.shape() != a.shape() {
        return Err(LinalgError::ShapeMismatch {
            op: "discrete_lyapunov",
            lhs: a.shape(),
            rhs: q.shape(),
        });
    }
    let mut ak = a.clone();
    let mut x = q.clone();
    let tol = 1e-14 * (1.0 + q.norm_inf());
    for it in 0..200 {
        // X <- Ak X Akᵀ + X ;  Ak <- Ak²
        let incr = ak.matmul(&x)?.matmul(&ak.transpose())?;
        let x_next = x.add(&incr)?;
        let ak_next = ak.matmul(&ak)?;
        let delta = incr.norm_inf();
        if !x_next.is_finite() {
            return Err(LinalgError::NoConvergence {
                algorithm: "discrete_lyapunov",
                iterations: it,
                residual: f64::INFINITY,
            });
        }
        x = x_next;
        ak = ak_next;
        if delta < tol {
            return Ok(x.symmetrized());
        }
    }
    Err(LinalgError::NoConvergence {
        algorithm: "discrete_lyapunov",
        iterations: 200,
        residual: f64::NAN,
    })
}

/// Convergence knobs for [`solve_dare`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DareOptions {
    /// Absolute tolerance on `‖X⁺ − X‖∞` for declaring convergence.
    pub tol: f64,
    /// Maximum number of fixed-point iterations.
    pub max_iter: usize,
}

impl Default for DareOptions {
    fn default() -> Self {
        DareOptions {
            tol: 1e-12,
            max_iter: 10_000,
        }
    }
}

/// Solves the discrete algebraic Riccati equation
///
/// ```text
/// X = AᵀXA − AᵀXB (R + BᵀXB)⁻¹ BᵀXA + Q
/// ```
///
/// by fixed-point iteration from `X₀ = Q`, returning the stabilizing
/// solution used by LQR synthesis (`K = (R + BᵀXB)⁻¹ BᵀXA`).
///
/// # Errors
///
/// * Shape errors for inconsistent `A` (n×n), `B` (n×m), `Q` (n×n),
///   `R` (m×m).
/// * [`LinalgError::Singular`] if `R + BᵀXB` becomes singular (e.g. `R` not
///   positive definite).
/// * [`LinalgError::NoConvergence`] if the iteration fails to settle (e.g.
///   `(A, B)` not stabilizable).
///
/// # Examples
///
/// ```
/// use ecl_linalg::{solve_dare, DareOptions, Mat};
/// # fn main() -> Result<(), ecl_linalg::LinalgError> {
/// let a = Mat::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]])?;
/// let b = Mat::col_vec(&[0.005, 0.1]);
/// let q = Mat::identity(2);
/// let r = Mat::identity(1);
/// let x = solve_dare(&a, &b, &q, &r, DareOptions::default())?;
/// assert!(x[(0, 0)] > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn solve_dare(
    a: &Mat,
    b: &Mat,
    q: &Mat,
    r: &Mat,
    opts: DareOptions,
) -> Result<Mat, LinalgError> {
    let n = a.rows();
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if b.rows() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "dare_b",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let m = b.cols();
    if q.shape() != (n, n) {
        return Err(LinalgError::ShapeMismatch {
            op: "dare_q",
            lhs: a.shape(),
            rhs: q.shape(),
        });
    }
    if r.shape() != (m, m) {
        return Err(LinalgError::ShapeMismatch {
            op: "dare_r",
            lhs: (m, m),
            rhs: r.shape(),
        });
    }

    let at = a.transpose();
    let bt = b.transpose();
    let mut x = q.clone();
    for it in 0..opts.max_iter {
        // G = R + Bᵀ X B ;  K = G⁻¹ Bᵀ X A
        let xb = x.matmul(b)?;
        let g = r.add(&bt.matmul(&xb)?)?;
        let bxa = bt.matmul(&x)?.matmul(a)?;
        let k = Lu::factor(&g)?.solve_mat(&bxa)?;
        // X⁺ = Aᵀ X A − (Bᵀ X A)ᵀ K + Q
        let axa = at.matmul(&x)?.matmul(a)?;
        let corr = bxa.transpose().matmul(&k)?;
        let x_next = axa.sub(&corr)?.add(q)?.symmetrized();
        if !x_next.is_finite() {
            return Err(LinalgError::NoConvergence {
                algorithm: "dare",
                iterations: it,
                residual: f64::INFINITY,
            });
        }
        let delta = x_next.sub(&x)?.norm_inf();
        x = x_next;
        if delta < opts.tol * (1.0 + x.norm_inf()) {
            return Ok(x);
        }
    }
    let residual = dare_residual(a, b, q, r, &x)?;
    Err(LinalgError::NoConvergence {
        algorithm: "dare",
        iterations: opts.max_iter,
        residual,
    })
}

/// Residual `‖X − (AᵀXA − AᵀXB(R+BᵀXB)⁻¹BᵀXA + Q)‖∞` of a DARE candidate.
fn dare_residual(a: &Mat, b: &Mat, q: &Mat, r: &Mat, x: &Mat) -> Result<f64, LinalgError> {
    let at = a.transpose();
    let bt = b.transpose();
    let xb = x.matmul(b)?;
    let g = r.add(&bt.matmul(&xb)?)?;
    let bxa = bt.matmul(x)?.matmul(a)?;
    let k = Lu::factor(&g)?.solve_mat(&bxa)?;
    let axa = at.matmul(x)?.matmul(a)?;
    let rhs = axa.sub(&bxa.transpose().matmul(&k)?)?.add(q)?;
    Ok(x.sub(&rhs)?.norm_inf())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lyapunov_scalar_closed_form() {
        // x = a^2 x + q  =>  x = q / (1 - a^2)
        let a = Mat::diag(&[0.5]);
        let q = Mat::diag(&[3.0]);
        let x = solve_discrete_lyapunov(&a, &q).unwrap();
        assert!((x[(0, 0)] - 4.0).abs() < 1e-10);
    }

    #[test]
    fn lyapunov_residual_small() {
        let a = Mat::from_rows(&[&[0.8, 0.1], &[-0.2, 0.6]]).unwrap();
        let q = Mat::identity(2);
        let x = solve_discrete_lyapunov(&a, &q).unwrap();
        let res = x
            .sub(&a.matmul(&x).unwrap().matmul(&a.transpose()).unwrap())
            .unwrap()
            .sub(&q)
            .unwrap();
        assert!(res.norm_inf() < 1e-10);
    }

    #[test]
    fn lyapunov_unstable_a_fails() {
        let a = Mat::diag(&[1.5]);
        let q = Mat::diag(&[1.0]);
        assert!(matches!(
            solve_discrete_lyapunov(&a, &q),
            Err(LinalgError::NoConvergence { .. })
        ));
    }

    #[test]
    fn dare_scalar_closed_form() {
        // Scalar DARE: x = a²x − a²x²b²/(r + b²x) + q.
        // With a=1, b=1, q=1, r=1: x = x - x²/(1+x) + 1 => x² - x - 1 = 0
        // => x = (1+√5)/2 (golden ratio).
        let a = Mat::diag(&[1.0]);
        let b = Mat::diag(&[1.0]);
        let q = Mat::diag(&[1.0]);
        let r = Mat::diag(&[1.0]);
        let x = solve_dare(&a, &b, &q, &r, DareOptions::default()).unwrap();
        let golden = (1.0 + 5.0f64.sqrt()) / 2.0;
        assert!((x[(0, 0)] - golden).abs() < 1e-9, "{}", x[(0, 0)]);
    }

    #[test]
    fn dare_double_integrator_residual() {
        let ts = 0.1;
        let a = Mat::from_rows(&[&[1.0, ts], &[0.0, 1.0]]).unwrap();
        let b = Mat::col_vec(&[ts * ts / 2.0, ts]);
        let q = Mat::identity(2);
        let r = Mat::diag(&[0.1]);
        let x = solve_dare(&a, &b, &q, &r, DareOptions::default()).unwrap();
        let res = dare_residual(&a, &b, &q, &r, &x).unwrap();
        assert!(res < 1e-8, "residual {res}");
        // Solution must be symmetric positive (diagonal > 0).
        assert!((x[(0, 1)] - x[(1, 0)]).abs() < 1e-12);
        assert!(x[(0, 0)] > 0.0 && x[(1, 1)] > 0.0);
    }

    #[test]
    fn dare_closed_loop_is_stable() {
        // The LQR gain from the DARE solution must stabilize A - B K
        // (spectral radius < 1); we check via powers of the closed loop.
        let ts = 0.05;
        let a = Mat::from_rows(&[&[1.0, ts], &[0.2 * ts, 1.0]]).unwrap(); // slightly unstable
        let b = Mat::col_vec(&[0.0, ts]);
        let q = Mat::identity(2);
        let r = Mat::diag(&[1.0]);
        let x = solve_dare(&a, &b, &q, &r, DareOptions::default()).unwrap();
        let bt = b.transpose();
        let g = r.add(&bt.matmul(&x).unwrap().matmul(&b).unwrap()).unwrap();
        let bxa = bt.matmul(&x).unwrap().matmul(&a).unwrap();
        let k = Lu::factor(&g).unwrap().solve_mat(&bxa).unwrap();
        let acl = a.sub(&b.matmul(&k).unwrap()).unwrap();
        // 2x2 spectral radius in closed form from trace and determinant.
        let tr = acl.trace();
        let det = acl[(0, 0)] * acl[(1, 1)] - acl[(0, 1)] * acl[(1, 0)];
        let disc = tr * tr - 4.0 * det;
        let rho = if disc >= 0.0 {
            let s = disc.sqrt();
            ((tr + s) / 2.0).abs().max(((tr - s) / 2.0).abs())
        } else {
            det.abs().sqrt()
        };
        assert!(rho < 1.0, "closed loop not stable: spectral radius {rho}");
    }

    #[test]
    fn dare_shape_validation() {
        let a = Mat::identity(2);
        let b = Mat::col_vec(&[1.0, 0.0]);
        let q = Mat::identity(2);
        let r = Mat::identity(1);
        assert!(solve_dare(&Mat::zeros(2, 3), &b, &q, &r, DareOptions::default()).is_err());
        assert!(solve_dare(&a, &Mat::zeros(3, 1), &q, &r, DareOptions::default()).is_err());
        assert!(solve_dare(&a, &b, &Mat::zeros(3, 3), &r, DareOptions::default()).is_err());
        assert!(solve_dare(&a, &b, &q, &Mat::zeros(2, 2), DareOptions::default()).is_err());
    }

    #[test]
    fn dare_options_default() {
        let o = DareOptions::default();
        assert!(o.tol > 0.0 && o.max_iter > 0);
    }
}
