//! LU factorization with partial pivoting.
//!
//! [`Lu`] factors a square matrix `A` as `P·A = L·U` and exposes linear
//! solves, inversion, and the determinant. It is the backbone of the Padé
//! solve inside [`crate::expm`] and of the Riccati iterations in
//! [`crate::solve_dare`].

use crate::{LinalgError, Mat};

/// An LU factorization `P·A = L·U` with partial (row) pivoting.
///
/// Create one with [`Lu::factor`], then reuse it for any number of
/// right-hand sides via [`Lu::solve`] / [`Lu::solve_mat`].
///
/// # Examples
///
/// ```
/// use ecl_linalg::{lu::Lu, Mat};
///
/// # fn main() -> Result<(), ecl_linalg::LinalgError> {
/// let a = Mat::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]])?;
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// // A * x = b
/// let b = a.matvec(&x)?;
/// assert!((b[0] - 10.0).abs() < 1e-12 && (b[1] - 12.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed LU factors (unit-diagonal L below, U on and above the diagonal).
    lu: Mat,
    /// Row permutation: `perm[i]` is the original row stored at position `i`.
    perm: Vec<usize>,
    /// Parity of the permutation (`+1.0` or `-1.0`) for the determinant.
    sign: f64,
}

/// Pivot tolerance: a pivot smaller than this (relative to the largest entry
/// of its column) marks the matrix as numerically singular.
const PIVOT_TOL: f64 = 1e-300;

impl Lu {
    /// Factors the square matrix `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is rectangular.
    /// * [`LinalgError::Singular`] if a pivot collapses to (near) zero.
    /// * [`LinalgError::NonFinite`] if `a` contains NaN or infinity.
    pub fn factor(a: &Mat) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite { op: "lu" });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Select the pivot row: largest |entry| in column k at or below k.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best <= PIVOT_TOL {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                for j in (k + 1)..n {
                    let u = lu[(k, j)];
                    lu[(i, j)] -= m * u;
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply the permutation, then forward/back substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 0..n {
            for j in 0..i {
                x[i] -= self.lu[(i, j)] * x[j];
            }
        }
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                x[i] -= self.lu[(i, j)] * x[j];
            }
            x[i] /= self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` column-by-column for a matrix right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `B.rows() != self.dim()`.
    pub fn solve_mat(&self, b: &Mat) -> Result<Mat, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve_mat",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Mat::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// The determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let n = self.dim();
        let mut d = self.sign;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// The inverse of the factored matrix.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (cannot occur for a successfully factored
    /// matrix, but the signature stays fallible for uniformity).
    pub fn inverse(&self) -> Result<Mat, LinalgError> {
        self.solve_mat(&Mat::identity(self.dim()))
    }
}

/// Convenience one-shot solve of `A·x = b`.
///
/// # Errors
///
/// Same as [`Lu::factor`] followed by [`Lu::solve`].
///
/// # Examples
///
/// ```
/// use ecl_linalg::{lu, Mat};
/// # fn main() -> Result<(), ecl_linalg::LinalgError> {
/// let a = Mat::identity(2).scaled(2.0);
/// let x = lu::solve(&a, &[2.0, 4.0])?;
/// assert_eq!(x, vec![1.0, 2.0]);
/// # Ok(())
/// # }
/// ```
pub fn solve(a: &Mat, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    Lu::factor(a)?.solve(b)
}

/// Convenience one-shot inverse of `A`.
///
/// # Errors
///
/// Same as [`Lu::factor`].
pub fn inverse(a: &Mat) -> Result<Mat, LinalgError> {
    Lu::factor(a)?.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn well_conditioned() -> Mat {
        Mat::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]).unwrap()
    }

    #[test]
    fn solve_recovers_rhs() {
        let a = well_conditioned();
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = solve(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = well_conditioned();
        let ainv = inverse(&a).unwrap();
        let prod = a.matmul(&ainv).unwrap();
        assert!(prod.approx_eq(&Mat::identity(3), 1e-12));
    }

    #[test]
    fn det_of_triangular() {
        let a = Mat::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn det_sign_tracks_permutation() {
        // Swapped-identity has determinant -1.
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rectangular_rejected() {
        let a = Mat::zeros(2, 3);
        assert!(matches!(Lu::factor(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn nan_rejected() {
        let mut a = Mat::identity(2);
        a[(0, 1)] = f64::NAN;
        assert!(matches!(Lu::factor(&a), Err(LinalgError::NonFinite { .. })));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve(&a, &[5.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 5.0]);
    }

    #[test]
    fn solve_mat_matches_columnwise_solve() {
        let a = well_conditioned();
        let lu = Lu::factor(&a).unwrap();
        let b = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let x = lu.solve_mat(&b).unwrap();
        let recon = a.matmul(&x).unwrap();
        assert!(recon.approx_eq(&b, 1e-12));
    }

    #[test]
    fn rhs_length_checked() {
        let lu = Lu::factor(&Mat::identity(3)).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
        assert!(lu.solve_mat(&Mat::zeros(2, 2)).is_err());
    }
}
