//! Dense linear algebra kernels for control-law synthesis.
//!
//! This crate implements, from scratch, the small-matrix numerical kernels
//! that the `eclipse-codesign` workspace needs to discretize continuous
//! plants and synthesize controllers:
//!
//! * [`Mat`] — a small dense row-major `f64` matrix with the usual algebra,
//! * [`lu::Lu`] — LU factorization with partial pivoting (solve / inverse /
//!   determinant),
//! * [`expm`] — the matrix exponential via scaling-and-squaring with a Padé
//!   approximant (the kernel behind zero-order-hold discretization),
//! * [`solve_discrete_lyapunov`] and [`solve_dare`] — the fixed-point and
//!   structured-iteration solvers behind LQR synthesis.
//!
//! Matrices in embedded control loops are tiny (plant orders 2–8), so the
//! implementation favours clarity and numerical robustness over blocking or
//! SIMD; everything is `O(n^3)` textbook dense code with partial pivoting.
//!
//! # Examples
//!
//! ```
//! use ecl_linalg::Mat;
//!
//! # fn main() -> Result<(), ecl_linalg::LinalgError> {
//! let a = Mat::from_rows(&[&[0.0, 1.0], &[-2.0, -3.0]])?;
//! let eye = Mat::identity(2);
//! // exp(0) = I
//! let e0 = ecl_linalg::expm(&a.scaled(0.0))?;
//! assert!(e0.sub(&eye)?.norm_inf() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![allow(
    // `!(x > 0.0)` deliberately treats NaN as invalid; partial_cmp would
    // obscure that.
    clippy::neg_cmp_op_on_partial_ord,
    // Index loops mirror the textbook matrix formulas they implement.
    clippy::needless_range_loop
)]
#![warn(missing_docs)]

mod eig;
mod error;
mod expm;
pub mod lu;
mod mat;
mod riccati;
mod vecops;

pub use eig::{eigenvalues, spectral_radius, Eigenvalue};
pub use error::LinalgError;
pub use expm::expm;
pub use mat::Mat;
pub use riccati::{solve_dare, solve_discrete_lyapunov, DareOptions};
pub use vecops::{vec_add, vec_axpy, vec_dot, vec_norm_inf, vec_scale, vec_sub};
