//! Eigenvalues of small dense real matrices.
//!
//! Implements the classic dense pipeline: reduction to upper Hessenberg
//! form by Householder reflections, then the shifted QR iteration (Wilkinson
//! shift on the trailing 2×2) with deflation. Eigenvalues are returned as
//! `(re, im)` pairs; complex eigenvalues of real matrices come in conjugate
//! pairs.
//!
//! Control loops use this for pole inspection and stability verdicts
//! (`ecl-control::stability`); matrices are tiny (order ≤ 10), so the
//! implementation favours robustness over performance.

use crate::{LinalgError, Mat};

/// An eigenvalue of a real matrix, as a `(re, im)` pair.
pub type Eigenvalue = (f64, f64);

/// Reduces `a` to upper Hessenberg form in place via Householder
/// reflections (similarity transform, eigenvalues preserved).
fn hessenberg(a: &mut Mat) {
    let n = a.rows();
    for k in 0..n.saturating_sub(2) {
        // Householder vector annihilating column k below the subdiagonal.
        let mut alpha = 0.0;
        for i in (k + 1)..n {
            alpha += a[(i, k)] * a[(i, k)];
        }
        alpha = alpha.sqrt();
        if alpha == 0.0 {
            continue;
        }
        if a[(k + 1, k)] > 0.0 {
            alpha = -alpha;
        }
        let mut v = vec![0.0; n];
        v[k + 1] = a[(k + 1, k)] - alpha;
        for i in (k + 2)..n {
            v[i] = a[(i, k)];
        }
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            continue;
        }
        // A <- (I - 2vvᵀ/vᵀv) A (I - 2vvᵀ/vᵀv)
        // Left multiply.
        for j in 0..n {
            let mut dot = 0.0;
            for i in (k + 1)..n {
                dot += v[i] * a[(i, j)];
            }
            let f = 2.0 * dot / vnorm2;
            for i in (k + 1)..n {
                a[(i, j)] -= f * v[i];
            }
        }
        // Right multiply.
        for i in 0..n {
            let mut dot = 0.0;
            for j in (k + 1)..n {
                dot += a[(i, j)] * v[j];
            }
            let f = 2.0 * dot / vnorm2;
            for j in (k + 1)..n {
                a[(i, j)] -= f * v[j];
            }
        }
        // Enforce exact zeros below the subdiagonal in column k.
        a[(k + 1, k)] = alpha;
        for i in (k + 2)..n {
            a[(i, k)] = 0.0;
        }
    }
}

/// Eigenvalues of the trailing/leading 2×2 block `[[a, b], [c, d]]`.
fn eig2(a: f64, b: f64, c: f64, d: f64) -> [Eigenvalue; 2] {
    let tr = a + d;
    let det = a * d - b * c;
    let disc = tr * tr / 4.0 - det;
    if disc >= 0.0 {
        let s = disc.sqrt();
        [(tr / 2.0 + s, 0.0), (tr / 2.0 - s, 0.0)]
    } else {
        let s = (-disc).sqrt();
        [(tr / 2.0, s), (tr / 2.0, -s)]
    }
}

/// Computes all eigenvalues of a square real matrix.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] for a rectangular input.
/// * [`LinalgError::NonFinite`] if the input contains NaN/infinity.
/// * [`LinalgError::NoConvergence`] if the QR iteration fails to deflate
///   (does not occur for well-scaled control matrices; the budget is
///   generous).
///
/// # Examples
///
/// ```
/// use ecl_linalg::{eigenvalues, Mat};
/// # fn main() -> Result<(), ecl_linalg::LinalgError> {
/// let a = Mat::from_rows(&[&[0.0, 1.0], &[-1.0, 0.0]])?; // rotation: ±i
/// let mut eigs = eigenvalues(&a)?;
/// eigs.sort_by(|x, y| x.1.partial_cmp(&y.1).expect("finite"));
/// assert!((eigs[0].1 + 1.0).abs() < 1e-10);
/// assert!((eigs[1].1 - 1.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn eigenvalues(a: &Mat) -> Result<Vec<Eigenvalue>, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if !a.is_finite() {
        return Err(LinalgError::NonFinite { op: "eigenvalues" });
    }
    let n = a.rows();
    match n {
        0 => return Ok(vec![]),
        1 => return Ok(vec![(a[(0, 0)], 0.0)]),
        2 => return Ok(eig2(a[(0, 0)], a[(0, 1)], a[(1, 0)], a[(1, 1)]).to_vec()),
        _ => {}
    }

    let mut h = a.clone();
    hessenberg(&mut h);
    let mut eigs: Vec<Eigenvalue> = Vec::with_capacity(n);
    let mut hi = n; // active block is h[0..hi, 0..hi]
    let scale = h.norm_inf().max(1.0);
    let eps = f64::EPSILON * scale;
    let mut budget = 200 * n;

    while hi > 0 {
        if hi == 1 {
            eigs.push((h[(0, 0)], 0.0));
            break;
        }
        // Deflate: find the last negligible subdiagonal in the active block.
        let mut split = None;
        for i in (1..hi).rev() {
            let sub = h[(i, i - 1)].abs();
            if sub <= eps * (h[(i, i)].abs() + h[(i - 1, i - 1)].abs()).max(eps) {
                split = Some(i);
                break;
            }
        }
        if let Some(i) = split {
            if i == hi - 1 {
                // 1x1 block deflates.
                eigs.push((h[(hi - 1, hi - 1)], 0.0));
                hi -= 1;
                continue;
            }
            if i == hi - 2 {
                // 2x2 block deflates.
                let e = eig2(
                    h[(hi - 2, hi - 2)],
                    h[(hi - 2, hi - 1)],
                    h[(hi - 1, hi - 2)],
                    h[(hi - 1, hi - 1)],
                );
                eigs.extend_from_slice(&e);
                hi -= 2;
                continue;
            }
        }
        // Trailing 2x2 might itself be complex: if the whole active block
        // is exactly 2, resolve it directly.
        if hi == 2 {
            let e = eig2(h[(0, 0)], h[(0, 1)], h[(1, 0)], h[(1, 1)]);
            eigs.extend_from_slice(&e);
            break;
        }

        if budget == 0 {
            return Err(LinalgError::NoConvergence {
                algorithm: "qr_eigenvalues",
                iterations: 200 * n,
                residual: h[(hi - 1, hi - 2)].abs(),
            });
        }
        budget -= 1;

        // Wilkinson shift from the trailing 2x2 of the active block.
        let (am, bm, cm, dm) = (
            h[(hi - 2, hi - 2)],
            h[(hi - 2, hi - 1)],
            h[(hi - 1, hi - 2)],
            h[(hi - 1, hi - 1)],
        );
        let pair = eig2(am, bm, cm, dm);
        // Pick the shift closest to dm; for complex pairs use the real part
        // (an ad-hoc real shift — adequate for these sizes; the double
        // subdiagonal test above handles complex deflation).
        let mu = if pair[0].1 == 0.0 {
            if (pair[0].0 - dm).abs() < (pair[1].0 - dm).abs() {
                pair[0].0
            } else {
                pair[1].0
            }
        } else {
            pair[0].0
        };

        // Shifted QR step on the active block via Givens rotations.
        // H - mu I = QR ; H <- R Q + mu I, done implicitly column by column.
        let m = hi;
        let mut cs = vec![0.0; m];
        let mut sn = vec![0.0; m];
        for i in 0..m {
            h[(i, i)] -= mu;
        }
        // QR by Givens on the subdiagonal.
        for i in 0..m - 1 {
            let (x, y) = (h[(i, i)], h[(i + 1, i)]);
            let r = (x * x + y * y).sqrt();
            let (c, s) = if r == 0.0 { (1.0, 0.0) } else { (x / r, y / r) };
            cs[i] = c;
            sn[i] = s;
            for j in i..m {
                let (t1, t2) = (h[(i, j)], h[(i + 1, j)]);
                h[(i, j)] = c * t1 + s * t2;
                h[(i + 1, j)] = -s * t1 + c * t2;
            }
        }
        // RQ.
        for i in 0..m - 1 {
            let (c, s) = (cs[i], sn[i]);
            for k in 0..=(i + 1).min(m - 1) {
                let (t1, t2) = (h[(k, i)], h[(k, i + 1)]);
                h[(k, i)] = c * t1 + s * t2;
                h[(k, i + 1)] = -s * t1 + c * t2;
            }
        }
        for i in 0..m {
            h[(i, i)] += mu;
        }
    }
    Ok(eigs)
}

/// The spectral radius `max |λ|` of a square real matrix.
///
/// # Errors
///
/// Same as [`eigenvalues`].
///
/// # Examples
///
/// ```
/// use ecl_linalg::{spectral_radius, Mat};
/// # fn main() -> Result<(), ecl_linalg::LinalgError> {
/// let a = Mat::diag(&[0.5, -0.9]);
/// assert!((spectral_radius(&a)? - 0.9).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn spectral_radius(a: &Mat) -> Result<f64, LinalgError> {
    Ok(eigenvalues(a)?
        .into_iter()
        .map(|(re, im)| (re * re + im * im).sqrt())
        .fold(0.0, f64::max))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_real(mut eigs: Vec<Eigenvalue>) -> Vec<f64> {
        eigs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        eigs.into_iter().map(|(re, _)| re).collect()
    }

    #[test]
    fn diagonal_matrix() {
        let a = Mat::diag(&[3.0, -1.0, 0.5]);
        let eigs = eigenvalues(&a).unwrap();
        assert_eq!(eigs.len(), 3);
        let re = sorted_real(eigs.clone());
        assert!((re[0] + 1.0).abs() < 1e-10);
        assert!((re[1] - 0.5).abs() < 1e-10);
        assert!((re[2] - 3.0).abs() < 1e-10);
        assert!(eigs.iter().all(|e| e.1 == 0.0));
    }

    #[test]
    fn triangular_matrix_eigs_on_diagonal() {
        let a = Mat::from_rows(&[&[2.0, 5.0, -3.0], &[0.0, -1.0, 4.0], &[0.0, 0.0, 0.5]]).unwrap();
        let re = sorted_real(eigenvalues(&a).unwrap());
        assert!((re[0] + 1.0).abs() < 1e-9);
        assert!((re[1] - 0.5).abs() < 1e-9);
        assert!((re[2] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn companion_matrix_known_roots() {
        // λ³ - 6λ² + 11λ - 6 = (λ-1)(λ-2)(λ-3)
        let a = Mat::from_rows(&[&[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0], &[6.0, -11.0, 6.0]]).unwrap();
        let re = sorted_real(eigenvalues(&a).unwrap());
        for (got, want) in re.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-7, "{re:?}");
        }
    }

    #[test]
    fn complex_pair_from_rotation_block() {
        // Block diag(rotation(w), 2.0): eigenvalues cos±i·sin and 2.
        let (c, s) = (0.6f64, 0.8f64);
        let a = Mat::from_rows(&[&[c, -s, 0.0], &[s, c, 0.0], &[0.0, 0.0, 2.0]]).unwrap();
        let eigs = eigenvalues(&a).unwrap();
        let mut complex: Vec<_> = eigs.iter().filter(|e| e.1 != 0.0).collect();
        complex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        assert_eq!(complex.len(), 2, "{eigs:?}");
        assert!((complex[0].0 - c).abs() < 1e-8);
        assert!((complex[0].1 + s).abs() < 1e-8);
        assert!((complex[1].1 - s).abs() < 1e-8);
        assert!(eigs.iter().any(|e| (e.0 - 2.0).abs() < 1e-8 && e.1 == 0.0));
    }

    #[test]
    fn four_by_four_mixed_spectrum() {
        // Two rotation blocks of different radius.
        let a = Mat::from_rows(&[
            &[0.5, -0.5, 0.0, 0.0],
            &[0.5, 0.5, 0.0, 0.0],
            &[0.0, 0.0, 0.0, -2.0],
            &[0.0, 0.0, 2.0, 0.0],
        ])
        .unwrap();
        let rho = spectral_radius(&a).unwrap();
        assert!((rho - 2.0).abs() < 1e-8, "{rho}");
        let eigs = eigenvalues(&a).unwrap();
        assert_eq!(eigs.len(), 4);
        // Radii: sqrt(0.5) twice and 2 twice.
        let mut radii: Vec<f64> = eigs
            .iter()
            .map(|(re, im)| (re * re + im * im).sqrt())
            .collect();
        radii.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert!((radii[0] - 0.5f64.sqrt()).abs() < 1e-8);
        assert!((radii[3] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn trace_and_det_invariants() {
        let a = Mat::from_rows(&[
            &[1.0, 2.0, 3.0, 1.0],
            &[0.5, -1.0, 0.0, 2.0],
            &[2.0, 0.1, 0.7, -1.0],
            &[0.0, 1.5, -0.5, 0.2],
        ])
        .unwrap();
        let eigs = eigenvalues(&a).unwrap();
        let sum_re: f64 = eigs.iter().map(|e| e.0).sum();
        assert!((sum_re - a.trace()).abs() < 1e-6, "trace {sum_re}");
        // Product of eigenvalues = det (via LU).
        let det = crate::lu::Lu::factor(&a).unwrap().det();
        // Complex product: multiply pairs as |λ|² for conjugates.
        let mut prod_re = 1.0;
        let mut prod_im = 0.0;
        for (re, im) in &eigs {
            let (nr, ni) = (prod_re * re - prod_im * im, prod_re * im + prod_im * re);
            prod_re = nr;
            prod_im = ni;
        }
        assert!(prod_im.abs() < 1e-5);
        assert!(
            (prod_re - det).abs() < 1e-5 * det.abs().max(1.0),
            "det {prod_re} vs {det}"
        );
    }

    #[test]
    fn small_sizes() {
        assert!(eigenvalues(&Mat::zeros(0, 0)).unwrap().is_empty());
        assert_eq!(eigenvalues(&Mat::diag(&[7.0])).unwrap(), vec![(7.0, 0.0)]);
    }

    #[test]
    fn input_validation() {
        assert!(eigenvalues(&Mat::zeros(2, 3)).is_err());
        let mut a = Mat::identity(2);
        a[(0, 0)] = f64::NAN;
        assert!(eigenvalues(&a).is_err());
    }

    #[test]
    fn hessenberg_preserves_eigenvalues() {
        let a = Mat::from_rows(&[
            &[4.0, 1.0, -2.0, 2.0],
            &[1.0, 2.0, 0.0, 1.0],
            &[-2.0, 0.0, 3.0, -2.0],
            &[2.0, 1.0, -2.0, -1.0],
        ])
        .unwrap();
        let mut h = a.clone();
        hessenberg(&mut h);
        // Hessenberg shape: zeros below the subdiagonal.
        for i in 2..4 {
            for j in 0..i - 1 {
                assert!(h[(i, j)].abs() < 1e-12, "h[{i}][{j}] = {}", h[(i, j)]);
            }
        }
        // Similarity: trace preserved.
        assert!((h.trace() - a.trace()).abs() < 1e-10);
    }
}
