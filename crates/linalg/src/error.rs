use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra kernels.
///
/// Every fallible operation in this crate returns `Result<_, LinalgError>`;
/// the variants carry enough context to pinpoint which shape or numerical
/// precondition was violated.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable name of the operation (e.g. `"mul"`).
        op: &'static str,
        /// Shape `(rows, cols)` of the left operand.
        lhs: (usize, usize),
        /// Shape `(rows, cols)` of the right operand.
        rhs: (usize, usize),
    },
    /// A square matrix was required but a rectangular one was supplied.
    NotSquare {
        /// Shape `(rows, cols)` of the offending matrix.
        shape: (usize, usize),
    },
    /// A matrix was singular (or numerically singular) during factorization.
    Singular {
        /// Index of the pivot column where factorization broke down.
        pivot: usize,
    },
    /// An iterative solver failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the iterative algorithm (e.g. `"dare"`).
        algorithm: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual norm at the last iteration.
        residual: f64,
    },
    /// Construction data was inconsistent (e.g. ragged rows).
    InvalidData {
        /// Explanation of what was wrong with the input.
        reason: String,
    },
    /// A non-finite value (NaN or infinity) appeared where finite data is
    /// required.
    NonFinite {
        /// Human-readable name of the operation that detected the value.
        op: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            LinalgError::NoConvergence {
                algorithm,
                iterations,
                residual,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            LinalgError::InvalidData { reason } => write!(f, "invalid matrix data: {reason}"),
            LinalgError::NonFinite { op } => {
                write!(f, "non-finite value encountered in {op}")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<LinalgError> = vec![
            LinalgError::ShapeMismatch {
                op: "mul",
                lhs: (2, 3),
                rhs: (4, 5),
            },
            LinalgError::NotSquare { shape: (2, 3) },
            LinalgError::Singular { pivot: 1 },
            LinalgError::NoConvergence {
                algorithm: "dare",
                iterations: 100,
                residual: 1.0,
            },
            LinalgError::InvalidData {
                reason: "ragged rows".into(),
            },
            LinalgError::NonFinite { op: "expm" },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
