//! Small free-function helpers on `&[f64]` state vectors.
//!
//! The ODE solvers in `ecl-sim` manipulate flat state vectors; these
//! helpers keep that code readable without pulling in a vector type.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// assert_eq!(ecl_linalg::vec_dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn vec_dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vec_dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Element-wise sum `a + b` as a new `Vec`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn vec_add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vec_add length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Element-wise difference `a - b` as a new `Vec`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn vec_sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vec_sub length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Scales a slice by `k` into a new `Vec`.
pub fn vec_scale(a: &[f64], k: f64) -> Vec<f64> {
    a.iter().map(|x| x * k).collect()
}

/// In-place `y += k * x` (the BLAS `axpy` kernel).
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// let mut y = vec![1.0, 1.0];
/// ecl_linalg::vec_axpy(&mut y, 2.0, &[1.0, 3.0]);
/// assert_eq!(y, vec![3.0, 7.0]);
/// ```
pub fn vec_axpy(y: &mut [f64], k: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "vec_axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += k * xi;
    }
}

/// Infinity norm (maximum absolute entry); `0.0` for the empty slice.
pub fn vec_norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, x| m.max(x.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal() {
        assert_eq!(vec_dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn add_sub_scale() {
        let a = [1.0, 2.0];
        let b = [3.0, 5.0];
        assert_eq!(vec_add(&a, &b), vec![4.0, 7.0]);
        assert_eq!(vec_sub(&b, &a), vec![2.0, 3.0]);
        assert_eq!(vec_scale(&a, -1.0), vec![-1.0, -2.0]);
    }

    #[test]
    fn axpy_zero_k_is_noop() {
        let mut y = vec![1.0, 2.0];
        vec_axpy(&mut y, 0.0, &[9.0, 9.0]);
        assert_eq!(y, vec![1.0, 2.0]);
    }

    #[test]
    fn norm_inf_of_empty_is_zero() {
        assert_eq!(vec_norm_inf(&[]), 0.0);
        assert_eq!(vec_norm_inf(&[-3.0, 2.0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        vec_dot(&[1.0], &[1.0, 2.0]);
    }
}
