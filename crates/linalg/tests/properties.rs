//! Property-based tests of the linear-algebra kernels.

use ecl_linalg::{eigenvalues, expm, lu::Lu, spectral_radius, Mat};
use proptest::prelude::*;

fn mat3(entries: Vec<f64>) -> Mat {
    Mat::from_vec(3, 3, entries).expect("9 entries")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn transpose_of_product(
        a in proptest::collection::vec(-5.0f64..5.0, 9),
        b in proptest::collection::vec(-5.0f64..5.0, 9),
    ) {
        let (a, b) = (mat3(a), mat3(b));
        let left = a.matmul(&b).expect("3x3").transpose();
        let right = b.transpose().matmul(&a.transpose()).expect("3x3");
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    /// Matrix multiplication is associative (within fp tolerance).
    #[test]
    fn matmul_associative(
        a in proptest::collection::vec(-2.0f64..2.0, 9),
        b in proptest::collection::vec(-2.0f64..2.0, 9),
        c in proptest::collection::vec(-2.0f64..2.0, 9),
    ) {
        let (a, b, c) = (mat3(a), mat3(b), mat3(c));
        let left = a.matmul(&b).expect("ok").matmul(&c).expect("ok");
        let right = a.matmul(&b.matmul(&c).expect("ok")).expect("ok");
        prop_assert!(left.approx_eq(&right, 1e-7), "{left:?} vs {right:?}");
    }

    /// det(A·B) = det(A)·det(B) for well-conditioned matrices.
    #[test]
    fn det_multiplicative(
        a in proptest::collection::vec(-1.0f64..1.0, 9),
        b in proptest::collection::vec(-1.0f64..1.0, 9),
    ) {
        let mut a = mat3(a);
        let mut b = mat3(b);
        for i in 0..3 {
            a[(i, i)] += 4.0;
            b[(i, i)] += 4.0;
        }
        let da = Lu::factor(&a).expect("nonsingular").det();
        let db = Lu::factor(&b).expect("nonsingular").det();
        let dab = Lu::factor(&a.matmul(&b).expect("ok")).expect("nonsingular").det();
        prop_assert!(
            (dab - da * db).abs() <= 1e-8 * dab.abs().max(1.0),
            "{dab} vs {}",
            da * db
        );
    }

    /// Inverse round-trip: A · A⁻¹ = I.
    #[test]
    fn inverse_roundtrip(entries in proptest::collection::vec(-1.0f64..1.0, 9)) {
        let mut a = mat3(entries);
        for i in 0..3 {
            a[(i, i)] += 5.0;
        }
        let inv = ecl_linalg::lu::inverse(&a).expect("nonsingular");
        prop_assert!(a.matmul(&inv).expect("ok").approx_eq(&Mat::identity(3), 1e-9));
    }

    /// det(exp(A)) = exp(trace(A)) — Jacobi's formula.
    #[test]
    fn expm_det_trace(entries in proptest::collection::vec(-1.5f64..1.5, 9)) {
        let a = mat3(entries);
        let e = expm(&a).expect("finite");
        let det = Lu::factor(&e).expect("exp is nonsingular").det();
        let expect = a.trace().exp();
        prop_assert!(
            (det - expect).abs() <= 1e-6 * expect.abs().max(1.0),
            "det {det}, exp(tr) {expect}"
        );
    }

    /// Sum of eigenvalue real parts equals the trace.
    #[test]
    fn eigs_sum_to_trace(entries in proptest::collection::vec(-3.0f64..3.0, 9)) {
        let a = mat3(entries);
        let eigs = eigenvalues(&a).expect("converges");
        prop_assert_eq!(eigs.len(), 3);
        let sum: f64 = eigs.iter().map(|e| e.0).sum();
        prop_assert!(
            (sum - a.trace()).abs() < 1e-5 * a.trace().abs().max(1.0),
            "sum {sum} vs trace {}",
            a.trace()
        );
        // Imaginary parts cancel (conjugate pairs).
        let imag: f64 = eigs.iter().map(|e| e.1).sum();
        prop_assert!(imag.abs() < 1e-6);
    }

    /// Spectral radius is bounded by the infinity norm.
    #[test]
    fn spectral_radius_below_norm(entries in proptest::collection::vec(-3.0f64..3.0, 9)) {
        let a = mat3(entries);
        let rho = spectral_radius(&a).expect("converges");
        prop_assert!(rho <= a.norm_inf() + 1e-7, "rho {rho} > norm {}", a.norm_inf());
    }

    /// exp(A)·exp(A) = exp(2A) (semigroup).
    #[test]
    fn expm_semigroup(entries in proptest::collection::vec(-1.0f64..1.0, 9)) {
        let a = mat3(entries);
        let e1 = expm(&a).expect("finite");
        let e2 = expm(&a.scaled(2.0)).expect("finite");
        prop_assert!(e1.matmul(&e1).expect("ok").approx_eq(&e2, 1e-7));
    }
}
