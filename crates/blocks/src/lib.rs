//! Scicos-style block library for the `ecl-sim` kernel.
//!
//! This crate provides the block vocabulary that the DATE 2008 methodology
//! paper builds on:
//!
//! * **Sources** — [`Constant`], [`Step`], [`Ramp`], [`Sine`],
//!   [`SampledNoise`];
//! * **Continuous dynamics** — [`Integrator`], [`StateSpaceCt`];
//! * **Static math** — [`Gain`], [`Sum`], [`Saturation`], [`Quantizer`];
//! * **Discrete (event-activated) dynamics** — [`UnitDelay`],
//!   [`DiscreteStateSpace`], [`PidBlock`];
//! * **Event processing** (paper §3) — [`Clock`] (periodic activation
//!   source), [`EventDelay`] (models an operation's execution duration,
//!   §3.2.1), [`EventSelect`] with a *condition mapping* (models
//!   conditional branches, §3.2.2), [`Synchronization`] (the block the
//!   paper introduces for inter-processor synchronization, §3.2.3), and
//!   [`SampleHold`] / [`Scope`] for the plant–controller interconnection of
//!   the paper's Fig. 2.
//!
//! # Examples
//!
//! A sampled loop in the stroboscopic model (paper Fig. 2): reference,
//! sampler and scope all activated by one clock.
//!
//! ```
//! use ecl_blocks::{add_clock, Constant, Gain, Integrator, SampleHold, Scope};
//! use ecl_sim::{Model, SimOptions, Simulator, TimeNs};
//!
//! # fn main() -> Result<(), ecl_sim::SimError> {
//! let mut m = Model::new();
//! let clk = add_clock(&mut m, "clk", TimeNs::from_millis(100), TimeNs::ZERO)?;
//! let r = m.add_block("ref", Constant::new(1.0));
//! let sh = m.add_block("sample", SampleHold::new(0.0));
//! m.connect(r, 0, sh, 0)?;
//! m.connect_event(clk, 0, sh, 0)?;
//! let scope = m.add_block("scope", Scope::new());
//! m.connect(sh, 0, scope, 0)?;
//! m.connect_event(clk, 0, scope, 0)?;
//! let mut sim = Simulator::new(m, SimOptions::default())?;
//! sim.run(TimeNs::from_secs(1))?;
//! let sc = sim.model().block_as::<Scope>(scope).unwrap();
//! assert_eq!(sc.samples().len(), 11);
//! # let _ = (Gain::new(1.0), Integrator::new(0.0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![allow(
    // `!(x > 0.0)` deliberately treats NaN as invalid; partial_cmp would
    // obscure that.
    clippy::neg_cmp_op_on_partial_ord,
    // Index loops mirror the textbook matrix formulas they implement.
    clippy::needless_range_loop
)]
#![warn(missing_docs)]

mod continuous;
mod discrete;
mod error;
mod event;
mod math;
mod nonlinear;
mod sinks;
mod sources;

pub use continuous::{Integrator, StateSpaceCt};
pub use discrete::{DiscreteStateSpace, PidBlock, PidConfig, UnitDelay};
pub use error::BlockError;
pub use event::{
    add_clock, Clock, ConditionMapping, DelayAction, EventDelay, EventSelect, FaultyDelay,
    SampleHold, Synchronization,
};
pub use math::{Gain, Quantizer, Saturation, Sum};
pub use nonlinear::{DeadZone, RateLimiter, Relay, SampledDelayLine};
pub use sinks::Scope;
pub use sources::{Constant, Ramp, SampledNoise, Sine, Step};
