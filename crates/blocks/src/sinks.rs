//! Recording sinks.

use ecl_sim::{impl_block_any, Block, EventCtx, PortSpec, TimeNs};

/// An event-driven scope: records `(instant, value)` of its input at every
/// activation.
///
/// For continuous recording at the integration rate, use
/// [`Model::probe`](ecl_sim::Model::probe) instead; `Scope` is the
/// Scicos-faithful *sampled* recorder driven by an activation clock.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scope {
    samples: Vec<(TimeNs, f64)>,
}

impl Scope {
    /// Creates an empty scope.
    pub fn new() -> Self {
        Scope::default()
    }

    /// The recorded `(instant, value)` samples.
    pub fn samples(&self) -> &[(TimeNs, f64)] {
        &self.samples
    }

    /// The recorded values only.
    pub fn values(&self) -> Vec<f64> {
        self.samples.iter().map(|&(_, v)| v).collect()
    }

    /// The recorded instants only.
    pub fn times(&self) -> Vec<TimeNs> {
        self.samples.iter().map(|&(t, _)| t).collect()
    }
}

impl Block for Scope {
    fn type_name(&self) -> &'static str {
        "Scope"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::new(1, 0, 1, 0)
    }
    fn feedthrough(&self, _input: usize) -> bool {
        false
    }
    fn on_event(&mut self, _port: usize, t: TimeNs, ctx: &mut EventCtx<'_>) {
        self.samples.push((t, ctx.inputs[0]));
    }
    impl_block_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_sim::EventActions;

    #[test]
    fn scope_records_on_activation() {
        let mut s = Scope::new();
        for (i, v) in [1.0, 2.0, 3.0].iter().enumerate() {
            let mut actions = EventActions::new();
            let mut ctx = EventCtx {
                inputs: &[*v],
                actions: &mut actions,
            };
            s.on_event(0, TimeNs::from_millis(i as i64), &mut ctx);
        }
        assert_eq!(s.values(), vec![1.0, 2.0, 3.0]);
        assert_eq!(
            s.times(),
            vec![TimeNs::ZERO, TimeNs::from_millis(1), TimeNs::from_millis(2)]
        );
        assert_eq!(s.samples().len(), 3);
    }

    #[test]
    fn default_is_empty() {
        assert!(Scope::default().samples().is_empty());
    }
}
