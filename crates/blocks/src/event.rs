//! Event-processing blocks — the vocabulary of the paper's §3.
//!
//! These blocks are the building material of the *graph of delays*: a
//! Scicos sub-graph that replays the temporal behaviour of a SynDEx static
//! schedule by emitting activation events at the instants the real
//! implementation would sample, compute and actuate.
//!
//! | Paper construction | Block |
//! |---|---|
//! | activation clock (stroboscopic model, Fig. 2) | [`Clock`] |
//! | sequencing / operation durations (§3.2.1, Fig. 4) | [`EventDelay`] |
//! | conditioning / `if..then..else` branches (§3.2.2, Fig. 5) | [`EventSelect`] + [`ConditionMapping`] |
//! | inter-processor synchronization (§3.2.3) | [`Synchronization`] |
//! | sampling / actuation interface (Fig. 2) | [`SampleHold`] |

use ecl_sim::{
    impl_block_any, Block, BlockId, EventActions, EventCtx, Model, PortSpec, SimError, TimeNs,
};

use crate::error::BlockError;

/// A periodic activation clock.
///
/// Scicos-style: the clock is an event *pipe* whose output must be looped
/// back onto its own event input so that each firing schedules the next
/// one. [`add_clock`] adds the block and the self-loop in one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Clock {
    period: TimeNs,
    offset: TimeNs,
}

impl Clock {
    /// Creates a clock with the given period, first firing at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::InvalidParameter`] if the period is not
    /// strictly positive or the offset is negative.
    pub fn new(period: TimeNs, offset: TimeNs) -> Result<Self, BlockError> {
        if period <= TimeNs::ZERO {
            return Err(BlockError::InvalidParameter {
                block: "Clock",
                parameter: "period",
                reason: format!("must be positive, got {period}"),
            });
        }
        if offset.is_negative() {
            return Err(BlockError::InvalidParameter {
                block: "Clock",
                parameter: "offset",
                reason: format!("must be non-negative, got {offset}"),
            });
        }
        Ok(Clock { period, offset })
    }

    /// The clock period.
    pub fn period(&self) -> TimeNs {
        self.period
    }
}

impl Block for Clock {
    fn type_name(&self) -> &'static str {
        "Clock"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::event_pipe(1, 1)
    }
    fn on_start(&mut self, actions: &mut EventActions) {
        actions.emit(0, self.offset);
    }
    fn on_event(&mut self, _port: usize, _t: TimeNs, ctx: &mut EventCtx<'_>) {
        ctx.actions.emit(0, self.period);
    }
    impl_block_any!();
}

/// Adds a [`Clock`] to `model` and wires its self-loop.
///
/// Returns the clock's id; connect its event output 0 to the blocks it
/// should activate.
///
/// # Errors
///
/// Propagates [`Clock::new`] parameter errors as
/// [`SimError::InvalidModel`], and wiring errors from
/// [`Model::connect_event`].
///
/// # Examples
///
/// ```
/// use ecl_blocks::add_clock;
/// use ecl_sim::{Model, TimeNs};
/// # fn main() -> Result<(), ecl_sim::SimError> {
/// let mut m = Model::new();
/// let clk = add_clock(&mut m, "clk", TimeNs::from_millis(10), TimeNs::ZERO)?;
/// assert_eq!(m.ports(clk)?.event_outputs, 1);
/// # Ok(())
/// # }
/// ```
pub fn add_clock(
    model: &mut Model,
    name: impl Into<String>,
    period: TimeNs,
    offset: TimeNs,
) -> Result<BlockId, SimError> {
    let clock = Clock::new(period, offset).map_err(|e| SimError::InvalidModel {
        reason: e.to_string(),
    })?;
    let id = model.add_block(name, clock);
    model.connect_event(id, 0, id, 0)?;
    Ok(id)
}

/// Re-emits each incoming event after a fixed delay — the Scicos
/// `Event Delay` block modelling the WCET of one schedule operation
/// (paper §3.2.1).
///
/// An activation arriving at `t` produces an output event at `t + delay`;
/// chaining `EventDelay` blocks reproduces the sequencing of operations on
/// one processor (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventDelay {
    delay: TimeNs,
}

impl EventDelay {
    /// Creates an event delay of `delay` (non-negative).
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::InvalidParameter`] for a negative delay.
    pub fn new(delay: TimeNs) -> Result<Self, BlockError> {
        if delay.is_negative() {
            return Err(BlockError::InvalidParameter {
                block: "EventDelay",
                parameter: "delay",
                reason: format!("must be non-negative, got {delay}"),
            });
        }
        Ok(EventDelay { delay })
    }

    /// The configured delay.
    pub fn delay(&self) -> TimeNs {
        self.delay
    }
}

impl Block for EventDelay {
    fn type_name(&self) -> &'static str {
        "EventDelay"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::event_pipe(1, 1)
    }
    fn on_event(&mut self, _port: usize, _t: TimeNs, ctx: &mut EventCtx<'_>) {
        ctx.actions.emit(0, self.delay);
    }
    impl_block_any!();
}

/// What a [`FaultyDelay`] does with one activation.
///
/// Actions are indexed by activation count: element `k` of the action
/// plan applies to the block's `k`-th activation (one per period in a
/// healthy graph of delays). Activations beyond the end of the plan pass
/// through unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DelayAction {
    /// Emit after the base delay (no fault).
    #[default]
    Pass,
    /// Emit after the base delay plus the given extra time — a frame lost
    /// and retransmitted `k` times stretches a communication slot by
    /// `k · retry cost`.
    Stretch(TimeNs),
    /// Swallow the activation: the completion event never fires this
    /// period (exhausted retransmissions, link outage, dead processor).
    Drop,
}

/// An [`EventDelay`] that replays a per-activation fault plan: each
/// incoming event is delayed, delayed longer, or dropped according to the
/// [`DelayAction`] at its activation index.
///
/// This is the fault-injection counterpart of the schedule slots in the
/// graph of delays: a dropped activation means the operation (or
/// transfer) never completes that period, so downstream Sample/Hold
/// blocks keep their last value and the period's latency machinery
/// records a skipped event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultyDelay {
    delay: TimeNs,
    actions: Vec<DelayAction>,
    activations: u64,
    dropped: u64,
    stretched: u64,
}

impl FaultyDelay {
    /// Creates a faulty delay with base `delay` and the given action plan.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::InvalidParameter`] for a negative base delay
    /// or a negative stretch amount.
    pub fn new(delay: TimeNs, actions: Vec<DelayAction>) -> Result<Self, BlockError> {
        if delay.is_negative() {
            return Err(BlockError::InvalidParameter {
                block: "FaultyDelay",
                parameter: "delay",
                reason: format!("must be non-negative, got {delay}"),
            });
        }
        if let Some(bad) = actions.iter().find_map(|a| match a {
            DelayAction::Stretch(extra) if extra.is_negative() => Some(*extra),
            _ => None,
        }) {
            return Err(BlockError::InvalidParameter {
                block: "FaultyDelay",
                parameter: "actions",
                reason: format!("stretch must be non-negative, got {bad}"),
            });
        }
        Ok(FaultyDelay {
            delay,
            actions,
            activations: 0,
            dropped: 0,
            stretched: 0,
        })
    }

    /// The base delay (the slot's fault-free duration).
    pub fn delay(&self) -> TimeNs {
        self.delay
    }

    /// Activations swallowed so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Activations stretched so far.
    pub fn stretched(&self) -> u64 {
        self.stretched
    }
}

impl Block for FaultyDelay {
    fn type_name(&self) -> &'static str {
        "FaultyDelay"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::event_pipe(1, 1)
    }
    fn on_event(&mut self, _port: usize, _t: TimeNs, ctx: &mut EventCtx<'_>) {
        let k = self.activations as usize;
        self.activations += 1;
        match self.actions.get(k).copied().unwrap_or_default() {
            DelayAction::Pass => ctx.actions.emit(0, self.delay),
            DelayAction::Stretch(extra) => {
                self.stretched += 1;
                ctx.actions.emit(0, self.delay + extra);
            }
            DelayAction::Drop => self.dropped += 1,
        }
    }
    impl_block_any!();
}

/// The *condition mapping* function of the paper's §3.2.2: maps the value
/// of the conditioning variable (a regular input) to the index of the
/// event-output channel that should fire.
pub type ConditionMapping = Box<dyn Fn(f64) -> usize + Send>;

/// Routes each incoming event to one of `n` event outputs, chosen by a
/// [`ConditionMapping`] applied to the block's regular input — the Scicos
/// `Event Select` construction for schedule conditioning (paper §3.2.2,
/// Fig. 5).
///
/// If the mapping returns an out-of-range channel the event is routed to
/// the last channel (a defensive clamp; the paper assumes a total mapping).
pub struct EventSelect {
    n: usize,
    mapping: ConditionMapping,
    /// Channel selected at the most recent activation (for inspection).
    last_choice: Option<usize>,
}

impl std::fmt::Debug for EventSelect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSelect")
            .field("n", &self.n)
            .field("last_choice", &self.last_choice)
            .finish()
    }
}

impl EventSelect {
    /// Creates a selector with `n` output channels and the given mapping.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::InvalidParameter`] if `n == 0`.
    pub fn new(n: usize, mapping: ConditionMapping) -> Result<Self, BlockError> {
        if n == 0 {
            return Err(BlockError::InvalidParameter {
                block: "EventSelect",
                parameter: "n",
                reason: "needs at least one output channel".into(),
            });
        }
        Ok(EventSelect {
            n,
            mapping,
            last_choice: None,
        })
    }

    /// A two-way selector: channel 1 if the condition input is non-zero,
    /// channel 0 otherwise (the `if..then..else` of the paper).
    pub fn boolean() -> Self {
        EventSelect {
            n: 2,
            mapping: Box::new(|v| usize::from(v != 0.0)),
            last_choice: None,
        }
    }

    /// The channel chosen at the most recent activation, if any.
    pub fn last_choice(&self) -> Option<usize> {
        self.last_choice
    }
}

impl Block for EventSelect {
    fn type_name(&self) -> &'static str {
        "EventSelect"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::new(1, 0, 1, self.n)
    }
    fn on_event(&mut self, _port: usize, _t: TimeNs, ctx: &mut EventCtx<'_>) {
        let k = (self.mapping)(ctx.inputs[0]).min(self.n - 1);
        self.last_choice = Some(k);
        ctx.actions.emit(k, TimeNs::ZERO);
    }
    impl_block_any!();
}

/// The `Synchronization` block introduced by the paper (§3.2.3).
///
/// `n` event inputs, one event output. The block fires (and resets its
/// internal received-flags) once *every* input has received at least one
/// event since the last reset — modelling a rendezvous between the
/// computation sequence of a processor and the communication sequences of
/// the media it waits on.
/// With [`Synchronization::with_timeout`] the block grows one extra event
/// input — the *timeout arm* (paper-extension for graceful degradation):
/// if the barrier has not fired since the previous timeout tick, the tick
/// forces a fire with whatever inputs have arrived. A dead predecessor
/// (processor dropout, dropped communication) therefore degrades the
/// period instead of deadlocking it: downstream Sample/Hold blocks
/// re-activate on stale data rather than never again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Synchronization {
    received: Vec<bool>,
    /// Number of times the block has fired.
    fired: u64,
    timeout: Option<TimeoutArm>,
}

/// State of the optional timeout arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TimeoutArm {
    /// Whether the barrier fired (normally or forced) since the last tick.
    fired_in_window: bool,
    /// Number of fires forced by the timeout.
    forced: u64,
}

impl Synchronization {
    /// Creates a synchronization barrier over `n` event inputs.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::InvalidParameter`] if `n == 0`.
    pub fn new(n: usize) -> Result<Self, BlockError> {
        if n == 0 {
            return Err(BlockError::InvalidParameter {
                block: "Synchronization",
                parameter: "n",
                reason: "needs at least one event input".into(),
            });
        }
        Ok(Synchronization {
            received: vec![false; n],
            fired: 0,
            timeout: None,
        })
    }

    /// Creates a barrier over `n` event inputs plus a timeout arm on
    /// event input `n`: wire a once-per-period event (e.g. the period
    /// clock through an [`EventDelay`] just shorter than the period) to
    /// that port. A tick arriving when the barrier has not fired since
    /// the previous tick forces a fire and resets the pending flags.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::InvalidParameter`] if `n == 0`.
    pub fn with_timeout(n: usize) -> Result<Self, BlockError> {
        let mut s = Synchronization::new(n)?;
        s.timeout = Some(TimeoutArm {
            fired_in_window: false,
            forced: 0,
        });
        Ok(s)
    }

    /// Number of times the barrier has fired.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Number of fires forced by the timeout arm (0 without one).
    pub fn timeout_fires(&self) -> u64 {
        self.timeout.map_or(0, |t| t.forced)
    }

    /// `true` if input `port` has an event pending since the last reset.
    pub fn pending(&self, port: usize) -> bool {
        self.received.get(port).copied().unwrap_or(false)
    }

    fn fire(&mut self, ctx: &mut EventCtx<'_>) {
        for r in &mut self.received {
            *r = false;
        }
        self.fired += 1;
        if let Some(t) = &mut self.timeout {
            t.fired_in_window = true;
        }
        ctx.actions.emit(0, TimeNs::ZERO);
    }
}

impl Block for Synchronization {
    fn type_name(&self) -> &'static str {
        "Synchronization"
    }
    fn ports(&self) -> PortSpec {
        let extra = usize::from(self.timeout.is_some());
        PortSpec::new(0, 0, self.received.len() + extra, 1)
    }
    fn on_event(&mut self, port: usize, _t: TimeNs, ctx: &mut EventCtx<'_>) {
        if self.timeout.is_some() && port == self.received.len() {
            let arm = self.timeout.as_mut().expect("timeout arm present");
            let fired_in_window = std::mem::replace(&mut arm.fired_in_window, false);
            if !fired_in_window {
                self.timeout.as_mut().expect("timeout arm present").forced += 1;
                self.fire(ctx);
                // `fire` marked the window as served; the next window
                // starts empty.
                self.timeout
                    .as_mut()
                    .expect("timeout arm present")
                    .fired_in_window = false;
            }
            return;
        }
        if let Some(flag) = self.received.get_mut(port) {
            *flag = true;
        }
        if self.received.iter().all(|&r| r) {
            self.fire(ctx);
        }
    }
    impl_block_any!();
}

/// Sample-and-hold: on activation, latches its input; the output holds the
/// latched value between activations.
///
/// Two instances model the controller's interface in the paper's Fig. 2:
/// one samples the plant output (sensor), one holds the control input
/// (actuator). The activation instants of these blocks *are* the
/// `I_j(k)` / `O_j(k)` of the paper's equations (1)–(2).
#[derive(Debug, Clone, PartialEq)]
pub struct SampleHold {
    held: f64,
    /// `(instant, value)` log of every sample taken.
    samples: Vec<(TimeNs, f64)>,
}

impl SampleHold {
    /// Creates a sample-and-hold holding `initial` until first activated.
    pub fn new(initial: f64) -> Self {
        SampleHold {
            held: initial,
            samples: Vec::new(),
        }
    }

    /// The value currently held.
    pub fn held(&self) -> f64 {
        self.held
    }

    /// The log of `(instant, value)` samples taken so far.
    pub fn samples(&self) -> &[(TimeNs, f64)] {
        &self.samples
    }
}

impl Block for SampleHold {
    fn type_name(&self) -> &'static str {
        "SampleHold"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::new(1, 1, 1, 0)
    }
    fn feedthrough(&self, _input: usize) -> bool {
        false
    }
    fn outputs(&mut self, _t: f64, _x: &[f64], _u: &[f64], y: &mut [f64]) {
        y[0] = self.held;
    }
    fn on_event(&mut self, _port: usize, t: TimeNs, ctx: &mut EventCtx<'_>) {
        self.held = ctx.inputs[0];
        self.samples.push((t, self.held));
    }
    impl_block_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_sim::{Model, SimOptions, Simulator};

    use crate::sinks::Scope;
    use crate::sources::Ramp;

    #[test]
    fn clock_parameter_validation() {
        assert!(Clock::new(TimeNs::ZERO, TimeNs::ZERO).is_err());
        assert!(Clock::new(TimeNs::from_millis(1), TimeNs::from_millis(-1)).is_err());
        let c = Clock::new(TimeNs::from_millis(5), TimeNs::ZERO).unwrap();
        assert_eq!(c.period(), TimeNs::from_millis(5));
    }

    #[test]
    fn clock_fires_with_offset() {
        let mut m = Model::new();
        let clk = m.add_block(
            "clk",
            Clock::new(TimeNs::from_millis(10), TimeNs::from_millis(3)).unwrap(),
        );
        m.connect_event(clk, 0, clk, 0).unwrap();
        let sync = m.add_block("probe", Synchronization::new(1).unwrap());
        m.connect_event(clk, 0, sync, 0).unwrap();
        let mut sim = Simulator::new(m, SimOptions::default()).unwrap();
        let r = sim.run(TimeNs::from_millis(40)).unwrap();
        let times = r.activation_times(sync, Some(0));
        assert_eq!(
            times,
            vec![
                TimeNs::from_millis(3),
                TimeNs::from_millis(13),
                TimeNs::from_millis(23),
                TimeNs::from_millis(33)
            ]
        );
    }

    #[test]
    fn event_delay_shifts_events() {
        let mut m = Model::new();
        let clk = add_clock(&mut m, "clk", TimeNs::from_millis(100), TimeNs::ZERO).unwrap();
        let d = m.add_block("d", EventDelay::new(TimeNs::from_millis(7)).unwrap());
        m.connect_event(clk, 0, d, 0).unwrap();
        let sink = m.add_block("sink", Synchronization::new(1).unwrap());
        m.connect_event(d, 0, sink, 0).unwrap();
        let mut sim = Simulator::new(m, SimOptions::default()).unwrap();
        let r = sim.run(TimeNs::from_millis(250)).unwrap();
        assert_eq!(
            r.activation_times(sink, Some(0)),
            vec![
                TimeNs::from_millis(7),
                TimeNs::from_millis(107),
                TimeNs::from_millis(207)
            ]
        );
        assert!(EventDelay::new(TimeNs::from_millis(-1)).is_err());
    }

    #[test]
    fn event_delay_chain_models_sequencing() {
        // Paper Fig. 4: F1 ; F2 ; F3 with durations 5, 3, 2 ms — each
        // stage's completion event arrives at the cumulative sum.
        let mut m = Model::new();
        let clk = add_clock(&mut m, "clk", TimeNs::from_millis(100), TimeNs::ZERO).unwrap();
        let f1 = m.add_block("F1", EventDelay::new(TimeNs::from_millis(5)).unwrap());
        let f2 = m.add_block("F2", EventDelay::new(TimeNs::from_millis(3)).unwrap());
        let f3 = m.add_block("F3", EventDelay::new(TimeNs::from_millis(2)).unwrap());
        m.connect_event(clk, 0, f1, 0).unwrap();
        m.connect_event(f1, 0, f2, 0).unwrap();
        m.connect_event(f2, 0, f3, 0).unwrap();
        let end = m.add_block("end", Synchronization::new(1).unwrap());
        m.connect_event(f3, 0, end, 0).unwrap();
        let mut sim = Simulator::new(m, SimOptions::default()).unwrap();
        let r = sim.run(TimeNs::from_millis(150)).unwrap();
        assert_eq!(
            r.activation_times(end, Some(0)),
            vec![TimeNs::from_millis(10), TimeNs::from_millis(110)]
        );
    }

    #[test]
    fn event_select_routes_by_condition() {
        // Condition ramps from 0: mapping chooses channel 1 when cond >= 1.
        let mut m = Model::new();
        let clk = add_clock(&mut m, "clk", TimeNs::from_millis(100), TimeNs::ZERO).unwrap();
        let cond = m.add_block("cond", Ramp::new(0.0, 10.0)); // 1.0 at t=0.1
        let sel = m.add_block(
            "sel",
            EventSelect::new(2, Box::new(|v| usize::from(v >= 1.0))).unwrap(),
        );
        m.connect(cond, 0, sel, 0).unwrap();
        m.connect_event(clk, 0, sel, 0).unwrap();
        let s0 = m.add_block("s0", Synchronization::new(1).unwrap());
        let s1 = m.add_block("s1", Synchronization::new(1).unwrap());
        m.connect_event(sel, 0, s0, 0).unwrap();
        m.connect_event(sel, 1, s1, 0).unwrap();
        let mut sim = Simulator::new(m, SimOptions::default()).unwrap();
        let r = sim.run(TimeNs::from_millis(250)).unwrap();
        // t=0 -> cond 0 -> ch0 ; t=100,200 ms -> cond >= 1 -> ch1
        assert_eq!(r.activation_times(s0, Some(0)).len(), 1);
        assert_eq!(r.activation_times(s1, Some(0)).len(), 2);
        let sel_ref = sim.model().block_as::<EventSelect>(sel).unwrap();
        assert_eq!(sel_ref.last_choice(), Some(1));
    }

    #[test]
    fn event_select_validation_and_boolean() {
        assert!(EventSelect::new(0, Box::new(|_| 0)).is_err());
        let b = EventSelect::boolean();
        assert_eq!(b.ports().event_outputs, 2);
    }

    #[test]
    fn event_select_clamps_out_of_range() {
        let mut sel = EventSelect::new(2, Box::new(|_| 99)).unwrap();
        let mut actions = EventActions::new();
        let mut ctx = EventCtx {
            inputs: &[0.0],
            actions: &mut actions,
        };
        sel.on_event(0, TimeNs::ZERO, &mut ctx);
        assert_eq!(sel.last_choice(), Some(1));
    }

    #[test]
    fn synchronization_waits_for_all_inputs() {
        let mut sync = Synchronization::new(3).unwrap();
        let fire = |s: &mut Synchronization, port: usize| -> bool {
            let mut actions = EventActions::new();
            let mut ctx = EventCtx {
                inputs: &[],
                actions: &mut actions,
            };
            s.on_event(port, TimeNs::ZERO, &mut ctx);
            !actions.is_empty()
        };
        assert!(!fire(&mut sync, 0));
        assert!(sync.pending(0));
        assert!(!fire(&mut sync, 0)); // duplicate on same port does not fire
        assert!(!fire(&mut sync, 2));
        assert!(fire(&mut sync, 1)); // all three seen -> fires and resets
        assert_eq!(sync.fired(), 1);
        assert!(!sync.pending(0) && !sync.pending(1) && !sync.pending(2));
        // Next round requires all three again.
        assert!(!fire(&mut sync, 1));
        assert!(Synchronization::new(0).is_err());
    }

    #[test]
    fn synchronization_in_model_joins_two_branches() {
        // Two delays (3 ms and 8 ms) from one clock tick; the barrier fires
        // at the max of the two, i.e. 8 ms.
        let mut m = Model::new();
        let clk = add_clock(&mut m, "clk", TimeNs::from_millis(100), TimeNs::ZERO).unwrap();
        let d1 = m.add_block("d1", EventDelay::new(TimeNs::from_millis(3)).unwrap());
        let d2 = m.add_block("d2", EventDelay::new(TimeNs::from_millis(8)).unwrap());
        m.connect_event(clk, 0, d1, 0).unwrap();
        m.connect_event(clk, 0, d2, 0).unwrap();
        let sync = m.add_block("sync", Synchronization::new(2).unwrap());
        m.connect_event(d1, 0, sync, 0).unwrap();
        m.connect_event(d2, 0, sync, 1).unwrap();
        let sink = m.add_block("sink", Synchronization::new(1).unwrap());
        m.connect_event(sync, 0, sink, 0).unwrap();
        let mut sim = Simulator::new(m, SimOptions::default()).unwrap();
        let r = sim.run(TimeNs::from_millis(150)).unwrap();
        assert_eq!(
            r.activation_times(sink, Some(0)),
            vec![TimeNs::from_millis(8), TimeNs::from_millis(108)]
        );
    }

    #[test]
    fn sample_hold_latches_on_activation() {
        let mut m = Model::new();
        let clk = add_clock(&mut m, "clk", TimeNs::from_millis(250), TimeNs::ZERO).unwrap();
        let ramp = m.add_block("ramp", Ramp::new(0.0, 1.0));
        let sh = m.add_block("sh", SampleHold::new(-1.0));
        m.connect(ramp, 0, sh, 0).unwrap();
        m.connect_event(clk, 0, sh, 0).unwrap();
        let scope = m.add_block("scope", Scope::new());
        m.connect(sh, 0, scope, 0).unwrap();
        m.connect_event(clk, 0, scope, 0).unwrap();
        let mut sim = Simulator::new(m, SimOptions::default()).unwrap();
        sim.run(TimeNs::from_secs(1)).unwrap();
        let sh_ref = sim.model().block_as::<SampleHold>(sh).unwrap();
        let vals: Vec<f64> = sh_ref.samples().iter().map(|&(_, v)| v).collect();
        assert_eq!(vals.len(), 5);
        for (k, v) in vals.iter().enumerate() {
            assert!((v - 0.25 * k as f64).abs() < 1e-9, "sample {k} = {v}");
        }
        assert_eq!(sh_ref.held(), 1.0);
    }

    #[test]
    fn add_clock_invalid_period_maps_error() {
        let mut m = Model::new();
        assert!(matches!(
            add_clock(&mut m, "c", TimeNs::ZERO, TimeNs::ZERO),
            Err(SimError::InvalidModel { .. })
        ));
    }

    #[test]
    fn faulty_delay_validation() {
        assert!(FaultyDelay::new(TimeNs::from_millis(-1), vec![]).is_err());
        assert!(FaultyDelay::new(
            TimeNs::from_millis(1),
            vec![DelayAction::Stretch(TimeNs::from_millis(-2))]
        )
        .is_err());
        let d = FaultyDelay::new(TimeNs::from_millis(3), vec![DelayAction::Drop]).unwrap();
        assert_eq!(d.delay(), TimeNs::from_millis(3));
    }

    #[test]
    fn faulty_delay_pass_stretch_drop_sequencing() {
        // Activation 0 passes at the base delay, activation 1 is stretched
        // by 4 ms (two retransmissions at 2 ms), activation 2 is dropped,
        // and activations past the plan default to Pass.
        let mut m = Model::new();
        let clk = add_clock(&mut m, "clk", TimeNs::from_millis(100), TimeNs::ZERO).unwrap();
        let d = m.add_block(
            "d",
            FaultyDelay::new(
                TimeNs::from_millis(7),
                vec![
                    DelayAction::Pass,
                    DelayAction::Stretch(TimeNs::from_millis(4)),
                    DelayAction::Drop,
                ],
            )
            .unwrap(),
        );
        m.connect_event(clk, 0, d, 0).unwrap();
        let sink = m.add_block("sink", Synchronization::new(1).unwrap());
        m.connect_event(d, 0, sink, 0).unwrap();
        let mut sim = Simulator::new(m, SimOptions::default()).unwrap();
        let r = sim.run(TimeNs::from_millis(350)).unwrap();
        assert_eq!(
            r.activation_times(sink, Some(0)),
            vec![
                TimeNs::from_millis(7),
                TimeNs::from_millis(111),
                TimeNs::from_millis(307)
            ]
        );
        let d_ref = sim.model().block_as::<FaultyDelay>(d).unwrap();
        assert_eq!(d_ref.dropped(), 1);
        assert_eq!(d_ref.stretched(), 1);
    }

    #[test]
    fn synchronization_timeout_forces_fire_on_dead_input() {
        // Barrier over two inputs but input 1 is never fed: the timeout
        // tick on port 2 force-fires the period.
        let mut sync = Synchronization::with_timeout(2).unwrap();
        assert_eq!(sync.ports().event_inputs, 3);
        let fire = |s: &mut Synchronization, port: usize| -> bool {
            let mut actions = EventActions::new();
            let mut ctx = EventCtx {
                inputs: &[],
                actions: &mut actions,
            };
            s.on_event(port, TimeNs::ZERO, &mut ctx);
            !actions.is_empty()
        };
        assert!(!fire(&mut sync, 0)); // input 1 dead -> barrier stuck
        assert!(fire(&mut sync, 2)); // timeout forces the fire
        assert_eq!(sync.fired(), 1);
        assert_eq!(sync.timeout_fires(), 1);
        assert!(!sync.pending(0)); // pending flags were reset
                                   // Healthy window: both inputs arrive, barrier fires normally …
        assert!(!fire(&mut sync, 0));
        assert!(fire(&mut sync, 1));
        assert_eq!(sync.fired(), 2);
        // … so the next timeout tick is a no-op.
        assert!(!fire(&mut sync, 2));
        assert_eq!(sync.fired(), 2);
        assert_eq!(sync.timeout_fires(), 1);
        // And the window after that, dead again, is forced again.
        assert!(fire(&mut sync, 2));
        assert_eq!(sync.timeout_fires(), 2);
    }

    #[test]
    fn synchronization_without_timeout_reports_zero_forced() {
        let sync = Synchronization::new(2).unwrap();
        assert_eq!(sync.ports().event_inputs, 2);
        assert_eq!(sync.timeout_fires(), 0);
    }
}
