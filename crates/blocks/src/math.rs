//! Memory-less (static) math blocks.

use ecl_sim::{impl_block_any, Block, PortSpec};

use crate::error::BlockError;

/// `y = k · u`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gain {
    k: f64,
}

impl Gain {
    /// Creates a gain block with factor `k`.
    pub fn new(k: f64) -> Self {
        Gain { k }
    }

    /// The gain factor.
    pub fn k(&self) -> f64 {
        self.k
    }
}

impl Block for Gain {
    fn type_name(&self) -> &'static str {
        "Gain"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::siso(1, 1)
    }
    fn outputs(&mut self, _t: f64, _x: &[f64], u: &[f64], y: &mut [f64]) {
        y[0] = self.k * u[0];
    }
    impl_block_any!();
}

/// Weighted sum `y = Σ gains[i] · u[i]`.
///
/// The classic two-input comparator is `Sum::new(vec![1.0, -1.0])`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sum {
    gains: Vec<f64>,
}

impl Sum {
    /// Creates a sum block with one input per gain entry.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::InvalidParameter`] if `gains` is empty.
    pub fn new(gains: Vec<f64>) -> Result<Self, BlockError> {
        if gains.is_empty() {
            return Err(BlockError::InvalidParameter {
                block: "Sum",
                parameter: "gains",
                reason: "needs at least one input".into(),
            });
        }
        Ok(Sum { gains })
    }

    /// The standard comparator `y = u0 − u1`.
    pub fn comparator() -> Self {
        Sum {
            gains: vec![1.0, -1.0],
        }
    }
}

impl Block for Sum {
    fn type_name(&self) -> &'static str {
        "Sum"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::siso(self.gains.len(), 1)
    }
    fn outputs(&mut self, _t: f64, _x: &[f64], u: &[f64], y: &mut [f64]) {
        y[0] = self.gains.iter().zip(u).map(|(g, v)| g * v).sum();
    }
    impl_block_any!();
}

/// Clamps its input to `[min, max]` — models actuator limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Saturation {
    min: f64,
    max: f64,
}

impl Saturation {
    /// Creates a saturation with the given bounds.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::InvalidParameter`] if `min >= max`.
    pub fn new(min: f64, max: f64) -> Result<Self, BlockError> {
        if min >= max {
            return Err(BlockError::InvalidParameter {
                block: "Saturation",
                parameter: "min/max",
                reason: format!("min ({min}) must be below max ({max})"),
            });
        }
        Ok(Saturation { min, max })
    }

    /// A symmetric saturation `[-limit, limit]`.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::InvalidParameter`] if `limit <= 0`.
    pub fn symmetric(limit: f64) -> Result<Self, BlockError> {
        Saturation::new(-limit, limit)
    }
}

impl Block for Saturation {
    fn type_name(&self) -> &'static str {
        "Saturation"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::siso(1, 1)
    }
    fn outputs(&mut self, _t: f64, _x: &[f64], u: &[f64], y: &mut [f64]) {
        y[0] = u[0].clamp(self.min, self.max);
    }
    impl_block_any!();
}

/// Rounds its input to the nearest multiple of `step` — models ADC/DAC
/// quantization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    step: f64,
}

impl Quantizer {
    /// Creates a quantizer with resolution `step`.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::InvalidParameter`] if `step <= 0` or not
    /// finite.
    pub fn new(step: f64) -> Result<Self, BlockError> {
        if !(step > 0.0) || !step.is_finite() {
            return Err(BlockError::InvalidParameter {
                block: "Quantizer",
                parameter: "step",
                reason: format!("must be positive and finite, got {step}"),
            });
        }
        Ok(Quantizer { step })
    }
}

impl Block for Quantizer {
    fn type_name(&self) -> &'static str {
        "Quantizer"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::siso(1, 1)
    }
    fn outputs(&mut self, _t: f64, _x: &[f64], u: &[f64], y: &mut [f64]) {
        y[0] = (u[0] / self.step).round() * self.step;
    }
    impl_block_any!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(b: &mut impl Block, u: &[f64]) -> f64 {
        let mut y = [0.0];
        b.outputs(0.0, &[], u, &mut y);
        y[0]
    }

    #[test]
    fn gain_scales() {
        let mut g = Gain::new(-2.0);
        assert_eq!(eval(&mut g, &[3.0]), -6.0);
        assert_eq!(g.k(), -2.0);
    }

    #[test]
    fn sum_weighted() {
        let mut s = Sum::new(vec![1.0, -1.0, 0.5]).unwrap();
        assert_eq!(eval(&mut s, &[1.0, 2.0, 4.0]), 1.0);
        assert_eq!(s.ports().inputs, 3);
        let mut c = Sum::comparator();
        assert_eq!(eval(&mut c, &[5.0, 3.0]), 2.0);
    }

    #[test]
    fn sum_rejects_empty() {
        assert!(Sum::new(vec![]).is_err());
    }

    #[test]
    fn saturation_clamps() {
        let mut s = Saturation::new(-1.0, 2.0).unwrap();
        assert_eq!(eval(&mut s, &[-5.0]), -1.0);
        assert_eq!(eval(&mut s, &[0.5]), 0.5);
        assert_eq!(eval(&mut s, &[9.0]), 2.0);
        assert!(Saturation::new(1.0, 1.0).is_err());
        assert!(Saturation::symmetric(-1.0).is_err());
        let mut sym = Saturation::symmetric(3.0).unwrap();
        assert_eq!(eval(&mut sym, &[-10.0]), -3.0);
    }

    #[test]
    fn quantizer_rounds() {
        let mut q = Quantizer::new(0.5).unwrap();
        assert_eq!(eval(&mut q, &[0.74]), 0.5);
        assert_eq!(eval(&mut q, &[0.76]), 1.0);
        assert_eq!(eval(&mut q, &[-0.74]), -0.5);
        assert!(Quantizer::new(0.0).is_err());
        assert!(Quantizer::new(f64::NAN).is_err());
    }
}
