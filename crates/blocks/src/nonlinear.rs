//! Additional nonlinear and signal-routing blocks.

use ecl_sim::{impl_block_any, Block, EventCtx, PortSpec, TimeNs};

use crate::error::BlockError;

/// Dead zone: zero inside `[-width, width]`, shifted linear outside —
/// models stiction and valve lash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadZone {
    width: f64,
}

impl DeadZone {
    /// Creates a symmetric dead zone of half-width `width`.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::InvalidParameter`] if `width < 0` or not
    /// finite.
    pub fn new(width: f64) -> Result<Self, BlockError> {
        if !(width >= 0.0) || !width.is_finite() {
            return Err(BlockError::InvalidParameter {
                block: "DeadZone",
                parameter: "width",
                reason: format!("must be non-negative and finite, got {width}"),
            });
        }
        Ok(DeadZone { width })
    }
}

impl Block for DeadZone {
    fn type_name(&self) -> &'static str {
        "DeadZone"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::siso(1, 1)
    }
    fn outputs(&mut self, _t: f64, _x: &[f64], u: &[f64], y: &mut [f64]) {
        let v = u[0];
        y[0] = if v > self.width {
            v - self.width
        } else if v < -self.width {
            v + self.width
        } else {
            0.0
        };
    }
    impl_block_any!();
}

/// Event-activated rate limiter: on each activation, moves its output
/// toward the input by at most `max_rate · Ts` — models actuator slew
/// limits in the sampled domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimiter {
    max_step: f64,
    held: f64,
}

impl RateLimiter {
    /// Creates a rate limiter allowing at most `max_step` change per
    /// activation, starting from `initial`.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::InvalidParameter`] if `max_step <= 0` or not
    /// finite.
    pub fn new(max_step: f64, initial: f64) -> Result<Self, BlockError> {
        if !(max_step > 0.0) || !max_step.is_finite() {
            return Err(BlockError::InvalidParameter {
                block: "RateLimiter",
                parameter: "max_step",
                reason: format!("must be positive and finite, got {max_step}"),
            });
        }
        Ok(RateLimiter {
            max_step,
            held: initial,
        })
    }

    /// The current (held) output.
    pub fn held(&self) -> f64 {
        self.held
    }
}

impl Block for RateLimiter {
    fn type_name(&self) -> &'static str {
        "RateLimiter"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::new(1, 1, 1, 0)
    }
    fn feedthrough(&self, _input: usize) -> bool {
        false
    }
    fn outputs(&mut self, _t: f64, _x: &[f64], _u: &[f64], y: &mut [f64]) {
        y[0] = self.held;
    }
    fn on_event(&mut self, _port: usize, _t: TimeNs, ctx: &mut EventCtx<'_>) {
        let target = ctx.inputs[0];
        let delta = (target - self.held).clamp(-self.max_step, self.max_step);
        self.held += delta;
    }
    impl_block_any!();
}

/// A sampled transport-delay line: each activation pushes the current
/// input; the output is the input as it was `depth` activations ago —
/// models fixed whole-sample network/processing delays in a baseline
/// (non-co-simulated) fashion.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledDelayLine {
    buffer: Vec<f64>,
    /// Next slot to overwrite (circular).
    head: usize,
    held: f64,
}

impl SampledDelayLine {
    /// Creates a delay line of `depth` samples, pre-filled with `initial`.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::InvalidParameter`] if `depth == 0` (use a
    /// plain wire instead).
    pub fn new(depth: usize, initial: f64) -> Result<Self, BlockError> {
        if depth == 0 {
            return Err(BlockError::InvalidParameter {
                block: "SampledDelayLine",
                parameter: "depth",
                reason: "must be at least one sample".into(),
            });
        }
        Ok(SampledDelayLine {
            buffer: vec![initial; depth],
            head: 0,
            held: initial,
        })
    }

    /// The delay depth in samples.
    pub fn depth(&self) -> usize {
        self.buffer.len()
    }
}

impl Block for SampledDelayLine {
    fn type_name(&self) -> &'static str {
        "SampledDelayLine"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::new(1, 1, 1, 0)
    }
    fn feedthrough(&self, _input: usize) -> bool {
        false
    }
    fn outputs(&mut self, _t: f64, _x: &[f64], _u: &[f64], y: &mut [f64]) {
        y[0] = self.held;
    }
    fn on_event(&mut self, _port: usize, _t: TimeNs, ctx: &mut EventCtx<'_>) {
        // Pop the oldest sample, push the current input.
        self.held = self.buffer[self.head];
        self.buffer[self.head] = ctx.inputs[0];
        self.head = (self.head + 1) % self.buffer.len();
    }
    impl_block_any!();
}

/// Relay (bang-bang with hysteresis): output switches to `on_value` when
/// the input exceeds `upper`, back to `off_value` when it falls below
/// `lower`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Relay {
    lower: f64,
    upper: f64,
    off_value: f64,
    on_value: f64,
    state_on: bool,
}

impl Relay {
    /// Creates a relay with the given hysteresis band and output levels,
    /// initially off.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::InvalidParameter`] if `lower > upper`.
    pub fn new(lower: f64, upper: f64, off_value: f64, on_value: f64) -> Result<Self, BlockError> {
        if lower > upper {
            return Err(BlockError::InvalidParameter {
                block: "Relay",
                parameter: "lower/upper",
                reason: format!("lower ({lower}) must not exceed upper ({upper})"),
            });
        }
        Ok(Relay {
            lower,
            upper,
            off_value,
            on_value,
            state_on: false,
        })
    }

    /// `true` if the relay is currently on.
    pub fn is_on(&self) -> bool {
        self.state_on
    }
}

impl Block for Relay {
    fn type_name(&self) -> &'static str {
        "Relay"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::new(1, 1, 1, 0)
    }
    fn feedthrough(&self, _input: usize) -> bool {
        false
    }
    fn outputs(&mut self, _t: f64, _x: &[f64], _u: &[f64], y: &mut [f64]) {
        y[0] = if self.state_on {
            self.on_value
        } else {
            self.off_value
        };
    }
    fn on_event(&mut self, _port: usize, _t: TimeNs, ctx: &mut EventCtx<'_>) {
        let v = ctx.inputs[0];
        if self.state_on {
            if v < self.lower {
                self.state_on = false;
            }
        } else if v > self.upper {
            self.state_on = true;
        }
    }
    impl_block_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_sim::EventActions;

    fn activate(b: &mut impl Block, inputs: &[f64]) {
        let mut actions = EventActions::new();
        let mut ctx = EventCtx {
            inputs,
            actions: &mut actions,
        };
        b.on_event(0, TimeNs::ZERO, &mut ctx);
    }

    fn eval(b: &mut impl Block, u: &[f64]) -> f64 {
        let mut y = [0.0];
        b.outputs(0.0, &[], u, &mut y);
        y[0]
    }

    #[test]
    fn dead_zone_shape() {
        let mut dz = DeadZone::new(1.0).unwrap();
        assert_eq!(eval(&mut dz, &[0.5]), 0.0);
        assert_eq!(eval(&mut dz, &[-0.9]), 0.0);
        assert_eq!(eval(&mut dz, &[2.0]), 1.0);
        assert_eq!(eval(&mut dz, &[-3.0]), -2.0);
        assert!(DeadZone::new(-1.0).is_err());
        assert!(DeadZone::new(f64::NAN).is_err());
    }

    #[test]
    fn rate_limiter_slews() {
        let mut rl = RateLimiter::new(0.5, 0.0).unwrap();
        activate(&mut rl, &[2.0]);
        assert_eq!(rl.held(), 0.5);
        activate(&mut rl, &[2.0]);
        assert_eq!(rl.held(), 1.0);
        // Small changes pass through unclipped.
        activate(&mut rl, &[1.1]);
        assert!((rl.held() - 1.1).abs() < 1e-12);
        // Downward slew symmetric.
        activate(&mut rl, &[-5.0]);
        assert!((rl.held() - 0.6).abs() < 1e-12);
        assert!(RateLimiter::new(0.0, 0.0).is_err());
    }

    #[test]
    fn delay_line_shifts_by_depth() {
        let mut dl = SampledDelayLine::new(3, 0.0).unwrap();
        assert_eq!(dl.depth(), 3);
        let inputs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut outputs = Vec::new();
        for &u in &inputs {
            activate(&mut dl, &[u]);
            outputs.push(eval(&mut dl, &[]));
        }
        // y_k = u_{k-3} with initial fill 0.
        assert_eq!(outputs, vec![0.0, 0.0, 0.0, 1.0, 2.0]);
        assert!(SampledDelayLine::new(0, 0.0).is_err());
    }

    #[test]
    fn relay_hysteresis() {
        let mut r = Relay::new(-1.0, 1.0, 0.0, 10.0).unwrap();
        assert!(!r.is_on());
        assert_eq!(eval(&mut r, &[]), 0.0);
        activate(&mut r, &[0.5]); // inside the band: stays off
        assert!(!r.is_on());
        activate(&mut r, &[1.5]); // above upper: switches on
        assert!(r.is_on());
        assert_eq!(eval(&mut r, &[]), 10.0);
        activate(&mut r, &[0.0]); // inside the band: stays on
        assert!(r.is_on());
        activate(&mut r, &[-1.5]); // below lower: switches off
        assert!(!r.is_on());
        assert!(Relay::new(1.0, -1.0, 0.0, 1.0).is_err());
    }
}
