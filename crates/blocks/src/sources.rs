//! Signal sources.

use ecl_sim::{impl_block_any, Block, EventCtx, PortSpec, TimeNs};

/// Emits a constant value.
///
/// # Examples
///
/// ```
/// use ecl_blocks::Constant;
/// let c = Constant::new(2.5);
/// assert_eq!(c.value(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant {
    value: f64,
}

impl Constant {
    /// Creates a constant source.
    pub fn new(value: f64) -> Self {
        Constant { value }
    }

    /// The emitted value.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl Block for Constant {
    fn type_name(&self) -> &'static str {
        "Constant"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::source(1)
    }
    fn outputs(&mut self, _t: f64, _x: &[f64], _u: &[f64], y: &mut [f64]) {
        y[0] = self.value;
    }
    impl_block_any!();
}

/// A step: `initial` before `step_time` (seconds), `final_value` after.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Step {
    step_time: f64,
    initial: f64,
    final_value: f64,
}

impl Step {
    /// Creates a step from `initial` to `final_value` at `step_time`
    /// seconds.
    pub fn new(step_time: f64, initial: f64, final_value: f64) -> Self {
        Step {
            step_time,
            initial,
            final_value,
        }
    }

    /// A unit step at `t = 0`.
    pub fn unit() -> Self {
        Step::new(0.0, 0.0, 1.0)
    }
}

impl Block for Step {
    fn type_name(&self) -> &'static str {
        "Step"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::source(1)
    }
    fn outputs(&mut self, t: f64, _x: &[f64], _u: &[f64], y: &mut [f64]) {
        y[0] = if t >= self.step_time {
            self.final_value
        } else {
            self.initial
        };
    }
    impl_block_any!();
}

/// A ramp: zero until `start_time`, then `slope · (t − start_time)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ramp {
    start_time: f64,
    slope: f64,
}

impl Ramp {
    /// Creates a ramp with the given slope starting at `start_time` seconds.
    pub fn new(start_time: f64, slope: f64) -> Self {
        Ramp { start_time, slope }
    }
}

impl Block for Ramp {
    fn type_name(&self) -> &'static str {
        "Ramp"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::source(1)
    }
    fn outputs(&mut self, t: f64, _x: &[f64], _u: &[f64], y: &mut [f64]) {
        y[0] = if t >= self.start_time {
            self.slope * (t - self.start_time)
        } else {
            0.0
        };
    }
    impl_block_any!();
}

/// A sinusoid `bias + amplitude · sin(2π·freq_hz·t + phase)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sine {
    amplitude: f64,
    freq_hz: f64,
    phase: f64,
    bias: f64,
}

impl Sine {
    /// Creates a sinusoid with the given amplitude and frequency (Hz), zero
    /// phase and bias.
    pub fn new(amplitude: f64, freq_hz: f64) -> Self {
        Sine {
            amplitude,
            freq_hz,
            phase: 0.0,
            bias: 0.0,
        }
    }

    /// Sets the phase (radians), builder-style.
    pub fn with_phase(mut self, phase: f64) -> Self {
        self.phase = phase;
        self
    }

    /// Sets the bias (offset), builder-style.
    pub fn with_bias(mut self, bias: f64) -> Self {
        self.bias = bias;
        self
    }
}

impl Block for Sine {
    fn type_name(&self) -> &'static str {
        "Sine"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::source(1)
    }
    fn outputs(&mut self, t: f64, _x: &[f64], _u: &[f64], y: &mut [f64]) {
        y[0] = self.bias
            + self.amplitude * (2.0 * std::f64::consts::PI * self.freq_hz * t + self.phase).sin();
    }
    impl_block_any!();
}

/// Minimal SplitMix64 generator backing [`SampledNoise`].
///
/// Local so the workspace carries no registry dependency for its single
/// random source; the stream is fixed by the seed and nothing else.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Zero-order-hold Gaussian noise, redrawn at each activation event.
///
/// The generator is seeded explicitly, so simulations are reproducible.
/// Used to model road profiles, sensor noise and other stochastic
/// disturbances in the benchmark plants.
#[derive(Debug)]
pub struct SampledNoise {
    mean: f64,
    std_dev: f64,
    rng: SplitMix64,
    held: f64,
}

impl SampledNoise {
    /// Creates a noise source with the given mean and standard deviation,
    /// deterministically seeded with `seed`.
    pub fn new(mean: f64, std_dev: f64, seed: u64) -> Self {
        SampledNoise {
            mean,
            std_dev,
            rng: SplitMix64::new(seed),
            held: mean,
        }
    }

    /// Draws a standard normal variate via Box–Muller.
    fn draw_normal(&mut self) -> f64 {
        let u1 = f64::EPSILON + (1.0 - f64::EPSILON) * self.rng.next_f64();
        let u2 = self.rng.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl Block for SampledNoise {
    fn type_name(&self) -> &'static str {
        "SampledNoise"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::new(0, 1, 1, 0)
    }
    fn outputs(&mut self, _t: f64, _x: &[f64], _u: &[f64], y: &mut [f64]) {
        y[0] = self.held;
    }
    fn on_event(&mut self, _port: usize, _t: TimeNs, _ctx: &mut EventCtx<'_>) {
        let n = self.draw_normal();
        self.held = self.mean + self.std_dev * n;
    }
    impl_block_any!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out1(b: &mut impl Block, t: f64) -> f64 {
        let mut y = [0.0];
        b.outputs(t, &[], &[], &mut y);
        y[0]
    }

    #[test]
    fn constant_holds() {
        let mut c = Constant::new(3.0);
        assert_eq!(out1(&mut c, 0.0), 3.0);
        assert_eq!(out1(&mut c, 100.0), 3.0);
    }

    #[test]
    fn step_switches_at_step_time() {
        let mut s = Step::new(1.0, -1.0, 2.0);
        assert_eq!(out1(&mut s, 0.5), -1.0);
        assert_eq!(out1(&mut s, 1.0), 2.0);
        assert_eq!(out1(&mut s, 2.0), 2.0);
        let mut u = Step::unit();
        assert_eq!(out1(&mut u, 0.0), 1.0);
    }

    #[test]
    fn ramp_slopes_after_start() {
        let mut r = Ramp::new(1.0, 2.0);
        assert_eq!(out1(&mut r, 0.5), 0.0);
        assert_eq!(out1(&mut r, 2.0), 2.0);
    }

    #[test]
    fn sine_values() {
        let mut s = Sine::new(2.0, 1.0).with_bias(1.0).with_phase(0.0);
        assert!((out1(&mut s, 0.0) - 1.0).abs() < 1e-12);
        assert!((out1(&mut s, 0.25) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn noise_reproducible_and_redrawn_on_event() {
        let mk = || SampledNoise::new(0.0, 1.0, 42);
        let mut a = mk();
        let mut b = mk();
        // Held value before any event is the mean.
        assert_eq!(out1(&mut a, 0.0), 0.0);
        let mut actions = ecl_sim::EventActions::new();
        let mut ctx = EventCtx {
            inputs: &[],
            actions: &mut actions,
        };
        a.on_event(0, TimeNs::ZERO, &mut ctx);
        b.on_event(0, TimeNs::ZERO, &mut ctx);
        let va = out1(&mut a, 0.0);
        let vb = out1(&mut b, 0.0);
        assert_eq!(va, vb, "same seed must give same sequence");
        assert_ne!(va, 0.0, "value redrawn after event");
    }

    #[test]
    fn noise_statistics_roughly_match() {
        let mut n = SampledNoise::new(5.0, 2.0, 7);
        let mut acc = 0.0;
        let mut acc2 = 0.0;
        let count = 20_000;
        for _ in 0..count {
            let mut actions = ecl_sim::EventActions::new();
            let mut ctx = EventCtx {
                inputs: &[],
                actions: &mut actions,
            };
            n.on_event(0, TimeNs::ZERO, &mut ctx);
            let v = out1(&mut n, 0.0);
            acc += v;
            acc2 += v * v;
        }
        let mean = acc / count as f64;
        let var = acc2 / count as f64 - mean * mean;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }
}
