//! Continuous-time dynamic blocks, integrated by the engine's ODE solver.

use ecl_sim::{impl_block_any, Block, PortSpec};

use crate::error::BlockError;

/// A single integrator: `ẋ = u`, `y = x`.
///
/// # Examples
///
/// ```
/// use ecl_blocks::Integrator;
/// let i = Integrator::new(1.5); // initial condition
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Integrator {
    x0: f64,
}

impl Integrator {
    /// Creates an integrator with initial condition `x0`.
    pub fn new(x0: f64) -> Self {
        Integrator { x0 }
    }
}

impl Block for Integrator {
    fn type_name(&self) -> &'static str {
        "Integrator"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::siso(1, 1)
    }
    fn feedthrough(&self, _input: usize) -> bool {
        false
    }
    fn num_states(&self) -> usize {
        1
    }
    fn init_states(&self, x: &mut [f64]) {
        x[0] = self.x0;
    }
    fn derivatives(&self, _t: f64, _x: &[f64], u: &[f64], dx: &mut [f64]) {
        dx[0] = u[0];
    }
    fn outputs(&mut self, _t: f64, x: &[f64], _u: &[f64], y: &mut [f64]) {
        y[0] = x[0];
    }
    impl_block_any!();
}

/// A continuous linear state-space system
///
/// ```text
/// ẋ = A·x + B·u,    y = C·x + D·u
/// ```
///
/// with `n` states, `m` inputs and `p` outputs. This is the generic plant
/// block: `ecl-control` plants convert into it for simulation.
///
/// Matrices are stored row-major; direct feedthrough is declared per input
/// from the sparsity of `D`.
#[derive(Debug, Clone, PartialEq)]
pub struct StateSpaceCt {
    n: usize,
    m: usize,
    p: usize,
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
    d: Vec<f64>,
    x0: Vec<f64>,
}

impl StateSpaceCt {
    /// Creates a state-space block from row-major matrices.
    ///
    /// `a` is `n·n`, `b` is `n·m`, `c` is `p·n`, `d` is `p·m`, `x0` has
    /// length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::InvalidDimensions`] if any length disagrees
    /// with `(n, m, p)` or `m == 0` / `p == 0` (a plant must have at least
    /// one input and one output; use [`Integrator`] or a source otherwise).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n: usize,
        m: usize,
        p: usize,
        a: Vec<f64>,
        b: Vec<f64>,
        c: Vec<f64>,
        d: Vec<f64>,
        x0: Vec<f64>,
    ) -> Result<Self, BlockError> {
        let check = |name: &str, got: usize, want: usize| -> Result<(), BlockError> {
            if got != want {
                Err(BlockError::InvalidDimensions {
                    block: "StateSpaceCt",
                    reason: format!("{name} has {got} entries, expected {want}"),
                })
            } else {
                Ok(())
            }
        };
        if m == 0 || p == 0 {
            return Err(BlockError::InvalidDimensions {
                block: "StateSpaceCt",
                reason: format!("need at least one input and output, got m={m}, p={p}"),
            });
        }
        check("A", a.len(), n * n)?;
        check("B", b.len(), n * m)?;
        check("C", c.len(), p * n)?;
        check("D", d.len(), p * m)?;
        check("x0", x0.len(), n)?;
        Ok(StateSpaceCt {
            n,
            m,
            p,
            a,
            b,
            c,
            d,
            x0,
        })
    }

    /// Number of states.
    pub fn state_dim(&self) -> usize {
        self.n
    }

    /// Number of inputs.
    pub fn input_dim(&self) -> usize {
        self.m
    }

    /// Number of outputs.
    pub fn output_dim(&self) -> usize {
        self.p
    }
}

impl Block for StateSpaceCt {
    fn type_name(&self) -> &'static str {
        "StateSpaceCt"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::siso(self.m, self.p)
    }
    fn feedthrough(&self, input: usize) -> bool {
        // Direct feedthrough from input j iff column j of D is nonzero.
        (0..self.p).any(|i| self.d[i * self.m + input] != 0.0)
    }
    fn num_states(&self) -> usize {
        self.n
    }
    fn init_states(&self, x: &mut [f64]) {
        x.copy_from_slice(&self.x0);
    }
    fn derivatives(&self, _t: f64, x: &[f64], u: &[f64], dx: &mut [f64]) {
        for i in 0..self.n {
            let mut acc = 0.0;
            for j in 0..self.n {
                acc += self.a[i * self.n + j] * x[j];
            }
            for j in 0..self.m {
                acc += self.b[i * self.m + j] * u[j];
            }
            dx[i] = acc;
        }
    }
    fn outputs(&mut self, _t: f64, x: &[f64], u: &[f64], y: &mut [f64]) {
        for i in 0..self.p {
            let mut acc = 0.0;
            for j in 0..self.n {
                acc += self.c[i * self.n + j] * x[j];
            }
            for j in 0..self.m {
                acc += self.d[i * self.m + j] * u[j];
            }
            y[i] = acc;
        }
    }
    impl_block_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_sim::{Model, SimOptions, Simulator, TimeNs};

    use crate::sources::Constant;

    #[test]
    fn integrator_block_basics() {
        let i = Integrator::new(2.0);
        assert_eq!(i.num_states(), 1);
        assert!(!i.feedthrough(0));
        let mut x = [0.0];
        i.init_states(&mut x);
        assert_eq!(x[0], 2.0);
        let mut dx = [0.0];
        i.derivatives(0.0, &x, &[5.0], &mut dx);
        assert_eq!(dx[0], 5.0);
    }

    #[test]
    fn state_space_dimension_checks() {
        assert!(StateSpaceCt::new(
            1,
            1,
            1,
            vec![0.0],
            vec![1.0],
            vec![1.0],
            vec![0.0],
            vec![0.0]
        )
        .is_ok());
        assert!(StateSpaceCt::new(
            2,
            1,
            1,
            vec![0.0],
            vec![1.0],
            vec![1.0],
            vec![0.0],
            vec![0.0]
        )
        .is_err());
        assert!(
            StateSpaceCt::new(1, 0, 1, vec![0.0], vec![], vec![1.0], vec![], vec![0.0]).is_err()
        );
    }

    #[test]
    fn feedthrough_tracks_d_sparsity() {
        // Two inputs, D = [0 1]: feedthrough only from input 1.
        let ss = StateSpaceCt::new(
            1,
            2,
            1,
            vec![0.0],
            vec![1.0, 0.0],
            vec![1.0],
            vec![0.0, 1.0],
            vec![0.0],
        )
        .unwrap();
        assert!(!ss.feedthrough(0));
        assert!(ss.feedthrough(1));
    }

    #[test]
    fn first_order_lag_step_response() {
        // ẋ = -x + u, y = x: step response 1 - e^{-t}.
        let ss = StateSpaceCt::new(
            1,
            1,
            1,
            vec![-1.0],
            vec![1.0],
            vec![1.0],
            vec![0.0],
            vec![0.0],
        )
        .unwrap();
        let mut m = Model::new();
        let u = m.add_block("u", Constant::new(1.0));
        let p = m.add_block("p", ss);
        m.connect(u, 0, p, 0).unwrap();
        m.probe("y", p, 0).unwrap();
        let mut sim = Simulator::new(m, SimOptions::default()).unwrap();
        let r = sim.run(TimeNs::from_secs(2)).unwrap();
        let y = r.signal("y").unwrap();
        let expect = 1.0 - (-2.0f64).exp();
        assert!((y.last().unwrap().1 - expect).abs() < 1e-6);
        // Mid-point check too.
        let expect_mid = 1.0 - (-1.0f64).exp();
        assert!((y.sample(1.0).unwrap() - expect_mid).abs() < 1e-4);
    }

    #[test]
    fn accessors() {
        let ss = StateSpaceCt::new(
            2,
            1,
            1,
            vec![0.0, 1.0, -1.0, -1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![0.0],
            vec![0.0, 0.0],
        )
        .unwrap();
        assert_eq!(ss.state_dim(), 2);
        assert_eq!(ss.input_dim(), 1);
        assert_eq!(ss.output_dim(), 1);
    }
}
