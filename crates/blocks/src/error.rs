use std::error::Error;
use std::fmt;

/// Errors produced while constructing blocks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BlockError {
    /// Matrix/vector dimensions handed to a constructor were inconsistent.
    InvalidDimensions {
        /// The block type being constructed.
        block: &'static str,
        /// Explanation of the inconsistency.
        reason: String,
    },
    /// A scalar parameter was outside its valid range.
    InvalidParameter {
        /// The block type being constructed.
        block: &'static str,
        /// The parameter name.
        parameter: &'static str,
        /// Explanation of the violation.
        reason: String,
    },
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::InvalidDimensions { block, reason } => {
                write!(f, "invalid dimensions for {block}: {reason}")
            }
            BlockError::InvalidParameter {
                block,
                parameter,
                reason,
            } => write!(f, "invalid parameter '{parameter}' for {block}: {reason}"),
        }
    }
}

impl Error for BlockError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = BlockError::InvalidDimensions {
            block: "StateSpaceCt",
            reason: "A must be square".into(),
        };
        assert!(e.to_string().contains("StateSpaceCt"));
        let e = BlockError::InvalidParameter {
            block: "Clock",
            parameter: "period",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("period"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BlockError>();
    }
}
