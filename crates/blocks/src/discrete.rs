//! Event-activated (discrete) dynamic blocks.
//!
//! Following the paper's execution model, discrete blocks *latch* their
//! outputs: on activation the block computes its output from the state and
//! inputs it sees at that instant, then advances its state. Downstream
//! blocks sampling the output later in the period therefore see the value
//! computed at the activation instant — exactly what generated real-time
//! code does.

use ecl_sim::{impl_block_any, Block, EventCtx, PortSpec, TimeNs};

use crate::error::BlockError;

/// One-step delay `y_k = u_{k-1}`, advanced on each activation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitDelay {
    /// Value emitted until the first activation.
    initial: f64,
    /// Output currently held (u_{k-1}).
    held: f64,
    /// Input stored at the previous activation.
    last_in: f64,
}

impl UnitDelay {
    /// Creates a unit delay emitting `initial` until the first activation.
    pub fn new(initial: f64) -> Self {
        UnitDelay {
            initial,
            held: initial,
            last_in: initial,
        }
    }
}

impl Block for UnitDelay {
    fn type_name(&self) -> &'static str {
        "UnitDelay"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::new(1, 1, 1, 0)
    }
    fn feedthrough(&self, _input: usize) -> bool {
        false
    }
    fn outputs(&mut self, _t: f64, _x: &[f64], _u: &[f64], y: &mut [f64]) {
        y[0] = self.held;
    }
    fn on_event(&mut self, _port: usize, _t: TimeNs, ctx: &mut EventCtx<'_>) {
        self.held = self.last_in;
        self.last_in = ctx.inputs[0];
    }
    impl_block_any!();
}

/// A discrete linear state-space controller/filter
///
/// ```text
/// x_{k+1} = Ad·x_k + Bd·u_k,    y_k = Cd·x_k + Dd·u_k
/// ```
///
/// activated by events. On each activation the block computes and latches
/// `y_k` from the *pre-update* state, then advances the state — the
/// compute-then-hold behaviour of generated controller code.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteStateSpace {
    n: usize,
    m: usize,
    p: usize,
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
    d: Vec<f64>,
    x: Vec<f64>,
    y: Vec<f64>,
    /// Number of activations processed so far.
    activations: u64,
}

impl DiscreteStateSpace {
    /// Creates a discrete state-space block from row-major matrices
    /// (`a`: n·n, `b`: n·m, `c`: p·n, `d`: p·m) and initial state `x0`.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::InvalidDimensions`] on any length mismatch or
    /// if `m == 0` / `p == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n: usize,
        m: usize,
        p: usize,
        a: Vec<f64>,
        b: Vec<f64>,
        c: Vec<f64>,
        d: Vec<f64>,
        x0: Vec<f64>,
    ) -> Result<Self, BlockError> {
        let check = |name: &str, got: usize, want: usize| -> Result<(), BlockError> {
            if got != want {
                Err(BlockError::InvalidDimensions {
                    block: "DiscreteStateSpace",
                    reason: format!("{name} has {got} entries, expected {want}"),
                })
            } else {
                Ok(())
            }
        };
        if m == 0 || p == 0 {
            return Err(BlockError::InvalidDimensions {
                block: "DiscreteStateSpace",
                reason: format!("need at least one input and output, got m={m}, p={p}"),
            });
        }
        check("Ad", a.len(), n * n)?;
        check("Bd", b.len(), n * m)?;
        check("Cd", c.len(), p * n)?;
        check("Dd", d.len(), p * m)?;
        check("x0", x0.len(), n)?;
        Ok(DiscreteStateSpace {
            n,
            m,
            p,
            a,
            b,
            c,
            d,
            x: x0,
            y: vec![0.0; p],
            activations: 0,
        })
    }

    /// A static output feedback `y = −K·u` (no state), the shape produced
    /// by LQR synthesis.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::InvalidDimensions`] if `k` is empty or ragged
    /// against `(p, m)`.
    pub fn static_gain(p: usize, m: usize, k: Vec<f64>) -> Result<Self, BlockError> {
        if k.len() != p * m {
            return Err(BlockError::InvalidDimensions {
                block: "DiscreteStateSpace",
                reason: format!("gain has {} entries, expected {}", k.len(), p * m),
            });
        }
        DiscreteStateSpace::new(0, m, p, vec![], vec![], vec![], k, vec![])
    }

    /// Number of activations processed so far.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// The currently latched output vector.
    pub fn latched_output(&self) -> &[f64] {
        &self.y
    }

    /// The current internal state.
    pub fn state(&self) -> &[f64] {
        &self.x
    }
}

impl Block for DiscreteStateSpace {
    fn type_name(&self) -> &'static str {
        "DiscreteStateSpace"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::new(self.m, self.p, 1, 0)
    }
    fn feedthrough(&self, _input: usize) -> bool {
        false // outputs are latched at activation
    }
    fn outputs(&mut self, _t: f64, _x: &[f64], _u: &[f64], y: &mut [f64]) {
        y.copy_from_slice(&self.y);
    }
    fn on_event(&mut self, _port: usize, _t: TimeNs, ctx: &mut EventCtx<'_>) {
        let u = ctx.inputs;
        // y_k = C x_k + D u_k (latched)
        for i in 0..self.p {
            let mut acc = 0.0;
            for j in 0..self.n {
                acc += self.c[i * self.n + j] * self.x[j];
            }
            for j in 0..self.m {
                acc += self.d[i * self.m + j] * u[j];
            }
            self.y[i] = acc;
        }
        // x_{k+1} = A x_k + B u_k
        let mut xn = vec![0.0; self.n];
        for i in 0..self.n {
            let mut acc = 0.0;
            for j in 0..self.n {
                acc += self.a[i * self.n + j] * self.x[j];
            }
            for j in 0..self.m {
                acc += self.b[i * self.m + j] * u[j];
            }
            xn[i] = acc;
        }
        self.x = xn;
        self.activations += 1;
    }
    impl_block_any!();
}

/// Tuning and configuration of a discrete PID controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PidConfig {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain (continuous-time; integrated with period `ts`).
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
    /// Derivative low-pass filter coefficient (typical 5–20); the filter
    /// pole is at `N/ts`.
    pub n_filter: f64,
    /// Sampling period in seconds.
    pub ts: f64,
    /// Output saturation `±u_max` with back-calculation anti-windup;
    /// `f64::INFINITY` disables it.
    pub u_max: f64,
}

impl PidConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::InvalidParameter`] if `ts <= 0`,
    /// `n_filter <= 0`, or `u_max <= 0`.
    pub fn validate(&self) -> Result<(), BlockError> {
        let bad = |parameter: &'static str, reason: String| BlockError::InvalidParameter {
            block: "PidBlock",
            parameter,
            reason,
        };
        if !(self.ts > 0.0) {
            return Err(bad("ts", format!("must be positive, got {}", self.ts)));
        }
        if !(self.n_filter > 0.0) {
            return Err(bad(
                "n_filter",
                format!("must be positive, got {}", self.n_filter),
            ));
        }
        if !(self.u_max > 0.0) {
            return Err(bad(
                "u_max",
                format!("must be positive, got {}", self.u_max),
            ));
        }
        Ok(())
    }
}

/// A discrete PID controller with filtered derivative and back-calculation
/// anti-windup.
///
/// Inputs: `u0` = reference, `u1` = measurement. Output: latched control
/// value, updated on each activation.
#[derive(Debug, Clone, PartialEq)]
pub struct PidBlock {
    cfg: PidConfig,
    /// Integral accumulator.
    integral: f64,
    /// Filtered derivative state.
    deriv: f64,
    /// Previous error (for the derivative).
    prev_err: f64,
    /// Latched output.
    held: f64,
    first: bool,
}

impl PidBlock {
    /// Creates a PID controller from a validated configuration.
    ///
    /// # Errors
    ///
    /// See [`PidConfig::validate`].
    pub fn new(cfg: PidConfig) -> Result<Self, BlockError> {
        cfg.validate()?;
        Ok(PidBlock {
            cfg,
            integral: 0.0,
            deriv: 0.0,
            prev_err: 0.0,
            held: 0.0,
            first: true,
        })
    }

    /// The currently latched control value.
    pub fn latched_output(&self) -> f64 {
        self.held
    }
}

impl Block for PidBlock {
    fn type_name(&self) -> &'static str {
        "PidBlock"
    }
    fn ports(&self) -> PortSpec {
        PortSpec::new(2, 1, 1, 0)
    }
    fn feedthrough(&self, _input: usize) -> bool {
        false
    }
    fn outputs(&mut self, _t: f64, _x: &[f64], _u: &[f64], y: &mut [f64]) {
        y[0] = self.held;
    }
    fn on_event(&mut self, _port: usize, _t: TimeNs, ctx: &mut EventCtx<'_>) {
        let cfg = self.cfg;
        let err = ctx.inputs[0] - ctx.inputs[1];
        if self.first {
            self.prev_err = err;
            self.first = false;
        }
        // Filtered derivative: d_k = a·d_{k-1} + N·(e_k − e_{k-1})/ts·(1−a)
        // with a = exp(−N) per period (backward-difference approximation).
        let a = (-cfg.n_filter).exp();
        let raw_d = (err - self.prev_err) / cfg.ts;
        self.deriv = a * self.deriv + (1.0 - a) * raw_d;
        self.prev_err = err;

        let unsat = cfg.kp * err + cfg.ki * self.integral + cfg.kd * self.deriv;
        let sat = unsat.clamp(-cfg.u_max, cfg.u_max);
        // Back-calculation anti-windup: only integrate the error reduced by
        // the saturation excess.
        let windup = if cfg.ki != 0.0 {
            (unsat - sat) / cfg.ki
        } else {
            0.0
        };
        self.integral += cfg.ts * err - windup;
        self.held = sat;
    }
    impl_block_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_sim::EventActions;

    fn activate(b: &mut impl Block, inputs: &[f64]) {
        let mut actions = EventActions::new();
        let mut ctx = EventCtx {
            inputs,
            actions: &mut actions,
        };
        b.on_event(0, TimeNs::ZERO, &mut ctx);
    }

    fn out1(b: &mut impl Block) -> f64 {
        let mut y = [0.0];
        b.outputs(0.0, &[], &[], &mut y);
        y[0]
    }

    #[test]
    fn unit_delay_shifts_by_one() {
        let mut d = UnitDelay::new(0.0);
        assert_eq!(out1(&mut d), 0.0);
        activate(&mut d, &[1.0]); // k=0: y becomes u_{-1} = 0
        assert_eq!(out1(&mut d), 0.0);
        activate(&mut d, &[2.0]); // k=1: y = u_0 = 1
        assert_eq!(out1(&mut d), 1.0);
        activate(&mut d, &[3.0]); // k=2: y = u_1 = 2
        assert_eq!(out1(&mut d), 2.0);
    }

    #[test]
    fn discrete_ss_accumulator() {
        // x+ = x + u, y = x: a discrete integrator.
        let mut ss = DiscreteStateSpace::new(
            1,
            1,
            1,
            vec![1.0],
            vec![1.0],
            vec![1.0],
            vec![0.0],
            vec![0.0],
        )
        .unwrap();
        assert_eq!(out1(&mut ss), 0.0);
        activate(&mut ss, &[2.0]); // y latches C·x0 = 0, x -> 2
        assert_eq!(out1(&mut ss), 0.0);
        assert_eq!(ss.state(), &[2.0]);
        activate(&mut ss, &[3.0]); // y latches 2, x -> 5
        assert_eq!(out1(&mut ss), 2.0);
        assert_eq!(ss.state(), &[5.0]);
        assert_eq!(ss.activations(), 2);
        assert_eq!(ss.latched_output(), &[2.0]);
    }

    #[test]
    fn discrete_ss_static_gain() {
        let mut k = DiscreteStateSpace::static_gain(1, 2, vec![-1.0, -2.0]).unwrap();
        activate(&mut k, &[3.0, 4.0]);
        assert_eq!(out1(&mut k), -11.0);
        assert!(DiscreteStateSpace::static_gain(1, 2, vec![1.0]).is_err());
    }

    #[test]
    fn discrete_ss_rejects_bad_dims() {
        assert!(DiscreteStateSpace::new(
            1,
            1,
            1,
            vec![],
            vec![1.0],
            vec![1.0],
            vec![0.0],
            vec![0.0]
        )
        .is_err());
        assert!(DiscreteStateSpace::new(0, 0, 1, vec![], vec![], vec![], vec![], vec![]).is_err());
    }

    #[test]
    fn pid_proportional_only() {
        let mut pid = PidBlock::new(PidConfig {
            kp: 2.0,
            ki: 0.0,
            kd: 0.0,
            n_filter: 10.0,
            ts: 0.1,
            u_max: f64::INFINITY,
        })
        .unwrap();
        activate(&mut pid, &[1.0, 0.25]);
        assert!((pid.latched_output() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn pid_integral_accumulates() {
        let mut pid = PidBlock::new(PidConfig {
            kp: 0.0,
            ki: 1.0,
            kd: 0.0,
            n_filter: 10.0,
            ts: 0.5,
            u_max: f64::INFINITY,
        })
        .unwrap();
        activate(&mut pid, &[1.0, 0.0]);
        activate(&mut pid, &[1.0, 0.0]);
        // After two activations the integral holds 2 * 0.5 * 1.0 = 1.0, but
        // the output latched at activation 2 uses the integral after one
        // step (0.5): u = ki * integral_before_update? The implementation
        // integrates after computing the output, so u_2 = 0.5.
        assert!((pid.latched_output() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pid_saturation_and_antiwindup() {
        let mut pid = PidBlock::new(PidConfig {
            kp: 10.0,
            ki: 5.0,
            kd: 0.0,
            n_filter: 10.0,
            ts: 0.1,
            u_max: 1.0,
        })
        .unwrap();
        for _ in 0..50 {
            activate(&mut pid, &[10.0, 0.0]);
        }
        assert_eq!(pid.latched_output(), 1.0, "output clamped");
        // Back-calculation parks the integral at the fixed point of
        // I' = I + ts·e − (unsat − sat)/ki, i.e. I* = ts·e − (kp·e − u_max)/ki
        // = 1 − 99/5 = −18.8. Without anti-windup it would grow without
        // bound (+0.1·10 per step → +50 after 50 steps).
        assert!(
            (pid.integral + 18.8).abs() < 0.5,
            "integral {}",
            pid.integral
        );
    }

    #[test]
    fn pid_derivative_kicks_on_error_change() {
        let mut pid = PidBlock::new(PidConfig {
            kp: 0.0,
            ki: 0.0,
            kd: 1.0,
            n_filter: 100.0,
            ts: 1.0,
            u_max: f64::INFINITY,
        })
        .unwrap();
        activate(&mut pid, &[0.0, 0.0]);
        assert_eq!(pid.latched_output(), 0.0);
        activate(&mut pid, &[1.0, 0.0]);
        assert!(pid.latched_output() > 0.5, "derivative responded");
    }

    #[test]
    fn pid_config_validation() {
        let ok = PidConfig {
            kp: 1.0,
            ki: 0.0,
            kd: 0.0,
            n_filter: 10.0,
            ts: 0.1,
            u_max: 1.0,
        };
        assert!(ok.validate().is_ok());
        assert!(PidConfig { ts: 0.0, ..ok }.validate().is_err());
        assert!(PidConfig {
            n_filter: 0.0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(PidConfig { u_max: 0.0, ..ok }.validate().is_err());
    }
}
