//! Property-based tests of the event-block semantics.

use ecl_blocks::{add_clock, EventDelay, SampleHold, Synchronization, UnitDelay};
use ecl_sim::{Block, EventActions, EventCtx, Model, SimOptions, Simulator, TimeNs};
use proptest::prelude::*;

fn activate(b: &mut impl Block, port: usize, inputs: &[f64]) -> usize {
    let mut actions = EventActions::new();
    let mut ctx = EventCtx {
        inputs,
        actions: &mut actions,
    };
    b.on_event(port, TimeNs::ZERO, &mut ctx);
    actions.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Synchronization block implements the paper's §3.2.3 spec
    /// exactly: boolean received-flags, fire-and-reset when all are set
    /// (duplicate events before a reset are absorbed, *not* queued). We
    /// replay any interleaving against that reference model, and check
    /// the firing count is bounded by the per-port minimum.
    #[test]
    fn synchronization_matches_flag_semantics(
        n in 1usize..6,
        seq in proptest::collection::vec(0usize..6, 0..120),
    ) {
        let mut sync = Synchronization::new(n).expect("n >= 1");
        let mut flags = vec![false; n];
        let mut ref_fired = 0u64;
        let mut counts = vec![0u64; n];
        for &raw in &seq {
            let port = raw % n;
            counts[port] += 1;
            let emitted = activate(&mut sync, port, &[]);
            // Reference model.
            flags[port] = true;
            let fires = flags.iter().all(|&f| f);
            if fires {
                flags.iter_mut().for_each(|f| *f = false);
                ref_fired += 1;
            }
            prop_assert_eq!(emitted, usize::from(fires));
            for (p, &flag) in flags.iter().enumerate() {
                prop_assert_eq!(sync.pending(p), flag);
            }
        }
        prop_assert_eq!(sync.fired(), ref_fired);
        // Flag semantics can only lose events, never invent them.
        prop_assert!(sync.fired() <= *counts.iter().min().expect("n >= 1"));
    }

    /// A chain of event delays shifts the clock by exactly the sum of the
    /// delays, every period.
    #[test]
    fn delay_chain_shifts_by_sum(
        delays_us in proptest::collection::vec(1i64..500, 1..6),
        period_ms in 5i64..20,
    ) {
        let period = TimeNs::from_millis(period_ms);
        let total: i64 = delays_us.iter().sum();
        prop_assume!(TimeNs::from_micros(total) < period);
        let mut m = Model::new();
        let clk = add_clock(&mut m, "clk", period, TimeNs::ZERO).expect("ok");
        let mut prev = clk;
        for (i, &d) in delays_us.iter().enumerate() {
            let blk = m.add_block(
                format!("d{i}"),
                EventDelay::new(TimeNs::from_micros(d)).expect("ok"),
            );
            m.connect_event(prev, 0, blk, 0).expect("ok");
            prev = blk;
        }
        let sink = m.add_block("sink", Synchronization::new(1).expect("ok"));
        m.connect_event(prev, 0, sink, 0).expect("ok");
        let mut sim = Simulator::new(m, SimOptions::default()).expect("ok");
        let r = sim.run(period * 3 - TimeNs::from_nanos(1)).expect("ok");
        let acts = r.activation_times(sink, Some(0));
        prop_assert_eq!(acts.len(), 3);
        for (k, &t) in acts.iter().enumerate() {
            prop_assert_eq!(t, period * k as i64 + TimeNs::from_micros(total));
        }
    }

    /// UnitDelay implements exactly y_k = u_{k-1} for any input sequence.
    #[test]
    fn unit_delay_is_one_step_shift(
        initial in -10.0f64..10.0,
        inputs in proptest::collection::vec(-100.0f64..100.0, 1..50),
    ) {
        let mut d = UnitDelay::new(initial);
        let mut outputs = Vec::new();
        for &u in &inputs {
            activate(&mut d, 0, &[u]);
            let mut y = [0.0];
            d.outputs(0.0, &[], &[], &mut y);
            outputs.push(y[0]);
        }
        prop_assert_eq!(outputs[0], initial);
        for k in 1..inputs.len() {
            prop_assert_eq!(outputs[k], inputs[k - 1]);
        }
    }

    /// SampleHold reports exactly the input it saw at each activation and
    /// logs every sample.
    #[test]
    fn sample_hold_latches_every_activation(
        inputs in proptest::collection::vec(-100.0f64..100.0, 1..50),
    ) {
        let mut sh = SampleHold::new(0.0);
        for &u in &inputs {
            activate(&mut sh, 0, &[u]);
            prop_assert_eq!(sh.held(), u);
        }
        prop_assert_eq!(sh.samples().len(), inputs.len());
        for (logged, input) in sh.samples().iter().zip(&inputs) {
            prop_assert_eq!(logged.1, *input);
        }
    }

    /// An EventDelay emits exactly one event per activation, always on
    /// port 0.
    #[test]
    fn event_delay_one_out_per_in(delay_us in 0i64..10_000, n in 1usize..30) {
        let mut d = EventDelay::new(TimeNs::from_micros(delay_us)).expect("ok");
        for _ in 0..n {
            let emitted = activate(&mut d, 0, &[]);
            prop_assert_eq!(emitted, 1);
        }
    }
}
