//! The `ecl-serve` wire protocol: length-prefixed, line-oriented frames.
//!
//! Every message travels as one frame — a little-endian `u32` byte length
//! followed by that many payload bytes ([`MAX_FRAME`] caps the length, so
//! a hostile peer cannot make the daemon allocate gigabytes). The payload
//! is UTF-8 text of `key value` lines, one message kind per frame; the
//! one exception is [`ServerMsg::Report`], whose header lines are
//! followed by a blank line and the raw report bytes.
//!
//! Numbers use Rust's shortest-roundtrip float formatting (`{:?}`), so a
//! request encodes to the same bytes on every platform and
//! [`SweepRequest::digest`] is stable across encode/decode round trips.
//! Lists are comma-joined; the `-` marker encodes an empty list so every
//! field is always present.
//!
//! Failures are *typed*: a peer hanging up is [`WireError::Disconnected`]
//! (mid-frame or between frames), an over-limit length prefix is
//! [`WireError::Oversized`], and any text-level violation — unknown
//! kind, missing or duplicate key, malformed number — is
//! [`WireError::Malformed`] with a reason naming the offending field.
//! *Semantic* violations (an out-of-range but parseable field) are not
//! wire errors at all: [`SweepRequest::validate`] collects them as
//! [`RequestDefect`]s and the server answers with
//! [`ServerMsg::Rejected`], keeping the connection usable.

use std::io::{ErrorKind, Read, Write};

use ecl_aaa::Fnv1a;

/// Hard cap on one frame's payload bytes (1 MiB).
pub const MAX_FRAME: usize = 1 << 20;

/// Hard cap on the scenario count of one request.
pub const MAX_SCENARIOS: usize = 1 << 20;

/// A typed wire failure.
#[derive(Debug)]
pub enum WireError {
    /// A length prefix (or an outgoing payload) exceeded [`MAX_FRAME`].
    Oversized {
        /// The declared or attempted payload length.
        len: usize,
    },
    /// The frame arrived but its text violates the protocol.
    Malformed {
        /// What was wrong, naming the offending field where possible.
        reason: String,
    },
    /// The peer hung up — between frames or mid-frame.
    Disconnected,
    /// A transport-level I/O failure other than EOF.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversized { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            WireError::Malformed { reason } => write!(f, "malformed message: {reason}"),
            WireError::Disconnected => write!(f, "peer disconnected"),
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

fn malformed(reason: impl Into<String>) -> WireError {
    WireError::Malformed {
        reason: reason.into(),
    }
}

/// Reads exactly `buf.len()` bytes, mapping any EOF to
/// [`WireError::Disconnected`].
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(WireError::Disconnected),
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Err(WireError::Disconnected),
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

/// Writes one frame: `u32` little-endian length, then the payload.
///
/// # Errors
///
/// [`WireError::Oversized`] when the payload exceeds [`MAX_FRAME`];
/// transport failures as [`WireError::Io`]/[`WireError::Disconnected`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME {
        return Err(WireError::Oversized { len: payload.len() });
    }
    let io = |e: std::io::Error| match e.kind() {
        ErrorKind::BrokenPipe | ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted => {
            WireError::Disconnected
        }
        _ => WireError::Io(e),
    };
    w.write_all(&(payload.len() as u32).to_le_bytes())
        .map_err(io)?;
    w.write_all(payload).map_err(io)?;
    w.flush().map_err(io)?;
    Ok(())
}

/// Reads one frame's payload.
///
/// # Errors
///
/// [`WireError::Disconnected`] on EOF (clean or mid-frame),
/// [`WireError::Oversized`] when the declared length exceeds
/// [`MAX_FRAME`], and [`WireError::Io`] for other transport failures.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, WireError> {
    let mut len_buf = [0u8; 4];
    read_full(r, &mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized { len });
    }
    let mut payload = vec![0u8; len];
    read_full(r, &mut payload)?;
    Ok(payload)
}

/// Mapping policy of a request, by wire name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// `pressure` — schedule-pressure mapping.
    Pressure,
    /// `earliest` — earliest-finish mapping.
    Earliest,
}

impl Policy {
    fn wire_name(self) -> &'static str {
        match self {
            Policy::Pressure => "pressure",
            Policy::Earliest => "earliest",
        }
    }

    fn from_wire(s: &str) -> Result<Policy, WireError> {
        match s {
            "pressure" => Ok(Policy::Pressure),
            "earliest" => Ok(Policy::Earliest),
            other => Err(malformed(format!("unknown policy {other:?}"))),
        }
    }
}

/// Where a response payload came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseSource {
    /// Freshly swept by the fleet pool.
    Computed,
    /// Answered from the resident response memo.
    Memory,
    /// Answered from the on-disk response cache.
    Disk,
}

impl ResponseSource {
    fn wire_name(self) -> &'static str {
        match self {
            ResponseSource::Computed => "cold",
            ResponseSource::Memory => "memory",
            ResponseSource::Disk => "disk",
        }
    }

    fn from_wire(s: &str) -> Result<ResponseSource, WireError> {
        match s {
            "cold" => Ok(ResponseSource::Computed),
            "memory" => Ok(ResponseSource::Memory),
            "disk" => Ok(ResponseSource::Disk),
            other => Err(malformed(format!("unknown response source {other:?}"))),
        }
    }
}

/// One sweep job: the deployment case, the Monte-Carlo axes and the
/// scheduling knobs (`priority`, `chunk`) — the latter two deliberately
/// excluded from [`digest`](SweepRequest::digest), because they change
/// *when* and *in what slices* a job runs, never a byte of its report.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// Registered deployment case name (e.g. `dc_motor`).
    pub case: String,
    /// Sweep base seed.
    pub seed: u64,
    /// Number of scenarios (1..=[`MAX_SCENARIOS`]).
    pub scenarios: usize,
    /// Queue priority; higher pops first.
    pub priority: u8,
    /// Scenarios per pool pass between progress deltas (0 = whole job).
    pub chunk: usize,
    /// Maximum fractional WCET inflation.
    pub wcet_jitter: f64,
    /// Quantized WCET tables (at least 1).
    pub wcet_tables: usize,
    /// Sampling-period scales (non-empty, each finite and positive).
    pub period_scales: Vec<f64>,
    /// Mapping policies, round-robin by scenario index (non-empty).
    pub policies: Vec<Policy>,
    /// Frame-loss rate axis (may be empty = fault-free axis).
    pub frame_loss: Vec<f64>,
    /// Link-outage rate axis (may be empty).
    pub link_outage: Vec<f64>,
    /// Processor-dropout rate axis (may be empty).
    pub proc_dropout: Vec<f64>,
    /// Retransmission budget per frame.
    pub max_retries: u32,
    /// Link-outage window length, in periods.
    pub outage_periods: u32,
}

impl Default for SweepRequest {
    fn default() -> Self {
        SweepRequest {
            case: "dc_motor".into(),
            seed: 1,
            scenarios: 8,
            priority: 0,
            chunk: 0,
            wcet_jitter: 0.3,
            wcet_tables: 2,
            period_scales: vec![1.0, 1.25],
            policies: vec![Policy::Pressure, Policy::Earliest],
            frame_loss: Vec::new(),
            link_outage: Vec::new(),
            proc_dropout: Vec::new(),
            max_retries: 3,
            outage_periods: 2,
        }
    }
}

impl SweepRequest {
    /// Content digest of everything that can influence the report bytes.
    /// `priority` and `chunk` are excluded by design: they steer the
    /// queue and the delta cadence, and a response memo keyed on them
    /// would re-sweep identical jobs.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str(&self.case);
        h.write_u64(self.seed);
        h.write_u64(self.scenarios as u64);
        h.write_f64(self.wcet_jitter);
        h.write_u64(self.wcet_tables as u64);
        let list = |h: &mut Fnv1a, values: &[f64]| {
            h.write_u64(values.len() as u64);
            for &v in values {
                h.write_f64(v);
            }
        };
        list(&mut h, &self.period_scales);
        h.write_u64(self.policies.len() as u64);
        for p in &self.policies {
            h.write_u64(match p {
                Policy::Pressure => 0,
                Policy::Earliest => 1,
            });
        }
        list(&mut h, &self.frame_loss);
        list(&mut h, &self.link_outage);
        list(&mut h, &self.proc_dropout);
        h.write_u64(u64::from(self.max_retries));
        h.write_u64(u64::from(self.outage_periods));
        h.finish()
    }

    /// Semantic validation of an already well-formed request: every
    /// violated range constraint becomes one [`RequestDefect`]. All
    /// defects are collected, not just the first, so a client gets the
    /// full list in a single [`ServerMsg::Rejected`] round trip. An
    /// empty vector means the request is semantically admissible.
    pub fn validate(&self) -> Vec<RequestDefect> {
        let mut defects = Vec::new();
        let mut defect = |code: &'static str, detail: String| {
            defects.push(RequestDefect { code, detail });
        };
        if self.case.is_empty()
            || !self
                .case
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            defect(
                "bad_case",
                format!(
                    "case must be a non-empty [A-Za-z0-9_-] token, got {:?}",
                    self.case
                ),
            );
        }
        if self.scenarios == 0 || self.scenarios > MAX_SCENARIOS {
            defect(
                "bad_scenarios",
                format!(
                    "scenarios must be in 1..={MAX_SCENARIOS}, got {}",
                    self.scenarios
                ),
            );
        }
        if self.wcet_tables == 0 {
            defect("bad_wcet_tables", "wcet_tables must be at least 1".into());
        }
        if !self.wcet_jitter.is_finite() || !(0.0..=10.0).contains(&self.wcet_jitter) {
            defect(
                "bad_wcet_jitter",
                format!(
                    "wcet_jitter must be finite in [0, 10], got {:?}",
                    self.wcet_jitter
                ),
            );
        }
        if self.period_scales.is_empty()
            || self
                .period_scales
                .iter()
                .any(|s| !s.is_finite() || *s <= 0.0)
        {
            defect(
                "bad_period_scales",
                "period_scales must be non-empty, finite and positive".into(),
            );
        }
        if self.policies.is_empty() {
            defect("bad_policies", "policies must be non-empty".into());
        }
        for (code, name, axis) in [
            ("bad_frame_loss", "frame_loss", &self.frame_loss),
            ("bad_link_outage", "link_outage", &self.link_outage),
            ("bad_proc_dropout", "proc_dropout", &self.proc_dropout),
        ] {
            if axis
                .iter()
                .any(|r| !r.is_finite() || !(0.0..=1.0).contains(r))
            {
                defect(code, format!("{name} rates must be finite in [0, 1]"));
            }
        }
        defects
    }
}

/// One semantic defect of an otherwise well-formed [`SweepRequest`]: the
/// frame parsed, but a field violates its documented range. Defects are
/// *rejections*, not protocol errors — the connection stays usable and
/// the server answers with [`ServerMsg::Rejected`] carrying every code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestDefect {
    /// Stable machine token naming the defective field (e.g.
    /// `bad_scenarios`). Tokens never contain spaces or commas.
    pub code: &'static str,
    /// Human-readable detail, single line.
    pub detail: String,
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// Submit one sweep job.
    Submit(SweepRequest),
    /// Ask for the daemon's counter sidecar.
    Stats,
    /// Ask the daemon to shut down.
    Shutdown,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// The job was accepted at `position` in a queue of `depth`.
    Queued {
        /// 0-based position at enqueue time.
        position: usize,
        /// Queue depth right after enqueue.
        depth: usize,
    },
    /// Streaming progress: `done` of `total` scenarios swept so far,
    /// with the running worst actuation latency and overrun count.
    Delta {
        /// Scenarios completed so far.
        done: usize,
        /// Scenarios the job comprises.
        total: usize,
        /// Worst actuation latency seen so far, in ns.
        worst_ns: i64,
        /// Total period overruns seen so far.
        overruns: u64,
    },
    /// The final report for a request digest.
    Report {
        /// The [`SweepRequest::digest`] this answers.
        digest: u64,
        /// FNV-1a digest of `payload`.
        payload_digest: u64,
        /// Where the payload came from.
        source: ResponseSource,
        /// The report bytes (summary render, JSON, histogram summary).
        payload: Vec<u8>,
    },
    /// Job finished; `sched_computes` is the daemon's lifetime count of
    /// schedules actually computed (0 on a fully warm-started daemon).
    Done {
        /// [`ecl_aaa::ScheduleCache::computes`] after this job.
        sched_computes: u64,
    },
    /// Counter sidecar, as `name value` pairs.
    Stats(Vec<(String, u64)>),
    /// The request was understood but refused before queueing: either a
    /// semantic defect ([`SweepRequest::validate`] codes like
    /// `bad_scenarios`) or static admission control (fault-envelope
    /// EV diagnostic codes like `EV401`). The connection stays usable.
    Rejected {
        /// Every rejection code, in deterministic order (defect codes
        /// in field order, EV codes sorted). Never empty.
        codes: Vec<String>,
        /// Human-readable detail (single line).
        msg: String,
    },
    /// The request failed; `code` is a stable machine token.
    Err {
        /// Stable error token (e.g. `rate_limited`, `unknown_case`).
        code: String,
        /// Human-readable detail (single line).
        msg: String,
    },
}

fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

fn fmt_list(values: &[f64]) -> String {
    if values.is_empty() {
        "-".into()
    } else {
        values
            .iter()
            .map(|v| fmt_f64(*v))
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn parse_u64(key: &str, v: &str) -> Result<u64, WireError> {
    v.parse()
        .map_err(|_| malformed(format!("{key} must be an unsigned integer, got {v:?}")))
}

fn parse_usize(key: &str, v: &str) -> Result<usize, WireError> {
    v.parse()
        .map_err(|_| malformed(format!("{key} must be an unsigned integer, got {v:?}")))
}

fn parse_i64(key: &str, v: &str) -> Result<i64, WireError> {
    v.parse()
        .map_err(|_| malformed(format!("{key} must be an integer, got {v:?}")))
}

fn parse_f64(key: &str, v: &str) -> Result<f64, WireError> {
    v.parse()
        .map_err(|_| malformed(format!("{key} must be a float, got {v:?}")))
}

fn parse_list(key: &str, v: &str) -> Result<Vec<f64>, WireError> {
    if v == "-" {
        return Ok(Vec::new());
    }
    v.split(',').map(|item| parse_f64(key, item)).collect()
}

fn parse_hex64(key: &str, v: &str) -> Result<u64, WireError> {
    u64::from_str_radix(v, 16)
        .map_err(|_| malformed(format!("{key} must be a hex digest, got {v:?}")))
}

/// `key value` lines parsed into an ordered field list with
/// duplicate/unknown/missing detection.
struct Fields<'a> {
    pairs: Vec<(&'a str, &'a str)>,
    taken: Vec<bool>,
}

impl<'a> Fields<'a> {
    fn parse(lines: &'a str) -> Result<Fields<'a>, WireError> {
        let mut pairs = Vec::new();
        for line in lines.lines() {
            if line.is_empty() {
                return Err(malformed("empty line inside message header"));
            }
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| malformed(format!("line {line:?} is not `key value`")))?;
            if pairs.iter().any(|&(k, _)| k == key) {
                return Err(malformed(format!("duplicate key {key:?}")));
            }
            pairs.push((key, value));
        }
        let taken = vec![false; pairs.len()];
        Ok(Fields { pairs, taken })
    }

    fn take(&mut self, key: &str) -> Result<&'a str, WireError> {
        for (i, &(k, v)) in self.pairs.iter().enumerate() {
            if k == key {
                self.taken[i] = true;
                return Ok(v);
            }
        }
        Err(malformed(format!("missing key {key:?}")))
    }

    fn finish(self) -> Result<(), WireError> {
        for (i, &(k, _)) in self.pairs.iter().enumerate() {
            if !self.taken[i] {
                return Err(malformed(format!("unknown key {k:?}")));
            }
        }
        Ok(())
    }
}

impl ClientMsg {
    /// Encodes the message into one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ClientMsg::Submit(req) => {
                let mut s = String::from("req sweep\n");
                s.push_str(&format!("case {}\n", req.case));
                s.push_str(&format!("seed {}\n", req.seed));
                s.push_str(&format!("scenarios {}\n", req.scenarios));
                s.push_str(&format!("priority {}\n", req.priority));
                s.push_str(&format!("chunk {}\n", req.chunk));
                s.push_str(&format!("wcet_jitter {}\n", fmt_f64(req.wcet_jitter)));
                s.push_str(&format!("wcet_tables {}\n", req.wcet_tables));
                s.push_str(&format!("period_scales {}\n", fmt_list(&req.period_scales)));
                let policies = req
                    .policies
                    .iter()
                    .map(|p| p.wire_name())
                    .collect::<Vec<_>>()
                    .join(",");
                s.push_str(&format!(
                    "policies {}\n",
                    if policies.is_empty() { "-" } else { &policies }
                ));
                s.push_str(&format!("frame_loss {}\n", fmt_list(&req.frame_loss)));
                s.push_str(&format!("link_outage {}\n", fmt_list(&req.link_outage)));
                s.push_str(&format!("proc_dropout {}\n", fmt_list(&req.proc_dropout)));
                s.push_str(&format!("max_retries {}\n", req.max_retries));
                s.push_str(&format!("outage_periods {}\n", req.outage_periods));
                s.into_bytes()
            }
            ClientMsg::Stats => b"req stats\n".to_vec(),
            ClientMsg::Shutdown => b"req shutdown\n".to_vec(),
        }
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] on any textual or range violation.
    pub fn decode(payload: &[u8]) -> Result<ClientMsg, WireError> {
        let text = std::str::from_utf8(payload).map_err(|_| malformed("payload is not UTF-8"))?;
        let (kind, rest) = text
            .split_once('\n')
            .ok_or_else(|| malformed("missing kind line"))?;
        match kind {
            "req sweep" => {
                let mut f = Fields::parse(rest)?;
                let policies_raw = f.take("policies")?;
                let policies = if policies_raw == "-" {
                    Vec::new()
                } else {
                    policies_raw
                        .split(',')
                        .map(Policy::from_wire)
                        .collect::<Result<Vec<_>, _>>()?
                };
                let req = SweepRequest {
                    case: f.take("case")?.to_string(),
                    seed: parse_u64("seed", f.take("seed")?)?,
                    scenarios: parse_usize("scenarios", f.take("scenarios")?)?,
                    priority: parse_u64("priority", f.take("priority")?)?
                        .try_into()
                        .map_err(|_| malformed("priority must fit in u8"))?,
                    chunk: parse_usize("chunk", f.take("chunk")?)?,
                    wcet_jitter: parse_f64("wcet_jitter", f.take("wcet_jitter")?)?,
                    wcet_tables: parse_usize("wcet_tables", f.take("wcet_tables")?)?,
                    period_scales: parse_list("period_scales", f.take("period_scales")?)?,
                    policies,
                    frame_loss: parse_list("frame_loss", f.take("frame_loss")?)?,
                    link_outage: parse_list("link_outage", f.take("link_outage")?)?,
                    proc_dropout: parse_list("proc_dropout", f.take("proc_dropout")?)?,
                    max_retries: parse_u64("max_retries", f.take("max_retries")?)?
                        .try_into()
                        .map_err(|_| malformed("max_retries must fit in u32"))?,
                    outage_periods: parse_u64("outage_periods", f.take("outage_periods")?)?
                        .try_into()
                        .map_err(|_| malformed("outage_periods must fit in u32"))?,
                };
                f.finish()?;
                // Range checking is deliberately NOT part of decoding:
                // a parseable request with out-of-range fields reaches
                // the server, which answers with a typed
                // [`ServerMsg::Rejected`] listing every defect
                // ([`SweepRequest::validate`]) instead of a blanket
                // `malformed` error.
                Ok(ClientMsg::Submit(req))
            }
            "req stats" => {
                Fields::parse(rest)?.finish()?;
                Ok(ClientMsg::Stats)
            }
            "req shutdown" => {
                Fields::parse(rest)?.finish()?;
                Ok(ClientMsg::Shutdown)
            }
            other => Err(malformed(format!("unknown request kind {other:?}"))),
        }
    }
}

impl ServerMsg {
    /// Encodes the message into one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ServerMsg::Queued { position, depth } => {
                format!("rsp queued\nposition {position}\ndepth {depth}\n").into_bytes()
            }
            ServerMsg::Delta {
                done,
                total,
                worst_ns,
                overruns,
            } => format!(
                "rsp delta\ndone {done}\ntotal {total}\nworst_ns {worst_ns}\noverruns {overruns}\n"
            )
            .into_bytes(),
            ServerMsg::Report {
                digest,
                payload_digest,
                source,
                payload,
            } => {
                let mut bytes = format!(
                    "rsp report\ndigest {digest:016x}\npayload_digest {payload_digest:016x}\n\
                     source {}\nbytes {}\n\n",
                    source.wire_name(),
                    payload.len()
                )
                .into_bytes();
                bytes.extend_from_slice(payload);
                bytes
            }
            ServerMsg::Done { sched_computes } => {
                format!("rsp done\nsched_computes {sched_computes}\n").into_bytes()
            }
            ServerMsg::Stats(counters) => {
                let mut s = String::from("rsp stats\n");
                for (name, value) in counters {
                    s.push_str(&format!("{name} {value}\n"));
                }
                s.into_bytes()
            }
            ServerMsg::Rejected { codes, msg } => {
                let one_line: String = msg
                    .chars()
                    .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
                    .collect();
                let joined = if codes.is_empty() {
                    "-".to_string()
                } else {
                    codes.join(",")
                };
                format!("rsp rejected\ncodes {joined}\nmsg {one_line}\n").into_bytes()
            }
            ServerMsg::Err { code, msg } => {
                let one_line: String = msg
                    .chars()
                    .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
                    .collect();
                format!("rsp err\ncode {code}\nmsg {one_line}\n").into_bytes()
            }
        }
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] on any textual violation, including a
    /// [`ServerMsg::Report`] whose byte count disagrees with its payload.
    pub fn decode(payload: &[u8]) -> Result<ServerMsg, WireError> {
        // A report carries raw bytes after the first blank line; split
        // before insisting on UTF-8 so the header parses on its own.
        let header_end = payload
            .windows(2)
            .position(|w| w == b"\n\n")
            .map(|at| at + 1);
        let (header, body) = match header_end {
            Some(at) => (&payload[..at], &payload[at + 1..]),
            None => (payload, &payload[payload.len()..]),
        };
        let text = std::str::from_utf8(header).map_err(|_| malformed("header is not UTF-8"))?;
        let (kind, rest) = text
            .split_once('\n')
            .ok_or_else(|| malformed("missing kind line"))?;
        match kind {
            "rsp queued" => {
                let mut f = Fields::parse(rest)?;
                let msg = ServerMsg::Queued {
                    position: parse_usize("position", f.take("position")?)?,
                    depth: parse_usize("depth", f.take("depth")?)?,
                };
                f.finish()?;
                Ok(msg)
            }
            "rsp delta" => {
                let mut f = Fields::parse(rest)?;
                let msg = ServerMsg::Delta {
                    done: parse_usize("done", f.take("done")?)?,
                    total: parse_usize("total", f.take("total")?)?,
                    worst_ns: parse_i64("worst_ns", f.take("worst_ns")?)?,
                    overruns: parse_u64("overruns", f.take("overruns")?)?,
                };
                f.finish()?;
                Ok(msg)
            }
            "rsp report" => {
                let mut f = Fields::parse(rest)?;
                let digest = parse_hex64("digest", f.take("digest")?)?;
                let payload_digest = parse_hex64("payload_digest", f.take("payload_digest")?)?;
                let source = ResponseSource::from_wire(f.take("source")?)?;
                let bytes = parse_usize("bytes", f.take("bytes")?)?;
                f.finish()?;
                if body.len() != bytes {
                    return Err(malformed(format!(
                        "report declares {bytes} bytes but carries {}",
                        body.len()
                    )));
                }
                Ok(ServerMsg::Report {
                    digest,
                    payload_digest,
                    source,
                    payload: body.to_vec(),
                })
            }
            "rsp done" => {
                let mut f = Fields::parse(rest)?;
                let msg = ServerMsg::Done {
                    sched_computes: parse_u64("sched_computes", f.take("sched_computes")?)?,
                };
                f.finish()?;
                Ok(msg)
            }
            "rsp stats" => {
                let f = Fields::parse(rest)?;
                let counters = f
                    .pairs
                    .iter()
                    .map(|&(k, v)| Ok((k.to_string(), parse_u64(k, v)?)))
                    .collect::<Result<Vec<_>, WireError>>()?;
                Ok(ServerMsg::Stats(counters))
            }
            "rsp rejected" => {
                let mut f = Fields::parse(rest)?;
                let codes_raw = f.take("codes")?;
                let codes = if codes_raw == "-" {
                    Vec::new()
                } else {
                    codes_raw.split(',').map(str::to_string).collect()
                };
                let msg = ServerMsg::Rejected {
                    codes,
                    msg: f.take("msg")?.to_string(),
                };
                f.finish()?;
                Ok(msg)
            }
            "rsp err" => {
                let mut f = Fields::parse(rest)?;
                let msg = ServerMsg::Err {
                    code: f.take("code")?.to_string(),
                    msg: f.take("msg")?.to_string(),
                };
                f.finish()?;
                Ok(msg)
            }
            other => Err(malformed(format!("unknown response kind {other:?}"))),
        }
    }
}

/// Writes one client message as a frame.
///
/// # Errors
///
/// Propagates [`write_frame`] failures.
pub fn send_client<W: Write>(w: &mut W, msg: &ClientMsg) -> Result<(), WireError> {
    write_frame(w, &msg.encode())
}

/// Reads one client message from a frame.
///
/// # Errors
///
/// Propagates [`read_frame`] and [`ClientMsg::decode`] failures.
pub fn recv_client<R: Read>(r: &mut R) -> Result<ClientMsg, WireError> {
    ClientMsg::decode(&read_frame(r)?)
}

/// Writes one server message as a frame.
///
/// # Errors
///
/// Propagates [`write_frame`] failures.
pub fn send_server<W: Write>(w: &mut W, msg: &ServerMsg) -> Result<(), WireError> {
    write_frame(w, &msg.encode())
}

/// Reads one server message from a frame.
///
/// # Errors
///
/// Propagates [`read_frame`] and [`ServerMsg::decode`] failures.
pub fn recv_server<R: Read>(r: &mut R) -> Result<ServerMsg, WireError> {
    ServerMsg::decode(&read_frame(r)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(matches!(read_frame(&mut r), Err(WireError::Disconnected)));

        let big = vec![0u8; MAX_FRAME + 1];
        assert!(matches!(
            write_frame(&mut Vec::new(), &big),
            Err(WireError::Oversized { .. })
        ));
        let mut huge = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        huge.extend_from_slice(&[0; 8]);
        assert!(matches!(
            read_frame(&mut &huge[..]),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn mid_frame_eof_is_disconnected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"truncate me").unwrap();
        for cut in [1, 3, 4, 7, buf.len() - 1] {
            let mut r = &buf[..cut];
            assert!(
                matches!(read_frame(&mut r), Err(WireError::Disconnected)),
                "cut at {cut} must read as a disconnect"
            );
        }
    }

    #[test]
    fn submit_round_trips_with_stable_digest() {
        let req = SweepRequest {
            frame_loss: vec![0.25, 0.5],
            priority: 7,
            chunk: 4,
            ..SweepRequest::default()
        };
        let decoded = ClientMsg::decode(&ClientMsg::Submit(req.clone()).encode()).unwrap();
        let ClientMsg::Submit(back) = decoded else {
            panic!("wrong kind");
        };
        assert_eq!(back, req);
        assert_eq!(back.digest(), req.digest());
        // Priority and chunk steer scheduling only — never the digest.
        let repositioned = SweepRequest {
            priority: 0,
            chunk: 999,
            ..req.clone()
        };
        assert_eq!(repositioned.digest(), req.digest());
        let different = SweepRequest {
            seed: req.seed + 1,
            ..req
        };
        assert_ne!(different.digest(), repositioned.digest());
    }

    #[test]
    fn report_frames_carry_raw_payload() {
        let msg = ServerMsg::Report {
            digest: 0xdead_beef,
            payload_digest: 42,
            source: ResponseSource::Disk,
            payload: b"line one\n\nline two after a blank".to_vec(),
        };
        let back = ServerMsg::decode(&msg.encode()).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn rejected_round_trips_with_and_without_codes() {
        for codes in [
            vec!["bad_scenarios".to_string(), "EV401".to_string()],
            Vec::new(),
        ] {
            let msg = ServerMsg::Rejected {
                codes,
                msg: "nope".into(),
            };
            assert_eq!(ServerMsg::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn validate_collects_every_defect_with_stable_codes() {
        assert!(SweepRequest::default().validate().is_empty());
        let bad = SweepRequest {
            case: "dc motor".into(),
            scenarios: 0,
            wcet_tables: 0,
            wcet_jitter: f64::NAN,
            period_scales: vec![-1.0],
            policies: Vec::new(),
            frame_loss: vec![1.5],
            ..SweepRequest::default()
        };
        let codes: Vec<&str> = bad.validate().iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            [
                "bad_case",
                "bad_scenarios",
                "bad_wcet_tables",
                "bad_wcet_jitter",
                "bad_period_scales",
                "bad_policies",
                "bad_frame_loss",
            ]
        );
        // Out-of-range fields still *decode*: rejection is the server's
        // business, not the codec's.
        let decoded = ClientMsg::decode(&ClientMsg::Submit(bad.clone()).encode());
        assert!(matches!(decoded, Ok(ClientMsg::Submit(_))));
    }

    #[test]
    fn malformed_messages_name_their_defect() {
        let cases: &[&[u8]] = &[
            b"req sweeep\n",
            b"req sweep\ncase dc motor\nseed 1\n",
            b"rsp done\n",
            b"rsp done\nsched_computes -3\n",
            b"rsp queued\nposition 1\nposition 2\ndepth 3\n",
            b"\xff\xfe",
        ];
        for payload in cases {
            let client = ClientMsg::decode(payload);
            let server = ServerMsg::decode(payload);
            assert!(
                matches!(client, Err(WireError::Malformed { .. }))
                    && matches!(server, Err(WireError::Malformed { .. })),
                "payload {payload:?} must be malformed on both sides"
            );
        }
    }
}
