//! `ecl-serve` — a resident sweep-as-a-service daemon.
//!
//! The experiment binaries in `ecl-bench` pay the whole pipeline on
//! every invocation: process start, thread-pool spawn, cold memo
//! tables. This crate keeps all of that *resident*: a daemon on local
//! TCP accepts sweep requests over a length-prefixed line protocol
//! ([`wire`]), admits them through a per-connection token bucket
//! ([`limiter`]), orders them in a priority queue ([`queue`]) and
//! shards each across one persistent [`ecl_bench::fleet::FleetPool`]
//! shared by every job, streaming progress deltas and finishing with a
//! digest-stamped report.
//!
//! Three properties carry over from the fleet engine and are pinned by
//! this crate's tests:
//!
//! 1. **Byte determinism** — a report's payload is byte-identical for
//!    any pool size, any chunking and any request interleaving, because
//!    scenario seeds derive from global indices and aggregation happens
//!    in index order ([`engine`]).
//! 2. **Warm answers** — responses are memoized by request digest;
//!    resubmitting a request returns the identical payload without
//!    touching the pool.
//! 3. **Restart warmth** — schedules, co-simulated runs and responses
//!    persist content-addressed on disk ([`store`]); a restarted daemon
//!    seeds its memo tables from the store and answers without
//!    recomputing a single schedule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod limiter;
pub mod queue;
pub mod server;
pub mod store;
pub mod wire;

pub use client::{Client, ClientError, JobOutcome};
pub use engine::{Engine, EngineConfig, JobReport};
pub use limiter::TokenBucket;
pub use queue::JobQueue;
pub use server::{Server, ServerConfig};
pub use store::DiskStore;
pub use wire::{ClientMsg, RequestDefect, ResponseSource, ServerMsg, SweepRequest, WireError};
