//! Content-addressed on-disk persistence for the daemon's memo tables.
//!
//! Each cached value is one file, `<root>/<kind>/<digest as %016x>.bin`,
//! wrapped in a small envelope: magic `ECLC`, version, the digest it is
//! filed under (so a renamed file cannot impersonate another key) and an
//! FNV-1a checksum over the payload. Writes go through a temp file and
//! an atomic rename, so a crash mid-write leaves either the old value or
//! nothing — never a torn file. Loads treat *any* defect (missing,
//! truncated, bad magic, checksum mismatch, digest mismatch) as a cache
//! miss and count it, because a persistent cache must never turn
//! corruption into a wrong answer when recomputing is always possible.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ecl_aaa::Fnv1a;
use ecl_telemetry::bytes::{ByteReader, ByteWriter, CodecError};

/// Envelope magic of one cache file.
const MAGIC: &[u8] = b"ECLC";
/// Envelope version.
const VERSION: u8 = 1;

/// A directory of content-addressed cache kinds.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    corrupt: AtomicU64,
}

/// FNV-1a digest of a payload, the envelope's integrity check.
fn checksum(payload: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(payload);
    h.finish()
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<DiskStore> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(DiskStore {
            root,
            corrupt: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Defective files seen by [`load`](DiskStore::load)/
    /// [`load_all`](DiskStore::load_all) since open.
    pub fn corrupt_seen(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }

    fn file_path(&self, kind: &str, digest: u64) -> PathBuf {
        self.root.join(kind).join(format!("{digest:016x}.bin"))
    }

    /// Persists `payload` under `(kind, digest)` atomically
    /// (temp file + rename). Overwrites any previous value.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save(&self, kind: &str, digest: u64, payload: &[u8]) -> std::io::Result<()> {
        let path = self.file_path(kind, digest);
        let dir = path.parent().expect("cache file has a kind directory");
        std::fs::create_dir_all(dir)?;
        let mut w = ByteWriter::with_capacity(payload.len() + 32);
        w.put_raw(MAGIC);
        w.put_u8(VERSION);
        w.put_u64(digest);
        w.put_seq_len(payload.len());
        w.put_raw(payload);
        w.put_u64(checksum(payload));
        // The temp name embeds the digest, so concurrent saves of
        // *different* keys never collide; same-key racers write
        // identical bytes and the last rename wins harmlessly.
        let tmp = dir.join(format!(".{digest:016x}.tmp"));
        std::fs::write(&tmp, w.as_bytes())?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Decodes one envelope, checking magic, version, digest and checksum.
    fn decode(expected_digest: u64, bytes: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut r = ByteReader::new(bytes);
        r.expect_magic(MAGIC)?;
        let version = r.get_u8()?;
        if version != VERSION {
            return Err(CodecError::Invalid {
                reason: format!("cache envelope version {version}"),
            });
        }
        let digest = r.get_u64()?;
        if digest != expected_digest {
            return Err(CodecError::Invalid {
                reason: format!("cache file digest {digest:016x} under key {expected_digest:016x}"),
            });
        }
        let len = r.get_seq_len()?;
        let payload = r.get_raw(len)?.to_vec();
        let sum = r.get_u64()?;
        r.finish()?;
        if sum != checksum(&payload) {
            return Err(CodecError::Invalid {
                reason: "cache payload checksum".into(),
            });
        }
        Ok(payload)
    }

    /// The payload stored under `(kind, digest)`, or `None` when the
    /// file is missing or defective (defects are counted, never errors).
    pub fn load(&self, kind: &str, digest: u64) -> Option<Vec<u8>> {
        let path = self.file_path(kind, digest);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => return None,
        };
        match Self::decode(digest, &bytes) {
            Ok(payload) => Some(payload),
            Err(_) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Every valid `(digest, payload)` of `kind`, sorted by digest so
    /// warm-start seeding is deterministic. Defective files are counted
    /// and skipped.
    pub fn load_all(&self, kind: &str) -> Vec<(u64, Vec<u8>)> {
        let dir = self.root.join(kind);
        let entries = match std::fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(_) => return Vec::new(),
        };
        let mut out = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(hex) = name.strip_suffix(".bin") else {
                continue;
            };
            let Ok(digest) = u64::from_str_radix(hex, 16) else {
                continue;
            };
            if let Some(payload) = self.load(kind, digest) {
                out.push((digest, payload));
            }
        }
        out.sort_by_key(|&(digest, _)| digest);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> DiskStore {
        let dir =
            std::env::temp_dir().join(format!("ecl-serve-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DiskStore::open(dir).expect("open temp store")
    }

    #[test]
    fn save_load_round_trip() {
        let store = temp_store("roundtrip");
        assert_eq!(store.load("schedules", 7), None);
        store.save("schedules", 7, b"alpha").unwrap();
        store.save("schedules", 9, b"beta").unwrap();
        assert_eq!(store.load("schedules", 7).as_deref(), Some(&b"alpha"[..]));
        assert_eq!(store.load("schedules", 9).as_deref(), Some(&b"beta"[..]));
        assert_eq!(store.load("responses", 7), None, "kinds are disjoint");
        assert_eq!(
            store.load_all("schedules"),
            vec![(7, b"alpha".to_vec()), (9, b"beta".to_vec())]
        );
        assert_eq!(store.corrupt_seen(), 0);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn corruption_is_a_counted_miss() {
        let store = temp_store("corrupt");
        store.save("runs", 3, b"payload").unwrap();
        // Flip one payload byte on disk; the checksum must catch it.
        let path = store.root().join("runs").join(format!("{:016x}.bin", 3u64));
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() - 12;
        bytes[at] ^= 0xff;
        std::fs::write(&path, bytes).unwrap();
        assert_eq!(store.load("runs", 3), None);
        assert_eq!(store.corrupt_seen(), 1);
        // A file renamed under the wrong digest must also be rejected.
        store.save("runs", 4, b"other").unwrap();
        let wrong = store.root().join("runs").join(format!("{:016x}.bin", 5u64));
        std::fs::rename(
            store.root().join("runs").join(format!("{:016x}.bin", 4u64)),
            &wrong,
        )
        .unwrap();
        assert_eq!(store.load("runs", 5), None);
        assert_eq!(store.corrupt_seen(), 2);
        assert!(store.load_all("runs").is_empty());
        let _ = std::fs::remove_dir_all(store.root());
    }
}
