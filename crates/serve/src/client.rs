//! A blocking client for the daemon: submit, stream, verify, collect.
//!
//! [`Client::submit`] drives one job to completion: it sends the
//! request, then collects the `Queued` ack, every progress `Delta`, the
//! final `Report` and the `Done` trailer into a [`JobOutcome`]. The
//! client re-derives the report's FNV-1a payload digest locally and
//! refuses a mismatching frame — response integrity is checked
//! end-to-end, not trusted.

use std::net::{TcpStream, ToSocketAddrs};

use ecl_aaa::Fnv1a;

use crate::wire::{
    recv_server, send_client, ClientMsg, ResponseSource, ServerMsg, SweepRequest, WireError,
};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or codec failure.
    Wire(WireError),
    /// The server answered with a typed error.
    Server {
        /// Stable machine token (e.g. `rate_limited`).
        code: String,
        /// Human-readable detail.
        msg: String,
    },
    /// The server refused the request before queueing it: semantic
    /// defect codes (`bad_*`) or fault-envelope admission EV codes.
    Rejected {
        /// Every rejection code, in the server's deterministic order.
        codes: Vec<String>,
        /// Human-readable detail.
        msg: String,
    },
    /// The server violated the reply protocol (wrong message order,
    /// digest mismatch, ...).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire failure: {e}"),
            ClientError::Server { code, msg } => write!(f, "server error [{code}]: {msg}"),
            ClientError::Rejected { codes, msg } => {
                write!(f, "request rejected [{}]: {msg}", codes.join(","))
            }
            ClientError::Protocol(reason) => write!(f, "protocol violation: {reason}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Everything one completed job returned.
#[derive(Debug)]
pub struct JobOutcome {
    /// The request digest the server answered.
    pub digest: u64,
    /// The report bytes (integrity-checked against `payload_digest`).
    pub payload: Vec<u8>,
    /// FNV-1a digest of `payload`, as stamped by the server.
    pub payload_digest: u64,
    /// Where the server got the payload.
    pub source: ResponseSource,
    /// `(position, depth)` from the `Queued` ack.
    pub queued: (usize, usize),
    /// Every `(done, total, worst_ns, overruns)` progress delta, in
    /// arrival order.
    pub deltas: Vec<(usize, usize, i64, u64)>,
    /// The daemon's lifetime schedule-compute count after this job.
    pub sched_computes: u64,
}

/// A blocking connection to one daemon.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Submits `req` and blocks until the job completes (or fails).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for typed errors (rate limit, unknown
    /// case, sweep failure), [`ClientError::Rejected`] for pre-queue
    /// refusals (semantic defects, envelope admission),
    /// [`ClientError::Wire`] for transport loss, and
    /// [`ClientError::Protocol`] for reply-order or digest violations.
    pub fn submit(&mut self, req: &SweepRequest) -> Result<JobOutcome, ClientError> {
        send_client(&mut self.stream, &ClientMsg::Submit(req.clone()))?;
        let mut queued = None;
        let mut deltas = Vec::new();
        let mut report: Option<(u64, u64, ResponseSource, Vec<u8>)> = None;
        loop {
            match recv_server(&mut self.stream)? {
                ServerMsg::Queued { position, depth } => {
                    queued = Some((position, depth));
                }
                ServerMsg::Delta {
                    done,
                    total,
                    worst_ns,
                    overruns,
                } => deltas.push((done, total, worst_ns, overruns)),
                ServerMsg::Report {
                    digest,
                    payload_digest,
                    source,
                    payload,
                } => {
                    let mut h = Fnv1a::new();
                    h.write(&payload);
                    if h.finish() != payload_digest {
                        return Err(ClientError::Protocol(
                            "report payload does not match its stamped digest".into(),
                        ));
                    }
                    report = Some((digest, payload_digest, source, payload));
                }
                ServerMsg::Done { sched_computes } => {
                    let Some((digest, payload_digest, source, payload)) = report else {
                        return Err(ClientError::Protocol("done before report".into()));
                    };
                    return Ok(JobOutcome {
                        digest,
                        payload,
                        payload_digest,
                        source,
                        queued: queued
                            .ok_or_else(|| ClientError::Protocol("missing queued ack".into()))?,
                        deltas,
                        sched_computes,
                    });
                }
                ServerMsg::Err { code, msg } => return Err(ClientError::Server { code, msg }),
                ServerMsg::Rejected { codes, msg } => {
                    return Err(ClientError::Rejected { codes, msg })
                }
                ServerMsg::Stats(_) => {
                    return Err(ClientError::Protocol("stats reply to a submit".into()))
                }
            }
        }
    }

    /// Fetches the daemon's counter sidecar.
    ///
    /// # Errors
    ///
    /// Same classes as [`submit`](Client::submit).
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        send_client(&mut self.stream, &ClientMsg::Stats)?;
        match recv_server(&mut self.stream)? {
            ServerMsg::Stats(counters) => Ok(counters),
            ServerMsg::Err { code, msg } => Err(ClientError::Server { code, msg }),
            other => Err(ClientError::Protocol(format!(
                "unexpected reply to stats: {other:?}"
            ))),
        }
    }

    /// Asks the daemon to shut down (fire-and-forget).
    ///
    /// # Errors
    ///
    /// Propagates send failures.
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        send_client(&mut self.stream, &ClientMsg::Shutdown)?;
        Ok(())
    }
}
