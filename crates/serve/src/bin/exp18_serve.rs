//! E18-SERVE — the resident sweep-as-a-service daemon end to end.
//!
//! Drives one daemon through its whole service lifecycle and checks the
//! claims that make a *resident* engine worth having over the one-shot
//! experiment binaries:
//!
//! * **Concurrent service** — four clients submit eight distinct sweep
//!   jobs over TCP; every job streams `Queued` → `Delta`* → `Report` →
//!   `Done` and completes (requests/sec and p99 job latency archived in
//!   `results/BENCH_exp18.json`).
//! * **Response memoization** — resubmitting all eight requests is
//!   answered 100% from the response digest cache (`source=memory`),
//!   with payloads byte-identical to the cold run.
//! * **Restart warmth** — a new daemon on the same `results/cache/`
//!   store answers all eight from disk (`source=disk`), byte-identical
//!   again, with its lifetime schedule-compute counter still at zero.
//! * **Worker invariance** — in-process engines with 1 and 4 pool
//!   workers produce byte-identical payloads for the same request.
//! * **Admission control** — a bucket of capacity 2 with a negligible
//!   refill admits two rapid submits and rejects the third with a typed
//!   `rate_limited` error.
//!
//! Artifacts follow the E16/E17 split: `results/exp18_serve.txt` is the
//! deterministic digest report (request digests, payload digests,
//! sources — no wall-clock content; CI diffs it across
//! `ECL_FLEET_WORKERS` counts), `results/BENCH_exp18.json` is the
//! wall-clock sidecar with the boolean gate flags.

use std::path::PathBuf;
use std::time::Instant;

use ecl_bench::fleet::workers_from_env;
use ecl_bench::write_result;
use ecl_serve::wire::Policy;
use ecl_serve::{
    Client, ClientError, Engine, EngineConfig, JobOutcome, ResponseSource, Server, ServerConfig,
    SweepRequest,
};

/// Distinct jobs of the fleet phases.
const JOBS: usize = 8;

/// Concurrent client connections.
const CLIENTS: usize = 4;

/// The eight distinct requests: common axes, distinct seeds, the last
/// two with fault injection so the faulty pipeline is exercised through
/// the daemon too.
fn requests() -> Vec<SweepRequest> {
    (0..JOBS)
        .map(|i| SweepRequest {
            case: "dc_motor".into(),
            seed: 0xe18_0000 + i as u64 * 7919,
            scenarios: 16,
            priority: (i % 3) as u8,
            chunk: 8,
            wcet_jitter: 0.3,
            wcet_tables: 2,
            period_scales: vec![1.0, 1.25],
            policies: vec![Policy::Pressure, Policy::Earliest],
            frame_loss: if i >= JOBS - 2 { vec![0.2] } else { Vec::new() },
            link_outage: Vec::new(),
            proc_dropout: Vec::new(),
            max_retries: 3,
            outage_periods: 2,
        })
        .collect()
}

/// One phase: `CLIENTS` threads submit the requests round-robin and
/// return `(outcome, latency_ns)` in request order.
fn run_clients(
    addr: std::net::SocketAddr,
    reqs: &[SweepRequest],
) -> Result<Vec<(JobOutcome, u64)>, Box<dyn std::error::Error>> {
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || -> Result<Vec<(usize, JobOutcome, u64)>, String> {
                    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
                    let mut out = Vec::new();
                    for (i, req) in reqs.iter().enumerate() {
                        if i % CLIENTS != c {
                            continue;
                        }
                        let t0 = Instant::now();
                        let outcome = client.submit(req).map_err(|e| format!("job {i}: {e}"))?;
                        out.push((i, outcome, t0.elapsed().as_nanos() as u64));
                    }
                    Ok(out)
                })
            })
            .collect();
        let mut all = Vec::new();
        for handle in handles {
            all.extend(handle.join().expect("client thread panicked")?);
        }
        Ok::<_, String>(all)
    })?;
    let mut results = results;
    results.sort_by_key(|&(i, _, _)| i);
    Ok(results.into_iter().map(|(_, o, l)| (o, l)).collect())
}

/// Nearest-rank percentile of sorted latencies.
fn percentile(sorted_ns: &[u64], q: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1]
}

/// The payload an in-process engine with `workers` pool workers derives
/// for the first request (no store, fresh caches).
fn engine_payload(workers: usize) -> Result<Vec<u8>, Box<dyn std::error::Error>> {
    let engine = Engine::new(EngineConfig {
        workers,
        store_dir: None,
    })?;
    let report = engine.run_job(&requests()[0], |_, _, _, _| {})?;
    Ok(report.payload.as_ref().clone())
}

/// Asserts one phase's outcomes: expected source everywhere, complete
/// delta streams for computed jobs, and (against `reference`) identical
/// payload bytes.
fn check_phase(
    phase: &str,
    outcomes: &[(JobOutcome, u64)],
    expect: ResponseSource,
    reference: Option<&[(JobOutcome, u64)]>,
) {
    for (i, (outcome, _)) in outcomes.iter().enumerate() {
        assert_eq!(
            outcome.source, expect,
            "{phase}: job {i} answered from {:?}, expected {expect:?}",
            outcome.source
        );
        if expect == ResponseSource::Computed {
            let req = &requests()[i];
            let chunks = req.scenarios.div_ceil(req.chunk);
            assert_eq!(
                outcome.deltas.len(),
                chunks,
                "{phase}: job {i} must stream one delta per chunk"
            );
            let &(done, total, _, _) = outcome.deltas.last().expect("at least one delta");
            assert_eq!((done, total), (req.scenarios, req.scenarios));
        }
        if let Some(reference) = reference {
            assert_eq!(
                outcome.payload, reference[i].0.payload,
                "{phase}: job {i} payload must be byte-identical to the cold run"
            );
            assert_eq!(outcome.payload_digest, reference[i].0.payload_digest);
        }
    }
}

/// Rate-limit probe: capacity 2, effectively no refill — the third
/// rapid submit must be rejected with the typed `rate_limited` error.
fn rate_limit_probe() -> Result<bool, Box<dyn std::error::Error>> {
    let server = Server::start(ServerConfig {
        workers: 1,
        store_dir: None,
        rate_capacity: 2.0,
        rate_refill_per_sec: 0.001,
        ..ServerConfig::default()
    })?;
    let mut client = Client::connect(server.addr())?;
    let req = SweepRequest {
        scenarios: 4,
        chunk: 0,
        ..requests()[0].clone()
    };
    client.submit(&req)?;
    client.submit(&req)?;
    match client.submit(&req) {
        Err(ClientError::Server { code, .. }) if code == "rate_limited" => Ok(true),
        Ok(_) => Ok(false),
        Err(e) => Err(format!("expected rate_limited, got {e}").into()),
    }
}

/// The deterministic digest report (diffed across `ECL_FLEET_WORKERS`).
/// Sources and digests only — no wall-clock content.
fn digest_report(
    cold: &[(JobOutcome, u64)],
    warm: &[(JobOutcome, u64)],
    restart: &[(JobOutcome, u64)],
    invariant_payload_fnv: u64,
) -> String {
    let source_tag = |s: ResponseSource| match s {
        ResponseSource::Computed => "cold",
        ResponseSource::Memory => "memory",
        ResponseSource::Disk => "disk",
    };
    let mut s = String::from("E18-SERVE deterministic digest (diffed across ECL_FLEET_WORKERS)\n");
    s.push_str(&format!("jobs: {JOBS}\n"));
    for (i, ((c, _), ((w, _), (r, _)))) in
        cold.iter().zip(warm.iter().zip(restart.iter())).enumerate()
    {
        s.push_str(&format!(
            "job {i}: request={:#018x} payload={:#018x} phases={}/{}/{}\n",
            c.digest,
            c.payload_digest,
            source_tag(c.source),
            source_tag(w.source),
            source_tag(r.source),
        ));
    }
    s.push_str(&format!(
        "worker_invariant_payload_fnv64: {invariant_payload_fnv:#018x}\n"
    ));
    s
}

#[allow(clippy::too_many_arguments)]
fn bench_json(
    workers: usize,
    cold_wall_ns: u64,
    cold_latencies: &[u64],
    warm_wall_ns: u64,
    warm_hits: usize,
    restart_hits: usize,
    restart_sched_computes: u64,
    worker_invariant: bool,
    rate_limited: bool,
) -> String {
    let mut sorted = cold_latencies.to_vec();
    sorted.sort_unstable();
    let requests_per_s = JOBS as f64 / (cold_wall_ns as f64 / 1e9);
    let warm_requests_per_s = JOBS as f64 / (warm_wall_ns as f64 / 1e9);
    let warm_hit_rate = warm_hits as f64 / JOBS as f64;
    format!(
        "{{\"experiment\":\"exp18_serve\",\
         \"workers\":{workers},\
         \"jobs\":{JOBS},\
         \"clients\":{CLIENTS},\
         \"cold_wall_ns\":{cold_wall_ns},\
         \"requests_per_s\":{requests_per_s:.2},\
         \"p50_job_latency_ns\":{},\
         \"p99_job_latency_ns\":{},\
         \"warm_wall_ns\":{warm_wall_ns},\
         \"warm_requests_per_s\":{warm_requests_per_s:.2},\
         \"warm_memory_hits\":{warm_hits},\
         \"warm_hit_rate\":{warm_hit_rate:.6},\
         \"warm_hit_rate_100pct\":{},\
         \"restart_disk_hits\":{restart_hits},\
         \"restart_all_disk\":{},\
         \"restart_sched_computes\":{restart_sched_computes},\
         \"restart_sched_computes_zero\":{},\
         \"payload_worker_invariant\":{worker_invariant},\
         \"rate_limit_enforced\":{rate_limited}}}\n",
        percentile(&sorted, 0.50),
        percentile(&sorted, 0.99),
        warm_hits == JOBS,
        restart_hits == JOBS,
        restart_sched_computes == 0,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E18-SERVE — resident sweep-as-a-service daemon\n");
    let workers = workers_from_env()?.unwrap_or(4);
    let cache_dir = PathBuf::from("results/cache");
    let _ = std::fs::remove_dir_all(&cache_dir);

    // Worker invariance, in-process: the same request through 1- and
    // 4-worker engines must yield byte-identical payloads.
    let payload_1 = engine_payload(1)?;
    let payload_4 = engine_payload(4)?;
    let worker_invariant = payload_1 == payload_4;
    assert!(
        worker_invariant,
        "1- and 4-worker engines produced different payload bytes"
    );
    let invariant_fnv = {
        let mut h = ecl_aaa::Fnv1a::new();
        h.write(&payload_1);
        h.finish()
    };
    println!("payload bytes invariant across 1 vs 4 pool workers");

    // Admission control.
    let rate_limited = rate_limit_probe()?;
    assert!(rate_limited, "third rapid submit was not rate-limited");
    println!("rate limiter: burst of 2 admitted, third submit rejected");

    // Phase A — cold: concurrent clients, distinct requests.
    let server = Server::start(ServerConfig {
        workers,
        store_dir: Some(cache_dir.clone()),
        ..ServerConfig::default()
    })?;
    let addr = server.addr();
    let reqs = requests();
    let t0 = Instant::now();
    let cold = run_clients(addr, &reqs)?;
    let cold_wall_ns = t0.elapsed().as_nanos() as u64;
    check_phase("cold", &cold, ResponseSource::Computed, None);
    let cold_latencies: Vec<u64> = cold.iter().map(|&(_, l)| l).collect();
    println!(
        "cold: {JOBS} jobs over {CLIENTS} clients in {:.2} s ({:.2} req/s)",
        cold_wall_ns as f64 / 1e9,
        JOBS as f64 / (cold_wall_ns as f64 / 1e9)
    );

    // Phase B — warm: identical requests, answered from the response
    // digest cache without touching the pool.
    let t1 = Instant::now();
    let warm = run_clients(addr, &reqs)?;
    let warm_wall_ns = t1.elapsed().as_nanos() as u64;
    check_phase("warm", &warm, ResponseSource::Memory, Some(&cold));
    let warm_hits = warm
        .iter()
        .filter(|(o, _)| o.source == ResponseSource::Memory)
        .count();
    println!(
        "warm: {warm_hits}/{JOBS} answered from memory in {:.3} s, payloads byte-identical",
        warm_wall_ns as f64 / 1e9
    );
    drop(server);

    // Phase C — restart: a fresh daemon on the same store answers from
    // disk without recomputing a single schedule.
    let server = Server::start(ServerConfig {
        workers,
        store_dir: Some(cache_dir.clone()),
        ..ServerConfig::default()
    })?;
    let restart = run_clients(server.addr(), &reqs)?;
    check_phase("restart", &restart, ResponseSource::Disk, Some(&cold));
    let restart_hits = restart
        .iter()
        .filter(|(o, _)| o.source == ResponseSource::Disk)
        .count();
    let stats = Client::connect(server.addr())?.stats()?;
    let restart_sched_computes = stats
        .iter()
        .find(|(name, _)| name == "schedule_computes")
        .map_or(u64::MAX, |&(_, v)| v);
    assert_eq!(
        restart_sched_computes, 0,
        "restarted daemon computed schedules despite the warm store"
    );
    println!("restart: {restart_hits}/{JOBS} answered from disk, schedule computes still 0");
    drop(server);

    let report_path = write_result(
        "exp18_serve.txt",
        &digest_report(&cold, &warm, &restart, invariant_fnv),
    )?;
    let bench_path = write_result(
        "BENCH_exp18.json",
        &bench_json(
            workers,
            cold_wall_ns,
            &cold_latencies,
            warm_wall_ns,
            warm_hits,
            restart_hits,
            restart_sched_computes,
            worker_invariant,
            rate_limited,
        ),
    )?;
    println!(
        "wrote {} and {}",
        report_path.display(),
        bench_path.display()
    );
    Ok(())
}
