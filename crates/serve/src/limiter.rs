//! Token-bucket admission control.
//!
//! Each client connection owns one bucket: a request costs one token,
//! the bucket holds at most `capacity` and refills continuously at
//! `refill_per_sec`. Bursts up to the capacity pass immediately; a
//! sustained flood is clipped to the refill rate and rejected with a
//! typed `rate_limited` error instead of queuing unboundedly.
//!
//! The bucket is driven by an *explicit* clock (`now_ns`), not by
//! reading the system time internally — the server feeds it a monotonic
//! instant, and the unit tests feed it a virtual clock, so refill
//! arithmetic is testable without sleeping.

/// A continuously refilling token bucket.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    refill_per_sec: f64,
    tokens: f64,
    last_ns: u64,
}

impl TokenBucket {
    /// A bucket that starts full at `now_ns`.
    ///
    /// `capacity` is clamped to at least one token (a zero-capacity
    /// bucket would reject everything forever); a non-positive refill
    /// rate is allowed and means the bucket never refills.
    pub fn new(capacity: f64, refill_per_sec: f64, now_ns: u64) -> TokenBucket {
        let capacity = if capacity.is_finite() {
            capacity.max(1.0)
        } else {
            1.0
        };
        let refill_per_sec = if refill_per_sec.is_finite() {
            refill_per_sec.max(0.0)
        } else {
            0.0
        };
        TokenBucket {
            capacity,
            refill_per_sec,
            tokens: capacity,
            last_ns: now_ns,
        }
    }

    /// Refills for the elapsed time, then takes `cost` tokens if
    /// available. Returns whether the request is admitted. A clock that
    /// jumps backwards refills nothing (never panics, never mints).
    pub fn try_acquire(&mut self, now_ns: u64, cost: f64) -> bool {
        let elapsed_ns = now_ns.saturating_sub(self.last_ns);
        self.last_ns = self.last_ns.max(now_ns);
        self.tokens =
            (self.tokens + elapsed_ns as f64 * 1e-9 * self.refill_per_sec).min(self.capacity);
        if self.tokens + 1e-12 >= cost {
            self.tokens -= cost;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after the last refill).
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn burst_up_to_capacity_then_rejects() {
        let mut b = TokenBucket::new(3.0, 1.0, 0);
        assert!(b.try_acquire(0, 1.0));
        assert!(b.try_acquire(0, 1.0));
        assert!(b.try_acquire(0, 1.0));
        assert!(!b.try_acquire(0, 1.0), "burst beyond capacity must clip");
    }

    #[test]
    fn refills_at_the_configured_rate() {
        let mut b = TokenBucket::new(2.0, 2.0, 0);
        assert!(b.try_acquire(0, 2.0));
        assert!(!b.try_acquire(0, 1.0));
        // 250 ms at 2 tokens/s mints half a token — still not enough.
        assert!(!b.try_acquire(SEC / 4, 1.0));
        // By 600 ms, 1.2 tokens have been minted in total.
        assert!(b.try_acquire(6 * SEC / 10, 1.0));
        assert!(!b.try_acquire(6 * SEC / 10, 1.0));
    }

    #[test]
    fn refill_saturates_at_capacity() {
        let mut b = TokenBucket::new(2.0, 100.0, 0);
        assert!(b.try_acquire(0, 1.0));
        // An hour of refill still caps at 2 tokens.
        assert!(b.try_acquire(3600 * SEC, 1.0));
        assert!(b.try_acquire(3600 * SEC, 1.0));
        assert!(!b.try_acquire(3600 * SEC, 1.0));
    }

    #[test]
    fn backwards_clock_mints_nothing() {
        let mut b = TokenBucket::new(1.0, 1000.0, 10 * SEC);
        assert!(b.try_acquire(10 * SEC, 1.0));
        assert!(
            !b.try_acquire(5 * SEC, 1.0),
            "a rewound clock must not refill"
        );
        assert!(
            b.try_acquire(11 * SEC, 1.0),
            "refill resumes from the high-water mark"
        );
    }

    #[test]
    fn zero_refill_never_recovers() {
        let mut b = TokenBucket::new(1.0, 0.0, 0);
        assert!(b.try_acquire(0, 1.0));
        assert!(!b.try_acquire(u64::MAX, 1.0));
    }
}
