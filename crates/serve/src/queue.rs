//! The daemon's job queue: strict priority, FIFO within a priority.
//!
//! A plain `BinaryHeap` over `(priority, Reverse(seq))` — higher
//! priorities pop first and ties resolve to submission order, so two
//! equal-priority jobs can never starve each other or reorder. The
//! queue is a pure data structure; the server wraps it in a
//! `Mutex`/`Condvar` pair and a single executor thread drains it, which
//! is what serializes sweep jobs onto the shared fleet pool.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One queued entry: ordering key plus payload.
#[derive(Debug)]
struct Entry<T> {
    priority: u8,
    seq: u64,
    job: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.priority, Reverse(self.seq)).cmp(&(other.priority, Reverse(other.seq)))
    }
}

/// A priority queue of jobs: max-priority first, FIFO within equals.
#[derive(Debug)]
pub struct JobQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for JobQueue<T> {
    fn default() -> Self {
        JobQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<T> JobQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        JobQueue::default()
    }

    /// Enqueues `job` at `priority` and returns its 0-based position in
    /// the pop order at this instant (0 = next to pop).
    pub fn push(&mut self, priority: u8, job: T) -> usize {
        let seq = self.next_seq;
        self.next_seq += 1;
        // Everything of a strictly higher priority, plus same-priority
        // entries submitted earlier, pops before this one.
        let ahead = self
            .heap
            .iter()
            .filter(|e| e.priority > priority || (e.priority == priority && e.seq < seq))
            .count();
        self.heap.push(Entry { priority, seq, job });
        ahead
    }

    /// Pops the highest-priority (earliest within ties) job.
    pub fn pop(&mut self) -> Option<T> {
        self.heap.pop().map(|e| e.job)
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_priority_pops_first() {
        let mut q = JobQueue::new();
        q.push(0, "low");
        q.push(9, "high");
        q.push(5, "mid");
        assert_eq!(q.pop(), Some("high"));
        assert_eq!(q.pop(), Some("mid"));
        assert_eq!(q.pop(), Some("low"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_priority_is_fifo() {
        let mut q = JobQueue::new();
        for i in 0..10 {
            q.push(3, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn push_reports_the_pop_position() {
        let mut q = JobQueue::new();
        assert_eq!(q.push(1, "a"), 0);
        assert_eq!(q.push(1, "b"), 1, "same priority queues behind");
        assert_eq!(q.push(7, "c"), 0, "higher priority jumps the line");
        assert_eq!(q.push(1, "d"), 3);
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some("c"));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), Some("d"));
        assert!(q.is_empty());
    }
}
