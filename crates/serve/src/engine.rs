//! The daemon's sweep engine: deployments, resident caches, response
//! memo and disk warm-start.
//!
//! One [`Engine`] lives for the daemon's whole life. It owns the
//! persistent [`FleetPool`] every job shards across, the shared
//! [`SweepCaches`] (adequation schedules, ideal runs, scheduled runs,
//! latency reports) and a response memo keyed by
//! [`SweepRequest::digest`]. With a [`DiskStore`] attached, schedules,
//! memoized runs and finished response payloads are written through to
//! disk, and a freshly constructed engine seeds its tables from the
//! store — a restarted daemon answers known requests without computing
//! a single schedule.
//!
//! **Byte determinism.** A job is sharded into chunks of scenarios, each
//! chunk a [`FleetPool::run_with`] pass, but every scenario receives its
//! *global* index — seeds, labels and aggregation order derive from it —
//! and records are folded in index order by a job-local
//! [`SweepAccumulator`]. The accumulator also derives the summary's
//! cache counters from the job's own schedule-digest multiset, not from
//! the shared tables, so a response's payload is byte-identical whether
//! it was computed on a cold daemon, a warm one, after a restart, with
//! one pool worker or with sixteen, in one chunk or many.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ecl_aaa::{AdequationOptions, Fnv1a, MappingPolicy, Schedule, TimeNs};
use ecl_bench::fleet::{
    run_scenario, sweep_bound_ns, FaultAxes, FleetPool, SweepAccumulator, SweepCaches, SweepConfig,
    SWEEP_BUCKETS,
};
use ecl_bench::{dc_motor_loop, split_scenario, SplitScenario};
use ecl_core::cosim::{LoopResult, LoopSpec};
use ecl_core::faults::FaultFamily;
use ecl_core::report::SweepSummary;
use ecl_core::CoreError;
use ecl_telemetry::{Histogram, WorkerProfile};

use crate::store::DiskStore;
use crate::wire::{Policy, ResponseSource, SweepRequest};

/// Store kinds the engine persists under.
const KIND_SCHEDULES: &str = "schedules";
const KIND_IDEAL: &str = "ideal";
const KIND_SCHEDULED: &str = "scheduled";
const KIND_RESPONSES: &str = "responses";

/// One registered deployment case: the split architecture scenario and
/// the control loop swept over it.
struct Deployment {
    spec: LoopSpec,
    base: SplitScenario,
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment").finish_non_exhaustive()
    }
}

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Resident fleet-pool workers (clamped to at least 1).
    pub workers: usize,
    /// Root of the persistent cache; `None` disables persistence.
    pub store_dir: Option<PathBuf>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            store_dir: None,
        }
    }
}

/// A finished (or memoized) response.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The request digest this answers.
    pub digest: u64,
    /// The deterministic report bytes.
    pub payload: Arc<Vec<u8>>,
    /// FNV-1a digest of `payload`.
    pub payload_digest: u64,
    /// Where the payload came from this time.
    pub source: ResponseSource,
    /// Schedules computed by this engine since construction
    /// ([`ecl_aaa::ScheduleCache::computes`]); stays 0 on a warm-started
    /// engine answering known requests.
    pub sched_computes: u64,
}

/// One memoized response.
#[derive(Debug)]
struct ResponseSlot {
    payload: Arc<Vec<u8>>,
    payload_digest: u64,
    /// Seeded from disk at construction (reports as
    /// [`ResponseSource::Disk`]) vs computed this lifetime
    /// ([`ResponseSource::Memory`]).
    disk_seeded: bool,
}

/// Monotonic engine counters (wall-clock-free).
#[derive(Debug, Default)]
struct EngineMetrics {
    jobs: AtomicU64,
    computed: AtomicU64,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    persist_errors: AtomicU64,
    rejected: AtomicU64,
}

/// The resident sweep engine. See the module docs for the determinism
/// contract.
#[derive(Debug)]
pub struct Engine {
    deployments: HashMap<String, Arc<Deployment>>,
    caches: Arc<SweepCaches>,
    pool: FleetPool,
    store: Option<DiskStore>,
    responses: Mutex<HashMap<u64, ResponseSlot>>,
    metrics: EngineMetrics,
}

/// FNV-1a digest of a payload.
fn payload_digest(payload: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(payload);
    h.finish()
}

/// `axis` with an all-zero fallback: scenario derivation indexes the
/// fault axes unconditionally, so an empty wire list means "fault-free",
/// never "no list".
fn axis_or_zero(axis: &[f64]) -> Vec<f64> {
    if axis.is_empty() {
        vec![0.0]
    } else {
        axis.to_vec()
    }
}

impl Engine {
    /// Builds the engine: registers the deployment cases, spawns the
    /// resident pool and (with a store) warm-starts every memo table
    /// from disk.
    ///
    /// # Errors
    ///
    /// Propagates deployment construction and store-open failures (a
    /// defective *entry* in the store is a counted miss, not an error).
    pub fn new(config: EngineConfig) -> Result<Engine, CoreError> {
        let mut deployments = HashMap::new();
        deployments.insert(
            "dc_motor".to_string(),
            Arc::new(Deployment {
                spec: dc_motor_loop(0.3)?,
                base: split_scenario(
                    2,
                    1,
                    TimeNs::from_micros(200),
                    TimeNs::from_micros(50),
                    TimeNs::from_micros(500),
                )?,
            }),
        );
        let store = match &config.store_dir {
            Some(dir) => Some(DiskStore::open(dir).map_err(|e| CoreError::InvalidInput {
                reason: format!("cannot open cache store {}: {e}", dir.display()),
            })?),
            None => None,
        };
        let caches = Arc::new(SweepCaches::new());
        let mut responses = HashMap::new();
        if let Some(store) = &store {
            for (digest, bytes) in store.load_all(KIND_SCHEDULES) {
                if let Ok(schedule) = Schedule::from_bytes(&bytes) {
                    caches.schedule.seed(digest, schedule);
                }
            }
            for (digest, bytes) in store.load_all(KIND_IDEAL) {
                if let Ok(run) = LoopResult::from_metric_bytes(&bytes) {
                    caches.ideal.seed(digest, run);
                }
            }
            for (digest, bytes) in store.load_all(KIND_SCHEDULED) {
                if let Ok(run) = LoopResult::from_metric_bytes(&bytes) {
                    caches.scheduled.seed(digest, run);
                }
            }
            for (digest, payload) in store.load_all(KIND_RESPONSES) {
                responses.insert(
                    digest,
                    ResponseSlot {
                        payload_digest: payload_digest(&payload),
                        payload: Arc::new(payload),
                        disk_seeded: true,
                    },
                );
            }
        }
        Ok(Engine {
            deployments,
            caches,
            pool: FleetPool::new(config.workers),
            store,
            responses: Mutex::new(responses),
            metrics: EngineMetrics::default(),
        })
    }

    /// Resident pool workers.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// `true` when `case` names a registered deployment.
    pub fn knows_case(&self, case: &str) -> bool {
        self.deployments.contains_key(case)
    }

    /// Static admission control (DESIGN.md §15): evaluates the
    /// fault-envelope of the request's deployment at every requested
    /// `(policy, period_scale)` combination on the *unjittered*
    /// schedule, before anything is queued. A combination whose
    /// envelope is conclusively [`ecl_verify::EnvelopeVerdict::Unsafe`]
    /// — every plan in the requested fault family overruns the
    /// requested period — contributes its error-severity EV diagnostic
    /// codes to the result; a non-empty result means the request must
    /// be rejected without spending a single co-simulation. Jitter only
    /// lengthens slots, so an unjittered lower-bound violation is a
    /// fortiori one for every jittered sweep member: admission rejects
    /// only deployments no scenario could satisfy.
    ///
    /// Codes are sorted and deduplicated, so the reply bytes are a pure
    /// function of the request.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidInput`] for an unregistered case; adequation
    /// failures propagate.
    pub fn admission_codes(&self, req: &SweepRequest) -> Result<Vec<String>, CoreError> {
        let deployment =
            self.deployments
                .get(&req.case)
                .ok_or_else(|| CoreError::InvalidInput {
                    reason: format!("unknown deployment case {:?}", req.case),
                })?;
        let family = FaultFamily {
            frame_loss: req.frame_loss.iter().any(|r| *r > 0.0),
            max_retries: req.max_retries,
            link_outage: req.link_outage.iter().any(|r| *r > 0.0),
            proc_dropout: req.proc_dropout.iter().any(|r| *r > 0.0),
        };
        let base = &deployment.base;
        let mut codes: Vec<String> = Vec::new();
        for policy in &req.policies {
            let options = AdequationOptions {
                policy: match policy {
                    Policy::Pressure => MappingPolicy::SchedulePressure,
                    Policy::Earliest => MappingPolicy::EarliestFinish,
                },
            };
            let (schedule, _digest, _hit) = self
                .caches
                .schedule
                .get_or_compute_traced(&base.alg, &base.arch, &base.db, options)?;
            for &scale in &req.period_scales {
                let period = TimeNs::from_secs_f64(deployment.spec.ts * scale);
                let report = ecl_verify::fault_envelope(
                    &base.alg, &base.arch, &schedule, period, &family, None,
                );
                if report.verdict() != ecl_verify::EnvelopeVerdict::Unsafe {
                    continue;
                }
                for d in ecl_verify::envelope_diagnostics(&base.alg, &report) {
                    if d.severity == ecl_verify::Severity::Error {
                        codes.push(d.code.to_string());
                    }
                }
            }
        }
        codes.sort();
        codes.dedup();
        Ok(codes)
    }

    /// Records one rejected submit (semantic defect or envelope
    /// admission refusal); shows up as `jobs_rejected` in
    /// [`stats`](Engine::stats).
    pub fn note_rejected(&self) {
        self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Maps a validated wire request onto the fleet sweep configuration.
    /// Memoization is always on — a resident daemon is exactly the
    /// consumer those caches exist for — and tracing is off, because the
    /// response payload must be derivable from metric-grade cache
    /// entries alone.
    fn config_for(&self, req: &SweepRequest) -> SweepConfig {
        SweepConfig {
            base_seed: req.seed,
            scenario_count: req.scenarios,
            workers: self.pool.workers(),
            wcet_jitter: req.wcet_jitter,
            wcet_tables: req.wcet_tables,
            period_scales: req.period_scales.clone(),
            policies: req
                .policies
                .iter()
                .map(|p| match p {
                    Policy::Pressure => MappingPolicy::SchedulePressure,
                    Policy::Earliest => MappingPolicy::EarliestFinish,
                })
                .collect(),
            trace_scenarios: 0,
            faults: FaultAxes {
                frame_loss_rates: axis_or_zero(&req.frame_loss),
                link_outage_rates: axis_or_zero(&req.link_outage),
                proc_dropout_rates: axis_or_zero(&req.proc_dropout),
                max_retries: req.max_retries,
                outage_periods: req.outage_periods,
            },
            memoize_scheduled: true,
            memoize_reports: true,
            ..SweepConfig::default()
        }
    }

    /// Renders the deterministic response payload: the Markdown summary,
    /// the JSON document and one actuation-histogram line. No wall-clock
    /// content — the bytes are a pure function of the request.
    fn render_payload(summary: &SweepSummary, hist: &Histogram) -> Vec<u8> {
        let mut s = summary.render();
        s.push('\n');
        s.push_str(&summary.to_json());
        s.push('\n');
        let h = hist.summary();
        s.push_str(&format!(
            "actuation_hist count={} min_ns={} max_ns={} mean_ns={:.3} \
             p50_ns={} p95_ns={} p99_ns={}\n",
            h.count, h.min_ns, h.max_ns, h.mean_ns, h.p50_ns, h.p95_ns, h.p99_ns
        ));
        s.into_bytes()
    }

    /// Write-through persistence after a computed job: the response
    /// payload and a snapshot of every memo table. Saves are atomic and
    /// idempotent (content-addressed), so re-saving an existing entry
    /// rewrites identical bytes. Best-effort: a full disk degrades the
    /// daemon to memory-only and bumps `persist_errors`, it never fails
    /// a job that already has its answer.
    fn persist(&self, digest: u64, payload: &[u8]) {
        let Some(store) = &self.store else {
            return;
        };
        let mut failed = 0u64;
        let mut save = |kind: &str, key: u64, bytes: &[u8]| {
            if store.save(kind, key, bytes).is_err() {
                failed += 1;
            }
        };
        save(KIND_RESPONSES, digest, payload);
        for (key, schedule) in self.caches.schedule.snapshot() {
            save(KIND_SCHEDULES, key, &schedule.to_bytes());
        }
        for (key, run) in self.caches.ideal.snapshot() {
            save(KIND_IDEAL, key, &run.to_metric_bytes());
        }
        for (key, run) in self.caches.scheduled.snapshot() {
            save(KIND_SCHEDULED, key, &run.to_metric_bytes());
        }
        self.metrics
            .persist_errors
            .fetch_add(failed, Ordering::Relaxed);
    }

    /// Answers `req`: from the response memo when known, otherwise by
    /// sharding the sweep across the resident pool in `req.chunk`-sized
    /// passes, calling `progress(done, total, worst_ns, overruns)` after
    /// each pass.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidInput`] for an unregistered case; otherwise
    /// the lowest-index scenario failure, if any.
    pub fn run_job<F>(&self, req: &SweepRequest, mut progress: F) -> Result<JobReport, CoreError>
    where
        F: FnMut(usize, usize, i64, u64),
    {
        self.metrics.jobs.fetch_add(1, Ordering::Relaxed);
        let digest = req.digest();
        if let Some(slot) = self.responses.lock().expect("response memo").get(&digest) {
            let source = if slot.disk_seeded {
                self.metrics.disk_hits.fetch_add(1, Ordering::Relaxed);
                ResponseSource::Disk
            } else {
                self.metrics.memory_hits.fetch_add(1, Ordering::Relaxed);
                ResponseSource::Memory
            };
            return Ok(JobReport {
                digest,
                payload: Arc::clone(&slot.payload),
                payload_digest: slot.payload_digest,
                source,
                sched_computes: self.caches.schedule.computes(),
            });
        }
        let deployment =
            self.deployments
                .get(&req.case)
                .ok_or_else(|| CoreError::InvalidInput {
                    reason: format!("unknown deployment case {:?}", req.case),
                })?;
        self.metrics.computed.fetch_add(1, Ordering::Relaxed);
        let config = Arc::new(self.config_for(req));
        let bound = sweep_bound_ns(&deployment.spec, &config);
        let total = config.scenario_count;
        let chunk = if req.chunk == 0 { total } else { req.chunk };
        let epoch = Instant::now();
        let mut acc = SweepAccumulator::new(&config);
        let mut merged = Histogram::new(bound, SWEEP_BUCKETS);
        let mut worst = 0i64;
        let mut overruns = 0u64;
        let mut start = 0usize;
        while start < total {
            let count = (total - start).min(chunk);
            let f = {
                let deployment = Arc::clone(deployment);
                let config = Arc::clone(&config);
                let caches = Arc::clone(&self.caches);
                move |i: usize, state: &mut (WorkerProfile, Histogram)| {
                    let (wp, scratch) = state;
                    // The *global* index drives seeds, labels and trace
                    // prefixes, so chunking cannot perturb a byte.
                    run_scenario(
                        &deployment.spec,
                        &deployment.base,
                        &config,
                        &caches,
                        start + i,
                        wp,
                        scratch,
                    )
                }
            };
            let (records, states) = self.pool.run_with(
                count,
                move |lane| {
                    (
                        WorkerProfile::new(lane, epoch, false),
                        Histogram::new(bound, SWEEP_BUCKETS),
                    )
                },
                f,
            );
            for record in records {
                let record = record?;
                worst = worst.max(record.outcome.worst_actuation_ns);
                overruns += record.outcome.overruns as u64;
                acc.push(record);
            }
            // Lane scratches merge in lane order; histogram merging is
            // commutative and associative, so chunk x lane slicing can
            // never show through the merged bytes.
            for (_, scratch) in states {
                merged.merge(&scratch);
            }
            start += count;
            progress(start, total, worst, overruns);
        }
        let (summary, _traces) = acc.finish();
        let payload = Arc::new(Self::render_payload(&summary, &merged));
        let payload_dig = payload_digest(&payload);
        self.persist(digest, &payload);
        self.responses.lock().expect("response memo").insert(
            digest,
            ResponseSlot {
                payload: Arc::clone(&payload),
                payload_digest: payload_dig,
                disk_seeded: false,
            },
        );
        Ok(JobReport {
            digest,
            payload,
            payload_digest: payload_dig,
            source: ResponseSource::Computed,
            sched_computes: self.caches.schedule.computes(),
        })
    }

    /// The counter sidecar, in fixed order. Every value is digest- or
    /// event-derived — no wall-clock content — but hit/miss splits still
    /// belong beside, never inside, byte-compared payloads.
    pub fn stats(&self) -> Vec<(String, u64)> {
        let caches = &self.caches;
        let mut out = vec![
            ("jobs".into(), self.metrics.jobs.load(Ordering::Relaxed)),
            (
                "jobs_computed".into(),
                self.metrics.computed.load(Ordering::Relaxed),
            ),
            (
                "jobs_rejected".into(),
                self.metrics.rejected.load(Ordering::Relaxed),
            ),
            (
                "response_memory_hits".into(),
                self.metrics.memory_hits.load(Ordering::Relaxed),
            ),
            (
                "response_disk_hits".into(),
                self.metrics.disk_hits.load(Ordering::Relaxed),
            ),
            (
                "responses_cached".into(),
                self.responses.lock().expect("response memo").len() as u64,
            ),
            ("schedule_computes".into(), caches.schedule.computes()),
            ("schedule_entries".into(), caches.schedule.len() as u64),
            ("ideal_entries".into(), caches.ideal.len() as u64),
            ("scheduled_entries".into(), caches.scheduled.len() as u64),
            ("report_entries".into(), caches.reports.len() as u64),
            (
                "persist_errors".into(),
                self.metrics.persist_errors.load(Ordering::Relaxed),
            ),
        ];
        if let Some(store) = &self.store {
            out.push(("store_corrupt".into(), store.corrupt_seen()));
        }
        out
    }
}
