//! The resident daemon: TCP listener, per-connection admission, one
//! executor draining the priority queue onto the shared engine.
//!
//! Thread shape: one listener (accept loop), one reader thread per
//! connection, one executor. The executor is the only thread that
//! touches the fleet pool, which serializes sweep jobs — a deliberate
//! choice: jobs shard *internally* across the pool's workers, so
//! running two jobs at once would only interleave their lane tasks
//! without adding parallelism, while destroying the queue's priority
//! order.
//!
//! Each connection's replies go through an `Arc<Mutex<TcpStream>>`, so
//! a frame written by the executor (deltas, report) can never tear a
//! frame written by the reader thread (queued acks, errors). The reader
//! holds that lock across enqueue + `Queued` ack, so the ack always
//! precedes the job's first delta.
//!
//! Admission is three gates, each typed, each leaving the connection
//! usable: a per-connection [`TokenBucket`] (one token per submit,
//! stats and shutdown are free) rejects over-rate submits with
//! `rate_limited`; [`SweepRequest::validate`] rejects semantically
//! out-of-range requests with [`ServerMsg::Rejected`] listing every
//! defect code; and the engine's fault-envelope admission control
//! ([`Engine::admission_codes`]) rejects deployments that are
//! statically infeasible at a requested period with the EV diagnostic
//! codes that condemned them — before the job spends a single
//! co-simulation.

use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ecl_core::CoreError;

use crate::engine::{Engine, EngineConfig};
use crate::limiter::TokenBucket;
use crate::queue::JobQueue;
use crate::wire::{send_server, ClientMsg, ServerMsg, SweepRequest, WireError, MAX_FRAME};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (read it back via
    /// [`Server::addr`]).
    pub addr: String,
    /// Resident fleet-pool workers.
    pub workers: usize,
    /// Root of the persistent cache; `None` disables persistence.
    pub store_dir: Option<PathBuf>,
    /// Token-bucket capacity per connection (burst size).
    pub rate_capacity: f64,
    /// Token-bucket refill rate per connection, tokens per second.
    pub rate_refill_per_sec: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            store_dir: None,
            rate_capacity: 64.0,
            rate_refill_per_sec: 32.0,
        }
    }
}

/// One queued sweep job: the request plus the connection to answer on.
struct Job {
    req: SweepRequest,
    out: Arc<Mutex<TcpStream>>,
}

/// The queue and its wakeup signal.
struct QueueState {
    queue: Mutex<JobQueue<Job>>,
    available: Condvar,
}

/// A running daemon; dropping it shuts everything down and joins every
/// thread.
pub struct Server {
    addr: SocketAddr,
    engine: Arc<Engine>,
    shutdown: Arc<AtomicBool>,
    queue: Arc<QueueState>,
    listener: Option<JoinHandle<()>>,
    executor: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

/// Reads one frame, polling `shutdown` while idle (before any byte of
/// the next frame arrives). `Ok(None)` means an orderly shutdown was
/// requested; the stream must have a read timeout for the poll to run.
fn read_frame_poll(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) -> Result<Option<Vec<u8>>, WireError> {
    let mut read_full = |buf: &mut [u8], idle_ok: bool| -> Result<Option<()>, WireError> {
        let mut filled = 0;
        while filled < buf.len() {
            if idle_ok && filled == 0 && shutdown.load(Ordering::Relaxed) {
                return Ok(None);
            }
            match stream.read(&mut buf[filled..]) {
                Ok(0) => return Err(WireError::Disconnected),
                Ok(n) => filled += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                    ) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::ConnectionReset | ErrorKind::UnexpectedEof
                    ) =>
                {
                    return Err(WireError::Disconnected)
                }
                Err(e) => return Err(WireError::Io(e)),
            }
        }
        Ok(Some(()))
    };
    let mut len_buf = [0u8; 4];
    if read_full(&mut len_buf, true)?.is_none() {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized { len });
    }
    let mut payload = vec![0u8; len];
    read_full(&mut payload, false)?;
    Ok(Some(payload))
}

/// One connection's read loop. Returns when the peer disconnects, the
/// framing becomes unrecoverable, or shutdown is requested.
fn serve_connection(
    mut reader: TcpStream,
    out: Arc<Mutex<TcpStream>>,
    engine: Arc<Engine>,
    queue: Arc<QueueState>,
    shutdown: Arc<AtomicBool>,
    epoch: Instant,
    mut bucket: TokenBucket,
) {
    let send = |msg: &ServerMsg| {
        let mut out = out.lock().expect("connection writer");
        send_server(&mut *out, msg).is_ok()
    };
    loop {
        let payload = match read_frame_poll(&mut reader, &shutdown) {
            Ok(Some(payload)) => payload,
            Ok(None) | Err(WireError::Disconnected) => return,
            Err(WireError::Oversized { len }) => {
                // The oversized body was never consumed, so the frame
                // boundary is lost — reject and hang up.
                send(&ServerMsg::Err {
                    code: "oversized".into(),
                    msg: format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
                });
                return;
            }
            Err(_) => return,
        };
        // Frame boundaries survive a bad payload, so text-level defects
        // are answered and the connection stays usable.
        let msg = match ClientMsg::decode(&payload) {
            Ok(msg) => msg,
            Err(WireError::Malformed { reason }) => {
                if !send(&ServerMsg::Err {
                    code: "malformed".into(),
                    msg: reason,
                }) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        match msg {
            ClientMsg::Submit(req) => {
                let now_ns = epoch.elapsed().as_nanos() as u64;
                if !bucket.try_acquire(now_ns, 1.0) {
                    if !send(&ServerMsg::Err {
                        code: "rate_limited".into(),
                        msg: "per-connection request budget exhausted; retry later".into(),
                    }) {
                        return;
                    }
                    continue;
                }
                // Semantic validation: a parseable request with
                // out-of-range fields is *rejected* (typed, with every
                // defect code), not treated as a protocol error.
                let defects = req.validate();
                if !defects.is_empty() {
                    engine.note_rejected();
                    let codes = defects.iter().map(|d| d.code.to_string()).collect();
                    let msg = defects
                        .iter()
                        .map(|d| d.detail.as_str())
                        .collect::<Vec<_>>()
                        .join("; ");
                    if !send(&ServerMsg::Rejected { codes, msg }) {
                        return;
                    }
                    continue;
                }
                if !engine.knows_case(&req.case) {
                    if !send(&ServerMsg::Err {
                        code: "unknown_case".into(),
                        msg: format!("no deployment case {:?} is registered", req.case),
                    }) {
                        return;
                    }
                    continue;
                }
                // Envelope admission control: a deployment whose
                // completion envelope is conclusively infeasible at a
                // requested period is refused before queueing, carrying
                // the EV diagnostic codes that condemned it.
                match engine.admission_codes(&req) {
                    Ok(codes) if !codes.is_empty() => {
                        engine.note_rejected();
                        if !send(&ServerMsg::Rejected {
                            codes,
                            msg: "fault-envelope admission: every plan in the requested \
                                  fault family overruns a requested period"
                                .into(),
                        }) {
                            return;
                        }
                        continue;
                    }
                    Ok(_) => {}
                    Err(e) => {
                        if !send(&ServerMsg::Err {
                            code: "admission_failed".into(),
                            msg: e.to_string(),
                        }) {
                            return;
                        }
                        continue;
                    }
                }
                // Enqueue and ack under the write lock: the executor's
                // first delta must queue behind the `Queued` frame.
                let mut out_guard = out.lock().expect("connection writer");
                let (position, depth) = {
                    let mut q = queue.queue.lock().expect("job queue");
                    let position = q.push(
                        req.priority,
                        Job {
                            req,
                            out: Arc::clone(&out),
                        },
                    );
                    (position, q.len())
                };
                let acked =
                    send_server(&mut *out_guard, &ServerMsg::Queued { position, depth }).is_ok();
                drop(out_guard);
                queue.available.notify_all();
                if !acked {
                    return;
                }
            }
            ClientMsg::Stats => {
                if !send(&ServerMsg::Stats(engine.stats())) {
                    return;
                }
            }
            ClientMsg::Shutdown => {
                shutdown.store(true, Ordering::Relaxed);
                queue.available.notify_all();
                return;
            }
        }
    }
}

/// The executor loop: drains the priority queue onto the engine, one
/// job at a time, streaming deltas to the job's connection.
fn run_executor(engine: Arc<Engine>, queue: Arc<QueueState>, shutdown: Arc<AtomicBool>) {
    loop {
        let job = {
            let mut q = queue.queue.lock().expect("job queue");
            loop {
                if let Some(job) = q.pop() {
                    break Some(job);
                }
                if shutdown.load(Ordering::Relaxed) {
                    break None;
                }
                q = queue.available.wait(q).expect("job queue");
            }
        };
        let Some(job) = job else { return };
        // Send failures are ignored throughout: a client that hung up
        // mid-job must not take the daemon (or the job's side effects —
        // warm caches, persisted response) down with it.
        let outcome = engine.run_job(&job.req, |done, total, worst_ns, overruns| {
            let mut out = job.out.lock().expect("connection writer");
            let _ = send_server(
                &mut *out,
                &ServerMsg::Delta {
                    done,
                    total,
                    worst_ns,
                    overruns,
                },
            );
        });
        let mut out = job.out.lock().expect("connection writer");
        match outcome {
            Ok(report) => {
                let _ = send_server(
                    &mut *out,
                    &ServerMsg::Report {
                        digest: report.digest,
                        payload_digest: report.payload_digest,
                        source: report.source,
                        payload: report.payload.as_ref().clone(),
                    },
                );
                let _ = send_server(
                    &mut *out,
                    &ServerMsg::Done {
                        sched_computes: report.sched_computes,
                    },
                );
            }
            Err(e) => {
                let _ = send_server(
                    &mut *out,
                    &ServerMsg::Err {
                        code: "sweep_failed".into(),
                        msg: e.to_string(),
                    },
                );
            }
        }
    }
}

impl Server {
    /// Binds, spawns the listener and executor, and returns immediately.
    ///
    /// # Errors
    ///
    /// Engine construction failures and bind failures (as
    /// [`CoreError::InvalidInput`]).
    pub fn start(config: ServerConfig) -> Result<Server, CoreError> {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: config.workers,
            store_dir: config.store_dir.clone(),
        })?);
        let listener = TcpListener::bind(&config.addr).map_err(|e| CoreError::InvalidInput {
            reason: format!("cannot bind {}: {e}", config.addr),
        })?;
        let addr = listener.local_addr().map_err(|e| CoreError::InvalidInput {
            reason: format!("cannot read bound address: {e}"),
        })?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(QueueState {
            queue: Mutex::new(JobQueue::new()),
            available: Condvar::new(),
        });
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let epoch = Instant::now();

        let executor = {
            let (engine, queue, shutdown) = (
                Arc::clone(&engine),
                Arc::clone(&queue),
                Arc::clone(&shutdown),
            );
            std::thread::Builder::new()
                .name("serve-exec".into())
                .spawn(move || run_executor(engine, queue, shutdown))
                .expect("spawn executor")
        };

        let listener_handle = {
            let engine = Arc::clone(&engine);
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            let connections = Arc::clone(&connections);
            let (capacity, refill) = (config.rate_capacity, config.rate_refill_per_sec);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::Relaxed) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        // The poll timeout bounds how long a quiet
                        // connection can delay an orderly shutdown.
                        let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
                        let _ = stream.set_nodelay(true);
                        let Ok(writer) = stream.try_clone() else {
                            continue;
                        };
                        let out = Arc::new(Mutex::new(writer));
                        let engine = Arc::clone(&engine);
                        let queue = Arc::clone(&queue);
                        let conn_shutdown = Arc::clone(&shutdown);
                        let bucket =
                            TokenBucket::new(capacity, refill, epoch.elapsed().as_nanos() as u64);
                        let handle = std::thread::Builder::new()
                            .name("serve-conn".into())
                            .spawn(move || {
                                serve_connection(
                                    stream,
                                    out,
                                    engine,
                                    queue,
                                    conn_shutdown,
                                    epoch,
                                    bucket,
                                )
                            })
                            .expect("spawn connection thread");
                        connections
                            .lock()
                            .expect("connection registry")
                            .push(handle);
                    }
                })
                .expect("spawn listener")
        };

        Ok(Server {
            addr,
            engine,
            shutdown,
            queue,
            listener: Some(listener_handle),
            executor: Some(executor),
            connections,
        })
    }

    /// The bound address (with the actual port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared engine (for in-process inspection in tests and
    /// experiments).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.queue.available.notify_all();
        // A throwaway connection unblocks the accept loop so it can
        // observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.listener.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.executor.take() {
            let _ = handle.join();
        }
        let handles: Vec<_> = self
            .connections
            .lock()
            .expect("connection registry")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}
