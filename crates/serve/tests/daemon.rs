//! End-to-end daemon tests over real TCP.
//!
//! The load-bearing property: one request yields byte-identical report
//! payloads whether the answer is computed cold, replayed from the
//! in-memory response cache, or replayed from the on-disk store after a
//! full daemon restart — and none of that depends on how many fleet
//! workers the pool runs.

use std::path::PathBuf;

use ecl_serve::{
    Client, ClientError, Engine, EngineConfig, ResponseSource, Server, ServerConfig, SweepRequest,
};

/// A per-test scratch directory under the OS temp root, removed on drop.
struct TempStore {
    dir: PathBuf,
}

impl TempStore {
    fn new(tag: &str) -> TempStore {
        let dir =
            std::env::temp_dir().join(format!("ecl-serve-daemon-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempStore { dir }
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn request() -> SweepRequest {
    SweepRequest {
        seed: 0xdae_0001,
        scenarios: 12,
        chunk: 5, // uneven on purpose: 12 scenarios / chunk 5 = 3 deltas
        period_scales: vec![1.0, 1.25],
        frame_loss: vec![0.25],
        ..SweepRequest::default()
    }
}

fn server(workers: usize, store: Option<&TempStore>) -> Server {
    Server::start(ServerConfig {
        workers,
        store_dir: store.map(|s| s.dir.clone()),
        ..ServerConfig::default()
    })
    .expect("server start")
}

fn counter(stats: &[(String, u64)], key: &str) -> u64 {
    stats
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("missing stats counter {key:?}"))
        .1
}

/// Cold, warm and post-restart answers are all byte-identical, for a
/// 1-worker and a 4-worker pool alike — and the two pool sizes agree
/// with each other.
#[test]
fn cold_warm_restart_payloads_are_byte_identical_across_worker_counts() {
    let mut per_workers = Vec::new();
    for workers in [1usize, 4] {
        let store = TempStore::new(&format!("cwr{workers}"));
        let srv = server(workers, Some(&store));
        let mut client = Client::connect(srv.addr()).expect("connect");

        let cold = client.submit(&request()).expect("cold submit");
        assert_eq!(cold.source, ResponseSource::Computed);
        assert_eq!(cold.deltas.len(), 3, "12 scenarios in chunks of 5");
        assert_eq!(cold.deltas.last().map(|d| (d.0, d.1)), Some((12, 12)));

        let warm = client.submit(&request()).expect("warm submit");
        assert_eq!(warm.source, ResponseSource::Memory);
        assert_eq!(warm.payload, cold.payload, "warm bytes drifted");
        assert_eq!(warm.payload_digest, cold.payload_digest);
        assert!(warm.deltas.is_empty(), "replayed answers stream no deltas");

        drop(client);
        drop(srv);

        let srv = server(workers, Some(&store));
        let mut client = Client::connect(srv.addr()).expect("reconnect");
        let restarted = client.submit(&request()).expect("restart submit");
        assert_eq!(restarted.source, ResponseSource::Disk);
        assert_eq!(restarted.payload, cold.payload, "restart bytes drifted");
        assert_eq!(restarted.sched_computes, 0, "restart recomputed schedules");

        per_workers.push(cold.payload);
    }
    assert_eq!(
        per_workers[0], per_workers[1],
        "1-worker and 4-worker payloads differ"
    );
}

/// A restarted daemon stays warm below the response layer too: a *new*
/// request over the same schedule axes recomputes the sweep but finds
/// every schedule (and memoized run) already seeded from disk.
#[test]
fn restart_serves_new_requests_without_recomputing_schedules() {
    let store = TempStore::new("axes");
    let srv = server(2, Some(&store));
    let mut client = Client::connect(srv.addr()).expect("connect");
    client.submit(&request()).expect("seed the store");
    drop(client);
    drop(srv);

    let srv = server(2, Some(&store));
    let mut client = Client::connect(srv.addr()).expect("reconnect");
    let half = SweepRequest {
        scenarios: 6, // strict subset of the seeded 0..12 index range
        ..request()
    };
    let outcome = client.submit(&half).expect("half-size submit");
    assert_eq!(outcome.source, ResponseSource::Computed);
    let stats = client.stats().expect("stats");
    assert_eq!(
        counter(&stats, "schedule_computes"),
        0,
        "schedules should come from the disk-seeded cache"
    );
    assert_eq!(counter(&stats, "response_disk_hits"), 0);
    assert_eq!(counter(&stats, "jobs_computed"), 1);
}

/// `priority` and `chunk` steer scheduling only — two engines given the
/// same request with different knobs produce identical bytes and share
/// one request digest.
#[test]
fn scheduling_knobs_never_reach_the_report_bytes() {
    let a_engine = Engine::new(EngineConfig {
        workers: 3,
        store_dir: None,
    })
    .expect("engine a");
    let b_engine = Engine::new(EngineConfig {
        workers: 1,
        store_dir: None,
    })
    .expect("engine b");
    let a = a_engine
        .run_job(&request(), |_, _, _, _| {})
        .expect("job a");
    let b_req = SweepRequest {
        priority: 9,
        chunk: 1,
        ..request()
    };
    let b = b_engine.run_job(&b_req, |_, _, _, _| {}).expect("job b");
    assert_eq!(a.digest, b.digest, "digest must ignore priority/chunk");
    assert_eq!(*a.payload, *b.payload);
    assert_eq!(a.payload_digest, b.payload_digest);
}

/// Without a store, a fresh engine recomputes from scratch — restart
/// warmth is a property of the disk store, not an accident of state.
#[test]
fn no_store_means_no_restart_warmth() {
    let req = SweepRequest {
        scenarios: 4,
        ..request()
    };
    let engine = Engine::new(EngineConfig::default()).expect("engine");
    assert_eq!(
        engine.run_job(&req, |_, _, _, _| {}).unwrap().source,
        ResponseSource::Computed
    );
    assert_eq!(
        engine.run_job(&req, |_, _, _, _| {}).unwrap().source,
        ResponseSource::Memory
    );
    let fresh = Engine::new(EngineConfig::default()).expect("fresh engine");
    assert_eq!(
        fresh.run_job(&req, |_, _, _, _| {}).unwrap().source,
        ResponseSource::Computed
    );
}

/// An exhausted token bucket rejects with the typed `rate_limited` code
/// and the connection stays usable for non-submit traffic.
#[test]
fn rate_limited_submit_is_typed_and_survivable() {
    let srv = Server::start(ServerConfig {
        workers: 1,
        rate_capacity: 1.0,
        rate_refill_per_sec: 0.001,
        ..ServerConfig::default()
    })
    .expect("server start");
    let mut client = Client::connect(srv.addr()).expect("connect");
    let small = SweepRequest {
        scenarios: 2,
        ..request()
    };
    client.submit(&small).expect("first submit fits the bucket");
    match client.submit(&small) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "rate_limited"),
        other => panic!("expected rate_limited rejection, got {other:?}"),
    }
    let stats = client.stats().expect("stats after rejection");
    assert_eq!(counter(&stats, "jobs"), 1, "rejected submit must not run");
}

/// Unknown cases are rejected by name, before touching queue or bucket
/// bookkeeping of the job counters.
#[test]
fn unknown_case_is_rejected_by_name() {
    let srv = server(1, None);
    let mut client = Client::connect(srv.addr()).expect("connect");
    let bogus = SweepRequest {
        case: "no_such_plant".into(),
        ..request()
    };
    match client.submit(&bogus) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "unknown_case"),
        other => panic!("expected unknown_case rejection, got {other:?}"),
    }
    let stats = client.stats().expect("stats");
    assert_eq!(counter(&stats, "jobs"), 0);
}

/// A parseable but semantically out-of-range request is refused with a
/// typed `Rejected` reply listing every defect code — and the
/// connection stays usable for a corrected submit afterwards.
#[test]
fn semantic_defects_are_rejected_with_typed_codes() {
    let srv = server(1, None);
    let mut client = Client::connect(srv.addr()).expect("connect");
    let bad = SweepRequest {
        scenarios: 0,
        wcet_tables: 0,
        ..request()
    };
    match client.submit(&bad) {
        Err(ClientError::Rejected { codes, .. }) => {
            assert_eq!(codes, ["bad_scenarios", "bad_wcet_tables"]);
        }
        other => panic!("expected typed rejection, got {other:?}"),
    }
    let stats = client.stats().expect("stats after rejection");
    assert_eq!(counter(&stats, "jobs"), 0, "rejected submit must not run");
    assert_eq!(counter(&stats, "jobs_rejected"), 1);
    let small = SweepRequest {
        scenarios: 2,
        ..request()
    };
    client
        .submit(&small)
        .expect("connection must survive a rejection");
}

/// Fault-envelope admission control: a deployment whose completion
/// envelope provably overruns a requested period is refused before
/// queueing, carrying the EV code that condemned it — no co-simulation
/// is spent on it.
#[test]
fn infeasible_period_is_rejected_by_envelope_admission() {
    let srv = server(1, None);
    let mut client = Client::connect(srv.addr()).expect("connect");
    // Fault-free family: the envelope is exact, so a period far below
    // the schedule makespan yields a conclusive lower-bound violation.
    let infeasible = SweepRequest {
        period_scales: vec![1e-9],
        frame_loss: vec![],
        ..request()
    };
    match client.submit(&infeasible) {
        Err(ClientError::Rejected { codes, .. }) => assert_eq!(codes, ["EV401"]),
        other => panic!("expected EV401 admission rejection, got {other:?}"),
    }
    let stats = client.stats().expect("stats");
    assert_eq!(counter(&stats, "jobs"), 0, "rejected job must not run");
    assert_eq!(counter(&stats, "jobs_rejected"), 1);
    // The same deployment at a sane period is admitted and completes.
    let sane = SweepRequest {
        scenarios: 2,
        frame_loss: vec![],
        ..request()
    };
    client.submit(&sane).expect("feasible request is admitted");
}

/// Two clients sharing one daemon both get correct, digest-verified
/// answers; the second identical request is a memory hit even when it
/// arrives on a different connection.
#[test]
fn response_cache_is_shared_across_connections() {
    let srv = server(2, None);
    let mut first = Client::connect(srv.addr()).expect("connect first");
    let mut second = Client::connect(srv.addr()).expect("connect second");
    let cold = first.submit(&request()).expect("cold");
    let warm = second.submit(&request()).expect("warm via other conn");
    assert_eq!(cold.source, ResponseSource::Computed);
    assert_eq!(warm.source, ResponseSource::Memory);
    assert_eq!(warm.payload, cold.payload);
}
