//! Wire-protocol round-trip and failure-path tests.
//!
//! Property tests pin the encode/decode bijection (including digest
//! stability across a round trip); the deterministic cases pin the
//! *typed* failure paths — malformed text, oversized frames and
//! mid-stream disconnects each map to their own [`WireError`] variant,
//! never to a panic or a silent misparse.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::strategy::Strategy;

use ecl_serve::wire::{
    read_frame, write_frame, ClientMsg, Policy, ResponseSource, ServerMsg, SweepRequest, WireError,
    MAX_FRAME,
};

fn policy() -> impl Strategy<Value = Policy> {
    prop_oneof![Just(Policy::Pressure), Just(Policy::Earliest)]
}

fn request() -> impl Strategy<Value = SweepRequest> {
    let lists = (
        vec(0.05f64..4.0, 1..4),
        vec(0.0f64..1.0, 0..3),
        vec(0.0f64..1.0, 0..3),
        vec(0.0f64..1.0, 0..3),
        vec(policy(), 1..3),
        0.0f64..5.0,
    );
    let scalars = (
        0u64..u64::MAX,
        1usize..100_000,
        0u64..256,
        0usize..64,
        1usize..9,
        0u64..100,
    );
    let case = prop_oneof![
        Just("dc_motor".to_string()),
        Just("lqr-Case_2".to_string()),
        Just("x".to_string()),
    ];
    (lists, scalars, case).prop_map(
        |(
            (period_scales, frame_loss, link_outage, proc_dropout, policies, wcet_jitter),
            (seed, scenarios, priority, chunk, wcet_tables, retries),
            case,
        )| SweepRequest {
            case,
            seed,
            scenarios,
            priority: priority as u8,
            chunk,
            wcet_jitter,
            wcet_tables,
            period_scales,
            policies,
            frame_loss,
            link_outage,
            proc_dropout,
            max_retries: retries as u32,
            outage_periods: (retries % 7) as u32,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32 })]

    /// Submit messages survive encode → frame → deframe → decode with
    /// every field and the request digest intact.
    #[test]
    fn submit_round_trips_through_frames(req in request()) {
        let msg = ClientMsg::Submit(req.clone());
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg.encode()).unwrap();
        let payload = read_frame(&mut &buf[..]).unwrap();
        let decoded = ClientMsg::decode(&payload).unwrap();
        let ClientMsg::Submit(back) = decoded else {
            panic!("wrong message kind");
        };
        prop_assert_eq!(&back, &req);
        prop_assert_eq!(back.digest(), req.digest());
    }

    /// The digest ignores the scheduling knobs (`priority`, `chunk`) and
    /// nothing else: perturbing the seed must move it.
    #[test]
    fn digest_ignores_scheduling_knobs_only(
        req in request(),
        priority in 0u64..256,
        chunk in 0usize..512,
    ) {
        let rescheduled = SweepRequest {
            priority: priority as u8,
            chunk,
            ..req.clone()
        };
        prop_assert_eq!(rescheduled.digest(), req.digest());
        let reseeded = SweepRequest { seed: req.seed ^ 1, ..req.clone() };
        prop_assert!(reseeded.digest() != req.digest(), "seed must move the digest");
    }

    /// Every server message round-trips, including reports whose raw
    /// payload contains blank lines (the header/body separator).
    #[test]
    fn server_messages_round_trip(
        a in 0usize..100_000,
        b in 0usize..100_000,
        worst in 0i64..i64::MAX,
        overruns in 0u64..u64::MAX,
        digest in 0u64..u64::MAX,
        body in vec(0u64..256, 0..400),
    ) {
        let mut payload: Vec<u8> = body.iter().map(|&v| v as u8).collect();
        payload.extend_from_slice(b"\n\nraw tail");
        let msgs = [
            ServerMsg::Queued { position: a, depth: b },
            ServerMsg::Delta { done: a, total: b, worst_ns: worst, overruns },
            ServerMsg::Report {
                digest,
                payload_digest: digest ^ 0xa5a5,
                source: ResponseSource::Disk,
                payload,
            },
            ServerMsg::Done { sched_computes: overruns },
            ServerMsg::Stats(vec![("jobs".into(), overruns), ("depth".into(), a as u64)]),
            ServerMsg::Err { code: "rate_limited".into(), msg: "slow down".into() },
            ServerMsg::Rejected {
                codes: vec!["bad_scenarios".into(), "EV401".into()],
                msg: "refused before queueing".into(),
            },
            ServerMsg::Rejected { codes: vec![], msg: "no codes".into() },
        ];
        for msg in msgs {
            let decoded = ServerMsg::decode(&msg.encode()).unwrap();
            prop_assert_eq!(decoded, msg);
        }
    }

    /// Truncating a valid frame at ANY byte reads back as a typed
    /// disconnect — never a partial parse, never a hang-equivalent.
    #[test]
    fn any_truncation_is_a_disconnect(req in request(), cut_seed in 0usize..10_000) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &ClientMsg::Submit(req).encode()).unwrap();
        let cut = 1 + cut_seed % (buf.len() - 1);
        let mut r = &buf[..cut];
        prop_assert!(matches!(read_frame(&mut r), Err(WireError::Disconnected)));
    }
}

/// A valid frame followed by a torn one: the first decodes, the second
/// reports the mid-stream disconnect.
#[test]
fn mid_stream_disconnect_after_valid_frame() {
    let mut buf = Vec::new();
    write_frame(&mut buf, &ClientMsg::Stats.encode()).unwrap();
    let mark = buf.len();
    write_frame(
        &mut buf,
        &ClientMsg::Submit(SweepRequest::default()).encode(),
    )
    .unwrap();
    let torn = &buf[..mark + 7];
    let mut r = torn;
    assert_eq!(
        ClientMsg::decode(&read_frame(&mut r).unwrap()).unwrap(),
        ClientMsg::Stats
    );
    assert!(matches!(read_frame(&mut r), Err(WireError::Disconnected)));
}

/// Oversized frames are rejected symmetrically: on write (payload too
/// large) and on read (hostile length prefix), both with the declared
/// length attached.
#[test]
fn oversized_frames_are_typed() {
    let big = vec![b'x'; MAX_FRAME + 1];
    match write_frame(&mut Vec::new(), &big) {
        Err(WireError::Oversized { len }) => assert_eq!(len, MAX_FRAME + 1),
        other => panic!("expected Oversized, got {other:?}"),
    }
    let mut hostile = ((MAX_FRAME as u32) + 1).to_le_bytes().to_vec();
    hostile.extend_from_slice(&[0u8; 16]);
    match read_frame(&mut &hostile[..]) {
        Err(WireError::Oversized { len }) => assert_eq!(len, MAX_FRAME + 1),
        other => panic!("expected Oversized, got {other:?}"),
    }
}

/// Text-level defects each decode to `Malformed` with the offending
/// field named — the reader can log the reason and keep the connection.
#[test]
fn malformed_payloads_are_typed_and_named() {
    let probes: &[(&[u8], &str)] = &[
        (b"req nonsense\n", "kind"),
        (b"req sweep\nseed 1\n", "missing key"),
        (
            b"rsp queued\nposition 1\nposition 2\ndepth 0\n",
            "duplicate",
        ),
        (b"rsp queued\nposition 1\ndepth 0\nextra 9\n", "unknown"),
        (
            b"rsp delta\ndone x\ntotal 1\nworst_ns 0\noverruns 0\n",
            "done",
        ),
        (b"\xff\xfe\n", "UTF-8"),
    ];
    for (payload, needle) in probes {
        let err = if payload.starts_with(b"rsp ") {
            ServerMsg::decode(payload).err()
        } else {
            ClientMsg::decode(payload).err()
        };
        match err {
            Some(WireError::Malformed { reason }) => assert!(
                reason.to_lowercase().contains(&needle.to_lowercase()),
                "reason {reason:?} does not name {needle:?}"
            ),
            other => panic!("payload {payload:?}: expected Malformed, got {other:?}"),
        }
    }
}

/// Range validation is a *rejection*, not a codec concern: an
/// out-of-range request decodes intact, and `validate` names each
/// defect with a stable code the server can send in `rsp rejected`.
#[test]
fn out_of_range_requests_decode_and_validate_with_typed_codes() {
    type Patch<'a> = &'a dyn Fn(&mut SweepRequest);
    let cases: Vec<(Patch, &str)> = vec![
        (&|r| r.scenarios = 0, "bad_scenarios"),
        (&|r| r.wcet_tables = 0, "bad_wcet_tables"),
        (&|r| r.period_scales = vec![], "bad_period_scales"),
        (&|r| r.period_scales = vec![-1.0], "bad_period_scales"),
        (&|r| r.policies = vec![], "bad_policies"),
        (&|r| r.frame_loss = vec![1.5], "bad_frame_loss"),
        (&|r| r.wcet_jitter = -0.5, "bad_wcet_jitter"),
        (&|r| r.wcet_jitter = f64::NAN, "bad_wcet_jitter"),
    ];
    for (patch, code) in cases {
        let mut req = SweepRequest::default();
        patch(&mut req);
        let payload = ClientMsg::Submit(req.clone()).encode();
        let decoded = ClientMsg::decode(&payload)
            .unwrap_or_else(|e| panic!("out-of-range request must still decode ({code}): {e}"));
        // Byte comparison instead of PartialEq: NaN jitter must round-trip
        // too, and NaN != NaN.
        assert_eq!(decoded.encode(), payload, "decode drift");
        let codes: Vec<&str> = req.validate().iter().map(|d| d.code).collect();
        assert_eq!(codes, [code], "defect codes for {code}");
    }
    assert!(
        SweepRequest::default().validate().is_empty(),
        "the default request must be admissible"
    );
}

/// A report whose declared byte count disagrees with its body is
/// malformed — the count is an integrity check, not a suggestion.
#[test]
fn report_length_mismatch_is_malformed() {
    let msg = ServerMsg::Report {
        digest: 1,
        payload_digest: 2,
        source: ResponseSource::Computed,
        payload: b"twelve bytes".to_vec(),
    };
    let mut bytes = msg.encode();
    bytes.extend_from_slice(b"!!");
    assert!(matches!(
        ServerMsg::decode(&bytes),
        Err(WireError::Malformed { .. })
    ));
}
