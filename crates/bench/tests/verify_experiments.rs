//! The `ecl-verify` gate over every seeded experiment's schedule:
//! rebuilds the deployments of E9 (filter-bank scaling), E10/E13
//! (quarter-car on 3 ECUs), and E11/E12 (split DC-motor baseline) and
//! demands the static verifier reports **zero errors** on each. The
//! perturbed fleet schedules of E11–E14 are verified scenario-by-
//! scenario through `SweepConfig::verify_static` (see `fleet` tests and
//! `exp14_verify`).

use ecl_aaa::{
    adequation, AdequationOptions, AlgorithmGraph, ArchitectureGraph, Schedule, TimeNs, TimingDb,
};
use ecl_bench::split_scenario;
use ecl_control::plants;
use ecl_core::translate::{uniform_timing, ControlLawSpec};
use ecl_verify::Severity;

/// Verifies one deployment at a period 25% above its makespan (every
/// experiment picks its period at least that loosely) and asserts zero
/// error-severity diagnostics.
fn assert_verifies(
    label: &str,
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
    db: &TimingDb,
    schedule: &Schedule,
    period: Option<TimeNs>,
) {
    let period =
        period.unwrap_or_else(|| TimeNs::from_nanos(schedule.makespan().as_nanos() * 5 / 4 + 1));
    let report = ecl_verify::verify(alg, arch, db, schedule, period, None).expect("verify runs");
    assert!(
        report.is_clean(),
        "{label}: static verifier reported errors:\n{}",
        report.render()
    );
    assert_eq!(report.count(Severity::Error), 0, "{label}");
}

/// E9 — the layered filter-bank law on 1..4 processors.
#[test]
fn exp9_filter_bank_schedules_verify() {
    let law = ControlLawSpec::filtered("bank", 12, 2).with_data_units(4);
    let (alg, io) = law.to_algorithm().expect("translate");
    let db = uniform_timing(&alg, &io, TimeNs::from_micros(40), TimeNs::from_micros(500));
    for n_procs in [1usize, 2, 3, 4] {
        let mut arch = ArchitectureGraph::new();
        let ps: Vec<_> = (0..n_procs)
            .map(|i| arch.add_processor(format!("p{i}"), "arm"))
            .collect();
        if n_procs > 1 {
            arch.add_bus("bus", &ps, TimeNs::from_micros(30), TimeNs::from_micros(1))
                .expect("valid");
        }
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).expect("ok");
        assert_verifies(&format!("E9 {n_procs}p"), &alg, &arch, &db, &schedule, None);
    }
}

/// E10/E13 — the quarter-car suspension on 3 ECUs over one CAN bus.
#[test]
fn exp10_quarter_car_schedule_verifies() {
    let plant = plants::quarter_car();
    let law = ControlLawSpec::filtered("susp", 4, 1).with_data_units(8);
    let (alg, io) = law.to_algorithm().expect("translate");

    let mut arch = ArchitectureGraph::new();
    let wheel_ecu = arch.add_processor("wheel_ecu", "cortex-m");
    let body_ecu = arch.add_processor("body_ecu", "cortex-m");
    let control_ecu = arch.add_processor("control_ecu", "cortex-a");
    arch.add_bus(
        "can",
        &[wheel_ecu, body_ecu, control_ecu],
        TimeNs::from_micros(120),
        TimeNs::from_micros(8),
    )
    .expect("valid");

    let mut db = uniform_timing(&alg, &io, TimeNs::from_micros(80), TimeNs::from_micros(600));
    for &s in &[io.sensors[0], io.sensors[2], io.sensors[3]] {
        db.forbid(s, body_ecu);
        db.forbid(s, control_ecu);
    }
    db.forbid(io.sensors[1], wheel_ecu);
    db.forbid(io.sensors[1], control_ecu);
    let step = *io.stages.last().expect("law has stages");
    db.forbid(step, wheel_ecu);
    db.forbid(step, body_ecu);
    db.forbid(io.actuators[0], body_ecu);
    db.forbid(io.actuators[0], control_ecu);

    let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).expect("ok");
    assert_verifies(
        "E10/E13 quarter-car",
        &alg,
        &arch,
        &db,
        &schedule,
        Some(TimeNs::from_secs_f64(plant.ts)),
    );
}

/// E11/E12 — the canonical split DC-motor baseline the fleet sweeps
/// perturb.
#[test]
fn exp11_split_baseline_schedule_verifies() {
    let base = split_scenario(
        2,
        1,
        TimeNs::from_micros(200),
        TimeNs::from_micros(50),
        TimeNs::from_micros(500),
    )
    .expect("scenario");
    let schedule = adequation(
        &base.alg,
        &base.arch,
        &base.db,
        AdequationOptions::default(),
    )
    .expect("ok");
    assert_verifies(
        "E11/E12 baseline",
        &base.alg,
        &base.arch,
        &base.db,
        &schedule,
        None,
    );
}
